"""Section VI-A field test: 924 benign installs, zero false alarms.

The paper ran all protections on a Nexus 5 for 45 days, installing 924
apps, with no false alarms and no disrupted operations.  We replay a
924-install benign workload (randomized sizes, plus periodic app
updates and benign store redirections) through a device running every
defense at once and count alarms and blocked operations.
"""

import os

from repro.android.intents import Intent
from repro.core.campaign import Campaign, benign_workload
from repro.core.scenario import Scenario
from repro.engine import CampaignSpec, run_fleet
from repro.installers import AmazonInstaller
from repro.measurement.report import render_table

INSTALLS = 924

# The fleet variant scales past the paper's 924 via the environment,
# e.g. REPRO_FP_INSTALLS=50000 REPRO_FP_WORKERS=8 to stress the
# engine at field-study-years of volume.
FLEET_INSTALLS = int(os.environ.get("REPRO_FP_INSTALLS", str(INSTALLS)))
FLEET_WORKERS = int(os.environ.get("REPRO_FP_WORKERS", "2"))
FLEET_SHARDS = int(os.environ.get("REPRO_FP_SHARDS", "4"))


def run_field_test():
    scenario = Scenario.build(
        installer=AmazonInstaller,
        defenses=("dapp", "fuse-dac", "intent-detection", "intent-origin"),
    )
    packages = benign_workload(scenario, count=INSTALLS)
    campaign = Campaign(scenario)
    stats = campaign.install_many(packages)
    # Daily operations: benign activity starts at a human cadence.
    scenario.system.ams.register_app("com.browser")
    for index in range(40):
        sender = scenario.system.caller_for(packages[index])
        scenario.system.kernel.call_later(
            index * 3_000_000_000,
            lambda s=sender: scenario.system.ams.start_activity(
                s, Intent(target_package="com.browser")
            ),
        )
    scenario.system.run()
    return scenario, stats


def test_false_positive_study(benchmark, report_sink):
    scenario, stats = benchmark.pedantic(run_field_test, rounds=1, iterations=1)
    alarms = sum(len(report.alarms) for report in scenario.defense_reports())
    blocked = sum(
        len(report.blocked_operations) for report in scenario.defense_reports()
    )
    rows = [(
        stats.runs, stats.clean_installs, alarms, blocked,
        "924 installs / 45 days, 0 false alarms (paper)",
    )]
    report_sink("false_positive_study", render_table(
        "False-positive study (all defenses active)",
        ["installs", "clean", "alarms", "blocked ops", "paper"],
        rows,
    ))
    assert stats.runs == INSTALLS
    assert stats.clean_installs == INSTALLS
    assert alarms == 0
    assert blocked == 0


def run_field_test_fleet():
    spec = CampaignSpec(
        installs=FLEET_INSTALLS,
        installer="amazon",
        defenses=("dapp", "fuse-dac", "intent-detection", "intent-origin"),
        seed=7,
    )
    return run_fleet(spec, shards=FLEET_SHARDS, workers=FLEET_WORKERS)


def test_false_positive_study_fleet(benchmark, report_sink):
    """The same study through the fleet engine, sharded and parallel."""
    report = benchmark.pedantic(run_field_test_fleet, rounds=1, iterations=1)
    stats = report.stats
    alo, ahi = report.alarm_ci
    rows = [(
        stats.runs, stats.clean_installs, stats.alarms, stats.blocked,
        f"[{alo:.4f}, {ahi:.4f}]",
        f"{len(report.shards)} shards / {report.workers} "
        f"{report.backend} workers, {report.throughput:.0f} installs/s",
    )]
    report_sink("false_positive_study_fleet", render_table(
        "False-positive study via fleet engine (all defenses active)",
        ["installs", "clean", "alarms", "blocked ops",
         "alarm-rate 95% CI", "fleet"],
        rows,
    ))
    assert stats.runs == FLEET_INSTALLS
    assert stats.clean_installs == FLEET_INSTALLS
    assert stats.alarms == 0
    assert stats.blocked == 0
