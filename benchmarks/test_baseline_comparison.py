"""Baseline comparison: GIA vs the prior logcat attack (Related Work).

The paper argues GIA is a strictly stronger threat than the
PaloAltoNetworks logcat attack: no special permission, works on every
Android version studied, and covers silent installers.  This benchmark
runs both attackers over the {installer path} x {Android build} grid
and tabulates coverage.
"""

from repro.android import device
from repro.attacks.base import fingerprint_for
from repro.attacks.logcat_baseline import LogcatConsentReplacer
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.installers import DTIgniteInstaller, NaiveSdcardInstaller
from repro.measurement.report import render_table

TARGET = "com.victim.app"

GRID = [
    ("PIA consent install, Android 4.0", NaiveSdcardInstaller,
     device.galaxy_s2_ics),
    ("PIA consent install, Android 5.1", NaiveSdcardInstaller, device.nexus5),
    ("silent carrier push, Android 4.0", DTIgniteInstaller,
     device.galaxy_s2_ics),
    ("silent carrier push, Android 5.1", DTIgniteInstaller, device.nexus5),
]


def run_cell(installer_cls, profile, use_baseline):
    if use_baseline:
        factory = lambda s: LogcatConsentReplacer()
    else:
        factory = lambda s: FileObserverHijacker(fingerprint_for(installer_cls))
    scenario = Scenario.build(installer=installer_cls,
                              attacker_factory=factory, device=profile)
    scenario.publish_app(TARGET, label="Victim")
    outcome = scenario.run_install(TARGET)
    return outcome.hijacked


def run_grid():
    rows = []
    for label, installer_cls, profile_factory in GRID:
        baseline = run_cell(installer_cls, profile_factory(), use_baseline=True)
        gia = run_cell(installer_cls, profile_factory(), use_baseline=False)
        rows.append((label,
                     "hijacked" if baseline else "no effect",
                     "hijacked" if gia else "no effect"))
    return rows


def test_baseline_comparison(benchmark, report_sink):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    report_sink("baseline_comparison", render_table(
        "Baseline comparison: logcat attack (pre-GIA) vs GIA FileObserver",
        ["scenario", "logcat baseline", "GIA"],
        rows,
    ))
    coverage = {row[0]: (row[1], row[2]) for row in rows}
    # The baseline's single sweet spot:
    assert coverage["PIA consent install, Android 4.0"] == ("hijacked",
                                                            "hijacked")
    # Dead on modern builds, blind to silent installers:
    assert coverage["PIA consent install, Android 5.1"][0] == "no effect"
    assert coverage["silent carrier push, Android 4.0"][0] == "no effect"
    assert coverage["silent carrier push, Android 5.1"][0] == "no effect"
    # GIA covers the full grid:
    assert all(row[2] == "hijacked" for row in rows)
