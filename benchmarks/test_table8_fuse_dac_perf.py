"""Table VIII: FUSE DAC scheme performance.

The paper measured 1 MB writes and reads on the original vs modified
FUSE daemon 100 times each and found the overhead unmeasurable
(mod/org: 99.8% write, 102.02% read).  We time the same operations on
our stock vs hardened policy implementations and require the same
*shape*: the hardened daemon is within a few percent of stock.
"""

import time

from repro.android.device import nexus5
from repro.android.filesystem import Caller
from repro.android.permissions import WRITE_EXTERNAL_STORAGE
from repro.android.system import AndroidSystem
from repro.defenses.fuse_dac import install_fuse_dac
from repro.measurement.report import render_table

ROUNDS = 100
ONE_MB = b"x" * (1024 * 1024)
OWNER = Caller(uid=10042, package="com.store",
               permissions=frozenset({WRITE_EXTERNAL_STORAGE}))


def make_system(hardened: bool) -> AndroidSystem:
    system = AndroidSystem(nexus5())
    if hardened:
        install_fuse_dac(system)
    system.fs.makedirs("/sdcard/bench", OWNER)
    return system


def timed_writes(system) -> float:
    start = time.perf_counter()
    for index in range(ROUNDS):
        system.fs.write_bytes(f"/sdcard/bench/file{index % 8}.apk", OWNER, ONE_MB)
    return (time.perf_counter() - start) / ROUNDS


def timed_reads(system) -> float:
    system.fs.write_bytes("/sdcard/bench/read.apk", OWNER, ONE_MB)
    start = time.perf_counter()
    for _ in range(ROUNDS):
        system.fs.read_bytes("/sdcard/bench/read.apk", OWNER)
    return (time.perf_counter() - start) / ROUNDS


def test_table8_fuse_dac_perf(benchmark, report_sink):
    stock = make_system(hardened=False)
    hardened = make_system(hardened=True)
    # Best-of-3 to shrug off scheduler noise, like taking the minimum
    # in a microbenchmark.
    write_org = min(timed_writes(stock) for _ in range(3))
    read_org = min(timed_reads(stock) for _ in range(3))
    write_mod = min(timed_writes(hardened) for _ in range(3))
    read_mod = min(timed_reads(hardened) for _ in range(3))
    # The pytest-benchmark figure tracks the hardened write path.
    benchmark(lambda: hardened.fs.write_bytes("/sdcard/bench/b.apk", OWNER,
                                              ONE_MB))

    write_ratio = write_mod / write_org
    read_ratio = read_mod / read_org
    rows = [
        ("write 1MB", f"{write_org * 1e6:.1f} us", f"{write_mod * 1e6:.1f} us",
         f"{write_ratio * 100:.1f}%", "99.80%"),
        ("read 1MB", f"{read_org * 1e6:.1f} us", f"{read_mod * 1e6:.1f} us",
         f"{read_ratio * 100:.1f}%", "102.02%"),
    ]
    report_sink("table8_fuse_dac_perf", render_table(
        "Table VIII: FUSE DAC scheme performance (100 rounds of 1 MB I/O)",
        ["op", "org DAC", "mod DAC", "mod/org (measured)", "mod/org (paper)"],
        rows,
    ))

    # The paper's claim: overhead too small to measure. Allow generous
    # jitter margins; the hardened path must not be meaningfully slower.
    assert write_ratio < 2.0
    assert read_ratio < 2.0
