"""Table VI: system apps holding INSTALL_PACKAGES, per vendor."""

import pytest

from repro.measurement.report import render_table6
from repro.measurement.tables import compute_table6

PAPER_RATIOS = {"samsung": 0.0845, "huawei": 0.1032, "xiaomi": 0.1187}


def test_table6_install_packages(benchmark, fleet, report_sink):
    table = benchmark.pedantic(
        lambda: compute_table6(fleet), rounds=1, iterations=1
    )
    text = render_table6(table)
    text += (
        "\npaper: ~10% of system apps hold INSTALL_PACKAGES "
        "(8.45% / 10.32% / 11.87%); count doubled over three years; "
        "recent flagships ship 25-31 privileged apps"
    )
    report_sink("table6_install_packages", text)

    for vendor, target in PAPER_RATIOS.items():
        assert table.row_for(vendor).ratio == pytest.approx(target, abs=0.005)
    assert table.doubled_over_period
    low, high = table.flagship_range
    assert 25 <= low and high <= 31
