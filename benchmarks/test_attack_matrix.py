"""The capstone grid: every Step-3 attack x every SD-Card store x
every defense posture.

One table that summarizes the paper: undefended SD-Card AITs always
fall, DAPP always detects, the FUSE DAC always prevents, and the
internal-storage design never falls in the first place.
"""

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    BaiduInstaller,
    DTIgniteInstaller,
    GooglePlayInstaller,
    HuaweiInstaller,
    QihooInstaller,
    TencentInstaller,
    XiaomiInstaller,
)
from repro.measurement.report import render_table

STORES = [AmazonInstaller, XiaomiInstaller, BaiduInstaller, QihooInstaller,
          TencentInstaller, HuaweiInstaller, DTIgniteInstaller,
          GooglePlayInstaller]
ATTACKS = [("FileObserver", FileObserverHijacker),
           ("wait-and-see", WaitAndSeeHijacker)]
POSTURES = [("undefended", ()), ("DAPP", ("dapp",)),
            ("FUSE-DAC", ("fuse-dac",))]

TARGET = "com.victim.app"


def run_cell(installer_cls, attacker_cls, defenses):
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: attacker_cls(fingerprint_for(installer_cls)),
        defenses=defenses,
    )
    scenario.publish_app(TARGET, label="Victim")
    outcome = scenario.run_install(TARGET)
    detected = any(r.detected for r in scenario.defense_reports())
    prevented = any(r.prevented for r in scenario.defense_reports())
    if outcome.hijacked and detected:
        return "hijacked+detected"
    if outcome.hijacked:
        return "HIJACKED"
    if prevented:
        return "prevented"
    return "clean"


def run_matrix():
    table = {}
    for attack_name, attacker_cls in ATTACKS:
        for installer_cls in STORES:
            for posture_name, defenses in POSTURES:
                key = (attack_name, installer_cls.profile.label, posture_name)
                table[key] = run_cell(installer_cls, attacker_cls, defenses)
    return table


def test_attack_matrix(benchmark, report_sink):
    table = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    sections = []
    for attack_name, _cls in ATTACKS:
        rows = []
        for installer_cls in STORES:
            label = installer_cls.profile.label
            rows.append((
                label,
                table[(attack_name, label, "undefended")],
                table[(attack_name, label, "DAPP")],
                table[(attack_name, label, "FUSE-DAC")],
            ))
        sections.append(render_table(
            f"Attack matrix: {attack_name} hijacking",
            ["installer", "undefended", "DAPP", "FUSE-DAC"],
            rows,
        ))
    report_sink("attack_matrix", "\n\n".join(sections))

    sdcard_labels = [cls.profile.label for cls in STORES
                     if cls.profile.uses_sdcard]
    for attack_name, _cls in ATTACKS:
        for label in sdcard_labels:
            assert table[(attack_name, label, "undefended")] == "HIJACKED", (
                attack_name, label)
            assert table[(attack_name, label, "DAPP")] == "hijacked+detected"
            assert table[(attack_name, label, "FUSE-DAC")] == "prevented"
        # Google Play's internal design never falls.
        play = GooglePlayInstaller.profile.label
        assert table[(attack_name, play, "undefended")] == "clean"
