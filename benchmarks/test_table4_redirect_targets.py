"""Table IV: number of fixed URL or redirection schemes per Play app."""

from repro.measurement.report import render_table4
from repro.measurement.tables import compute_table4

PAPER_BUCKETS = {1: 723, 2: 1405, 4: 2090, 8: 2337}
PAPER_REDIRECTING_FRACTION = 0.847


def test_table4_redirect_targets(benchmark, play_corpus, report_sink):
    table = benchmark.pedantic(
        lambda: compute_table4(play_corpus), rounds=1, iterations=1
    )
    text = render_table4(table)
    text += (
        "\npaper: 5.7% (723), 11% (1405), 16.4% (2090), 18.3% (2337); "
        "84.7% redirecting overall"
    )
    report_sink("table4_redirect_targets", text)

    for limit, expected in PAPER_BUCKETS.items():
        assert table.buckets[limit][0] == expected
    assert abs(table.redirecting_fraction - PAPER_REDIRECTING_FRACTION) < 0.001
