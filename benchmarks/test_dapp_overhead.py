"""Section VI-B: overhead of DAPP.

The paper measured DAPP at 0.1-0.7% CPU and ~6.3 MB RAM during app
installs, 0.08% of battery over a 21-installs-in-an-hour workload.  We
run the same 21-install workload and measure, on real wall-clock:

- the CPU time spent inside DAPP's event/broadcast handlers as a share
  of the whole simulation run, and
- the bytes DAPP retains (grabbed signatures and event bookkeeping).
"""

import sys
import time

from repro.core.campaign import Campaign, benign_workload
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller
from repro.measurement.report import render_table

INSTALLS = 21  # the paper's battery-test workload


def run_workload():
    scenario = Scenario.build(installer=AmazonInstaller, defenses=("dapp",))
    dapp = scenario.dapp

    handler_time = {"total": 0.0, "calls": 0}
    original_file_handler = dapp._on_file_event
    original_package_handler = dapp._on_package_event

    def timed_file_handler(event):
        start = time.perf_counter()
        original_file_handler(event)
        handler_time["total"] += time.perf_counter() - start
        handler_time["calls"] += 1

    def timed_package_handler(broadcast):
        start = time.perf_counter()
        original_package_handler(broadcast)
        handler_time["total"] += time.perf_counter() - start
        handler_time["calls"] += 1

    dapp._on_file_event = timed_file_handler
    dapp._on_package_event = timed_package_handler
    for observer in dapp._observers:
        observer._listeners = [timed_file_handler]

    packages = benign_workload(scenario, count=INSTALLS)
    wall_start = time.perf_counter()
    stats = Campaign(scenario).install_many(packages)
    wall_total = time.perf_counter() - wall_start

    retained_bytes = sum(
        sys.getsizeof(grab) + sys.getsizeof(grab.certificate_fingerprint)
        + sys.getsizeof(grab.path)
        for grab in dapp._grabbed.values()
    )
    return {
        "stats": stats,
        "dapp_cpu_s": handler_time["total"],
        "handler_calls": handler_time["calls"],
        "wall_s": wall_total,
        "retained_bytes": retained_bytes,
        "alarms": len(dapp.report.alarms),
    }


def test_dapp_overhead(benchmark, report_sink):
    result = benchmark.pedantic(run_workload, rounds=1, iterations=1)
    share = result["dapp_cpu_s"] / result["wall_s"] if result["wall_s"] else 0.0
    rows = [
        ("installs", INSTALLS, "21 in 1 hour"),
        ("DAPP handler CPU share", f"{share * 100:.2f}%",
         "0.1-0.7% device CPU"),
        ("handler invocations", result["handler_calls"], "n/a"),
        ("retained state", f"{result['retained_bytes'] / 1024:.1f} KiB",
         "6.3 MB resident app"),
        ("false alarms", result["alarms"], "0"),
    ]
    report_sink("dapp_overhead", render_table(
        "Section VI-B: overhead of DAPP (21-install workload)",
        ["metric", "measured", "paper"],
        rows,
    ))
    assert result["stats"].clean_installs == INSTALLS
    assert result["alarms"] == 0
    # The paper's claim is 'negligible': DAPP's handlers must be a
    # small share of the workload even in our much cheaper simulation.
    assert share < 0.25
    # Bookkeeping stays tiny — nowhere near leak territory.
    assert result["retained_bytes"] < 1024 * 1024
