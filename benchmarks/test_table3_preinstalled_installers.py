"""Table III: potentially vulnerable pre-installed apps."""

from repro.measurement.report import render_installer_breakdown
from repro.measurement.tables import compute_table3

PAPER = {
    "vulnerable": 102,
    "secure": 3,
    "installers": 238,
    "vulnerable_share_excl": 0.971,
    "write_external_instances": 5864,
    "total_instances": 12050,
}


def test_table3_preinstalled_installers(benchmark, preinstalled_corpus,
                                        report_sink):
    table = benchmark.pedantic(
        lambda: compute_table3(preinstalled_corpus), rounds=1, iterations=1
    )
    text = render_installer_breakdown(
        "Table III: potentially vulnerable pre-installed apps (measured)",
        table,
    )
    text += (
        f"\ninstances={table.total_instances}, "
        f"WRITE_EXTERNAL instances={table.write_external_instances}"
        f"\npaper: 102/105 (97.1%) SD-Card, 3/105 (2.86%) internal; "
        f"including unknown 42.9% / 1.26%; WRITE_EXTERNAL 5864/12050"
    )
    report_sink("table3_preinstalled_installers", text)

    assert table.vulnerable == PAPER["vulnerable"]
    assert table.secure == PAPER["secure"]
    assert table.installers == PAPER["installers"]
    assert abs(table.vulnerable_share_excluding_unknown
               - PAPER["vulnerable_share_excl"]) < 0.001
    assert table.write_external_instances == PAPER["write_external_instances"]
    assert table.total_instances == PAPER["total_instances"]
