"""Section IV-B platform-key findings: one key per vendor, platform-signed
apps per image / in total / in appstores."""

import pytest

from repro.analysis.platform_keys import analyze
from repro.measurement.report import render_table

PAPER = {
    "avg_per_image": {"samsung": 142, "huawei": 68, "xiaomi": 84},
    "distinct": {"samsung": 884, "huawei": 301, "xiaomi": 216},
    "in_stores": {"samsung": 61, "huawei": 125, "xiaomi": 30},
}


def test_platform_keys(benchmark, fleet, catalogs, report_sink):
    study = benchmark.pedantic(
        lambda: analyze(fleet, catalogs), rounds=1, iterations=1
    )
    rows = []
    for vendor in ("samsung", "huawei", "xiaomi"):
        rows.append((
            vendor,
            study.keys_per_vendor[vendor],
            f"{study.avg_platform_signed_per_image[vendor]:.1f} "
            f"(paper {PAPER['avg_per_image'][vendor]})",
            f"{study.distinct_platform_packages[vendor]} "
            f"(paper {PAPER['distinct'][vendor]})",
            f"{study.store_signed_counts[vendor]} "
            f"(paper {PAPER['in_stores'][vendor]})",
        ))
    report_sink("platform_keys", render_table(
        "Platform key usage (Section IV-B)",
        ["vendor", "platform keys", "signed apps/image", "distinct signed",
         "signed apps in stores"],
        rows,
    ))

    assert study.keys_per_vendor == {"samsung": 1, "huawei": 1, "xiaomi": 1}
    assert study.distinct_platform_packages == PAPER["distinct"]
    assert study.store_signed_counts == PAPER["in_stores"]
    for vendor, expected in PAPER["avg_per_image"].items():
        assert study.avg_platform_signed_per_image[vendor] == pytest.approx(
            expected, abs=4
        )
    assert study.vulnerable_store_apps()  # TeamViewer is out there
