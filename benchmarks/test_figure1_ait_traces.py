"""Figure 1: the App Installation Transaction across installer designs.

Runs one complete AIT per installer profile and renders the per-step
trace — the Figure 1 reproduction: the same four steps, with the
design choices (DM vs self-download, SD-Card vs internal, PMS vs PIA)
varying per installer.
"""

from repro.core.ait import AITStep
from repro.core.scenario import Scenario
from repro.installers import all_installer_types

TARGET = "com.victim.app"


def run_all_traces():
    traces = {}
    for name, installer_cls in sorted(all_installer_types().items()):
        scenario = Scenario.build(installer=installer_cls)
        scenario.publish_app(TARGET, label="Victim")
        outcome = scenario.run_install(TARGET)
        traces[name] = outcome.trace
    return traces


def test_figure1_ait_traces(benchmark, report_sink):
    traces = benchmark.pedantic(run_all_traces, rounds=1, iterations=1)
    lines = ["Figure 1: App Installation Transaction (AIT) steps", ""]
    for name, trace in traces.items():
        lines.append(f"--- {name} ---")
        lines.append(trace.describe())
        lines.append("")
    report_sink("figure1_ait_traces", "\n".join(lines))

    for name, trace in traces.items():
        assert trace.completed, f"{name} failed: {trace.error}"
        steps = {entry.step for entry in trace.steps}
        assert {AITStep.DOWNLOAD, AITStep.TRIGGER, AITStep.INSTALL} <= steps
    # The design axes of Figure 1 are all represented.
    mechanisms = {
        trace.step_for(AITStep.DOWNLOAD).mechanism for trace in traces.values()
    }
    assert any("DownloadManager" in m for m in mechanisms)
    assert any("self-download" in m for m in mechanisms)
    assert any("internal" in m for m in mechanisms)
    installs = {
        trace.step_for(AITStep.INSTALL).mechanism for trace in traces.values()
    }
    assert "PackageInstallerActivity" in installs
    assert "PMS.installPackage" in installs
    assert "PMS.installPackageWithVerification" in installs
