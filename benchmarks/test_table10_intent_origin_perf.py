"""Table X: Intent origin scheme performance.

Same methodology as Table IX, for the origin-stamping inspector.
The paper measured 1.67% of total delivery time.
"""

import time

from repro.android.device import nexus5
from repro.android.filesystem import Caller
from repro.android.intent_firewall import IntentRecord
from repro.android.intents import Intent
from repro.android.system import AndroidSystem
from repro.defenses.intent_origin import IntentOriginScheme
from repro.measurement.report import render_table

ROUNDS = 50
SENDER = Caller(uid=10001, package="com.sender")


def timed_total_delivery(system) -> float:
    system.ams.register_app("com.recipient")
    start = time.perf_counter()
    for _ in range(ROUNDS):
        system.ams.start_activity(SENDER, Intent(target_package="com.recipient"))
        system.run()
    return (time.perf_counter() - start) / ROUNDS


def timed_logic(scheme) -> float:
    records = [
        IntentRecord(
            intent=Intent(target_package="com.recipient"),
            sender_package="com.sender",
            sender_uid=10001,
            sender_is_system=False,
            recipient_package="com.recipient",
            delivery_time_ns=index,
        )
        for index in range(ROUNDS)
    ]
    start = time.perf_counter()
    for record in records:
        scheme.inspect(record)
    return (time.perf_counter() - start) / ROUNDS


def test_table10_intent_origin_perf(benchmark, report_sink):
    system = AndroidSystem(nexus5())
    scheme = IntentOriginScheme().install(system.firewall)
    total = timed_total_delivery(system)
    logic = timed_logic(IntentOriginScheme())
    benchmark(lambda: scheme.inspect(IntentRecord(
        intent=Intent(target_package="com.recipient"),
        sender_package="com.sender",
        sender_uid=10001,
        sender_is_system=False,
        recipient_package="com.recipient",
        delivery_time_ns=0,
    )))
    fraction = logic / total
    rows = [(
        f"{total * 1e9:.0f} ns", f"{logic * 1e9:.0f} ns",
        f"{fraction * 100:.2f}%", "1.67%",
    )]
    text = render_table(
        "Table X: Intent origin scheme performance (50 deliveries)",
        ["total delivery", "our logic", "percentage (measured)",
         "percentage (paper)"],
        rows,
    )
    text += (
        "\nnote: the simulated delivery path is ~1000x cheaper than a real "
        "binder IPC (paper total ~64.9 ms), which inflates the percentage; "
        "the absolute stamping cost (hundreds of ns) matches the paper's "
        "'unnoticeable' claim."
    )
    report_sink("table10_intent_origin_perf", text)
    assert logic < 5e-6
    assert fraction < 0.25
    # Functional sanity: the origin really is delivered.
    record = IntentRecord(
        intent=Intent(target_package="com.recipient"),
        sender_package="com.verify",
        sender_uid=10002,
        sender_is_system=False,
        recipient_package="com.recipient",
        delivery_time_ns=0,
    )
    scheme.inspect(record)
    assert record.intent.get_intent_origin() == "com.verify"
