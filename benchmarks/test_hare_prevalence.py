"""Section IV-B Hare prevalence: 178 hare apps, 27,763 vulnerable cases."""

import pytest

from repro.analysis.hare_analysis import search_images
from repro.measurement.report import render_table

PAPER = {"hare_apps": 178, "total_cases": 27763, "avg_per_image": 23.5}


def test_hare_prevalence(benchmark, fleet, report_sink):
    study = benchmark.pedantic(lambda: search_images(fleet), rounds=1,
                               iterations=1)
    rows = [
        ("hare-using apps (10 sample images)", PAPER["hare_apps"],
         len(study.hare_apps)),
        ("unique vulnerable cases", PAPER["total_cases"], study.total_cases),
        ("average per searched image", PAPER["avg_per_image"],
         f"{study.average_per_image:.1f}"),
        ("searched images", 1181, len(study.cases_by_image)),
    ]
    report_sink("hare_prevalence", render_table(
        "Hare permission prevalence (Section IV-B)",
        ["metric", "paper", "measured"],
        rows,
    ))

    assert len(study.hare_apps) == PAPER["hare_apps"]
    assert study.total_cases == PAPER["total_cases"]
    assert study.average_per_image == pytest.approx(PAPER["avg_per_image"],
                                                    abs=0.1)
