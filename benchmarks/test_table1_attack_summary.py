"""Table I: summary of AIT problems — which attack breaks which step.

Executes one representative exploit per attack family and records the
AIT step it lands on, regenerating the paper's summary table.
"""

from repro.android import device
from repro.android.apk import ApkBuilder
from repro.android.app import App
from repro.android.intents import Intent
from repro.android.signing import SigningKey
from repro.attacks.base import fingerprint_for
from repro.attacks.command_injection import XiaomiPushForgeryAttacker
from repro.attacks.dm_symlink import DMSymlinkAttacker
from repro.attacks.redirect_intent import RedirectIntentAttacker
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.ait import AITStep
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    GooglePlayInstaller,
    NaiveSdcardInstaller,
    XiaomiInstaller,
)
from repro.measurement.report import render_table
from repro.sim.clock import seconds

PAPER_ROWS = [
    ("Hijacking Installation (FileObserver)", "3"),
    ("Hijacking Installation (PIA/manifest)", "4"),
    ("Exploiting DM (symlink)", "2"),
    ("Attacking Installer Interfaces", "1"),
]


def run_hijack_step3():
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(AmazonInstaller)
        ),
    )
    scenario.publish_app("com.victim.app")
    outcome = scenario.run_install("com.victim.app")
    return AITStep.TRIGGER, outcome.hijacked


def run_hijack_step4():
    scenario = Scenario.build(
        installer=NaiveSdcardInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(NaiveSdcardInstaller)
        ),
    )
    scenario.publish_app("com.victim.app")
    outcome = scenario.run_install("com.victim.app")
    return AITStep.INSTALL, outcome.hijacked


def run_dm_symlink():
    scenario = Scenario.build(
        installer=GooglePlayInstaller,
        attacker=DMSymlinkAttacker,
        device=device.xiaomi_mi4(),
    )
    system = scenario.system
    secret = "/data/data/com.android.vending/files/token"
    system.fs.makedirs("/data/data/com.android.vending/files", system.system_caller)
    system.fs.write_bytes(secret, system.system_caller, b"TOKEN", mode=0o600)
    loot = system.run_process(scenario.attacker.steal_file(secret))
    result = scenario.attacker.result(loot)
    return result.ait_step, result.succeeded


def run_interface_attack():
    scenario = Scenario.build(installer=XiaomiInstaller,
                              attacker=XiaomiPushForgeryAttacker)
    scenario.publish_app("com.evil.app", app_id="id-1")
    scenario.attacker.forge_push("id-1", "com.evil.app")
    scenario.system.run()
    result = scenario.attacker.result("com.evil.app")
    return result.ait_step, result.succeeded


ATTACK_RUNNERS = [
    ("Hijacking Installation (FileObserver)", run_hijack_step3),
    ("Hijacking Installation (PIA/manifest)", run_hijack_step4),
    ("Exploiting DM (symlink)", run_dm_symlink),
    ("Attacking Installer Interfaces", run_interface_attack),
]


def run_all():
    return [(name, runner()) for name, runner in ATTACK_RUNNERS]


def test_table1_attack_summary(benchmark, report_sink):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for (name, (step, succeeded)), (paper_name, paper_step) in zip(
        results, PAPER_ROWS
    ):
        rows.append((name, paper_step, str(step.value),
                     "SUCCEEDED" if succeeded else "failed"))
    report_sink("table1_attack_summary", render_table(
        "Table I: summary of AIT problems (paper step vs measured step)",
        ["Attack", "paper AIT step", "measured AIT step", "outcome"],
        rows,
    ))
    for name, (step, succeeded) in results:
        assert succeeded, name
    measured_steps = {step.value for _name, (step, _s) in results}
    assert measured_steps == {1, 2, 3, 4}  # every AIT step is broken
