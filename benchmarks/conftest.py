"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
printing a paper-vs-measured comparison and writing it to
``benchmarks/results/<name>.txt``.  Benchmarks use seeded generators,
so the numbers are exactly reproducible.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.corpus import generate_play_corpus, generate_preinstalled_corpus
from repro.analysis.factory_images import generate_fleet
from repro.analysis.platform_keys import generate_appstore_catalogs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def play_corpus():
    """The 12,750-app Google Play corpus."""
    return generate_play_corpus(seed=2016)


@pytest.fixture(scope="session")
def preinstalled_corpus():
    """The 1,613-unique-app pre-installed corpus."""
    return generate_preinstalled_corpus(seed=2016)


@pytest.fixture(scope="session")
def fleet():
    """The 1,855-image factory fleet."""
    return generate_fleet(seed=2016)


@pytest.fixture(scope="session")
def catalogs():
    """The 1.2M-app, 33-store signature corpus."""
    return generate_appstore_catalogs(seed=2016)


@pytest.fixture(scope="session")
def report_sink():
    """Callable that persists a rendered report and echoes it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return sink
