"""Table VII: defense effectiveness & complexity.

Runs every Step-3/Step-1 attack against every defense and reports the
outcome, plus the line-of-code count of each defense module (the
paper's complexity column: DAPP 127, FUSE DAC 156, Intent detection 61,
Intent origin 82 LOC of Java/C — ours is Python, so counts differ but
stay the same order of magnitude).
"""

import pathlib

from repro.android.apk import ApkBuilder
from repro.android.app import App
from repro.android.intents import Intent
from repro.android.signing import SigningKey
from repro.attacks.base import fingerprint_for
from repro.attacks.redirect_intent import RedirectIntentAttacker
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller, DTIgniteInstaller, GooglePlayInstaller
from repro.measurement.report import render_table
from repro.sim.clock import seconds

DEFENSES_DIR = pathlib.Path(__file__).parent.parent / "src" / "repro" / "defenses"

PAPER_LOC = {
    "dapp": ("User-level app (DAPP)", "Installation Hijacking", "3,4", 127),
    "fuse_dac": ("FUSE DAC scheme", "Installation Hijacking", "3,4", 156),
    "intent_detection": ("Intent Detection scheme", "Redirect Intent", "1", 61),
    "intent_origin": ("Intent origin scheme", "Redirect Intent", "1", 82),
}


def count_loc(path: pathlib.Path) -> int:
    """Non-blank, non-comment, non-docstring lines of code."""
    lines = path.read_text().splitlines()
    loc = 0
    in_doc = False
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if in_doc:
            if line.endswith('"""') or line.endswith("'''"):
                in_doc = False
            continue
        if line.startswith(('"""', "'''")):
            if not (len(line) > 3 and line.endswith(('"""', "'''"))):
                in_doc = True
            continue
        loc += 1
    return loc


def hijack_outcome(installer_cls, attacker_cls, defenses):
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: attacker_cls(fingerprint_for(installer_cls)),
        defenses=defenses,
    )
    scenario.publish_app("com.victim.app")
    outcome = scenario.run_install("com.victim.app")
    detected = any(report.detected for report in scenario.defense_reports())
    prevented = any(report.prevented for report in scenario.defense_reports())
    return outcome.hijacked, detected, prevented


class _Victim(App):
    package = "com.facebook.katana"

    def redirect(self):
        self.start_activity(
            Intent(target_package="com.android.vending")
            .with_extra("show_package", "com.facebook.orca")
        )


def redirect_outcome(defenses):
    scenario = Scenario.build(
        installer=GooglePlayInstaller,
        attacker_factory=lambda s: RedirectIntentAttacker(
            "com.facebook.katana", "com.android.vending", "com.evil.lookalike"
        ),
        defenses=defenses,
    )
    scenario.publish_app("com.evil.lookalike", label="Messenger")
    scenario.system.install_user_app(
        ApkBuilder("com.facebook.katana").build(SigningKey("fb", "k"))
    )
    victim = _Victim()
    scenario.system.attach(victim)
    scenario.system.ams.bring_to_foreground(victim.package)
    scenario.attacker.arm(seconds(5))
    victim.redirect()
    scenario.system.run()
    succeeded = scenario.attacker.result().succeeded
    detected = any(report.detected for report in scenario.defense_reports())
    origin_known = (
        scenario.system.ams.top_frame().intent.get_intent_origin() is not None
    )
    return succeeded, detected, origin_known


def run_matrix():
    results = {}
    results["dapp"] = hijack_outcome(AmazonInstaller, FileObserverHijacker,
                                     ("dapp",))
    results["fuse_dac"] = hijack_outcome(DTIgniteInstaller, WaitAndSeeHijacker,
                                         ("fuse-dac",))
    results["intent_detection"] = redirect_outcome(("intent-detection",))
    results["intent_origin"] = redirect_outcome(("intent-origin",))
    return results


def test_table7_effectiveness(benchmark, report_sink):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    loc = {
        "dapp": count_loc(DEFENSES_DIR / "dapp.py"),
        "fuse_dac": count_loc(DEFENSES_DIR / "fuse_dac.py"),
        "intent_detection": count_loc(DEFENSES_DIR / "intent_detection.py"),
        "intent_origin": count_loc(DEFENSES_DIR / "intent_origin.py"),
    }
    rows = []
    for key, (strategy, attack, steps, paper_loc) in PAPER_LOC.items():
        rows.append((strategy, attack, steps, paper_loc, loc[key],
                     _verdict(key, results[key])))
    report_sink("table7_effectiveness", render_table(
        "Table VII: effectiveness & complexity",
        ["Strategy", "Tackled Attack", "AIT Step", "paper LOC",
         "our LOC (py)", "measured outcome"],
        rows,
    ))

    # DAPP: hijack proceeds but is detected.
    hijacked, detected, _prevented = results["dapp"]
    assert hijacked and detected
    # FUSE DAC: hijack is outright prevented.
    hijacked, _detected, prevented = results["fuse_dac"]
    assert not hijacked and prevented
    # Intent detection: redirect succeeds (report-only) but is alarmed.
    succeeded, detected, _ = results["intent_detection"]
    assert detected
    # Intent origin: the recipient now knows the sender.
    _s, _d, origin_known = results["intent_origin"]
    assert origin_known
    # Complexity: all defenses stay small (the paper's point).
    assert all(count < 250 for count in loc.values())


def test_table7_hijack_cells_fleet(report_sink):
    """The Table VII hijack cells as sharded fleet campaigns.

    Instead of one install per attack x defense cell, each cell runs a
    multi-install campaign through the engine, turning the paper's
    single-trial outcomes into rates with confidence intervals.
    """
    from repro.engine import CampaignSpec, run_fleet

    cells = [
        ("dapp", CampaignSpec(
            installs=8, installer="amazon", attack="fileobserver",
            defenses=("dapp",), seed=7)),
        ("fuse_dac", CampaignSpec(
            installs=8, installer="dtignite", attack="wait-and-see",
            defenses=("fuse-dac",), seed=7)),
        ("undefended", CampaignSpec(
            installs=8, installer="amazon", attack="fileobserver",
            seed=7)),
    ]
    rows, results = [], {}
    for key, spec in cells:
        report = run_fleet(spec, shards=2, workers=2)
        results[key] = report
        lo, hi = report.hijack_ci
        rows.append((
            key, spec.installer, spec.attack,
            f"{report.stats.hijack_rate:.2f} [{lo:.2f}, {hi:.2f}]",
            report.stats.alarmed_runs, report.stats.blocked_runs,
            report.backend,
        ))
    report_sink("table7_fleet_grid", render_table(
        "Table VII hijack cells via fleet engine (8 installs per cell)",
        ["cell", "installer", "attack", "hijack rate [95% CI]",
         "alarmed runs", "blocked runs", "backend"],
        rows,
    ))
    # DAPP: every hijack proceeds but every run raises an alarm.
    dapp = results["dapp"].stats
    assert dapp.hijack_rate == 1.0 and dapp.alarmed_runs == dapp.runs
    # FUSE DAC: every hijack is prevented.
    fuse = results["fuse_dac"].stats
    assert fuse.hijacks == 0 and fuse.blocked_runs == fuse.runs
    # Undefended baseline: the attack wins every run.
    assert results["undefended"].stats.hijack_rate == 1.0


def _verdict(key, result):
    if key == "dapp":
        return "detected" if result[1] else "missed"
    if key == "fuse_dac":
        return "prevented" if result[2] else "missed"
    if key == "intent_detection":
        return "alarmed" if result[1] else "missed"
    return "origin delivered" if result[2] else "missed"
