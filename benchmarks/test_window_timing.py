"""The TOCTOU window, measured per store (Section III-B quantified).

For each SD-Card installer, instrument one AIT and report the window
the attacker must hit: from the end of the integrity check to the
moment the PMS/PIA reads the file.  The paper's wait-and-see delays
(500 ms for Amazon/Baidu after download completion, 2 s for DTIgnite)
must fall inside the measured windows.
"""

from repro.attacks.base import fingerprint_for
from repro.core.ait import AITStep
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    BaiduInstaller,
    DTIgniteInstaller,
    QihooInstaller,
    TencentInstaller,
    XiaomiInstaller,
)
from repro.measurement.report import render_table

STORES = [AmazonInstaller, XiaomiInstaller, BaiduInstaller, QihooInstaller,
          TencentInstaller, DTIgniteInstaller]

PAPER_DELAYS_MS = {"amazon-appstore": 500, "baidu-appstore": 500,
                   "DTIgnite": 2000}

TARGET = "com.victim.app"


def measure_windows():
    rows = []
    for installer_cls in STORES:
        scenario = Scenario.build(installer=installer_cls)
        scenario.publish_app(TARGET)
        outcome = scenario.run_install(TARGET)
        trace = outcome.trace
        download_end = trace.step_for(AITStep.DOWNLOAD).end_ns
        check_end = trace.step_for(AITStep.TRIGGER).end_ns
        install_start = trace.step_for(AITStep.INSTALL).start_ns
        window_open_ms = (check_end - download_end) / 1e6
        window_close_ms = (install_start - download_end) / 1e6
        fingerprint = fingerprint_for(installer_cls)
        derived_ms = fingerprint.wait_and_see_delay_ns / 1e6
        rows.append((
            installer_cls.profile.label,
            f"{window_open_ms:.0f} ms",
            f"{window_close_ms:.0f} ms",
            f"{derived_ms:.0f} ms",
            f"{PAPER_DELAYS_MS.get(installer_cls.profile.label, '-')}",
        ))
    return rows


def test_window_timing(benchmark, report_sink):
    rows = benchmark.pedantic(measure_windows, rounds=1, iterations=1)
    report_sink("window_timing", render_table(
        "The Step-3 TOCTOU window per store (after download completion)",
        ["installer", "window opens (check ends)", "window closes (install)",
         "derived wait-and-see delay", "paper delay"],
        rows,
    ))
    by_store = {row[0]: row for row in rows}
    for label, paper_ms in PAPER_DELAYS_MS.items():
        opens = float(by_store[label][1].split()[0])
        closes = float(by_store[label][2].split()[0])
        # The paper's measured replacement delay lies inside our window.
        assert opens < paper_ms < closes, (label, opens, paper_ms, closes)
    # Every derived delay falls inside its own window.
    for row in rows:
        opens = float(row[1].split()[0])
        closes = float(row[2].split()[0])
        derived = float(row[3].split()[0])
        assert opens <= derived <= closes, row
