"""Table V: impact of vulnerable pre-installed installers.

Joins the factory-image fleet against the named vulnerable installers;
the paper's qualitative rows (which carriers and vendors ship which
installer) must hold.
"""

from repro.analysis.factory_images import (
    AMAZON_PKG,
    DTIGNITE_PKG,
    HUAWEI_STORE_PKG,
    SPRINTZONE_PKG,
    XIAOMI_STORE_PKG,
)
from repro.measurement.report import render_table5
from repro.measurement.tables import compute_table5


def test_table5_impact(benchmark, fleet, report_sink):
    table = benchmark.pedantic(
        lambda: compute_table5(fleet), rounds=1, iterations=1
    )
    text = render_table5(table)
    text += (
        "\npaper: Amazon on Verizon/US-Cellular Samsung devices; DTIgnite "
        "on 20+ carriers; Xiaomi/Huawei stores on all their devices; "
        "SprintZone on Sprint devices"
    )
    report_sink("table5_impact", text)

    amazon = table.row_for(AMAZON_PKG)
    assert set(amazon.carriers) == {"verizon", "uscellular"}
    assert amazon.vendors == ("samsung",)

    dtignite = table.row_for(DTIGNITE_PKG)
    assert dtignite.image_count >= 500        # 'hundreds of millions of users'
    assert len(dtignite.carriers) >= 8

    xiaomi = table.row_for(XIAOMI_STORE_PKG)
    assert xiaomi.image_count == 382          # all Xiaomi devices
    huawei = table.row_for(HUAWEI_STORE_PKG)
    assert huawei.image_count == 234          # all Huawei devices

    sprint = table.row_for(SPRINTZONE_PKG)
    assert sprint.carriers == ("sprint",)
