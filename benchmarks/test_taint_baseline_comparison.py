"""Section IV-A methodology: the failed Flowdroid approach vs the
paper's simple classifier.

The paper tried a 43-app pilot with a Flowdroid-based information-flow
tool: 14% died to incomplete CFGs, 14% to untrackable
``handleMessage`` flows, 42% to tool bugs — only ~30% analyzable.  The
marker + def-use classifier handles 100% of the same sample.  This
benchmark rebuilds that pilot: a 43-app sample drawn from the corpus
with the paper's failure mix, both tools run over it.
"""

from repro.analysis.classifier import Category, InstallerClassifier
from repro.analysis.corpus import GroundTruth, generate_play_corpus
from repro.analysis.taint_baseline import (
    TaintAnalysisBaseline,
    TaintOutcome,
    yield_rate,
)
from repro.measurement.report import render_table

SAMPLE_SIZE = 43
PAPER_MIX = {
    TaintOutcome.INCOMPLETE_CFG: 6,     # 14%
    TaintOutcome.HANDLER_UNTRACKED: 6,  # 14%
    TaintOutcome.TOOL_BUG: 18,          # 42%
    TaintOutcome.ANALYZED: 13,          # ~30%
}


def draw_pilot_sample():
    """Pick 43 installer apps reproducing the paper's failure mix."""
    corpus = generate_play_corpus(seed=2016)
    tool = TaintAnalysisBaseline()
    quotas = dict(PAPER_MIX)
    sample = []
    for app in corpus:
        if not app.truth.is_installer:
            continue
        outcome = tool.analyze(app).outcome
        if quotas.get(outcome, 0) > 0:
            quotas[outcome] -= 1
            sample.append(app)
        if len(sample) == SAMPLE_SIZE:
            break
    return sample


def run_pilot():
    sample = draw_pilot_sample()
    taint_tool = TaintAnalysisBaseline()
    taint_results = taint_tool.analyze_sample(sample)
    classifier = InstallerClassifier()
    classifier_results = classifier.classify_corpus(sample)
    classified = sum(
        1 for result in classifier_results.results
        if result.category is not Category.NOT_AN_INSTALLER
    )
    return taint_results, classified, len(sample)


def test_taint_baseline_comparison(benchmark, report_sink):
    taint_results, classified, total = benchmark.pedantic(
        run_pilot, rounds=1, iterations=1
    )
    counts = {}
    for result in taint_results:
        counts[result.outcome] = counts.get(result.outcome, 0) + 1
    rows = [
        ("incomplete control-flow graph",
         f"{counts.get(TaintOutcome.INCOMPLETE_CFG, 0)}/{total}", "14%"),
        ("handleMessage untracked",
         f"{counts.get(TaintOutcome.HANDLER_UNTRACKED, 0)}/{total}", "14%"),
        ("tool bugs",
         f"{counts.get(TaintOutcome.TOOL_BUG, 0)}/{total}", "42%"),
        ("analyzed successfully",
         f"{counts.get(TaintOutcome.ANALYZED, 0)}/{total}", "~30%"),
        ("simple classifier (marker + def-use)",
         f"{classified}/{total}", "100%"),
    ]
    report_sink("taint_baseline_comparison", render_table(
        "Section IV-A: Flowdroid-style pilot (43 apps) vs the paper's tool",
        ["outcome", "measured", "paper"],
        rows,
    ))
    assert counts[TaintOutcome.INCOMPLETE_CFG] == 6
    assert counts[TaintOutcome.HANDLER_UNTRACKED] == 6
    assert counts[TaintOutcome.TOOL_BUG] == 18
    assert counts[TaintOutcome.ANALYZED] == 13
    assert yield_rate(taint_results) < 0.35
    assert classified == total  # the simple tool covers every sample app
