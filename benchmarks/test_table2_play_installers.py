"""Table II: potentially vulnerable Google Play apps (SD-Card usage).

Runs the installer classifier over the 12,750-app synthetic Play corpus
and compares the breakdown with the paper's numbers.
"""

from repro.measurement.report import render_installer_breakdown
from repro.measurement.tables import compute_table2

PAPER = {
    "vulnerable": 779,
    "secure": 152,
    "installers": 1493,
    "vulnerable_share_excl": 0.837,
    "secure_share_excl": 0.163,
    "vulnerable_share_incl": 0.522,
    "secure_share_incl": 0.102,
    "write_external": 8721,
}


def test_table2_play_installers(benchmark, play_corpus, report_sink):
    table = benchmark.pedantic(
        lambda: compute_table2(play_corpus), rounds=1, iterations=1
    )
    text = render_installer_breakdown(
        "Table II: potentially vulnerable GooglePlay apps (measured)", table
    )
    text += (
        f"\npaper: 779/931 (83.7%) SD-Card, 152/931 (16.3%) internal; "
        f"including unknown 52.2% / 10.2%; WRITE_EXTERNAL 8721/12750"
    )
    report_sink("table2_play_installers", text)

    assert table.vulnerable == PAPER["vulnerable"]
    assert table.secure == PAPER["secure"]
    assert table.installers == PAPER["installers"]
    assert abs(table.vulnerable_share_excluding_unknown
               - PAPER["vulnerable_share_excl"]) < 0.001
    assert abs(table.vulnerable_share_including_unknown
               - PAPER["vulnerable_share_incl"]) < 0.001
    assert table.write_external == PAPER["write_external"]
