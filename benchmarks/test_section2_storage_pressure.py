"""Section II: why installers choose the SD-Card (storage economics).

Reproduces the paper's motivation numbers: internal-storage installs
need ~2x the APK's size, so a 1.6 GB game cannot install internally on
a Galaxy J5 with 2.5 GB free — while SD-Card staging succeeds.  The
toolkit installer's storage chooser enacts the same decision, and a
real (small-scale) install on a squeezed simulated device shows the
fallback working end to end.
"""

from repro.android import device
from repro.android.storage import GB, MB, StorageVolume
from repro.core.scenario import Scenario
from repro.measurement.report import render_table
from repro.toolkit.secure_installer import ToolkitInstaller
from repro.toolkit.storage_chooser import StorageChoice, choose_storage

CASES = [
    ("Galaxy J5 (2.5 GB free) + 1.6 GB game", int(2.5 * GB), int(1.6 * GB)),
    ("Galaxy J2 8GB (1.5 GB free) + 800 MB app", int(1.5 * GB), 800 * MB),
    ("Galaxy S7 (20 GB free) + 1.6 GB game", 20 * GB, int(1.6 * GB)),
    ("Nexus 5 (11 GB free) + 50 MB app", 11 * GB, 50 * MB),
]


def run_decisions():
    rows = []
    for label, free_bytes, apk_bytes in CASES:
        volume = StorageVolume("internal", free_bytes, used_bytes=0)
        decision = choose_storage(volume, apk_bytes)
        rows.append((
            label,
            f"{decision.required_internal_bytes / GB:.2f} GB",
            f"{decision.free_internal_bytes / GB:.2f} GB",
            decision.choice.value,
        ))
    return rows


def run_end_to_end_fallback():
    """A squeezed device actually falls back and still installs."""
    scenario = Scenario.build(installer=ToolkitInstaller())
    volume = scenario.system.internal_volume
    volume.charge(volume.free_bytes - 10 * MB)
    scenario.publish_app("com.big.game", label="Big Game", size_bytes=2 * MB)
    outcome = scenario.run_install("com.big.game")
    return scenario.installer.decisions[-1], outcome


def test_section2_storage_pressure(benchmark, report_sink):
    rows, (decision, outcome) = benchmark.pedantic(
        lambda: (run_decisions(), run_end_to_end_fallback()),
        rounds=1, iterations=1,
    )
    text = render_table(
        "Section II: internal-vs-SD-Card decision (2x space requirement)",
        ["device + app", "needed internally", "free internally", "choice"],
        rows,
    )
    text += (
        "\npaper: 'if the Amazon appstore used the internal storage to "
        "install Gabriel-Knight (1.6GB), the attempt would not succeed "
        "on a Galaxy J5 (2.5GB left)'"
        f"\nend-to-end fallback on a squeezed device: staged "
        f"{decision.choice.value}, installed={outcome.installed}"
    )
    report_sink("section2_storage_pressure", text)

    decisions = {row[0]: row[3] for row in rows}
    assert decisions["Galaxy J5 (2.5 GB free) + 1.6 GB game"] == "external"
    assert decisions["Galaxy J2 8GB (1.5 GB free) + 800 MB app"] == "external"
    assert decisions["Galaxy S7 (20 GB free) + 1.6 GB game"] == "internal"
    assert decisions["Nexus 5 (11 GB free) + 50 MB app"] == "internal"
    assert decision.choice is StorageChoice.EXTERNAL
    assert outcome.clean_install


def test_internal_install_fails_outright_without_chooser(benchmark,
                                                         report_sink):
    """A fixed-internal installer on a full device simply fails —
    the compatibility pressure that created the SD-Card ecosystem."""
    from repro.installers import SecureInternalInstaller

    def run():
        scenario = Scenario.build(installer=SecureInternalInstaller)
        volume = scenario.system.internal_volume
        volume.charge(volume.free_bytes - 1 * MB)
        scenario.publish_app("com.big.game", size_bytes=2 * MB)
        return scenario.run_install("com.big.game")

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink("section2_internal_failure", (
        "Fixed internal-storage installer on a space-starved device:\n"
        f"installed={outcome.installed}, error={outcome.error}"
    ))
    assert not outcome.installed
    assert outcome.error is not None
