"""Table IX: Intent detection scheme performance.

The paper compared the time spent inside the modified
IntentFirewall.checkIntent logic to the total Intent delivery time:
0.30% on average.  We measure our inspector the same way: wall-clock of
the detection logic per Intent versus wall-clock of a full
startActivity delivery through the AMS.
"""

import time

from repro.android.ams import ActivityManagerService
from repro.android.device import nexus5
from repro.android.filesystem import Caller
from repro.android.intent_firewall import IntentRecord
from repro.android.intents import Intent
from repro.android.system import AndroidSystem
from repro.defenses.intent_detection import IntentDetectionScheme
from repro.measurement.report import render_table

ROUNDS = 50
SENDER = Caller(uid=10001, package="com.sender")


def timed_total_delivery(system) -> float:
    """Average wall time of one full startActivity delivery."""
    system.ams.register_app("com.recipient")
    start = time.perf_counter()
    for _ in range(ROUNDS):
        system.ams.start_activity(SENDER, Intent(target_package="com.recipient"))
        system.run()
    return (time.perf_counter() - start) / ROUNDS


def timed_logic(scheme) -> float:
    """Average wall time of the detection logic alone."""
    records = [
        IntentRecord(
            intent=Intent(target_package="com.recipient"),
            sender_package=f"com.sender{index % 7}",
            sender_uid=10001 + index % 7,
            sender_is_system=False,
            recipient_package="com.recipient",
            delivery_time_ns=index * 2_000_000_000,
        )
        for index in range(ROUNDS)
    ]
    start = time.perf_counter()
    for record in records:
        scheme.inspect(record)
    return (time.perf_counter() - start) / ROUNDS


def test_table9_intent_detection_perf(benchmark, report_sink):
    system = AndroidSystem(nexus5())
    scheme = IntentDetectionScheme().install(system.firewall)
    total = timed_total_delivery(system)
    logic = timed_logic(IntentDetectionScheme())
    benchmark(lambda: scheme.inspect(IntentRecord(
        intent=Intent(target_package="com.recipient"),
        sender_package="com.sender",
        sender_uid=10001,
        sender_is_system=False,
        recipient_package="com.recipient",
        delivery_time_ns=0,
    )))
    fraction = logic / total
    rows = [(
        f"{total * 1e9:.0f} ns", f"{logic * 1e9:.0f} ns",
        f"{fraction * 100:.2f}%", "0.30%",
    )]
    text = render_table(
        "Table IX: Intent detection scheme performance (50 deliveries)",
        ["total delivery", "our logic", "percentage (measured)",
         "percentage (paper)"],
        rows,
    )
    text += (
        "\nnote: the simulated delivery path is ~1000x cheaper than a real "
        "binder IPC (paper total ~4.8 ms), which inflates the percentage; "
        "the absolute logic cost (hundreds of ns) matches the paper's "
        "'negligible' claim."
    )
    report_sink("table9_intent_detection_perf", text)
    # The claim: the inspection logic is a negligible share of delivery —
    # negligible in absolute terms, and a small share even of our
    # ultra-cheap simulated delivery.
    assert logic < 5e-6
    assert fraction < 0.25
