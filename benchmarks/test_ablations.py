"""Ablations of the design choices DESIGN.md calls out.

1. Intent-detection threshold vs attacker firing delay (the paper picks
   1 s; the attacker needs 200-500 ms to replace the screen unnoticed).
2. Attacker fingerprint accuracy: an off-by-N CLOSE_NOWRITE count
   corrupts the file before the check and loses the reliable window.
3. FUSE DAC without the handle_rename/APK-list guard: the wait-and-see
   attacker's *move* bypasses write protection entirely.
4. DAPP without the race heuristics (signature-compare only) still
   detects, but loses the early warning.
"""

from repro.android.apk import ApkBuilder
from repro.android.app import App
from repro.android.filesystem import Caller, Filesystem, Inode
from repro.android.intents import Intent
from repro.android.signing import SigningKey
from repro.attacks.base import StoreFingerprint, fingerprint_for
from repro.attacks.redirect_intent import RedirectIntentAttacker
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.scenario import Scenario
from repro.defenses.fuse_dac import HardenedFuseDaemon
from repro.defenses.intent_detection import IntentDetectionScheme
from repro.installers import AmazonInstaller, DTIgniteInstaller, GooglePlayInstaller
from repro.measurement.report import render_table
from repro.sim.clock import millis, seconds

TARGET = "com.victim.app"


# -- 1. detection threshold vs attacker delay ---------------------------------


class _Victim(App):
    package = "com.facebook.katana"

    def redirect(self):
        self.start_activity(
            Intent(target_package="com.android.vending")
            .with_extra("show_package", "com.facebook.orca")
        )


def redirect_with(threshold_ns, fire_delay_ns):
    scenario = Scenario.build(
        installer=GooglePlayInstaller,
        attacker_factory=lambda s: RedirectIntentAttacker(
            "com.facebook.katana", "com.android.vending", "com.evil.lookalike",
            fire_delay_ns=fire_delay_ns,
        ),
    )
    scheme = IntentDetectionScheme(threshold_ns=threshold_ns)
    scheme.install(scenario.system.firewall)
    scenario.publish_app("com.evil.lookalike", label="Messenger")
    scenario.system.install_user_app(
        ApkBuilder("com.facebook.katana").build(SigningKey("fb", "k"))
    )
    victim = _Victim()
    scenario.system.attach(victim)
    scenario.system.ams.bring_to_foreground(victim.package)
    scenario.attacker.arm(seconds(10))
    victim.redirect()
    scenario.system.run()
    return scheme.detected


def ablation_threshold():
    rows = []
    for fire_delay_ms in (200, 500, 1500):
        for threshold_ms in (300, 1000):
            detected = redirect_with(millis(threshold_ms), millis(fire_delay_ms))
            rows.append((f"{fire_delay_ms} ms", f"{threshold_ms} ms",
                         "detected" if detected else "missed"))
    return rows


def test_ablation_detection_threshold(benchmark, report_sink):
    rows = benchmark.pedantic(ablation_threshold, rounds=1, iterations=1)
    report_sink("ablation_detection_threshold", render_table(
        "Ablation: detection threshold vs attacker firing delay",
        ["attacker delay", "threshold", "outcome"],
        rows,
    ))
    verdicts = {(row[0], row[1]): row[2] for row in rows}
    # The paper's 1 s threshold catches the realistic 200-500 ms window.
    assert verdicts[("200 ms", "1000 ms")] == "detected"
    assert verdicts[("500 ms", "1000 ms")] == "detected"
    # A 300 ms threshold misses the 500 ms attacker: too tight.
    assert verdicts[("500 ms", "300 ms")] == "missed"
    # An attacker slower than the threshold evades — but also loses the
    # unnoticed-replacement property the paper describes.
    assert verdicts[("1500 ms", "1000 ms")] == "missed"


# -- 2. fingerprint accuracy ---------------------------------------------------


def hijack_with_count(count):
    fingerprint = StoreFingerprint(
        watch_dir=AmazonInstaller.profile.download_dir,
        close_nowrite_count=count,
    )
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: FileObserverHijacker(fingerprint),
    )
    scenario.publish_app(TARGET)
    return scenario.run_install(TARGET).hijacked


def ablation_fingerprint():
    return [(count, "hijacked" if hijack_with_count(count) else "failed")
            for count in (5, 6, 7, 8)]


def test_ablation_fingerprint_accuracy(benchmark, report_sink):
    rows = benchmark.pedantic(ablation_fingerprint, rounds=1, iterations=1)
    report_sink("ablation_fingerprint_accuracy", render_table(
        "Ablation: attacker CLOSE_NOWRITE count vs Amazon's actual 7",
        ["assumed count", "outcome"],
        rows,
    ))
    outcomes = dict(rows)
    assert outcomes[7] == "hijacked"      # the paper's measured value
    assert outcomes[5] == "failed"        # too early: corrupts the check
    assert outcomes[6] == "failed"
    # count=8 also lands in a usable window here: the PMS read adds an
    # 8th CLOSE_NOWRITE, but by then installation already committed.
    assert outcomes[8] == "failed"


# -- 3. FUSE DAC without the rename guard ----------------------------------------


class NoRenameGuardDaemon(HardenedFuseDaemon):
    """The defense minus handle_rename: the paper's bypass reopens."""

    def handle_rename(self, fs: Filesystem, caller: Caller, src: str,
                      dst: str) -> None:
        moved = self.apk_list.pop(src, None)
        if moved is not None and dst.endswith(".apk"):
            from repro.defenses.fuse_dac import ApkListEntry
            self.apk_list[dst] = ApkListEntry(path=dst, owner_uid=moved.owner_uid)


def fuse_outcome(daemon_cls):
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: WaitAndSeeHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
    )
    daemon = daemon_cls()
    scenario.system.fs.set_policy("/sdcard", daemon)
    scenario.fuse_dac = daemon
    scenario.publish_app(TARGET)
    return scenario.run_install(TARGET).hijacked


def ablation_rename_guard():
    return [
        ("full FUSE DAC", "hijacked" if fuse_outcome(HardenedFuseDaemon)
         else "prevented"),
        ("without handle_rename guard",
         "hijacked" if fuse_outcome(NoRenameGuardDaemon) else "prevented"),
    ]


def test_ablation_fuse_rename_guard(benchmark, report_sink):
    rows = benchmark.pedantic(ablation_rename_guard, rounds=1, iterations=1)
    report_sink("ablation_fuse_rename_guard", render_table(
        "Ablation: the handle_rename/APK-list guard is load-bearing",
        ["variant", "wait-and-see (move) outcome"],
        rows,
    ))
    outcomes = dict(rows)
    assert outcomes["full FUSE DAC"] == "prevented"
    assert outcomes["without handle_rename guard"] == "hijacked"


# -- 4. DAPP without race heuristics ----------------------------------------------


def dapp_alarm_kinds(enable_heuristics):
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: WaitAndSeeHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
        defenses=("dapp",),
    )
    if not enable_heuristics:
        scenario.dapp.suspicion_window_ns = 0
    scenario.publish_app(TARGET)
    scenario.run_install(TARGET)
    alarms = scenario.dapp.report.alarms
    return {
        "race_heuristic": any("MOVED_TO" in a or "CLOSE_WRITE" in a
                              for a in alarms),
        "signature": any("certificate" in a for a in alarms),
    }


def test_ablation_dapp_window(benchmark, report_sink):
    results = benchmark.pedantic(
        lambda: (dapp_alarm_kinds(True), dapp_alarm_kinds(False)),
        rounds=1, iterations=1,
    )
    with_heuristics, without = results
    rows = [
        ("with race heuristics", with_heuristics["race_heuristic"],
         with_heuristics["signature"]),
        ("signature-compare only", without["race_heuristic"],
         without["signature"]),
    ]
    report_sink("ablation_dapp_window", render_table(
        "Ablation: DAPP race heuristics vs signature compare",
        ["variant", "early race alarm", "install-time signature alarm"],
        rows,
    ))
    assert with_heuristics["race_heuristic"]
    assert with_heuristics["signature"]
    # Even stripped of heuristics, the signature compare still catches
    # the replacement at install time — the defense's last line.
    assert without["signature"]
