"""Tests for the Tencent, SlideMe and Huawei installers.

"We further tested popular appstore apps (Baidu, Tencent, Qihoo360,
SlideMe) and found that all of them are vulnerable." (Section IV-B)
"""

import pytest

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.scenario import Scenario
from repro.installers import (
    HuaweiInstaller,
    SlideMeInstaller,
    TencentInstaller,
)

TARGET = "com.victim.app"


@pytest.mark.parametrize("installer_cls", [
    TencentInstaller, SlideMeInstaller, HuaweiInstaller,
])
def test_benign_install_completes(installer_cls):
    scenario = Scenario.build(installer=installer_cls)
    scenario.publish_app(TARGET, label="Victim")
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install, outcome.error


@pytest.mark.parametrize("installer_cls", [
    TencentInstaller, SlideMeInstaller, HuaweiInstaller,
])
def test_all_are_hijackable(installer_cls):
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(installer_cls)
        ),
    )
    scenario.publish_app(TARGET, label="Victim")
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked, installer_cls.__name__


@pytest.mark.parametrize("installer_cls", [TencentInstaller, HuaweiInstaller])
def test_wait_and_see_also_works(installer_cls):
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: WaitAndSeeHijacker(
            fingerprint_for(installer_cls)
        ),
    )
    scenario.publish_app(TARGET)
    assert scenario.run_install(TARGET).hijacked


def test_slideme_is_a_consent_path_installer():
    """Side-loaded store: no INSTALL_PACKAGES, PIA dialog shown."""
    from repro.android.pia import ConsentUser
    user = ConsentUser()
    scenario = Scenario.build(installer=SlideMeInstaller)
    scenario.publish_app(TARGET, label="Victim")
    outcome = scenario.run_install(TARGET, user=user)
    assert outcome.installed
    assert user.prompts_seen
    assert not scenario.system.pms.check_permission(
        "android.permission.INSTALL_PACKAGES", SlideMeInstaller.profile.package
    )


@pytest.mark.parametrize("installer_cls,defense,expect_hijack", [
    (TencentInstaller, "fuse-dac", False),
    (HuaweiInstaller, "fuse-dac", False),
    (SlideMeInstaller, "dapp", True),   # detection, not prevention
])
def test_defenses_cover_new_stores(installer_cls, defense, expect_hijack):
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(installer_cls)
        ),
        defenses=(defense,),
    )
    scenario.publish_app(TARGET)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked == expect_hijack
    assert scenario.any_defense_reacted


def test_origin_aware_tap_defeats_redirect():
    """Suggestion 4 end to end: origin defense + cautious user."""
    from repro.android.apk import ApkBuilder
    from repro.android.app import App
    from repro.android.intents import Intent
    from repro.android.signing import SigningKey
    from repro.attacks.redirect_intent import RedirectIntentAttacker
    from repro.installers import GooglePlayInstaller
    from repro.sim.clock import seconds

    class Victim(App):
        package = "com.facebook.katana"

        def redirect(self):
            self.start_activity(
                Intent(target_package="com.android.vending")
                .with_extra("show_package", "com.facebook.orca")
            )

    scenario = Scenario.build(
        installer=GooglePlayInstaller,
        attacker_factory=lambda s: RedirectIntentAttacker(
            "com.facebook.katana", "com.android.vending", "com.evil.lookalike"
        ),
        defenses=("intent-origin",),
    )
    scenario.publish_app("com.facebook.orca", label="Messenger")
    scenario.publish_app("com.evil.lookalike", label="Messenger")
    scenario.system.install_user_app(
        ApkBuilder("com.facebook.katana").build(SigningKey("fb", "k"))
    )
    victim = Victim()
    scenario.system.attach(victim)
    scenario.system.ams.bring_to_foreground(victim.package)
    scenario.attacker.arm(seconds(5))
    victim.redirect()
    scenario.system.run()
    # The page was switched, but the origin gives the game away.
    assert scenario.installer.displayed_package == "com.evil.lookalike"
    assert scenario.installer.displayed_origin == scenario.attacker.package
    process = scenario.installer.user_clicks_install_if_trusted(
        trusted_origins={"com.facebook.katana"}
    )
    scenario.system.run()
    assert process is None
    assert not scenario.system.pms.is_installed("com.evil.lookalike")
