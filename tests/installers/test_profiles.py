"""Tests for installer profiles: the paper's per-store fingerprints."""

import pytest

from repro.installers import (
    AmazonInstaller,
    BaiduInstaller,
    DTIgniteInstaller,
    GooglePlayInstaller,
    NaiveSdcardInstaller,
    NewAmazonInstaller,
    QihooInstaller,
    SecureInternalInstaller,
    XiaomiInstaller,
    all_installer_types,
    installer_by_name,
)
from repro.installers.registry import sdcard_installer_names
from repro.errors import ReproError


def test_verify_read_fingerprints_match_paper():
    """Section III-B: 7 for Amazon, 1 for Xiaomi, 2 for Baidu, 3 for Qihoo."""
    assert AmazonInstaller.profile.verify_reads == 7
    assert XiaomiInstaller.profile.verify_reads == 1
    assert BaiduInstaller.profile.verify_reads == 2
    assert QihooInstaller.profile.verify_reads == 3


def test_amazon_randomizes_names():
    assert AmazonInstaller.profile.randomize_names


def test_xiaomi_renames_on_complete():
    assert XiaomiInstaller.profile.rename_on_complete


def test_dtignite_uses_download_manager_to_its_directory():
    assert DTIgniteInstaller.profile.uses_download_manager
    assert DTIgniteInstaller.profile.download_dir == "/sdcard/DTIgnite"


def test_google_play_is_internal_and_world_readable():
    profile = GooglePlayInstaller.profile
    assert not profile.uses_sdcard
    assert profile.world_readable_staging


def test_new_amazon_adds_pms_verification_and_drm():
    assert NewAmazonInstaller.profile.uses_pms_verification
    assert NewAmazonInstaller.profile.drm_self_check
    assert not AmazonInstaller.profile.uses_pms_verification


def test_naive_installer_has_no_checks_and_uses_pia():
    profile = NaiveSdcardInstaller.profile
    assert not profile.verify_hash
    assert not profile.silent


def test_secure_installer_follows_suggestions():
    profile = SecureInternalInstaller.profile
    assert not profile.uses_sdcard
    assert profile.verify_hash
    assert profile.world_readable_staging


def test_all_sdcard_stores_verify_hashes():
    """Leading installers all perform integrity checks (Section V-B)."""
    for cls in (AmazonInstaller, XiaomiInstaller, BaiduInstaller,
                QihooInstaller, DTIgniteInstaller):
        assert cls.profile.verify_hash


def test_registry_lookup():
    assert installer_by_name("amazon") is AmazonInstaller
    assert installer_by_name("dtignite") is DTIgniteInstaller
    with pytest.raises(ReproError):
        installer_by_name("nonexistent")


def test_registry_is_complete():
    assert len(all_installer_types()) == 12


def test_sdcard_installer_names():
    names = sdcard_installer_names()
    assert "amazon" in names
    assert "google-play" not in names


def test_staging_dir_resolution():
    assert AmazonInstaller.profile.staging_dir("/data/data/x") == (
        "/sdcard/amazon-appstore"
    )
    assert GooglePlayInstaller.profile.staging_dir("/data/data/x") == (
        "/data/data/x/staging"
    )
