"""Tests for the AIT engine: download, verify, trigger, install."""

import pytest

from repro.errors import InstallVerificationError
from repro.android.fileobserver import FileObserver
from repro.android.filesystem import FileEventType
from repro.android.pia import ConsentUser
from repro.core.ait import AITStep
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    BaiduInstaller,
    DTIgniteInstaller,
    GooglePlayInstaller,
    NaiveSdcardInstaller,
    NewAmazonInstaller,
    QihooInstaller,
    SecureInternalInstaller,
    XiaomiInstaller,
)

TARGET = "com.victim.app"


def run_clean_install(installer_cls, **kwargs):
    scenario = Scenario.build(installer=installer_cls, **kwargs)
    scenario.publish_app(TARGET, label="Victim")
    outcome = scenario.run_install(TARGET)
    return scenario, outcome


@pytest.mark.parametrize("installer_cls", [
    AmazonInstaller, NewAmazonInstaller, XiaomiInstaller, BaiduInstaller,
    QihooInstaller, DTIgniteInstaller, GooglePlayInstaller,
    SecureInternalInstaller, NaiveSdcardInstaller,
])
def test_benign_ait_completes(installer_cls):
    scenario, outcome = run_clean_install(installer_cls)
    assert outcome.clean_install, outcome.error
    assert outcome.installed_certificate_owner == "legit-developer"


def test_trace_records_all_steps():
    scenario, outcome = run_clean_install(AmazonInstaller)
    steps = [entry.step for entry in outcome.trace.steps]
    assert AITStep.DOWNLOAD in steps
    assert AITStep.TRIGGER in steps
    assert AITStep.INSTALL in steps
    assert outcome.trace.completed


def test_trace_mechanisms_reflect_design():
    _scenario, dm_outcome = run_clean_install(DTIgniteInstaller)
    assert "DownloadManager" in dm_outcome.trace.step_for(AITStep.DOWNLOAD).mechanism
    _scenario, self_outcome = run_clean_install(AmazonInstaller)
    assert "self-download" in self_outcome.trace.step_for(AITStep.DOWNLOAD).mechanism
    assert "sdcard" in self_outcome.trace.step_for(AITStep.DOWNLOAD).mechanism
    _scenario, play_outcome = run_clean_install(GooglePlayInstaller)
    assert "internal" in play_outcome.trace.step_for(AITStep.DOWNLOAD).mechanism


def test_verify_read_count_visible_on_event_stream():
    """The integrity check leaks exactly N CLOSE_NOWRITE events."""
    for installer_cls, expected in ((AmazonInstaller, 7), (BaiduInstaller, 2),
                                    (QihooInstaller, 3)):
        scenario = Scenario.build(installer=installer_cls)
        scenario.publish_app(TARGET)
        observer = FileObserver(scenario.system.hub,
                                installer_cls.profile.download_dir)
        observer.start_watching()
        scenario.run_install(TARGET)
        # PMS adds one final read when it installs the file.
        assert observer.count(FileEventType.CLOSE_NOWRITE) == expected + 1


def test_amazon_randomized_staging_name():
    scenario, outcome = run_clean_install(AmazonInstaller)
    staged = outcome.trace.step_for(AITStep.DOWNLOAD).detail["path"]
    assert TARGET not in staged
    assert staged.endswith(".apk")


def test_xiaomi_rename_emits_moved_to():
    scenario = Scenario.build(installer=XiaomiInstaller)
    scenario.publish_app(TARGET)
    observer = FileObserver(scenario.system.hub,
                            XiaomiInstaller.profile.download_dir)
    observer.start_watching()
    scenario.run_install(TARGET)
    assert observer.count(FileEventType.MOVED_TO) == 1


def test_google_play_stages_world_readable_then_deletes():
    scenario = Scenario.build(installer=GooglePlayInstaller)
    scenario.publish_app(TARGET)
    outcome = scenario.run_install(TARGET)
    staged = outcome.trace.step_for(AITStep.DOWNLOAD).detail["path"]
    assert staged.startswith("/data/data/com.android.vending/")
    assert not scenario.system.fs.exists(staged)  # deleted after install


def test_corrupt_download_fails_closed_without_retry():
    scenario = Scenario.build(installer=NaiveSdcardInstaller)
    listing = scenario.publish_app(TARGET)
    # Host corrupted bytes but keep the published metadata hash: the
    # naive installer performs no check, so this installs garbage-free —
    # use the secure installer to see the failure instead.
    secure = Scenario.build(installer=SecureInternalInstaller)
    secure_listing = secure.publish_app(TARGET)
    corrupted = secure_listing.apk.to_bytes()[:-4] + b"XXXX"
    secure.system.network.host(secure_listing.url, corrupted)
    secure.installer.profile = secure.installer.profile.__class__(
        **{**secure.installer.profile.__dict__, "redownload_on_corrupt": False}
    )
    outcome = secure.run_install(TARGET)
    assert not outcome.installed
    assert "hash mismatch" in outcome.error


def test_pia_installer_prompts_user():
    user = ConsentUser()
    scenario = Scenario.build(installer=NaiveSdcardInstaller)
    scenario.publish_app(TARGET, label="Victim")
    outcome = scenario.run_install(TARGET, user=user)
    assert outcome.installed
    assert user.prompts_seen[0].label == "Victim"


def test_pia_user_decline_aborts_ait():
    user = ConsentUser(decide=lambda prompt: False)
    scenario = Scenario.build(installer=NaiveSdcardInstaller)
    scenario.publish_app(TARGET)
    outcome = scenario.run_install(TARGET, user=user)
    assert not outcome.installed
    assert "declined" in outcome.error


def test_update_flow_replaces_version():
    scenario = Scenario.build(installer=AmazonInstaller)
    scenario.publish_app(TARGET, version=1)
    scenario.run_install(TARGET)
    scenario.publish_app(TARGET, version=2)
    outcome = scenario.run_install(TARGET)
    assert outcome.installed_version == 2


def test_store_ui_displays_requested_app():
    scenario = Scenario.build(installer=AmazonInstaller)
    scenario.publish_app(TARGET)
    from repro.android.intents import Intent
    scenario.system.ams.register_app("com.someone")
    from repro.android.filesystem import Caller
    sender = Caller(uid=10099, package="com.someone")
    scenario.system.ams.start_activity(
        sender,
        Intent(target_package=AmazonInstaller.profile.package)
        .with_extra("show_package", TARGET),
    )
    scenario.system.run()
    assert scenario.installer.displayed_package == TARGET


def test_user_clicks_install_installs_displayed_app():
    scenario = Scenario.build(installer=AmazonInstaller)
    scenario.publish_app(TARGET)
    scenario.installer.displayed_package = TARGET
    scenario.installer.user_clicks_install()
    scenario.system.run()
    assert scenario.system.pms.is_installed(TARGET)
