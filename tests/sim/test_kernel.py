"""Tests for the discrete-event kernel and its process model."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.kernel import Kernel, Sleep, SimEvent, WaitFor


def test_call_later_runs_in_order():
    kernel = Kernel()
    seen = []
    kernel.call_later(20, lambda: seen.append("b"))
    kernel.call_later(10, lambda: seen.append("a"))
    kernel.run()
    assert seen == ["a", "b"]


def test_same_time_events_run_fifo():
    kernel = Kernel()
    seen = []
    for label in "abc":
        kernel.call_later(5, lambda label=label: seen.append(label))
    kernel.run()
    assert seen == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    kernel = Kernel()
    kernel.call_later(1_000, lambda: None)
    kernel.run()
    assert kernel.clock.now_ns == 1_000


def test_cannot_schedule_in_the_past():
    kernel = Kernel()
    kernel.clock.advance_to(100)
    with pytest.raises(SimulationError):
        kernel.call_at(50, lambda: None)


def test_run_until_leaves_future_events_queued():
    kernel = Kernel()
    seen = []
    kernel.call_later(10, lambda: seen.append("early"))
    kernel.call_later(100, lambda: seen.append("late"))
    kernel.run(until_ns=50)
    assert seen == ["early"]
    assert kernel.pending_events() == 1
    assert kernel.clock.now_ns == 50


def test_process_sleep_advances_time():
    kernel = Kernel()

    def proc():
        yield Sleep(500)
        return kernel.clock.now_ns

    assert kernel.run_process(proc()) == 500


def test_process_returns_value():
    kernel = Kernel()

    def proc():
        yield Sleep(1)
        return "result"

    assert kernel.run_process(proc()) == "result"


def test_process_negative_sleep_rejected():
    with pytest.raises(SimulationError):
        Sleep(-5)


def test_process_error_propagates_via_run_process():
    kernel = Kernel()

    def proc():
        yield Sleep(1)
        raise ValueError("app bug")

    with pytest.raises(ValueError, match="app bug"):
        kernel.run_process(proc())


def test_process_error_recorded_in_failures():
    kernel = Kernel()

    def proc():
        yield Sleep(1)
        raise RuntimeError("boom")

    kernel.spawn(proc())
    kernel.run()
    assert len(kernel.failures) == 1
    with pytest.raises(RuntimeError):
        kernel.check_failures()


def test_wait_for_event_receives_value():
    kernel = Kernel()
    event = SimEvent("data-ready")

    def producer():
        yield Sleep(100)
        event.trigger("payload")

    def consumer():
        value = yield WaitFor(event)
        return value

    kernel.spawn(producer())
    proc = kernel.spawn(consumer())
    kernel.run()
    assert proc.result == "payload"


def test_wait_on_already_triggered_event_resumes():
    kernel = Kernel()
    event = SimEvent("done")
    event.trigger(42)

    def consumer():
        value = yield WaitFor(event)
        return value

    assert kernel.run_process(consumer()) == 42


def test_event_double_trigger_rejected():
    event = SimEvent("once")
    event.trigger()
    with pytest.raises(SimulationError):
        event.trigger()


def test_reusable_event_retriggers():
    event = SimEvent("pulse", reusable=True)
    seen = []
    event.add_waiter(seen.append)
    event.trigger(1)
    event.add_waiter(seen.append)
    event.trigger(2)
    assert seen == [1, 2]


def test_process_waiting_forever_raises_deadlock():
    kernel = Kernel()
    event = SimEvent("never")

    def stuck():
        yield WaitFor(event)

    kernel.spawn(stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError, match="stuck-proc"):
        kernel.run()


def test_process_join_another_process():
    kernel = Kernel()

    def child():
        yield Sleep(50)
        return "child-result"

    def parent():
        proc = kernel.spawn(child())
        value = yield proc
        return value

    assert kernel.run_process(parent()) == "child-result"


def test_yield_none_reschedules():
    kernel = Kernel()

    def proc():
        yield None
        return kernel.clock.now_ns

    assert kernel.run_process(proc()) == 0


def test_unsupported_yield_fails_process():
    kernel = Kernel()

    def proc():
        yield "garbage"

    proc_handle = kernel.spawn(proc())
    kernel.run()
    assert isinstance(proc_handle.error, SimulationError)


def test_max_events_guard():
    kernel = Kernel()

    def rescheduler():
        kernel.call_later(0, rescheduler)

    kernel.call_later(0, rescheduler)
    with pytest.raises(SimulationError, match="livelock"):
        kernel.run(max_events=100)


def test_max_events_exact_drain_is_not_livelock():
    # Regression: a run that drains the queue in exactly max_events
    # dispatches used to be misreported as a livelock.
    kernel = Kernel()
    seen = []
    for index in range(5):
        kernel.call_later(index, lambda index=index: seen.append(index))
    kernel.run(max_events=5)
    assert seen == [0, 1, 2, 3, 4]
    assert kernel.pending_events() == 0


def test_max_events_still_raises_when_events_remain():
    kernel = Kernel()
    for index in range(6):
        kernel.call_later(index, lambda: None)
    with pytest.raises(SimulationError, match="livelock"):
        kernel.run(max_events=5)


def test_reusable_event_waiter_added_during_trigger_waits_for_next():
    # Pin the re-arm semantics: a waiter registered from inside a
    # trigger callback belongs to the *next* trigger, not the current
    # one (otherwise a poll loop re-arming itself would recurse).
    event = SimEvent("pulse", reusable=True)
    seen = []

    def first(value):
        seen.append(("first", value))
        event.add_waiter(lambda v: seen.append(("nested", v)))

    event.add_waiter(first)
    event.trigger(1)
    assert seen == [("first", 1)]
    event.trigger(2)
    assert seen == [("first", 1), ("nested", 2)]


def test_reusable_event_untriggered_between_pulses():
    event = SimEvent("pulse", reusable=True)
    event.trigger("x")
    assert event.triggered is False  # re-armed, late waiters must wait
    late = []
    event.add_waiter(late.append)
    assert late == []
    event.trigger("y")
    assert late == ["y"]


def test_oneshot_event_waiter_added_during_trigger_fires_inline():
    # Contrast with the reusable case: a one-shot event stays
    # triggered, so a waiter added during its trigger runs immediately
    # with the already-published value.
    event = SimEvent("done")
    seen = []

    def first(value):
        seen.append(("first", value))
        event.add_waiter(lambda v: seen.append(("nested", v)))

    event.add_waiter(first)
    event.trigger(7)
    assert seen == [("first", 7), ("nested", 7)]


def test_spawn_names_are_generated():
    kernel = Kernel()

    def proc():
        yield Sleep(1)

    handle = kernel.spawn(proc())
    assert handle.name.startswith("proc-")
