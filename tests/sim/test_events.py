"""Tests for the EventHub pub/sub layer."""

from dataclasses import dataclass

import pytest

from repro.sim.events import EventHub, QueueOverflow, WatchLimits
from repro.sim.kernel import Kernel


def make_hub():
    kernel = Kernel()
    return kernel, EventHub(kernel)


@dataclass(frozen=True)
class Payload:
    """Minimal payload carrying the duck-typed coalescing identity."""

    event_type: str
    name: str


def test_publish_reaches_subscriber():
    kernel, hub = make_hub()
    seen = []
    hub.subscribe("topic", seen.append)
    assert hub.publish("topic", "hello") == 1
    kernel.run()
    assert seen == ["hello"]


def test_publish_counts_only_matching_topic():
    kernel, hub = make_hub()
    hub.subscribe("a", lambda _: None)
    assert hub.publish("b", "x") == 0


def test_delivery_is_deferred_not_inline():
    kernel, hub = make_hub()
    seen = []
    hub.subscribe("topic", seen.append)
    hub.publish("topic", 1)
    assert seen == []  # not delivered until the kernel dispatches
    kernel.run()
    assert seen == [1]


def test_subscriber_added_after_publish_misses_event():
    kernel, hub = make_hub()
    seen = []
    hub.publish("topic", "early")
    hub.subscribe("topic", seen.append)
    kernel.run()
    assert seen == []


def test_cancel_stops_delivery():
    kernel, hub = make_hub()
    seen = []
    subscription = hub.subscribe("topic", seen.append)
    subscription.cancel()
    hub.publish("topic", 1)
    kernel.run()
    assert seen == []


def test_cancel_after_publish_but_before_dispatch():
    kernel, hub = make_hub()
    seen = []
    subscription = hub.subscribe("topic", seen.append)
    hub.publish("topic", 1)
    subscription.cancel()
    kernel.run()
    assert seen == []  # late cancellation still suppresses delivery


def test_multiple_subscribers_in_order():
    kernel, hub = make_hub()
    seen = []
    hub.subscribe("topic", lambda value: seen.append(("first", value)))
    hub.subscribe("topic", lambda value: seen.append(("second", value)))
    hub.publish("topic", 9)
    kernel.run()
    assert seen == [("first", 9), ("second", 9)]


def test_delayed_publish():
    kernel, hub = make_hub()
    times = []
    hub.subscribe("topic", lambda _: times.append(kernel.clock.now_ns))
    hub.publish("topic", None, delay_ns=1_000)
    kernel.run()
    assert times == [1_000]


def test_subscriber_count():
    _kernel, hub = make_hub()
    sub1 = hub.subscribe("t", lambda _: None)
    hub.subscribe("t", lambda _: None)
    assert hub.subscriber_count("t") == 2
    sub1.cancel()
    assert hub.subscriber_count("t") == 1


def test_cancel_is_idempotent():
    _kernel, hub = make_hub()
    subscription = hub.subscribe("t", lambda _: None)
    subscription.cancel()
    subscription.cancel()
    assert hub.subscriber_count("t") == 0


# -- bounded (lossy) subscriptions ------------------------------------------


def test_lossless_limits_normalize_to_none():
    _kernel, hub = make_hub()
    sub = hub.subscribe("t", lambda _: None, limits=WatchLimits())
    assert sub.limits is None  # identical to the unlimited path


def test_watch_limits_validation():
    with pytest.raises(ValueError):
        WatchLimits(max_queue_depth=0)
    with pytest.raises(ValueError):
        WatchLimits(drain_interval_ns=-1)


def test_depth_overflow_drops_and_synthesizes_one_sentinel():
    kernel, hub = make_hub()
    seen = []
    sub = hub.subscribe("t", seen.append,
                        limits=WatchLimits(max_queue_depth=2))
    for i in range(5):
        hub.publish("t", Payload("WRITE", f"f{i}"))
    kernel.run()
    overflows = [p for p in seen if isinstance(p, QueueOverflow)]
    events = [p for p in seen if not isinstance(p, QueueOverflow)]
    assert [p.name for p in events] == ["f0", "f1"]
    assert len(overflows) == 1  # one sentinel per congestion episode
    assert overflows[0].dropped == 1  # cumulative count at synthesis time
    assert sub.published == 5
    assert sub.delivered == 2
    assert sub.dropped_overflow == 3
    assert sub.overflows == 1


def test_overflow_latch_rearms_after_full_drain():
    kernel, hub = make_hub()
    seen = []
    hub.subscribe("t", seen.append, limits=WatchLimits(max_queue_depth=1))
    hub.publish("t", Payload("WRITE", "a"))
    hub.publish("t", Payload("WRITE", "b"))  # dropped: first episode
    kernel.run()  # queue fully drains: latch re-arms
    hub.publish("t", Payload("WRITE", "c"))
    hub.publish("t", Payload("WRITE", "d"))  # dropped: second episode
    kernel.run()
    overflows = [p for p in seen if isinstance(p, QueueOverflow)]
    assert len(overflows) == 2


def test_publish_counts_bounded_subscription_even_when_dropping():
    kernel, hub = make_hub()
    hub.subscribe("t", lambda _: None, limits=WatchLimits(max_queue_depth=1))
    assert hub.publish("t", Payload("WRITE", "a")) == 1
    assert hub.publish("t", Payload("WRITE", "b")) == 1  # dropped, still 1


def test_coalescing_drops_duplicates_of_newest_queued():
    kernel, hub = make_hub()
    seen = []
    sub = hub.subscribe(
        "t", seen.append,
        limits=WatchLimits(max_queue_depth=8, coalesce=True))
    hub.publish("t", Payload("WRITE", "a"))
    hub.publish("t", Payload("WRITE", "a"))  # coalesced into the first
    hub.publish("t", Payload("WRITE", "b"))  # different name: kept
    hub.publish("t", Payload("CLOSE", "b"))  # different type: kept
    kernel.run()
    assert [(p.event_type, p.name) for p in seen] == [
        ("WRITE", "a"), ("WRITE", "b"), ("CLOSE", "b")]
    assert sub.dropped_coalesced == 1


def test_coalescing_ignores_payloads_without_event_type():
    kernel, hub = make_hub()
    seen = []
    hub.subscribe("t", seen.append,
                  limits=WatchLimits(max_queue_depth=8, coalesce=True))
    hub.publish("t", "broadcast")
    hub.publish("t", "broadcast")  # no event_type: never coalesced
    kernel.run()
    assert seen == ["broadcast", "broadcast"]


def test_drain_interval_paces_queued_deliveries():
    kernel, hub = make_hub()
    times = []
    hub.subscribe(
        "t", lambda _: times.append(kernel.clock.now_ns),
        limits=WatchLimits(max_queue_depth=8, drain_interval_ns=10))
    for i in range(3):
        hub.publish("t", Payload("WRITE", f"f{i}"))
    kernel.run()
    assert times == [0, 10, 20]  # one delivery per drain interval


def test_drain_pacing_keeps_queue_occupied_across_time():
    kernel, hub = make_hub()
    sub = hub.subscribe(
        "t", lambda _: None,
        limits=WatchLimits(max_queue_depth=2, drain_interval_ns=100))
    hub.publish("t", Payload("WRITE", "a"))
    hub.publish("t", Payload("WRITE", "b"))
    hub.publish("t", Payload("WRITE", "c"))  # queue still full: dropped
    assert sub.pending == 2
    assert sub.dropped_overflow == 1
    kernel.run()
    assert sub.pending == 0


def test_cancel_mid_queue_accounts_dropped_cancelled():
    kernel, hub = make_hub()
    seen = []
    sub = hub.subscribe("t", seen.append,
                        limits=WatchLimits(max_queue_depth=8))
    hub.publish("t", Payload("WRITE", "a"))
    hub.publish("t", Payload("WRITE", "b"))
    sub.cancel()
    kernel.run()
    assert seen == []
    assert sub.dropped_cancelled == 2
    assert sub.delivered + sub.dropped + sub.pending == sub.published


def test_bounded_conservation_invariant_holds_after_drain():
    kernel, hub = make_hub()
    sub = hub.subscribe(
        "t", lambda _: None,
        limits=WatchLimits(max_queue_depth=3, drain_interval_ns=5,
                           coalesce=True))
    for i in range(12):
        hub.publish("t", Payload("WRITE", f"f{i % 2}"))
    kernel.run()
    assert sub.pending == 0
    assert sub.delivered + sub.dropped == sub.published == 12
