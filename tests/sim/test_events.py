"""Tests for the EventHub pub/sub layer."""

from repro.sim.events import EventHub
from repro.sim.kernel import Kernel


def make_hub():
    kernel = Kernel()
    return kernel, EventHub(kernel)


def test_publish_reaches_subscriber():
    kernel, hub = make_hub()
    seen = []
    hub.subscribe("topic", seen.append)
    assert hub.publish("topic", "hello") == 1
    kernel.run()
    assert seen == ["hello"]


def test_publish_counts_only_matching_topic():
    kernel, hub = make_hub()
    hub.subscribe("a", lambda _: None)
    assert hub.publish("b", "x") == 0


def test_delivery_is_deferred_not_inline():
    kernel, hub = make_hub()
    seen = []
    hub.subscribe("topic", seen.append)
    hub.publish("topic", 1)
    assert seen == []  # not delivered until the kernel dispatches
    kernel.run()
    assert seen == [1]


def test_subscriber_added_after_publish_misses_event():
    kernel, hub = make_hub()
    seen = []
    hub.publish("topic", "early")
    hub.subscribe("topic", seen.append)
    kernel.run()
    assert seen == []


def test_cancel_stops_delivery():
    kernel, hub = make_hub()
    seen = []
    subscription = hub.subscribe("topic", seen.append)
    subscription.cancel()
    hub.publish("topic", 1)
    kernel.run()
    assert seen == []


def test_cancel_after_publish_but_before_dispatch():
    kernel, hub = make_hub()
    seen = []
    subscription = hub.subscribe("topic", seen.append)
    hub.publish("topic", 1)
    subscription.cancel()
    kernel.run()
    assert seen == []  # late cancellation still suppresses delivery


def test_multiple_subscribers_in_order():
    kernel, hub = make_hub()
    seen = []
    hub.subscribe("topic", lambda value: seen.append(("first", value)))
    hub.subscribe("topic", lambda value: seen.append(("second", value)))
    hub.publish("topic", 9)
    kernel.run()
    assert seen == [("first", 9), ("second", 9)]


def test_delayed_publish():
    kernel, hub = make_hub()
    times = []
    hub.subscribe("topic", lambda _: times.append(kernel.clock.now_ns))
    hub.publish("topic", None, delay_ns=1_000)
    kernel.run()
    assert times == [1_000]


def test_subscriber_count():
    _kernel, hub = make_hub()
    sub1 = hub.subscribe("t", lambda _: None)
    hub.subscribe("t", lambda _: None)
    assert hub.subscriber_count("t") == 2
    sub1.cancel()
    assert hub.subscriber_count("t") == 1


def test_cancel_is_idempotent():
    _kernel, hub = make_hub()
    subscription = hub.subscribe("t", lambda _: None)
    subscription.cancel()
    subscription.cancel()
    assert hub.subscriber_count("t") == 0
