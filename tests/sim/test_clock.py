"""Tests for the simulated clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import (
    NANOS_PER_MILLI,
    NANOS_PER_SECOND,
    SimClock,
    millis,
    seconds,
)


def test_clock_starts_at_zero():
    assert SimClock().now_ns == 0


def test_clock_custom_start():
    assert SimClock(start_ns=500).now_ns == 500


def test_clock_rejects_negative_start():
    with pytest.raises(SimulationError):
        SimClock(start_ns=-1)


def test_advance_moves_forward():
    clock = SimClock()
    clock.advance_to(1_000)
    assert clock.now_ns == 1_000


def test_advance_to_same_instant_is_allowed():
    clock = SimClock(start_ns=10)
    clock.advance_to(10)
    assert clock.now_ns == 10


def test_advance_backwards_rejected():
    clock = SimClock(start_ns=100)
    with pytest.raises(SimulationError):
        clock.advance_to(99)


def test_now_ms_conversion():
    clock = SimClock(start_ns=2_500_000)
    assert clock.now_ms == pytest.approx(2.5)


def test_millis_helper():
    assert millis(1) == NANOS_PER_MILLI
    assert millis(2.5) == 2_500_000


def test_seconds_helper():
    assert seconds(1) == NANOS_PER_SECOND
    assert seconds(0.001) == NANOS_PER_MILLI


def test_repr_shows_time():
    assert "42" in repr(SimClock(start_ns=42))
