"""Tests for the deterministic RNG wrapper."""

from repro.sim.rand import DeterministicRandom


def test_same_seed_same_sequence():
    first = [DeterministicRandom(7).randint(0, 1000) for _ in range(5)]
    second = [DeterministicRandom(7).randint(0, 1000) for _ in range(5)]
    assert first != []  # sanity
    rng_a, rng_b = DeterministicRandom(7), DeterministicRandom(7)
    assert [rng_a.randint(0, 1000) for _ in range(10)] == [
        rng_b.randint(0, 1000) for _ in range(10)
    ]


def test_different_seeds_differ():
    rng_a, rng_b = DeterministicRandom(1), DeterministicRandom(2)
    assert [rng_a.randint(0, 10**9) for _ in range(5)] != [
        rng_b.randint(0, 10**9) for _ in range(5)
    ]


def test_fork_is_independent_of_parent_consumption():
    parent_a = DeterministicRandom(7)
    child_a = parent_a.fork("x")
    value_a = child_a.randint(0, 10**9)

    parent_b = DeterministicRandom(7)
    parent_b.randint(0, 10**9)  # consume from the parent first
    child_b = parent_b.fork("x")
    value_b = child_b.randint(0, 10**9)
    assert value_a == value_b


def test_fork_labels_produce_distinct_streams():
    parent = DeterministicRandom(7)
    assert parent.fork("a").randint(0, 10**9) != parent.fork("b").randint(0, 10**9)


def test_token_length_and_charset():
    token = DeterministicRandom(3).token(16)
    assert len(token) == 16
    assert token.isalnum()
    assert token == token.lower()


def test_chance_extremes():
    rng = DeterministicRandom(5)
    assert all(rng.chance(1.0) for _ in range(10))
    assert not any(rng.chance(0.0) for _ in range(10))


def test_sample_returns_distinct_elements():
    rng = DeterministicRandom(9)
    picked = rng.sample(range(100), 10)
    assert len(set(picked)) == 10


def test_shuffle_is_permutation():
    rng = DeterministicRandom(11)
    items = list(range(50))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items


def test_weighted_choice_respects_zero_weight():
    rng = DeterministicRandom(13)
    for _ in range(20):
        assert rng.weighted_choice(["a", "b"], [1.0, 0.0]) == "a"


def test_uniform_in_range():
    rng = DeterministicRandom(17)
    for _ in range(50):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_fork_is_stable_across_processes():
    """Regression: fork() must not depend on Python's salted hash().

    The derived child seed is pinned so any drift (e.g. reintroducing
    built-in hash()) fails loudly.
    """
    child = DeterministicRandom(2016).fork("play-corpus")
    assert child.seed == DeterministicRandom(2016).fork("play-corpus").seed
    # Golden value computed from the sha256-based derivation.
    import hashlib
    digest = hashlib.sha256(b"2016:play-corpus").digest()
    expected = int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
    assert child.seed == expected
