"""Integration tests: the paper's headline claims, end to end.

Each test reproduces one sentence-level claim from the paper on the
full simulated stack (device + installer + attacker + defenses).
"""

import pytest

from repro.android import device
from repro.android.apk import ApkBuilder
from repro.android.pia import ConsentUser
from repro.attacks.base import MaliciousApp, fingerprint_for
from repro.attacks.hare import HareAttacker, HareCreatingSystemApp, build_svoice_apk
from repro.attacks.privilege_escalation import (
    VULNERABLE_APP_PACKAGE,
    VulnerableSystemApp,
    VulnerableSystemAppAttacker,
    build_vulnerable_apk,
)
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.campaign import Campaign, benign_workload
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    BaiduInstaller,
    DTIgniteInstaller,
    GooglePlayInstaller,
    NewAmazonInstaller,
    QihooInstaller,
    XiaomiInstaller,
)

TARGET = "com.victim.app"

SDCARD_STORES = [AmazonInstaller, XiaomiInstaller, BaiduInstaller,
                 QihooInstaller, DTIgniteInstaller]


def test_claim_every_sdcard_installer_hijackable_via_fileobserver():
    """'we demonstrate the TOCTOU vulnerability in all installers using
    the SD-Card'"""
    for installer_cls in SDCARD_STORES:
        scenario = Scenario.build(
            installer=installer_cls,
            attacker_factory=lambda s, c=installer_cls: FileObserverHijacker(
                fingerprint_for(c)
            ),
        )
        scenario.publish_app(TARGET)
        assert scenario.run_install(TARGET).hijacked, installer_cls.__name__


def test_claim_wait_and_see_works_without_fileobserver():
    """'this simple wait-and-see strategy works very well'"""
    for installer_cls in (AmazonInstaller, BaiduInstaller, DTIgniteInstaller):
        scenario = Scenario.build(
            installer=installer_cls,
            attacker_factory=lambda s, c=installer_cls: WaitAndSeeHijacker(
                fingerprint_for(c)
            ),
        )
        scenario.publish_app(TARGET)
        assert scenario.run_install(TARGET).hijacked, installer_cls.__name__


def test_claim_dtignite_on_galaxy_s6_verizon():
    """'we successfully attacked DTIgnite ... on Galaxy S6 Edge (Verizon)'"""
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: WaitAndSeeHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
        device=device.galaxy_s6_edge_verizon(),
    )
    scenario.publish_app("com.carrier.bloatware", label="Carrier App")
    outcome = scenario.run_install("com.carrier.bloatware")
    assert outcome.hijacked


def test_claim_attacker_gains_dangerous_permissions_without_consent():
    """'installing any apps, acquiring dangerous-level permissions
    without user's consent'"""
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
    )
    scenario.publish_app(TARGET, uses_permissions=(
        "android.permission.READ_CONTACTS",
    ))
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    # The hijacked package inherited the dangerous grant silently.
    assert scenario.system.pms.check_permission(
        "android.permission.READ_CONTACTS", TARGET
    )


def test_claim_new_amazon_double_verification_defeated():
    """'this version has two hash verification protection in place, one
    by Amazon appstore itself and the other by the PMS' — both defeated."""
    scenario = Scenario.build(
        installer=NewAmazonInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(NewAmazonInstaller)
        ),
    )
    scenario.publish_app(TARGET)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked


def test_claim_pia_phishing_shows_original_name_and_icon():
    """'defeated by embedding within the malicious APK the original
    app's name and icon'"""
    from repro.installers import NaiveSdcardInstaller
    scenario = Scenario.build(
        installer=NaiveSdcardInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(NaiveSdcardInstaller)
        ),
    )
    scenario.publish_app("com.bank.app", label="MyBank")
    user = ConsentUser()
    outcome = scenario.run_install("com.bank.app", user=user)
    assert outcome.hijacked
    assert user.prompts_seen[0].label == "MyBank"  # the user saw the genuine name


def test_claim_full_privilege_escalation_chain():
    """'we ran our malware that stealthily installed vulnerable
    Teamviewer and later exploited it to gain system privileges'"""
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(AmazonInstaller)
        ),
    )
    vuln_apk = build_vulnerable_apk(scenario.system.platform_key)
    scenario.publish_apk(vuln_apk)
    # Stage 1: silent install of the vulnerable platform-signed app.
    outcome = scenario.run_install(VULNERABLE_APP_PACKAGE, arm_attacker=False)
    assert outcome.installed
    vulnerable = VulnerableSystemApp()
    scenario.system.attach(vulnerable)
    # Stage 2: drive its open command interface with system privileges.
    exploiter = VulnerableSystemAppAttacker(package="com.evil.exploiter")
    scenario.system.install_user_app(MaliciousApp.build_apk("com.evil.exploiter"))
    scenario.system.attach(exploiter)
    stage2 = ApkBuilder("com.evil.stage2").payload(b"<x>").build(exploiter.key)
    exploiter.make_dirs("/sdcard/Download")
    exploiter.write_file("/sdcard/Download/s2.apk", stage2.to_bytes())
    exploiter.exploit_install("/sdcard/Download/s2.apk")
    scenario.system.run()
    assert exploiter.result("com.evil.stage2").succeeded


def test_claim_hare_attack_steals_contacts_on_note3():
    """'the attack enables the malicious app to hijack the vlingo
    permissions and use them to steal the user's contacts'"""
    scenario = Scenario.build(installer=AmazonInstaller,
                              device=device.galaxy_note3())
    scenario.publish_apk(build_svoice_apk(scenario.system.platform_key))
    scenario.run_install("com.vlingo.midas", arm_attacker=False)
    svoice = HareCreatingSystemApp()
    scenario.system.attach(svoice)
    scenario.system.install_user_app(HareAttacker.build_hare_apk("com.evil.hare"))
    attacker = HareAttacker(package="com.evil.hare")
    scenario.system.attach(attacker)
    assert attacker.grab_and_steal(svoice).succeeded
    assert attacker.stolen_contacts


def test_claim_defenses_thwart_hijacking():
    """Table VII: FUSE DAC prevents; DAPP detects."""
    for installer_cls in SDCARD_STORES:
        prevented = Scenario.build(
            installer=installer_cls,
            attacker_factory=lambda s, c=installer_cls: FileObserverHijacker(
                fingerprint_for(c)
            ),
            defenses=("fuse-dac",),
        )
        prevented.publish_app(TARGET)
        assert prevented.run_install(TARGET).clean_install, installer_cls

        detected = Scenario.build(
            installer=installer_cls,
            attacker_factory=lambda s, c=installer_cls: FileObserverHijacker(
                fingerprint_for(c)
            ),
            defenses=("dapp",),
        )
        detected.publish_app(TARGET)
        detected.run_install(TARGET)
        assert detected.dapp.detected, installer_cls


def test_claim_no_false_alarms_on_benign_use():
    """Section VI-A: many benign installs, zero false alarms."""
    scenario = Scenario.build(
        installer=AmazonInstaller,
        defenses=("dapp", "fuse-dac", "intent-detection", "intent-origin"),
    )
    packages = benign_workload(scenario, count=40)
    stats = Campaign(scenario).install_many(packages)
    assert stats.clean_installs == 40
    assert stats.alarms == 0
    assert stats.blocked == 0


def test_claim_google_play_design_is_safe():
    """The internal-storage design resists every Step-3 attacker."""
    for attacker_cls in (FileObserverHijacker, WaitAndSeeHijacker):
        scenario = Scenario.build(
            installer=GooglePlayInstaller,
            attacker_factory=lambda s, c=attacker_cls: c(
                fingerprint_for(DTIgniteInstaller)  # watches sdcard in vain
            ),
        )
        scenario.publish_app(TARGET)
        assert scenario.run_install(TARGET).clean_install


def test_claim_hijack_persists_across_updates():
    """Once the first install is hijacked, the device is persistently
    compromised: the attacker's certificate now owns the package, and
    even the genuine store's future updates are rejected by the PMS's
    signature-continuity check."""
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
    )
    scenario.publish_app(TARGET, version=1)
    first = scenario.run_install(TARGET)
    assert first.hijacked
    # The genuine v2 update now fails certificate continuity.
    scenario.attacker.disarm()
    scenario.publish_app(TARGET, version=2)
    second = scenario.run_install(TARGET, arm_attacker=False)
    assert not second.installed or second.installed_version == 1
    installed = scenario.system.pms.require_package(TARGET)
    assert installed.certificate.owner == "gia-attacker"
    assert installed.version_code == 1
