"""Randomized soak test: a long mixed workload must uphold invariants.

One device, one seed-driven stream of installs, updates, attacks and
benign traffic across several stores.  The invariants:

- with FUSE DAC active, no run ends hijacked — ever,
- without defenses, attacked SD-Card installs end hijacked and benign
  runs end clean,
- the package database never holds a package whose certificate is
  neither the developer's nor the attacker's,
- the kernel always drains (no stuck processes, no livelocks).
"""

import pytest

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    BaiduInstaller,
    DTIgniteInstaller,
    TencentInstaller,
    XiaomiInstaller,
)
from repro.sim.rand import DeterministicRandom

STORES = [AmazonInstaller, XiaomiInstaller, BaiduInstaller,
          DTIgniteInstaller, TencentInstaller]


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_soak_undefended(seed):
    rng = DeterministicRandom(seed)
    installer_cls = rng.choice(STORES)
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(installer_cls)
        ),
        seed=seed,
    )
    outcomes = []
    for step in range(20):
        package = f"com.soak.app{step:03d}"
        attacked = rng.chance(0.4)
        if package not in scenario.listings:
            scenario.publish_app(
                package, version=1, size_bytes=1024 + rng.randint(0, 8192)
            )
        if not attacked:
            scenario.attacker.disarm()  # a dormant attacker stays off
        outcome = scenario.run_install(package, arm_attacker=attacked)
        outcomes.append((attacked, outcome))
        if attacked:
            scenario.attacker.rearm()
        assert scenario.system.kernel.pending_events() == 0

    for attacked, outcome in outcomes:
        if attacked:
            assert outcome.hijacked, "armed attacker must win undefended"
        else:
            assert outcome.clean_install, "benign run must stay clean"
    # Certificate closure: only known signers appear on the device.
    for package in scenario.system.package_db.all_packages():
        assert package.certificate.owner in (
            "legit-developer", "gia-attacker", scenario.system.profile.vendor
        )


@pytest.mark.parametrize("seed", [5, 17])
def test_soak_with_fuse_dac(seed):
    rng = DeterministicRandom(seed)
    installer_cls = rng.choice(STORES)
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(installer_cls)
        ),
        defenses=("fuse-dac",),
        seed=seed,
    )
    for step in range(20):
        package = f"com.soak.app{step:03d}"
        scenario.publish_app(package, size_bytes=1024 + rng.randint(0, 4096))
        outcome = scenario.run_install(package,
                                       arm_attacker=rng.chance(0.5))
        scenario.attacker.rearm()
        assert not outcome.hijacked, "FUSE DAC must never lose"
        assert outcome.installed


@pytest.mark.parametrize("seed", [7])
def test_soak_updates_and_reinstalls(seed):
    rng = DeterministicRandom(seed)
    scenario = Scenario.build(installer=AmazonInstaller, seed=seed)
    packages = [f"com.soak.app{i}" for i in range(5)]
    versions = {package: 0 for package in packages}
    for step in range(25):
        package = rng.choice(packages)
        versions[package] += 1
        scenario.publish_app(package, version=versions[package],
                             size_bytes=2048)
        outcome = scenario.run_install(package)
        assert outcome.clean_install
        assert outcome.installed_version == versions[package]
    # UIDs are stable across every update.
    uids = {
        package: scenario.system.pms.require_package(package).uid
        for package in packages
    }
    assert len(set(uids.values())) == len(packages)
