"""Failure-injection tests: flaky networks, corrupted CDNs, dead URLs."""

import pytest

from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller, DTIgniteInstaller

TARGET = "com.victim.app"


def test_self_download_retries_through_flaky_network():
    scenario = Scenario.build(installer=AmazonInstaller)
    listing = scenario.publish_app(TARGET)
    genuine_bytes = listing.apk.to_bytes()
    scenario.system.network.host_flaky(listing.url, genuine_bytes, failures=2)
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install  # max_retries=2 absorbs two drops


def test_self_download_gives_up_after_persistent_failures():
    scenario = Scenario.build(installer=AmazonInstaller)
    listing = scenario.publish_app(TARGET)
    scenario.system.network.host_flaky(listing.url, listing.apk.to_bytes(),
                                       failures=10)
    outcome = scenario.run_install(TARGET)
    assert not outcome.installed
    assert "download" in outcome.error


def test_dm_download_retries_through_flaky_network():
    scenario = Scenario.build(installer=DTIgniteInstaller)
    listing = scenario.publish_app(TARGET)
    scenario.system.network.host_flaky(listing.url, listing.apk.to_bytes(),
                                       failures=1)
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install


def test_dead_url_fails_cleanly():
    scenario = Scenario.build(installer=DTIgniteInstaller)
    listing = scenario.publish_app(TARGET)
    # The CDN entry vanishes entirely.
    scenario.system.network._content.pop(listing.url)
    outcome = scenario.run_install(TARGET)
    assert not outcome.installed
    assert outcome.error is not None


def test_cdn_serving_truncated_apk_is_caught():
    scenario = Scenario.build(installer=AmazonInstaller)
    listing = scenario.publish_app(TARGET)
    truncated = listing.apk.to_bytes()[:-20]
    scenario.system.network.host(listing.url, truncated)
    outcome = scenario.run_install(TARGET)
    # The hash check rejects it every retry; nothing gets installed.
    assert not outcome.installed
    assert not scenario.system.pms.is_installed(TARGET)


def test_cdn_serving_wrong_apk_is_caught():
    scenario = Scenario.build(installer=AmazonInstaller)
    listing = scenario.publish_app(TARGET)
    other = scenario.publish_app("com.other.app")
    scenario.system.network.host(listing.url, other.apk.to_bytes())
    outcome = scenario.run_install(TARGET)
    assert not outcome.installed


def test_flaky_network_then_attack_still_hijacks():
    """Resilience does not accidentally defend: a retried download is
    just another window for the attacker."""
    from repro.attacks.base import fingerprint_for
    from repro.attacks.toctou import FileObserverHijacker
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
    )
    listing = scenario.publish_app(TARGET)
    scenario.system.network.host_flaky(listing.url, listing.apk.to_bytes(),
                                       failures=1)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
