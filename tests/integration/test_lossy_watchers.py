"""End-to-end lossy-watcher claims: the queue-flood attack and its fix.

One seeded campaign, three configurations:

1. Lossy device + ``watcher-flood`` + plain ``dapp`` — the flood keeps
   the bounded watch queue full, the tell-tale swap events drop, and
   every hijack lands *undetected* (drop counters and ``Q_OVERFLOW``
   prove the mechanism in metrics and trace).
2. Same seed + ``dapp-rescan`` — the overflow signal triggers offline
   rescans and every hijack is detected again.
3. Same seed on a *lossless* device — the flood is harmless noise and
   plain DAPP detects everything, pinning that the attack needs the
   bounded queue, not some unrelated DAPP weakness.
"""

from repro.engine import CampaignSpec, run_fleet

SEED = 11
INSTALLS = 4


def _spec(defenses, lossy=True):
    return CampaignSpec(
        installs=INSTALLS,
        installer="amazon",
        attack="watcher-flood",
        defenses=defenses,
        seed=SEED,
        observe=True,
        watch_queue_depth=64 if lossy else None,
    )


def _events(report, name):
    return [r for r in report.trace_records()
            if r.get("type") == "event" and r.get("name") == name]


def test_flood_blinds_plain_dapp_on_a_lossy_device():
    report = run_fleet(_spec(("dapp",)), shards=1, backend="serial")
    stats = report.stats
    assert stats.hijacks == INSTALLS  # every install hijacked...
    assert stats.alarms == 0  # ...and DAPP never noticed
    assert stats.alarmed_runs == 0
    # The mechanism is visible: the queue overflowed and dropped events.
    counters = report.metrics["counters"]
    assert counters["hub/events_dropped"] > 0
    assert counters["hub/queue_overflows"] > 0
    assert _events(report, "hub/q_overflow")  # and it is in the trace


def test_same_seed_with_dapp_rescan_detects_every_hijack():
    report = run_fleet(_spec(("dapp-rescan",)), shards=1, backend="serial")
    stats = report.stats
    assert stats.hijacks == INSTALLS  # rescan detects, it cannot block
    assert stats.alarmed_runs == INSTALLS  # but every one raised alarms
    counters = report.metrics["counters"]
    assert counters["dapp/overflows"] > 0  # degraded mode engaged
    assert _events(report, "defense/rescan_mode")


def test_flood_is_harmless_noise_on_a_lossless_device():
    report = run_fleet(_spec(("dapp",), lossy=False), shards=1,
                       backend="serial")
    stats = report.stats
    assert stats.hijacks > 0
    assert stats.alarmed_runs == stats.hijacks  # plain DAPP sees it all
    counters = report.metrics["counters"]
    assert counters.get("hub/events_dropped", 0) == 0
    assert counters.get("hub/queue_overflows", 0) == 0
