"""Tests for greedy case shrinking."""

from repro.fuzz.gen import FuzzCase, generate_case
from repro.fuzz.shrink import shrink_candidates, shrink_case

BIG = FuzzCase(seed=9, trials=6, installer="tencent", attack="fileobserver",
               defenses=("dapp", "fuse-dac", "intent-origin"),
               device="galaxy-s6", shards=3, base_size_bytes=7777,
               max_extra_permissions=3, chaos="crash:1")


def test_candidates_are_deterministic_and_valid():
    first = list(shrink_candidates(BIG))
    assert first == list(shrink_candidates(BIG))
    assert first  # a big case always has somewhere to go
    for candidate in first:
        candidate.validate()
        assert candidate != BIG


def test_candidates_cover_every_shrink_axis():
    candidates = list(shrink_candidates(BIG))
    assert any(c.trials == 1 for c in candidates)
    assert any(c.shards == 1 and c.chaos is None for c in candidates)
    assert any(len(c.defenses) == 2 for c in candidates)
    assert any(c.max_extra_permissions == 0 for c in candidates)
    assert any(c.base_size_bytes == 512 for c in candidates)
    assert any(c.device == "nexus5" for c in candidates)
    assert any(c.attack == "none" for c in candidates)
    assert any(c.installer == "amazon" for c in candidates)


def test_minimal_case_yields_no_candidates():
    minimal = FuzzCase(seed=1, trials=1, installer="amazon", attack="none",
                       base_size_bytes=512)
    assert list(shrink_candidates(minimal)) == []


def test_shrink_converges_to_a_local_minimum():
    # Failure depends only on the attack being fileobserver: the
    # shrinker should strip everything else.
    def still_fails(case):
        return case.attack == "fileobserver"

    small = shrink_case(BIG, still_fails)
    assert small.attack == "fileobserver"
    assert small.trials == 1
    assert small.shards == 1
    assert small.chaos is None
    assert small.defenses == ()
    assert small.max_extra_permissions == 0
    assert small.base_size_bytes == 512
    assert small.installer == "amazon"
    assert small.device == "nexus5"
    # Local minimum: no single candidate still fails.
    assert not any(still_fails(c) for c in shrink_candidates(small))


def test_shrink_keeps_the_original_when_nothing_reproduces():
    assert shrink_case(BIG, lambda case: False) == BIG


def test_shrink_respects_the_step_budget():
    calls = []

    def expensive(case):
        calls.append(case)
        return True

    shrink_case(BIG, expensive, max_steps=3)
    assert len(calls) == 3


def test_shrink_preserves_defense_dependent_failures():
    def still_fails(case):
        return "fuse-dac" in case.defenses

    small = shrink_case(BIG, still_fails)
    assert small.defenses == ("fuse-dac",)
    assert small.trials == 1


def test_shrinking_generated_cases_never_invalidates():
    for index in range(40):
        case = generate_case(17, index)
        for candidate in shrink_candidates(case):
            candidate.validate()
