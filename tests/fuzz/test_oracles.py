"""Tests for the invariant oracles: each must fire on a seeded defect."""

import copy

import pytest

from repro.fuzz.gen import FuzzCase
from repro.fuzz.oracles import (
    ORACLES,
    FuzzRun,
    check_run,
    check_well_formed,
    oracle_names,
)
from repro.fuzz.runner import execute_case


def _run(case, **kwargs):
    return execute_case(case, **kwargs)


BENIGN = FuzzCase(seed=21, trials=2)
ATTACKED = FuzzCase(seed=21, trials=2, attack="fileobserver",
                    defenses=("fuse-dac",))


def test_all_oracles_green_on_a_clean_run():
    assert check_run(_run(ATTACKED)) == []
    assert check_run(_run(BENIGN)) == []


def test_oracle_names_match_registry_order():
    assert oracle_names() == tuple(ORACLES)
    assert set(oracle_names()) == {
        "determinism", "soundness", "completeness", "conservation",
        "well-formed"}


def test_determinism_oracle_fires_on_a_perturbed_replay():
    run = _run(ATTACKED)
    run.replay = copy.deepcopy(run.replay)
    record = run.replay.shards[0].trace[0]
    key = "t_ns" if "t_ns" in record else "start_ns"
    record[key] += 1
    violations = check_run(run, ["determinism"])
    assert violations and violations[0].oracle == "determinism"
    assert "diverged" in violations[0].message


def test_determinism_oracle_fires_on_diverged_stats():
    run = _run(BENIGN)
    run.replay = copy.deepcopy(run.replay)
    run.replay.stats.runs += 1
    assert any("stats" in v.message
               for v in check_run(run, ["determinism"]))


def test_soundness_oracle_fires_on_phantom_alarms():
    run = _run(BENIGN)
    run.report.stats.alarms += 1
    violations = check_run(run, ["soundness"])
    assert violations and "cry wolf" in violations[0].message


def test_soundness_oracle_ignores_armed_attacks():
    run = _run(FuzzCase(seed=3, trials=1, attack="fileobserver"))
    assert run.report.stats.hijacks == 1  # undefended: the hijack lands
    assert check_run(run, ["soundness"]) == []


def test_soundness_covers_unarmed_attackers():
    run = _run(FuzzCase(seed=3, trials=1, attack="fileobserver",
                        arm_attacker=False))
    assert check_run(run, ["soundness"]) == []
    run.report.stats.hijacks += 1
    assert check_run(run, ["soundness"])


def test_completeness_oracle_fires_on_a_sabotaged_blocker():
    run = _run(ATTACKED, sabotage_defense="fuse-dac")
    violations = check_run(run, ["completeness"])
    assert violations
    assert any("hijack(s) landed" in v.message for v in violations)
    assert any("unblocked" in v.message for v in violations)


def test_completeness_oracle_fires_on_a_sabotaged_detector():
    case = FuzzCase(seed=21, trials=2, attack="fileobserver",
                    defenses=("dapp",))
    assert check_run(_run(case), ["completeness"]) == []
    run = _run(case, sabotage_defense="dapp")
    violations = check_run(run, ["completeness"])
    assert violations and "must be detected" in violations[0].message


def test_conservation_oracle_fires_on_lost_runs():
    run = _run(ATTACKED)
    run.report.stats.runs += 1
    messages = [v.message for v in check_run(run, ["conservation"])]
    assert any("case asked for" in m for m in messages)


def test_conservation_oracle_fires_on_broken_identity():
    run = _run(ATTACKED)
    run.report.stats.clean_installs += 1
    messages = [v.message for v in check_run(run, ["conservation"])]
    assert any("!= installed" in m for m in messages)


def test_conservation_checks_merge_order_invariance():
    run = _run(FuzzCase(seed=4, trials=6, shards=3, attack="fileobserver"))
    assert len(run.report.shards) == 3
    assert check_run(run, ["conservation"]) == []


def test_well_formed_oracle_fires_on_backwards_events():
    run = _run(ATTACKED)
    events = [r for r in run.report.shards[0].trace if r["type"] == "event"]
    assert len(events) >= 2 and events[-2]["t_ns"] > 0
    events[-1]["t_ns"] = 0
    violations = check_well_formed(run)
    assert violations and "goes backwards" in violations[0].message


def test_well_formed_oracle_fires_on_partial_overlap():
    run = _run(BENIGN)
    run.report.shards[0].trace.extend([
        {"type": "span", "name": "ait/a", "start_ns": 0, "end_ns": 10},
        {"type": "span", "name": "ait/b", "start_ns": 5, "end_ns": 15},
    ])
    violations = check_well_formed(run)
    assert violations and "partially overlaps" in violations[0].message


def test_well_formed_oracle_fires_on_inverted_span():
    run = _run(BENIGN)
    run.report.shards[0].trace.append(
        {"type": "span", "name": "ait/x", "start_ns": 10, "end_ns": 3})
    violations = check_well_formed(run)
    assert violations and "invalid interval" in violations[0].message


def test_check_run_rejects_nothing_and_runs_all_by_default():
    run = _run(BENIGN)
    assert check_run(run) == check_run(run, oracle_names())
    with pytest.raises(KeyError):
        check_run(run, ["nonsense"])
