"""The tier-1 corpus replayer: every recorded regression must hold.

Each JSON file under ``tests/fuzz/corpus/`` replays as its own test
case.  ``expect: "pass"`` entries pin fixed bugs (no oracle may fire);
``expect: "fail"`` entries pin oracle power (the named oracle must
still fire on its sabotaged case).
"""

import pytest

from repro.fuzz.corpus import default_corpus_dir, load_corpus, replay_entry

ENTRIES = load_corpus(default_corpus_dir())


def test_corpus_is_seeded():
    # The fuzzing PR ships with an initial corpus; an empty directory
    # means the package data went missing.
    assert len(ENTRIES) >= 3


@pytest.mark.parametrize(
    "path,entry", ENTRIES, ids=[path.name for path, _ in ENTRIES])
def test_corpus_entry_replays(path, entry):
    ok, violations = replay_entry(entry)
    if entry["expect"] == "pass":
        assert ok, (
            f"{path.name} regressed: " + "; ".join(map(str, violations)))
    else:
        assert ok, (
            f"{path.name}: the {entry['oracle']} oracle no longer fires "
            f"on its sabotaged case — the fuzzer has gone blind")
