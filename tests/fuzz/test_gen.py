"""Tests for fuzz case sampling, lowering, and serialization."""

import pytest

from repro.errors import ReproError
from repro.fuzz.gen import (
    FUZZ_ATTACKS,
    FUZZ_DEVICES,
    FUZZ_INSTALLERS,
    PERMISSION_POOL,
    FuzzCase,
    generate_case,
    simplified,
)


def test_generation_is_pure_in_seed_and_index():
    assert generate_case(7, 3) == generate_case(7, 3)
    assert generate_case(7, 3) != generate_case(7, 4)
    assert generate_case(7, 3) != generate_case(8, 3)


def test_generated_cases_draw_from_registries():
    for index in range(50):
        case = generate_case(11, index)
        assert case.installer in FUZZ_INSTALLERS
        assert case.attack in FUZZ_ATTACKS
        assert case.device in FUZZ_DEVICES
        assert 0 <= case.max_extra_permissions < len(PERMISSION_POOL)
        case.validate()  # never raises: valid by construction


def test_one_shot_attacker_never_sharded():
    for index in range(200):
        case = generate_case(13, index)
        if case.attack != "none" and not case.rearm_between:
            assert case.shards == 1


def test_json_round_trip_is_bit_identical():
    for index in range(30):
        case = generate_case(5, index)
        text = case.to_json()
        clone = FuzzCase.from_json(text)
        assert clone == case
        assert clone.to_json() == text


def test_from_json_rejects_unknown_and_missing_fields():
    case = generate_case(5, 0)
    with pytest.raises(ReproError, match="unknown field"):
        FuzzCase.from_json(case.to_json()[:-1] + ',"bogus":1}')
    with pytest.raises(ReproError, match="missing field"):
        FuzzCase.from_json('{"seed":1,"trials":1}')


def test_case_id_is_content_addressed():
    case = generate_case(5, 1)
    assert case.case_id() == FuzzCase.from_json(case.to_json()).case_id()
    assert case.case_id() != generate_case(5, 2).case_id()
    assert len(case.case_id()) == 12


def test_lowering_rejects_degenerate_cases():
    with pytest.raises(ReproError, match="trials >= 1"):
        FuzzCase(seed=1, trials=0).validate()
    with pytest.raises(ReproError, match="shards >= 1"):
        FuzzCase(seed=1, trials=1, shards=0).validate()


def test_lowering_carries_the_case_shape():
    case = FuzzCase(seed=9, trials=4, installer="xiaomi",
                    attack="wait-and-see", defenses=("dapp",),
                    max_extra_permissions=2, poll_interval_ns=5_000_000)
    spec = case.campaign_spec(observe=True)
    assert spec.installs == 4
    assert spec.installer == "xiaomi"
    assert spec.observe
    assert spec.permission_pool == PERMISSION_POOL
    assert spec.poll_interval_ns == 5_000_000


def test_permission_pool_only_attached_when_drawn():
    spec = FuzzCase(seed=9, trials=1).campaign_spec()
    assert spec.permission_pool == ()
    assert spec.max_extra_permissions == 0


def test_simplified_returns_none_for_invalid_changes():
    case = FuzzCase(seed=1, trials=2, attack="fileobserver")
    assert simplified(case, trials=0) is None
    assert simplified(case, rearm_between=False, shards=2) is None
    smaller = simplified(case, trials=1)
    assert smaller is not None and smaller.trials == 1


def test_describe_mentions_the_interesting_knobs():
    case = FuzzCase(seed=1, trials=2, attack="wait-and-see",
                    poll_interval_ns=123, chaos=None, shards=1,
                    arm_attacker=False)
    text = case.describe()
    assert "attack=wait-and-see" in text
    assert "poll=123ns" in text
    assert "unarmed" in text
