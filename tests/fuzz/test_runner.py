"""Tests for the fuzz loop: execution, verdicts, corpus writes, CLI."""

import json

import pytest

from repro.errors import ReproError
from repro.fuzz.corpus import load_corpus, replay_entry
from repro.fuzz.gen import FuzzCase
from repro.fuzz.runner import Fuzzer, execute_case
from repro.obs import MetricsRegistry, TraceRecorder
from repro.__main__ import main


def test_execute_case_runs_twice_for_the_determinism_oracle():
    run = execute_case(FuzzCase(seed=5, trials=2))
    assert run.report is not run.replay
    assert run.report.stats.runs == run.replay.stats.runs == 2


def test_execute_case_only_sabotages_enabled_defenses():
    run = execute_case(FuzzCase(seed=5, trials=1), sabotage_defense="dapp")
    assert run.sabotage_defense == ""  # dapp not enabled: knob is inert


def test_execute_case_force_shards_overrides_the_plan():
    case = FuzzCase(seed=5, trials=4, shards=3, chaos="crash:2")
    run = execute_case(case, force_shards=2)
    assert len(run.report.shards) == 2
    assert run.case.chaos is None
    # ... but never shards a one-shot attacker.
    one_shot = FuzzCase(seed=5, trials=2, attack="fileobserver",
                        rearm_between=False)
    assert len(execute_case(one_shot, force_shards=3).report.shards) == 1


def test_fuzzer_rejects_unknown_oracles_and_budget():
    with pytest.raises(ReproError, match="unknown oracle"):
        Fuzzer(7, oracles=("nonsense",))
    with pytest.raises(ReproError, match="budget"):
        Fuzzer(7).run(0)


def test_clean_session_is_green_and_repeatable():
    first = Fuzzer(7).run(8)
    second = Fuzzer(7).run(8)
    assert first.ok
    assert first.render() == second.render()
    assert [r.case for r in first.results] == [r.case for r in second.results]


def test_session_emits_metrics_and_case_spans():
    recorder, metrics = TraceRecorder(), MetricsRegistry()
    Fuzzer(7, recorder=recorder, metrics=metrics).run(3)
    spans = [r for r in recorder.records() if r["name"] == "fuzz/case"]
    assert [s["start_ns"] for s in spans] == [0, 1, 2]
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["fuzz/cases"] == 3
    assert snapshot["counters"]["fuzz/executions"] == 3


def test_sabotage_session_fails_shrinks_and_writes_corpus(tmp_path):
    report = Fuzzer(7, sabotage_defense="fuse-dac",
                    corpus_dir=tmp_path).run(12)
    assert not report.ok
    failure = report.failures[0]
    assert all(v.oracle == "completeness" for v in failure.violations)
    assert failure.shrunk is not None
    assert failure.shrunk.trials == 1
    assert failure.shrunk.defenses == ("fuse-dac",)
    assert failure.corpus_path is not None and failure.corpus_path.exists()
    entry = json.loads(failure.corpus_path.read_text())
    assert entry["expect"] == "fail"
    assert entry["sabotage"] == "fuse-dac"
    ok, violations = replay_entry(entry)
    assert ok and violations  # the oracle still fires on replay
    assert load_corpus(tmp_path)


def test_cli_fuzz_green_run_exits_zero(capsys):
    assert main(["fuzz", "--seed", "7", "--budget", "4",
                 "--no-corpus"]) == 0
    out = capsys.readouterr().out
    assert "4/4 case(s) green" in out


def test_cli_fuzz_broken_defense_exits_one(tmp_path, capsys):
    code = main(["fuzz", "--seed", "7", "--budget", "11",
                 "--break-defense", "fuse-dac",
                 "--corpus", str(tmp_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "completeness" in out
    assert "shrunk to:" in out
    assert list(tmp_path.glob("completeness-*.json"))


def test_cli_fuzz_oracle_subset_runs_only_those(capsys):
    assert main(["fuzz", "--seed", "7", "--budget", "2", "--no-corpus",
                 "--oracle", "soundness", "--oracle", "well-formed"]) == 0
    assert "oracles=soundness,well-formed" in capsys.readouterr().out
