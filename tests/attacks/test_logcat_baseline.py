"""Tests for the prior-work logcat baseline attack and its limits."""

import pytest

from repro.errors import SecurityException
from repro.android import device
from repro.attacks.logcat_baseline import LogcatConsentReplacer
from repro.core.scenario import Scenario
from repro.installers import DTIgniteInstaller, NaiveSdcardInstaller

TARGET = "com.bank.app"


def build(installer_cls, profile):
    scenario = Scenario.build(
        installer=installer_cls,
        attacker=LogcatConsentReplacer,
        device=profile,
    )
    scenario.publish_app(TARGET, label="MyBank")
    return scenario


def test_baseline_succeeds_on_ics_pia_install():
    """Pre-4.1 + consent dialog: the baseline's one sweet spot."""
    scenario = build(NaiveSdcardInstaller, device.galaxy_s2_ics())
    outcome = scenario.run_install(TARGET)
    assert scenario.attacker.subscribed
    assert outcome.hijacked
    assert scenario.attacker.swaps


def test_baseline_dies_on_android_41_plus():
    """READ_LOGS is system-only from 4.1: the channel is gone."""
    scenario = build(NaiveSdcardInstaller, device.nexus5())
    outcome = scenario.run_install(TARGET)
    assert not scenario.attacker.subscribed
    assert "restricted to system apps" in scenario.attacker.denied_reason
    assert outcome.clean_install


def test_baseline_blind_to_silent_installers():
    """Silent installs never show a dialog: nothing ever hits logcat."""
    scenario = build(DTIgniteInstaller, device.galaxy_s2_ics())
    outcome = scenario.run_install(TARGET)
    assert scenario.attacker.subscribed       # the channel is open...
    assert not scenario.attacker.swaps        # ...but nothing to react to
    assert outcome.clean_install


def test_gia_covers_what_baseline_cannot():
    """The paper's point: GIA needs no logcat and hits silent installs."""
    from repro.attacks.base import fingerprint_for
    from repro.attacks.toctou import FileObserverHijacker
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
        device=device.nexus5(),               # modern build, logcat closed
    )
    scenario.publish_app(TARGET)
    assert scenario.run_install(TARGET).hijacked


def test_logcat_subscription_requires_permission():
    scenario = build(NaiveSdcardInstaller, device.galaxy_s2_ics())
    from repro.android.filesystem import Caller
    nobody = Caller(uid=10099, package="com.nobody")
    with pytest.raises(SecurityException):
        scenario.system.logcat.subscribe(nobody, lambda entry: None)


def test_system_reads_logcat_on_any_build():
    scenario = build(NaiveSdcardInstaller, device.nexus5())
    seen = []
    scenario.system.logcat.subscribe(scenario.system.system_caller, seen.append)
    scenario.system.logcat.log("test", "hello")
    scenario.system.run()
    assert seen and seen[0].message == "hello"


def test_pia_logs_consent_line():
    scenario = build(NaiveSdcardInstaller, device.galaxy_s2_ics())
    scenario.run_install(TARGET, arm_attacker=False)
    lines = [entry.message for entry in scenario.system.logcat.entries]
    assert any("showing consent for com.bank.app" in line for line in lines)
