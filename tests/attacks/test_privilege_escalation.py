"""Tests for privilege escalation via planted vulnerable system apps."""

import pytest

from repro.android.apk import ApkBuilder
from repro.attacks.base import MaliciousApp, fingerprint_for
from repro.attacks.privilege_escalation import (
    VULNERABLE_APP_PACKAGE,
    VulnerableSystemApp,
    VulnerableSystemAppAttacker,
    build_vulnerable_apk,
)
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller

STAGE2 = "com.evil.stage2"


def build_scenario():
    scenario = Scenario.build(installer=AmazonInstaller)
    vuln_apk = build_vulnerable_apk(scenario.system.platform_key)
    scenario.publish_apk(vuln_apk)
    return scenario


def plant_vulnerable_app(scenario):
    outcome = scenario.run_install(VULNERABLE_APP_PACKAGE, arm_attacker=False)
    assert outcome.installed
    app = VulnerableSystemApp()
    scenario.system.attach(app)
    return app


def install_exploiter(scenario):
    scenario.system.install_user_app(
        MaliciousApp.build_apk("com.evil.exploiter"), installer="sideload"
    )
    attacker = VulnerableSystemAppAttacker(package="com.evil.exploiter")
    scenario.system.attach(attacker)
    return attacker


def test_platform_signed_app_gets_install_packages():
    """The single platform key hands out signatureOrSystem permissions."""
    scenario = build_scenario()
    plant_vulnerable_app(scenario)
    assert scenario.system.pms.check_permission(
        "android.permission.INSTALL_PACKAGES", VULNERABLE_APP_PACKAGE
    )


def test_vulnerable_app_installs_attacker_payload():
    scenario = build_scenario()
    app = plant_vulnerable_app(scenario)
    attacker = install_exploiter(scenario)
    payload = (
        ApkBuilder(STAGE2)
        .uses_permission("android.permission.READ_CONTACTS")
        .payload(b"<stage2>")
        .build(attacker.key)
    )
    attacker.make_dirs("/sdcard/Download")
    attacker.write_file("/sdcard/Download/stage2.apk", payload.to_bytes())
    attacker.exploit_install("/sdcard/Download/stage2.apk")
    scenario.system.run()
    assert scenario.system.pms.is_installed(STAGE2)
    assert attacker.result(STAGE2).succeeded
    assert app.executed[0]["op"] == "install"


def test_vulnerable_app_uninstalls_on_command():
    scenario = build_scenario()
    plant_vulnerable_app(scenario)
    attacker = install_exploiter(scenario)
    scenario.publish_app("com.victim.remove")
    scenario.run_install("com.victim.remove", arm_attacker=False)
    attacker.exploit_uninstall("com.victim.remove")
    scenario.system.run()
    assert not scenario.system.pms.is_installed("com.victim.remove")


def test_attacker_alone_cannot_silently_install():
    scenario = build_scenario()
    attacker = install_exploiter(scenario)
    from repro.errors import SecurityException
    payload = ApkBuilder(STAGE2).build(attacker.key)
    attacker.make_dirs("/sdcard/Download")
    attacker.write_file("/sdcard/Download/stage2.apk", payload.to_bytes())
    with pytest.raises(SecurityException):
        scenario.system.pms.install_package(
            "/sdcard/Download/stage2.apk", attacker.caller
        )


def test_full_chain_hijack_then_escalate():
    """The complete paper scenario: GIA plants the app, then exploits it."""
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(AmazonInstaller)
        ),
    )
    scenario.publish_app("com.some.game", label="Game")
    vuln_apk = build_vulnerable_apk(scenario.system.platform_key)

    hijacker = scenario.attacker
    original_forge = hijacker.forge_replacement
    # The hijacker swaps in the *vulnerable platform-signed app's* bytes
    # instead of a repackaged twin... but package continuity matters, so
    # here the realistic chain: hijack installs attacker code, attacker
    # later sideloads the vulnerable app through a consented install.
    outcome = scenario.run_install("com.some.game")
    assert outcome.hijacked  # step 1 of the chain: code on the device
    scenario.publish_apk(vuln_apk)
    outcome2 = scenario.run_install(VULNERABLE_APP_PACKAGE, arm_attacker=False)
    assert outcome2.installed
    assert scenario.system.pms.check_permission(
        "android.permission.INSTALL_PACKAGES", VULNERABLE_APP_PACKAGE
    )
