"""Tests for the Download Manager symlink TOCTOU (Step 2)."""

import pytest

from repro.android.device import nexus5_marshmallow, xiaomi_mi4
from repro.android.download_manager import SymlinkMode
from repro.attacks.dm_symlink import DMSymlinkAttacker
from repro.core.ait import AITStep
from repro.core.scenario import Scenario
from repro.installers import GooglePlayInstaller

SECRET_PATH = "/data/data/com.android.vending/files/tokens.txt"
SECRET = b"SECRET-PLAY-URL-TOKEN"


def build_scenario(device_profile):
    scenario = Scenario.build(
        installer=GooglePlayInstaller,
        attacker=DMSymlinkAttacker,
        device=device_profile,
    )
    system = scenario.system
    system.fs.makedirs("/data/data/com.android.vending/files",
                       system.system_caller)
    system.fs.write_bytes(SECRET_PATH, system.system_caller, SECRET, mode=0o600)
    return scenario


@pytest.mark.parametrize("device_profile,expected_mode", [
    (xiaomi_mi4(), SymlinkMode.LEXICAL),
    (nexus5_marshmallow(), SymlinkMode.CHECK_THEN_USE),
])
def test_steal_internal_file_on_both_android_versions(device_profile,
                                                      expected_mode):
    """Section III-C: verified on Android 4.4 and 6.0."""
    scenario = build_scenario(device_profile)
    assert scenario.system.dm.symlink_mode is expected_mode
    loot = scenario.system.run_process(scenario.attacker.steal_file(SECRET_PATH))
    assert loot.leaked == SECRET
    result = scenario.attacker.result(loot)
    assert result.succeeded
    assert result.ait_step is AITStep.DOWNLOAD


def test_attacker_cannot_read_target_directly():
    scenario = build_scenario(xiaomi_mi4())
    from repro.errors import AccessDenied
    with pytest.raises(AccessDenied):
        scenario.system.fs.read_bytes(SECRET_PATH, scenario.attacker.caller)


def test_dm_database_leak_exposes_urls():
    """Leaking the DM's own database discloses every download URL."""
    scenario = build_scenario(xiaomi_mi4())
    system = scenario.system
    system.network.host("http://secret.example/hidden-token-url", b"x")
    client = scenario.attacker.caller
    system.dm.enqueue(client, "http://secret.example/hidden-token-url",
                      "/sdcard/Download/x.bin")
    system.run()
    loot = system.run_process(
        scenario.attacker.steal_file(system.dm.database_path())
    )
    assert b"hidden-token-url" in loot.leaked


def test_dm_database_deletion_dos():
    """Deleting the DM database: the paper's Google Play DoS."""
    scenario = build_scenario(xiaomi_mi4())
    loot = scenario.system.run_process(
        scenario.attacker.delete_file(scenario.system.dm.database_path())
    )
    assert loot.deleted
    assert scenario.attacker.result(loot).succeeded


def test_six_oh_race_needs_multiple_attempts_sometimes():
    scenario = build_scenario(nexus5_marshmallow())
    loot = scenario.system.run_process(scenario.attacker.steal_file(SECRET_PATH))
    assert loot.leaked == SECRET
    assert loot.attempts >= 1


def test_safe_mode_defeats_the_attack():
    """The post-report fix: resolve-once semantics stop the race."""
    scenario = build_scenario(nexus5_marshmallow())
    scenario.system.dm.symlink_mode = SymlinkMode.SAFE
    loot = scenario.system.run_process(scenario.attacker.steal_file(SECRET_PATH))
    assert loot.leaked is None
    assert not scenario.attacker.result(loot).succeeded


def test_delete_internal_file():
    scenario = build_scenario(xiaomi_mi4())
    loot = scenario.system.run_process(scenario.attacker.delete_file(SECRET_PATH))
    assert loot.deleted
    assert not scenario.system.fs.exists(SECRET_PATH)
