"""Tests for the Amazon JS-bridge and Xiaomi push-forgery attacks (Step 1)."""

import pytest

from repro.attacks.command_injection import (
    AmazonJsInjectionAttacker,
    XiaomiPushForgeryAttacker,
)
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller, XiaomiInstaller
from repro.installers.xiaomi import XIAOMI_PUSH_PERMISSION

PAYLOAD = "com.evil.payload"


def amazon_scenario(sanitized=False):
    scenario = Scenario.build(installer=AmazonInstaller,
                              attacker=AmazonJsInjectionAttacker)
    scenario.installer.js_bridge_sanitized = sanitized
    scenario.publish_app(PAYLOAD, label="Evil")
    return scenario


def xiaomi_scenario(protected=False):
    scenario = Scenario.build(
        installer=XiaomiInstaller(receiver_protected=protected),
        attacker=XiaomiPushForgeryAttacker,
    )
    scenario.publish_app(PAYLOAD, label="Evil", app_id="id-evil")
    return scenario


# -- Amazon ---------------------------------------------------------------------


def test_amazon_js_silent_install():
    scenario = amazon_scenario()
    scenario.attacker.inject_install(PAYLOAD)
    scenario.system.run()
    assert scenario.system.pms.is_installed(PAYLOAD)
    assert scenario.attacker.result(PAYLOAD, expect_installed=True).succeeded


def test_amazon_js_silent_uninstall():
    scenario = amazon_scenario()
    scenario.attacker.inject_install(PAYLOAD)
    scenario.system.run()
    scenario.attacker.inject_uninstall(PAYLOAD)
    scenario.system.run()
    assert not scenario.system.pms.is_installed(PAYLOAD)


def test_amazon_js_private_service_invocation():
    scenario = amazon_scenario()
    scenario.attacker.inject_service_call("com.amazon.internal.BillingService")
    scenario.system.run()
    executed = scenario.installer.js_executions
    assert executed[-1]["service_invoked"] == "com.amazon.internal.BillingService"


def test_amazon_bridge_never_authenticates_origin():
    scenario = amazon_scenario()
    scenario.attacker.inject_install(PAYLOAD)
    scenario.system.run()
    # The Venezia activity executed the script with zero knowledge of
    # who sent it — there is nothing sender-related in the command log.
    assert "sender" not in scenario.installer.js_executions[0]


def test_amazon_sanitized_bridge_drops_script():
    """The paper's reported-and-fixed behaviour."""
    scenario = amazon_scenario(sanitized=True)
    scenario.attacker.inject_install(PAYLOAD)
    scenario.system.run()
    assert not scenario.system.pms.is_installed(PAYLOAD)
    assert scenario.installer.js_executions == []


def test_amazon_malformed_script_ignored():
    scenario = amazon_scenario()
    from repro.android.intents import FLAG_ACTIVITY_SINGLE_TOP, Intent
    from repro.installers.amazon import VENEZIA_JS_EXTRA
    intent = Intent(target_package=AmazonInstaller.profile.package,
                    flags=FLAG_ACTIVITY_SINGLE_TOP)
    intent.with_extra(VENEZIA_JS_EXTRA, "not json {{{")
    scenario.attacker.start_activity(intent)
    scenario.system.run()
    assert scenario.installer.js_executions == []


# -- Xiaomi ----------------------------------------------------------------------


def test_xiaomi_forged_push_installs_silently():
    scenario = xiaomi_scenario()
    reached = scenario.attacker.forge_push("id-evil", PAYLOAD)
    scenario.system.run()
    assert reached == 1
    assert scenario.system.pms.is_installed(PAYLOAD)
    assert scenario.attacker.result(PAYLOAD).succeeded


def test_xiaomi_push_by_package_name_fallback():
    scenario = xiaomi_scenario()
    scenario.attacker.forge_push("wrong-id", PAYLOAD)
    scenario.system.run()
    assert scenario.system.pms.is_installed(PAYLOAD)


def test_xiaomi_push_unknown_app_ignored():
    scenario = xiaomi_scenario()
    scenario.attacker.forge_push("nope", "com.not.published")
    scenario.system.run()
    assert not scenario.system.pms.is_installed("com.not.published")


def test_xiaomi_protected_receiver_blocks_forgery():
    """The paper's fix: guard the receiver with a permission."""
    scenario = xiaomi_scenario(protected=True)
    reached = scenario.attacker.forge_push("id-evil", PAYLOAD)
    scenario.system.run()
    assert reached == 0
    assert not scenario.system.pms.is_installed(PAYLOAD)


def test_xiaomi_legitimate_push_still_works_when_protected():
    scenario = xiaomi_scenario(protected=True)
    from repro.android.filesystem import Caller
    cloud = Caller(uid=10055, package="com.xiaomi.cloud",
                   permissions=frozenset({XIAOMI_PUSH_PERMISSION}))
    import json
    reached = scenario.system.ams.send_broadcast(
        cloud, "com.xiaomi.market.push.RECEIVE",
        {"jsonContent": json.dumps(
            {"type": "app", "appId": "id-evil", "packageName": PAYLOAD}
        )},
    )
    scenario.system.run()
    assert reached == 1
    assert scenario.system.pms.is_installed(PAYLOAD)


def test_xiaomi_malformed_push_ignored():
    scenario = xiaomi_scenario()
    scenario.system.ams.send_broadcast(
        scenario.attacker.caller, "com.xiaomi.market.push.RECEIVE",
        {"jsonContent": "]]]garbage"},
    )
    scenario.system.run()
    assert scenario.installer.push_log == []
