"""Tests for the watcher-flood attack (queue-flood GIA variant)."""

import dataclasses

import pytest

from repro.attacks.base import fingerprint_for
from repro.attacks.watcher_flood import (
    FLOOD_TICK_NS,
    WatcherFloodHijacker,
)
from repro.android.device import nexus5
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller, GooglePlayInstaller
from repro.sim.events import DEFAULT_DRAIN_INTERVAL_NS, WatchLimits

TARGET = "com.victim.app"


def flood_scenario(installer_cls=AmazonInstaller, depth=64, defenses=()):
    device = nexus5()
    if depth is not None:
        device = dataclasses.replace(
            device, watch_limits=WatchLimits(
                max_queue_depth=depth,
                drain_interval_ns=DEFAULT_DRAIN_INTERVAL_NS))
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: WatcherFloodHijacker(
            fingerprint_for(installer_cls)),
        device=device,
        defenses=defenses,
    )
    scenario.publish_app(TARGET, label="Victim")
    return scenario


def test_flood_tick_undercuts_the_default_drain_interval():
    # The blinding argument: refills must outpace the per-event drain,
    # or the sawtooth leaves free slots for the tell-tale events.
    assert FLOOD_TICK_NS < DEFAULT_DRAIN_INTERVAL_NS


def test_flood_hijacks_and_blinds_dapp_on_lossy_device():
    scenario = flood_scenario(defenses=("dapp",))
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    assert not scenario.dapp.report.alarms  # DAPP saw nothing
    assert scenario.attacker.flood_writes > 0
    # DAPP's own watch queue overflowed — that is the mechanism.
    assert any(obs.overflows for obs in scenario.dapp._observers)


def test_flood_still_hijacks_but_is_detected_when_lossless():
    scenario = flood_scenario(depth=None, defenses=("dapp",))
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    assert scenario.dapp.report.alarms  # all noise, no cover


def test_flood_is_vacuous_against_private_staging_stores():
    # Google Play stages in a private directory the attacker cannot
    # even see: no shared watch dir, nothing to flood, no hijack.
    scenario = flood_scenario(installer_cls=GooglePlayInstaller)
    outcome = scenario.run_install(TARGET)
    assert not outcome.hijacked
    assert scenario.attacker.flood_writes == 0
