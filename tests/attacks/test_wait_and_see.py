"""Tests for the wait-and-see hijacking attack (Step 3, no FileObserver)."""

import pytest

from repro.attacks.base import StoreFingerprint, fingerprint_for
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    BaiduInstaller,
    DTIgniteInstaller,
    GooglePlayInstaller,
    XiaomiInstaller,
)
from repro.sim.clock import millis

TARGET = "com.victim.app"


def hijack_scenario(installer_cls, fingerprint=None, defenses=()):
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: WaitAndSeeHijacker(
            fingerprint or fingerprint_for(installer_cls)
        ),
        defenses=defenses,
    )
    scenario.publish_app(TARGET, label="Victim")
    return scenario


@pytest.mark.parametrize("installer_cls", [
    AmazonInstaller, BaiduInstaller, DTIgniteInstaller, XiaomiInstaller,
])
def test_timing_only_attack_hijacks_sdcard_stores(installer_cls):
    scenario = hijack_scenario(installer_cls)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked, outcome


def test_attack_uses_eocd_to_detect_completion():
    scenario = hijack_scenario(DTIgniteInstaller)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    # The swap was a move of a pre-staged twin (MOVED_TO semantics).
    assert scenario.attacker.swaps


def test_wrong_delay_misses_window():
    """Firing way after the PMS read replaces a file nobody installs."""
    late = StoreFingerprint(
        watch_dir=AmazonInstaller.profile.download_dir,
        close_nowrite_count=7,
        wait_and_see_delay_ns=millis(20_000),
    )
    scenario = hijack_scenario(AmazonInstaller, fingerprint=late)
    outcome = scenario.run_install(TARGET)
    assert outcome.installed
    assert not outcome.hijacked


def test_too_early_delay_corrupts_before_check():
    early = StoreFingerprint(
        watch_dir=DTIgniteInstaller.profile.download_dir,
        close_nowrite_count=1,
        wait_and_see_delay_ns=millis(100),  # check runs at ~1s
    )
    scenario = hijack_scenario(DTIgniteInstaller, fingerprint=early)
    outcome = scenario.run_install(TARGET)
    # The swap landed *before* the integrity check: DTIgnite caught the
    # mismatch and re-downloaded transparently.  The one-shot-per-path
    # attacker missed, and the genuine app was installed on the retry.
    assert scenario.attacker.swaps  # the early replacement did happen
    assert not outcome.hijacked
    from repro.core.ait import AITStep
    downloads = [e for e in outcome.trace.steps if e.step is AITStep.DOWNLOAD]
    assert len(downloads) == 2  # the transparent retry the paper notes


def test_google_play_immune():
    scenario = hijack_scenario(
        GooglePlayInstaller,
        fingerprint=StoreFingerprint(watch_dir="/sdcard/Download",
                                     close_nowrite_count=1),
    )
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install


def test_poller_stops_at_deadline():
    scenario = hijack_scenario(AmazonInstaller)
    scenario.attacker.arm(duration_ns=millis(50))
    scenario.system.run()
    assert scenario.system.kernel.pending_events() == 0


def test_replacement_is_a_move_from_stash():
    scenario = hijack_scenario(DTIgniteInstaller)
    scenario.run_install(TARGET)
    assert scenario.attacker.swaps == ["/sdcard/DTIgnite/com.victim.app.apk"]
    # The stash directory was used for the pre-stored twin.
    assert scenario.system.fs.exists(scenario.attacker.stash_dir)
