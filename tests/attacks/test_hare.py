"""Tests for Hare permission grabbing (Section III-B escalation)."""

import pytest

from repro.errors import SecurityException
from repro.android.device import galaxy_note3
from repro.attacks.hare import (
    HareAttacker,
    HareCreatingSystemApp,
    SVOICE_PACKAGE,
    VLINGO_READ,
    build_svoice_apk,
)
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller


def build_scenario():
    scenario = Scenario.build(installer=AmazonInstaller, device=galaxy_note3())
    svoice_apk = build_svoice_apk(scenario.system.platform_key)
    scenario.publish_apk(svoice_apk)
    outcome = scenario.run_install(SVOICE_PACKAGE, arm_attacker=False)
    assert outcome.installed
    svoice = HareCreatingSystemApp()
    scenario.system.attach(svoice)
    return scenario, svoice


def test_vlingo_permission_is_a_hare():
    scenario, _svoice = build_scenario()
    assert not scenario.system.permission_registry.is_defined(VLINGO_READ)
    hares = scenario.system.permission_registry.hares([VLINGO_READ])
    assert hares == [VLINGO_READ]


def test_contacts_guarded_against_normal_apps():
    scenario, svoice = build_scenario()
    from repro.attacks.base import MaliciousApp
    scenario.system.install_user_app(MaliciousApp.build_apk("com.plain.app"))
    with pytest.raises(SecurityException):
        svoice.query_contacts("com.plain.app")


def test_malware_defines_hare_and_steals_contacts():
    scenario, svoice = build_scenario()
    hare_apk = HareAttacker.build_hare_apk("com.evil.hare")
    scenario.system.install_user_app(hare_apk)
    attacker = HareAttacker(package="com.evil.hare")
    scenario.system.attach(attacker)
    result = attacker.grab_and_steal(svoice)
    assert result.succeeded
    assert len(attacker.stolen_contacts) == 3
    # The malware now *owns* the permission definition.
    definition = scenario.system.permission_registry.require(VLINGO_READ)
    assert definition.defined_by == "com.evil.hare"


def test_grab_fails_when_permission_already_defined():
    """On images where a legitimate app defines it, the Hare is closed."""
    scenario, svoice = build_scenario()
    from repro.android.apk import ApkBuilder
    legitimate_definer = (
        ApkBuilder("com.samsung.permissionpack")
        .defines_permission(VLINGO_READ, level="signature")
        .build(scenario.system.platform_key)
    )
    scenario.system.install_system_app(legitimate_definer)
    hare_apk = HareAttacker.build_hare_apk("com.evil.hare")
    scenario.system.install_user_app(hare_apk)
    attacker = HareAttacker(package="com.evil.hare")
    scenario.system.attach(attacker)
    result = attacker.grab_and_steal(svoice)
    assert not result.succeeded
    # signature-level + platform definer: the malware's cert mismatches.
    definition = scenario.system.permission_registry.require(VLINGO_READ)
    assert definition.defined_by == "com.samsung.permissionpack"


def test_result_reports_attack_metadata():
    scenario, svoice = build_scenario()
    hare_apk = HareAttacker.build_hare_apk("com.evil.hare")
    scenario.system.install_user_app(hare_apk)
    attacker = HareAttacker(package="com.evil.hare")
    scenario.system.attach(attacker)
    result = attacker.grab_and_steal(svoice)
    assert result.attack_name == "hare-permission-grab"
    assert result.detail["permission"] == VLINGO_READ
    assert result.detail["contacts_stolen"] == 3
