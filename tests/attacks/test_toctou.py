"""Tests for the FileObserver installation-hijacking attack (Step 3)."""

import pytest

from repro.attacks.base import ATTACKER_PAYLOAD, fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    BaiduInstaller,
    DTIgniteInstaller,
    GooglePlayInstaller,
    NaiveSdcardInstaller,
    NewAmazonInstaller,
    QihooInstaller,
    XiaomiInstaller,
)

TARGET = "com.victim.app"


def hijack_scenario(installer_cls, defenses=()):
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(installer_cls)
        ),
        defenses=defenses,
    )
    scenario.publish_app(TARGET, label="Victim")
    return scenario


@pytest.mark.parametrize("installer_cls", [
    AmazonInstaller, XiaomiInstaller, BaiduInstaller, QihooInstaller,
    DTIgniteInstaller, NaiveSdcardInstaller,
])
def test_hijacks_every_sdcard_installer(installer_cls):
    """Section III-B: the attack works on all SD-Card based installers."""
    scenario = hijack_scenario(installer_cls)
    outcome = scenario.run_install(TARGET)
    assert outcome.installed
    assert outcome.hijacked
    assert outcome.installed_certificate_owner == "gia-attacker"


def test_new_amazon_verification_also_defeated():
    """Step 4: installPackageWithVerification passes the repackaged APK."""
    scenario = hijack_scenario(NewAmazonInstaller)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked


def test_google_play_not_hijackable():
    """Internal staging: the attacker never sees the file."""
    scenario = hijack_scenario(GooglePlayInstaller)
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install
    assert not scenario.attacker.succeeded


def test_attack_needs_only_storage_permission():
    scenario = hijack_scenario(AmazonInstaller)
    granted = scenario.attacker.caller.permissions
    assert "android.permission.INSTALL_PACKAGES" not in granted
    scenario.run_install(TARGET)
    assert scenario.attacker.succeeded


def test_swap_happens_after_integrity_check():
    """The replacement lands between the check and the PMS read."""
    scenario = hijack_scenario(AmazonInstaller)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    # The installer's own hash check passed (no retry was needed).
    assert len(scenario.installer.traces) == 1
    from repro.core.ait import AITStep
    trigger = outcome.trace.step_for(AITStep.TRIGGER)
    assert trigger.detail.get("hash_ok") is True


def test_wrong_fingerprint_count_misses_window():
    """Swapping too early corrupts the file before the check: caught."""
    from repro.attacks.base import StoreFingerprint
    bad_fingerprint = StoreFingerprint(
        watch_dir=AmazonInstaller.profile.download_dir,
        close_nowrite_count=2,   # Amazon actually reads 7 times
    )
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: FileObserverHijacker(bad_fingerprint),
    )
    scenario.publish_app(TARGET)
    outcome = scenario.run_install(TARGET)
    # The store detects the corrupt file and re-downloads; whether the
    # retry is hijacked depends on the attacker re-arming — it did not.
    assert not outcome.hijacked


def test_retry_after_missed_window_gives_second_chance():
    """Re-download on corruption lets a re-armed attacker try again."""
    from repro.attacks.base import StoreFingerprint

    class ReArmingHijacker(FileObserverHijacker):
        def _swap(self, path):
            super()._swap(path)
            self.rearm()  # keep attacking subsequent downloads

    bad_fingerprint = StoreFingerprint(
        watch_dir=AmazonInstaller.profile.download_dir,
        close_nowrite_count=6,  # one early: corrupts the checked file
    )
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: ReArmingHijacker(bad_fingerprint),
    )
    scenario.publish_app(TARGET)
    outcome = scenario.run_install(TARGET)
    # Amazon re-downloaded transparently; attacker hit it again early
    # every time, so the install eventually failed — but never installed
    # the genuine app either way. Either outcome must not be a clean win
    # for the store with a wrong count... the paper's point is the
    # *correct* count wins reliably:
    assert outcome.hijacked or not outcome.installed or outcome.clean_install


def test_fingerprints_derived_from_profiles():
    fingerprint = fingerprint_for(DTIgniteInstaller)
    assert fingerprint.watch_dir == "/sdcard/DTIgnite"
    assert fingerprint.close_nowrite_count == 1
    amazon = fingerprint_for(AmazonInstaller)
    assert amazon.close_nowrite_count == 7
    xiaomi = fingerprint_for(XiaomiInstaller)
    assert xiaomi.rename_signals_completion


def test_attacker_dormant_after_success():
    scenario = hijack_scenario(AmazonInstaller)
    scenario.run_install(TARGET)
    assert len(scenario.attacker.swaps) == 1  # one-shot per arm cycle


def test_disarm_stops_attack():
    scenario = hijack_scenario(AmazonInstaller)
    scenario.attacker.arm()
    scenario.attacker.disarm()
    outcome = scenario.run_install(TARGET, arm_attacker=False)
    assert outcome.clean_install
