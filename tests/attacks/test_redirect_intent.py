"""Tests for the redirect-Intent attack (Step 1)."""

import pytest

from repro.android.apk import ApkBuilder
from repro.android.app import App
from repro.android.intents import Intent
from repro.android.signing import SigningKey
from repro.attacks.redirect_intent import RedirectIntentAttacker
from repro.core.scenario import Scenario
from repro.installers import GooglePlayInstaller
from repro.sim.clock import seconds

VICTIM = "com.facebook.katana"
STORE = "com.android.vending"
GENUINE = "com.facebook.orca"
LOOKALIKE = "com.faceboook.orca"   # typosquatted Messenger


class VictimApp(App):
    package = VICTIM

    def open_companion_page(self):
        self.start_activity(
            Intent(target_package=STORE, target_activity="AppDetailActivity")
            .with_extra("show_package", GENUINE)
        )


def build_scenario(defenses=()):
    scenario = Scenario.build(
        installer=GooglePlayInstaller,
        attacker_factory=lambda s: RedirectIntentAttacker(
            victim_package=VICTIM, store_package=STORE,
            lookalike_package=LOOKALIKE,
        ),
        defenses=defenses,
    )
    scenario.publish_app(GENUINE, label="Messenger")
    scenario.publish_app(LOOKALIKE, label="Messenger")
    victim_apk = ApkBuilder(VICTIM).label("Facebook").build(SigningKey("fb", "k"))
    scenario.system.install_user_app(victim_apk)
    victim = VictimApp()
    scenario.system.attach(victim)
    scenario.system.ams.bring_to_foreground(VICTIM)
    return scenario, victim


def run_attack(scenario, victim):
    scenario.attacker.arm(seconds(5))
    victim.open_companion_page()
    scenario.system.run()


def test_store_page_silently_switched():
    scenario, victim = build_scenario()
    run_attack(scenario, victim)
    assert scenario.installer.displayed_package == LOOKALIKE
    assert scenario.attacker.result().succeeded


def test_user_install_after_redirect_gets_lookalike():
    scenario, victim = build_scenario()
    run_attack(scenario, victim)
    scenario.installer.user_clicks_install()
    scenario.system.run()
    assert scenario.system.pms.is_installed(LOOKALIKE)
    assert not scenario.system.pms.is_installed(GENUINE)


def test_attack_waits_for_foreground_handoff():
    scenario, victim = build_scenario()
    scenario.attacker.arm(seconds(1))
    # The victim never opens the store: oom_adj stays 0, nothing fires.
    scenario.system.run()
    assert not scenario.attacker.fired


def test_attack_fires_only_after_store_foreground():
    scenario, victim = build_scenario()
    run_attack(scenario, victim)
    assert scenario.attacker.fired
    assert scenario.attacker.fired_at_ns > 0


def test_no_fake_activity_involved():
    """The attacker never draws UI: the store's own activity is abused."""
    scenario, victim = build_scenario()
    run_attack(scenario, victim)
    frames = scenario.system.ams.stack
    assert all(frame.package != scenario.attacker.package for frame in frames)


def test_recipient_cannot_identify_sender_without_defense():
    scenario, victim = build_scenario()
    run_attack(scenario, victim)
    top = scenario.system.ams.top_frame()
    assert top.intent.get_intent_origin() is None


def test_intent_origin_defense_reveals_sender():
    scenario, victim = build_scenario(defenses=("intent-origin",))
    run_attack(scenario, victim)
    top = scenario.system.ams.top_frame()
    assert top.intent.get_intent_origin() == scenario.attacker.package


def test_detection_defense_raises_alarm():
    scenario, victim = build_scenario(defenses=("intent-detection",))
    run_attack(scenario, victim)
    assert scenario.intent_detection.detected
    alarm = scenario.intent_detection.report.alarms[0]
    assert scenario.attacker.package in alarm


def test_victim_display_history_records_both_intents():
    scenario, victim = build_scenario()
    run_attack(scenario, victim)
    shown = [entry[1] for entry in scenario.installer.display_history]
    assert shown == [GENUINE, LOOKALIKE]
