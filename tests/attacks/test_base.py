"""Tests for the attacker base machinery."""

import pytest

from repro.android.apk import Apk
from repro.android.permissions import (
    READ_EXTERNAL_STORAGE,
    WRITE_EXTERNAL_STORAGE,
)
from repro.attacks.base import (
    ATTACKER_PAYLOAD,
    MaliciousApp,
    StoreFingerprint,
    fingerprint_for,
)
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller, DTIgniteInstaller, GooglePlayInstaller
from repro.sim.clock import millis


def test_attacker_apk_looks_innocuous():
    apk = MaliciousApp.build_apk()
    assert apk.manifest.label == "Fun Flashlight"
    assert READ_EXTERNAL_STORAGE in apk.manifest.uses_permissions
    assert "android.permission.INSTALL_PACKAGES" not in apk.manifest.uses_permissions


def test_silent_sdcard_permission_acquisition():
    """Section III-A: WRITE arrives silently via the STORAGE group."""
    scenario = Scenario.build(installer=GooglePlayInstaller)
    from repro.android.apk import ApkBuilder
    from repro.android.signing import SigningKey
    apk = (
        ApkBuilder("com.fun.flashlight")
        .uses_permission(READ_EXTERNAL_STORAGE)
        .build(SigningKey("gia-attacker", "key0"))
    )
    scenario.system.install_user_app(apk)
    attacker = MaliciousApp()
    scenario.system.attach(attacker)
    # Initially only READ was requested (and user-approved).
    state = scenario.system.pms.require_package(attacker.package).permissions
    state.request(READ_EXTERNAL_STORAGE, user_approves=True)
    assert not attacker.has_permission(WRITE_EXTERNAL_STORAGE)
    assert attacker.acquire_sdcard_permission_silently()
    assert attacker.has_permission(WRITE_EXTERNAL_STORAGE)


def test_forge_replacement_keeps_manifest():
    genuine = MaliciousApp.build_apk("com.any.app")
    scenario = Scenario.build(installer=GooglePlayInstaller,
                              attacker=MaliciousApp)
    twin = scenario.attacker.forge_replacement(genuine.to_bytes())
    assert twin.manifest.checksum() == genuine.manifest.checksum()
    assert twin.payload == ATTACKER_PAYLOAD
    assert twin.certificate.owner == "gia-attacker"


def test_fingerprint_wait_delay_lands_in_window():
    """The derived delay must fall after the check and before install."""
    for installer_cls in (AmazonInstaller, DTIgniteInstaller):
        profile = installer_cls.profile
        fingerprint = fingerprint_for(installer_cls)
        check_ends = (
            profile.verify_start_delay_ns
            + max(0, profile.verify_reads - 1) * profile.per_read_ns
        )
        install_at = check_ends + profile.install_delay_ns
        assert check_ends < fingerprint.wait_and_see_delay_ns < install_at


def test_fingerprint_paper_values():
    """Amazon ~500 ms, DTIgnite ~2 s after download completion."""
    amazon = fingerprint_for(AmazonInstaller)
    assert millis(400) <= amazon.wait_and_see_delay_ns <= millis(600)
    dtignite = fingerprint_for(DTIgniteInstaller)
    assert millis(1800) <= dtignite.wait_and_see_delay_ns <= millis(2600)
