"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.android.apk import Apk, ApkBuilder
from repro.android.device import nexus5
from repro.android.signing import SigningKey
from repro.android.system import AndroidSystem


@pytest.fixture
def system() -> AndroidSystem:
    """A booted Nexus 5 (Android 5.1) device."""
    return AndroidSystem(nexus5())


@pytest.fixture
def dev_key() -> SigningKey:
    """A legitimate developer signing key."""
    return SigningKey("legit-developer", "release")


@pytest.fixture
def sample_apk(dev_key: SigningKey) -> Apk:
    """A small, signed app requesting the storage permissions."""
    return (
        ApkBuilder("com.example.sample")
        .label("Sample")
        .uses_permission(
            "android.permission.READ_EXTERNAL_STORAGE",
            "android.permission.WRITE_EXTERNAL_STORAGE",
        )
        .payload(b"<sample app code>")
        .build(dev_key)
    )


def make_apk(package: str, key: SigningKey, version: int = 1,
             payload: bytes = b"<code>", permissions: tuple = ()) -> Apk:
    """Convenience APK builder used across test modules."""
    builder = ApkBuilder(package).version(version).payload(payload)
    if permissions:
        builder.uses_permission(*permissions)
    return builder.build(key)
