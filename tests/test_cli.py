"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "[undefended] hijacked=True" in out
    assert "[defended] hijacked=False" in out


def test_attack_command_default(capsys):
    assert main(["attack"]) == 0
    out = capsys.readouterr().out
    assert "hijacked  : True" in out
    assert "AIT of com.amazon.venezia" in out


def test_attack_command_with_defense(capsys):
    assert main(["attack", "--installer", "dtignite",
                 "--attack", "fileobserver", "--defense", "fuse-dac"]) == 0
    out = capsys.readouterr().out
    assert "hijacked  : False" in out
    assert "BLOCKED" in out


def test_attack_command_no_attacker(capsys):
    assert main(["attack", "--attack", "none"]) == 0
    out = capsys.readouterr().out
    assert "hijacked  : False" in out


def test_audit_command(capsys):
    assert main(["audit"]) == 0
    out = capsys.readouterr().out
    assert "amazon" in out
    assert "[CRITICAL]" in out
    assert "clean" in out  # the toolkit installer


def test_fleet_command_runs_sharded_campaign(capsys):
    assert main(["fleet", "--installs", "40", "--shards", "4",
                 "--workers", "2", "--quiet", "--seed", "11"]) == 0
    out = capsys.readouterr().out
    assert "40 installs over 4 shard(s)" in out
    assert "clean      : 40" in out
    assert "95% CI" in out


def test_fleet_command_serial_backend_and_defenses(capsys):
    assert main(["fleet", "--installs", "6", "--installer", "dtignite",
                 "--attack", "fileobserver", "--defense", "fuse-dac",
                 "--shards", "2", "--backend", "serial", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "backend=serial" in out
    assert "hijacked   : 0" in out
    assert "blocked    : " in out


def test_fleet_progress_lines_go_to_stderr(capsys):
    assert main(["fleet", "--installs", "4", "--shards", "2",
                 "--backend", "serial"]) == 0
    captured = capsys.readouterr()
    assert "[fleet]" in captured.err
    assert "[fleet]" not in captured.out


def test_seed_flag_reproduces_and_varies_output(capsys):
    main(["attack", "--installer", "dtignite", "--seed", "3"])
    first = capsys.readouterr().out
    main(["attack", "--installer", "dtignite", "--seed", "3"])
    second = capsys.readouterr().out
    assert first == second
    assert "hijacked  : True" in first


def test_seed_flag_accepted_by_every_command():
    parser = build_parser()
    for argv in (["demo", "--seed", "1"],
                 ["attack", "--seed", "2"],
                 ["tables", "--seed", "3"],
                 ["audit", "--seed", "4"],
                 ["fleet", "--seed", "5"]):
        args = parser.parse_args(argv)
        assert args.seed == int(argv[-1])


def test_demo_with_seed(capsys):
    assert main(["demo", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "[undefended] hijacked=True" in out
    assert "[defended] hijacked=False" in out


def test_parser_rejects_unknown_installer():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["attack", "--installer", "notastore"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
