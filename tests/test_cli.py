"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "[undefended] hijacked=True" in out
    assert "[defended] hijacked=False" in out


def test_attack_command_default(capsys):
    assert main(["attack"]) == 0
    out = capsys.readouterr().out
    assert "hijacked  : True" in out
    assert "AIT of com.amazon.venezia" in out


def test_attack_command_with_defense(capsys):
    assert main(["attack", "--installer", "dtignite",
                 "--attack", "fileobserver", "--defense", "fuse-dac"]) == 0
    out = capsys.readouterr().out
    assert "hijacked  : False" in out
    assert "BLOCKED" in out


def test_attack_command_no_attacker(capsys):
    assert main(["attack", "--attack", "none"]) == 0
    out = capsys.readouterr().out
    assert "hijacked  : False" in out


def test_audit_command(capsys):
    assert main(["audit"]) == 0
    out = capsys.readouterr().out
    assert "amazon" in out
    assert "[CRITICAL]" in out
    assert "clean" in out  # the toolkit installer


def test_parser_rejects_unknown_installer():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["attack", "--installer", "notastore"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
