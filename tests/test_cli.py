"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "[undefended] hijacked=True" in out
    assert "[defended] hijacked=False" in out


def test_attack_command_default(capsys):
    assert main(["attack"]) == 0
    out = capsys.readouterr().out
    assert "hijacked  : True" in out
    assert "AIT of com.amazon.venezia" in out


def test_attack_command_with_defense(capsys):
    assert main(["attack", "--installer", "dtignite",
                 "--attack", "fileobserver", "--defense", "fuse-dac"]) == 0
    out = capsys.readouterr().out
    assert "hijacked  : False" in out
    assert "BLOCKED" in out


def test_attack_command_no_attacker(capsys):
    assert main(["attack", "--attack", "none"]) == 0
    out = capsys.readouterr().out
    assert "hijacked  : False" in out


def test_audit_command(capsys):
    assert main(["audit"]) == 0
    out = capsys.readouterr().out
    assert "amazon" in out
    assert "[CRITICAL]" in out
    assert "clean" in out  # the toolkit installer


def test_fleet_command_runs_sharded_campaign(capsys):
    assert main(["fleet", "--installs", "40", "--shards", "4",
                 "--workers", "2", "--quiet", "--seed", "11"]) == 0
    out = capsys.readouterr().out
    assert "40 installs over 4 shard(s)" in out
    assert "clean      : 40" in out
    assert "95% CI" in out


def test_fleet_command_serial_backend_and_defenses(capsys):
    assert main(["fleet", "--installs", "6", "--installer", "dtignite",
                 "--attack", "fileobserver", "--defense", "fuse-dac",
                 "--shards", "2", "--backend", "serial", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "backend=serial" in out
    assert "hijacked   : 0" in out
    assert "blocked    : " in out


def test_fleet_progress_lines_go_to_stderr(capsys):
    assert main(["fleet", "--installs", "4", "--shards", "2",
                 "--backend", "serial"]) == 0
    captured = capsys.readouterr()
    assert "[fleet]" in captured.err
    assert "[fleet]" not in captured.out


def test_seed_flag_reproduces_and_varies_output(capsys):
    main(["attack", "--installer", "dtignite", "--seed", "3"])
    first = capsys.readouterr().out
    main(["attack", "--installer", "dtignite", "--seed", "3"])
    second = capsys.readouterr().out
    assert first == second
    assert "hijacked  : True" in first


def test_seed_flag_accepted_by_every_command():
    parser = build_parser()
    for argv in (["demo", "--seed", "1"],
                 ["attack", "--seed", "2"],
                 ["tables", "--seed", "3"],
                 ["audit", "--seed", "4"],
                 ["fleet", "--seed", "5"]):
        args = parser.parse_args(argv)
        assert args.seed == int(argv[-1])


def test_demo_with_seed(capsys):
    assert main(["demo", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "[undefended] hijacked=True" in out
    assert "[defended] hijacked=False" in out


def test_parser_rejects_unknown_installer():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["attack", "--installer", "notastore"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# -- observability flags -----------------------------------------------------


def test_obs_flags_accepted_by_every_command():
    parser = build_parser()
    for command in ("demo", "attack", "tables", "audit", "fleet"):
        args = parser.parse_args([command, "--trace", "t.jsonl", "--metrics"])
        assert args.trace == "t.jsonl"
        assert args.metrics is True


def test_attack_metrics_flag_prints_snapshot(capsys):
    assert main(["attack", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "metrics:" in out
    assert "counter   ait/runs" in out
    assert "histogram ait/elapsed_ns" in out


def test_demo_trace_flag_writes_valid_jsonl(tmp_path, capsys):
    from repro.obs import load_trace_jsonl

    path = str(tmp_path / "demo.jsonl")
    assert main(["demo", "--trace", path]) == 0
    records = load_trace_jsonl(path)
    assert records
    assert {"attack/strike", "install/outcome"} <= {
        r["name"] for r in records}
    assert f"-> {path}" in capsys.readouterr().err


def test_fleet_trace_and_metrics(tmp_path, capsys):
    from repro.obs import load_trace_jsonl

    path = str(tmp_path / "fleet.jsonl")
    assert main(["fleet", "--installs", "6", "--shards", "2",
                 "--backend", "serial", "--quiet",
                 "--attack", "fileobserver", "--trace", path,
                 "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "fleet metrics:" in out
    assert "counter   campaign/runs" in out
    assert "engine: 2 shard start(s), 2 done" in out
    records = load_trace_jsonl(path)
    assert records
    assert all("shard" in record for record in records)


def test_fleet_without_obs_flags_skips_observability(tmp_path, capsys):
    assert main(["fleet", "--installs", "2", "--shards", "1",
                 "--backend", "serial", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "metrics" not in out


def test_tables_and_audit_honour_obs_flags(tmp_path, capsys):
    from repro.obs import load_trace_jsonl

    path = str(tmp_path / "audit.jsonl")
    assert main(["audit", "--trace", path, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "metrics: 0 metric(s)" in out
    assert load_trace_jsonl(path) == []  # valid, empty


def test_fleet_identical_trace_for_fixed_seed(tmp_path):
    first = str(tmp_path / "a.jsonl")
    second = str(tmp_path / "b.jsonl")
    for path in (first, second):
        assert main(["fleet", "--installs", "6", "--shards", "3",
                     "--backend", "serial", "--quiet", "--seed", "5",
                     "--trace", path]) == 0
    with open(first, "rb") as a, open(second, "rb") as b:
        assert a.read() == b.read()


# -- chaos spec validation ---------------------------------------------------


def test_fleet_invalid_chaos_spec_exits_2(capsys):
    # Regression: used to escape as a raw ValueError traceback.
    assert main(["fleet", "--chaos", "crash:bogus", "--installs", "4",
                 "--quiet"]) == 2
    err = capsys.readouterr().err
    assert "error: invalid chaos spec 'crash:bogus'" in err
    assert "Traceback" not in err


def test_fleet_unknown_chaos_mode_exits_2(capsys):
    assert main(["fleet", "--chaos", "explode:1", "--installs", "4",
                 "--quiet"]) == 2
    assert "unknown mode" in capsys.readouterr().err


def test_fleet_zero_installs_is_fine(capsys):
    assert main(["fleet", "--installs", "0", "--shards", "2",
                 "--backend", "serial", "--quiet", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "0 installs over 2 shard(s)" in out
    assert "CI [0.0000, 1.0000]" in out
    assert "fleet metrics: 0 metric(s)" in out


# -- analyze ------------------------------------------------------------------


def test_analyze_stdout_identical_across_splits(capsys):
    outputs = []
    for extra in (["--shards", "1"], ["--shards", "4"]):
        assert main(["analyze", "--corpus", "play", "--apps", "400",
                     "--backend", "serial", "--quiet"] + extra) == 0
        captured = capsys.readouterr()
        outputs.append(captured.out)
        assert "wall:" in captured.err  # timing stays off stdout
    assert outputs[0] == outputs[1]
    assert "apps analyzed           : 400" in outputs[0]


def test_analyze_preinstalled_reports_instances(capsys):
    assert main(["analyze", "--corpus", "preinstalled", "--apps", "200",
                 "--backend", "serial", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "app instances" in out
    assert "WRITE_EXTERNAL instances" in out


def test_analyze_cache_lines_on_stderr(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    argv = ["analyze", "--corpus", "play", "--apps", "120",
            "--backend", "serial", "--quiet", "--cache", cache]
    assert main(argv) == 0
    first = capsys.readouterr()
    assert "cache: 0 hit(s), 120 analyzed" in first.err
    assert main(argv) == 0
    second = capsys.readouterr()
    assert "cache: 120 hit(s), 0 analyzed" in second.err
    assert first.out == second.out  # cache state never changes the tables


def test_analyze_trace_and_metrics(tmp_path, capsys):
    from repro.obs import load_trace_jsonl

    path = str(tmp_path / "analysis.jsonl")
    assert main(["analyze", "--corpus", "play", "--apps", "50",
                 "--backend", "serial", "--quiet",
                 "--trace", path, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "analysis metrics:" in out
    assert "counter   analysis/apps" in out
    records = load_trace_jsonl(path)
    assert len(records) == 50
    assert all(record["name"] == "analysis/app" for record in records)


def test_analyze_images_apps_scales_the_fleet(capsys):
    assert main(["analyze", "--corpus", "images", "--apps", "99",
                 "--backend", "serial", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "size=99" in out
    assert "images analyzed         : 99" in out


def test_analyze_images_apps_below_floor_rejected(capsys):
    assert main(["analyze", "--corpus", "images", "--apps", "10",
                 "--quiet"]) == 2
    assert "at least 50 images" in capsys.readouterr().err
