"""CLI tests for the ``repro trace`` forensics family.

The acceptance contract: ``repro trace windows --trace <fleet trace>``
reproduces the armed->strike window split by hijack outcome, and its
output is byte-identical across two runs of the same seed and shard
count.
"""

import pytest

from repro.__main__ import build_parser, main


def run_fleet_trace(path, defenses=(), seed=19):
    argv = ["fleet", "--installs", "8", "--shards", "2",
            "--backend", "serial", "--seed", str(seed),
            "--attack", "fileobserver", "--quiet", "--trace", path]
    for defense in defenses:
        argv += ["--defense", defense]
    assert main(argv) == 0


def test_trace_parser_accepts_the_family():
    parser = build_parser()
    args = parser.parse_args(["trace", "windows", "--trace", "t.jsonl"])
    assert args.trace_command == "windows"
    args = parser.parse_args(["trace", "diff", "--trace", "a.jsonl",
                              "--against", "b.jsonl"])
    assert args.against == "b.jsonl"
    with pytest.raises(SystemExit):
        parser.parse_args(["trace"])  # subcommand required
    # --trace is optional at parse time (a --job id is the alternative
    # source), but running with neither is a usage error.
    args = parser.parse_args(["trace", "summary"])
    assert args.trace is None
    assert main(["trace", "summary"]) == 2


def test_trace_windows_is_byte_identical_across_runs(tmp_path, capsys):
    first = str(tmp_path / "first.jsonl")
    second = str(tmp_path / "second.jsonl")
    run_fleet_trace(first)
    run_fleet_trace(second)
    capsys.readouterr()  # drop the fleet renders (wall clock varies)
    assert main(["trace", "windows", "--trace", first]) == 0
    out_first = capsys.readouterr().out
    assert main(["trace", "windows", "--trace", second]) == 0
    out_second = capsys.readouterr().out
    assert out_first == out_second
    # The undefended fileobserver attack hijacks every run: the split
    # puts all 8 windows in the hijacked row.
    assert "hijacked          8" in out_first
    assert "race-window forensics: 8 arm(s)" in out_first


def test_trace_windows_splits_defended_runs_as_clean(tmp_path, capsys):
    path = str(tmp_path / "defended.jsonl")
    run_fleet_trace(path, defenses=("fuse-dac",))
    capsys.readouterr()
    assert main(["trace", "windows", "--trace", path]) == 0
    out = capsys.readouterr().out
    assert "clean             8" in out
    assert "hijacked          0" in out


def test_trace_summary_and_critpath_run_on_fleet_traces(tmp_path, capsys):
    path = str(tmp_path / "t.jsonl")
    run_fleet_trace(path)
    capsys.readouterr()
    assert main(["trace", "summary", "--trace", path]) == 0
    summary = capsys.readouterr().out
    assert "span  ait/download" in summary
    assert "by layer" in summary
    assert main(["trace", "critpath", "--trace", path]) == 0
    critpath = capsys.readouterr().out
    assert "critical path" in critpath
    assert main(["trace", "critpath", "--trace", path, "--shard", "1"]) == 0
    assert "shard 1" in capsys.readouterr().out


def test_trace_diff_exit_codes(tmp_path, capsys):
    same_a = str(tmp_path / "a.jsonl")
    same_b = str(tmp_path / "b.jsonl")
    other = str(tmp_path / "c.jsonl")
    run_fleet_trace(same_a)
    run_fleet_trace(same_b)
    run_fleet_trace(other, seed=23)
    capsys.readouterr()
    assert main(["trace", "diff", "--trace", same_a,
                 "--against", same_b]) == 0
    assert "identical" in capsys.readouterr().out
    assert main(["trace", "diff", "--trace", same_a,
                 "--against", other]) == 1
    assert "changed" in capsys.readouterr().out


def test_trace_commands_reject_missing_files(capsys):
    assert main(["trace", "summary", "--trace", "/nonexistent.jsonl"]) == 2
    assert "error:" in capsys.readouterr().err
