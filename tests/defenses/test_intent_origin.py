"""Tests for the Intent-origin identification scheme."""

from repro.android.intent_firewall import IntentFirewall, IntentRecord
from repro.android.intents import Intent
from repro.defenses.intent_origin import IntentOriginScheme


def make_record(sender="com.sender", recipient="com.store"):
    return IntentRecord(
        intent=Intent(target_package=recipient),
        sender_package=sender,
        sender_uid=10001,
        sender_is_system=False,
        recipient_package=recipient,
        delivery_time_ns=0,
    )


def test_origin_stamped_into_intent():
    firewall = IntentFirewall()
    IntentOriginScheme().install(firewall)
    record = make_record("com.facebook")
    firewall.check_intent(record)
    assert record.intent.get_intent_origin() == "com.facebook"


def test_origin_absent_without_scheme():
    firewall = IntentFirewall()
    record = make_record()
    firewall.check_intent(record)
    assert record.intent.get_intent_origin() is None


def test_scheme_never_blocks():
    firewall = IntentFirewall()
    IntentOriginScheme().install(firewall)
    assert firewall.check_intent(make_record())
    assert firewall.alarm_count() == 0


def test_stamp_log_tracks_senders():
    firewall = IntentFirewall()
    scheme = IntentOriginScheme().install(firewall)
    firewall.check_intent(make_record("com.a"))
    firewall.check_intent(make_record("com.b"))
    assert scheme.stamped == ["com.a", "com.b"]


def test_hidden_api_roundtrip():
    intent = Intent(target_package="com.x")
    intent.set_intent_origin("com.sender")
    assert intent.get_intent_origin() == "com.sender"
