"""Tests for the redirect-Intent detection scheme."""

import pytest

from repro.android.intent_firewall import IntentFirewall, IntentRecord
from repro.android.intents import Intent
from repro.defenses.intent_detection import (
    DEFAULT_THRESHOLD_NS,
    IntentDetectionScheme,
)
from repro.sim.clock import millis, seconds


def make_record(sender="com.a", recipient="com.store", time_ns=0,
                uid=None, is_system=False):
    return IntentRecord(
        intent=Intent(target_package=recipient),
        sender_package=sender,
        sender_uid=uid if uid is not None else abs(hash(sender)) % 50000 + 10000,
        sender_is_system=is_system,
        recipient_package=recipient,
        delivery_time_ns=time_ns,
    )


@pytest.fixture
def scheme():
    return IntentDetectionScheme()


def test_default_threshold_is_one_second(scheme):
    assert scheme.threshold_ns == seconds(1)
    assert DEFAULT_THRESHOLD_NS == seconds(1)


def test_fast_pair_from_different_senders_alarms(scheme):
    scheme.inspect(make_record(sender="com.facebook", time_ns=0))
    result = scheme.inspect(make_record(sender="com.evil", time_ns=millis(300)))
    assert result.alarm is not None
    assert scheme.detected


def test_slow_pair_does_not_alarm(scheme):
    scheme.inspect(make_record(sender="com.facebook", time_ns=0))
    result = scheme.inspect(
        make_record(sender="com.evil", time_ns=seconds(2))
    )
    assert result.alarm is None


def test_whitelist_rule1_same_sender(scheme):
    scheme.inspect(make_record(sender="com.app", time_ns=0))
    result = scheme.inspect(make_record(sender="com.app", time_ns=millis(100)))
    assert result.alarm is None


def test_whitelist_rule1_shared_uid(scheme):
    scheme.inspect(make_record(sender="com.suite.one", uid=10100, time_ns=0))
    result = scheme.inspect(
        make_record(sender="com.suite.two", uid=10100, time_ns=millis(100))
    )
    assert result.alarm is None


def test_whitelist_rule2_self_intent(scheme):
    scheme.inspect(make_record(sender="com.other", time_ns=0))
    result = scheme.inspect(
        make_record(sender="com.store", recipient="com.store",
                    time_ns=millis(100))
    )
    assert result.alarm is None


def test_whitelist_rule3_system_sender(scheme):
    scheme.inspect(make_record(sender="com.app", time_ns=0))
    result = scheme.inspect(
        make_record(sender="android", is_system=True, time_ns=millis(100))
    )
    assert result.alarm is None


def test_only_last_intent_per_recipient_kept(scheme):
    scheme.inspect(make_record(sender="com.a", time_ns=0))
    scheme.inspect(make_record(sender="com.a", time_ns=millis(200)))
    # A third from another sender compares against the *second*.
    result = scheme.inspect(make_record(sender="com.evil", time_ns=millis(350)))
    assert result.alarm is not None


def test_different_recipients_tracked_independently(scheme):
    scheme.inspect(make_record(recipient="com.store1", sender="com.a", time_ns=0))
    result = scheme.inspect(
        make_record(recipient="com.store2", sender="com.b", time_ns=millis(100))
    )
    assert result.alarm is None


def test_report_mode_does_not_block(scheme):
    scheme.inspect(make_record(sender="com.a", time_ns=0))
    result = scheme.inspect(make_record(sender="com.evil", time_ns=millis(100)))
    assert result.allow


def test_block_mode_vetoes():
    scheme = IntentDetectionScheme(block_on_alarm=True)
    scheme.inspect(make_record(sender="com.a", time_ns=0))
    result = scheme.inspect(make_record(sender="com.evil", time_ns=millis(100)))
    assert not result.allow
    assert scheme.report.prevented


def test_install_registers_with_firewall():
    firewall = IntentFirewall()
    scheme = IntentDetectionScheme().install(firewall)
    firewall.check_intent(make_record(sender="com.a", time_ns=0))
    firewall.check_intent(make_record(sender="com.evil", time_ns=millis(100)))
    assert firewall.alarm_count() == 1
    assert scheme.detected


def test_alarm_text_names_both_parties(scheme):
    scheme.inspect(make_record(sender="com.facebook", time_ns=0))
    scheme.inspect(make_record(sender="com.evil", time_ns=millis(250)))
    alarm = scheme.report.alarms[0]
    assert "com.evil" in alarm and "com.facebook" in alarm and "com.store" in alarm
