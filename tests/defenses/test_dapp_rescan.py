"""Tests for DAPP-RESCAN, the hybrid notify + offline-rescan defense."""

import dataclasses

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.watcher_flood import WatcherFloodHijacker
from repro.android.device import nexus5
from repro.core.scenario import Scenario
from repro.defenses.dapp_rescan import DappRescan
from repro.errors import ReproError
from repro.installers import AmazonInstaller
from repro.sim.events import DEFAULT_DRAIN_INTERVAL_NS, WatchLimits

import pytest

TARGET = "com.victim.app"


def lossy_device(depth=64):
    return dataclasses.replace(
        nexus5(), watch_limits=WatchLimits(
            max_queue_depth=depth,
            drain_interval_ns=DEFAULT_DRAIN_INTERVAL_NS))


def scenario_with(attacker_cls, defenses, device=None):
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: attacker_cls(
            fingerprint_for(AmazonInstaller)),
        device=device,
        defenses=defenses,
    )
    scenario.publish_app(TARGET, label="Victim")
    return scenario


def test_rescan_detects_flood_hijack_on_lossy_device():
    scenario = scenario_with(WatcherFloodHijacker, ("dapp-rescan",),
                             device=lossy_device())
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked  # detection, not prevention
    dapp = scenario.dapp
    assert isinstance(dapp, DappRescan)
    assert dapp.overflows_seen > 0  # degraded mode engaged
    assert dapp.rescans > 0
    assert dapp.report.alarms  # and the replacement was convicted
    assert any("rescan after Q_OVERFLOW" in alarm
               for alarm in dapp.report.alarms)


def test_rescan_variant_reports_its_own_name():
    scenario = scenario_with(WatcherFloodHijacker, ("dapp-rescan",),
                             device=lossy_device())
    assert scenario.dapp.report.defense_name == "DAPP-RESCAN"


def test_rescan_stays_on_notify_path_when_lossless():
    scenario = scenario_with(FileObserverHijacker, ("dapp-rescan",))
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    dapp = scenario.dapp
    assert dapp.overflows_seen == 0  # never left the online path
    assert dapp.rescans == 0
    assert dapp.report.alarms  # plain DAPP behaviour is inherited


def test_rescan_raises_no_false_alarms_on_benign_lossy_install():
    scenario = scenario_with(WatcherFloodHijacker, ("dapp-rescan",),
                             device=lossy_device())
    outcome = scenario.run_install(TARGET, arm_attacker=False)
    assert outcome.installed
    assert not outcome.hijacked
    assert not scenario.dapp.report.alarms


def test_dapp_variants_cannot_be_combined():
    with pytest.raises(ReproError, match="mutually exclusive"):
        Scenario.build(installer=AmazonInstaller,
                       defenses=("dapp", "dapp-rescan"))
