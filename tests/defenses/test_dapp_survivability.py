"""Tests for DAPP's resistance to background killing (Section V-B).

'The app is activated through the startForeground API ... This protects
it from being terminated by a malicious app with the
KILL_BACKGROUND_PROCESSES permission.'
"""

import pytest

from repro.errors import SecurityException
from repro.android.apk import ApkBuilder
from repro.android.permissions import KILL_BACKGROUND_PROCESSES
from repro.android.signing import SigningKey
from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.installers import DTIgniteInstaller

TARGET = "com.victim.app"


def killer_caller(scenario):
    apk = (
        ApkBuilder("com.evil.killer")
        .uses_permission(KILL_BACKGROUND_PROCESSES,
                         "android.permission.WRITE_EXTERNAL_STORAGE",
                         "android.permission.READ_EXTERNAL_STORAGE")
        .build(SigningKey("gia-attacker", "key0"))
    )
    scenario.system.install_user_app(apk)
    return scenario.system.caller_for("com.evil.killer")


def build_scenario():
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
        defenses=("dapp",),
    )
    scenario.publish_app(TARGET, label="Victim")
    return scenario


def test_kill_requires_permission():
    scenario = build_scenario()
    with pytest.raises(SecurityException):
        scenario.system.ams.kill_background_processes(
            scenario.attacker.caller, scenario.dapp.package
        )


def test_foreground_dapp_survives_kill_and_detects():
    scenario = build_scenario()
    killer = killer_caller(scenario)
    killed = scenario.system.ams.kill_background_processes(
        killer, scenario.dapp.package
    )
    assert not killed                      # startForeground saved it
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    assert scenario.dapp.detected          # still watching, still detects


def test_background_dapp_is_killable_and_goes_blind():
    scenario = build_scenario()
    scenario.dapp.foreground_service = False  # DAPP 'forgot' startForeground
    killer = killer_caller(scenario)
    killed = scenario.system.ams.kill_background_processes(
        killer, scenario.dapp.package
    )
    assert killed
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    assert not scenario.dapp.detected      # observers died with the process


def test_kill_unknown_package_is_noop():
    scenario = build_scenario()
    killer = killer_caller(scenario)
    assert not scenario.system.ams.kill_background_processes(
        killer, "com.not.running"
    )


def test_foreground_activity_not_killable():
    scenario = build_scenario()
    killer = killer_caller(scenario)
    scenario.system.ams.bring_to_foreground(scenario.dapp.package)
    scenario.dapp.foreground_service = False
    assert not scenario.system.ams.kill_background_processes(
        killer, scenario.dapp.package
    )
