"""Tests for the DAPP user-level defense."""

import pytest

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    DTIgniteInstaller,
    NaiveSdcardInstaller,
    XiaomiInstaller,
)

TARGET = "com.victim.app"


def scenario_with_dapp(installer_cls, attacker_cls=None):
    factory = None
    if attacker_cls is not None:
        factory = lambda s: attacker_cls(fingerprint_for(installer_cls))
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=factory,
        defenses=("dapp",),
    )
    scenario.publish_app(TARGET, label="Victim")
    return scenario


@pytest.mark.parametrize("installer_cls", [
    AmazonInstaller, DTIgniteInstaller, XiaomiInstaller,
])
def test_detects_fileobserver_hijack(installer_cls):
    scenario = scenario_with_dapp(installer_cls, FileObserverHijacker)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked       # DAPP detects, it does not prevent
    assert scenario.dapp.detected
    assert any("replacement" in alarm for alarm in scenario.dapp.report.alarms)


def test_detects_wait_and_see_move(installer_cls=DTIgniteInstaller):
    scenario = scenario_with_dapp(installer_cls, WaitAndSeeHijacker)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    assert scenario.dapp.detected
    assert any("MOVED_TO" in alarm for alarm in scenario.dapp.report.alarms)


def test_signature_mismatch_reported_at_install():
    scenario = scenario_with_dapp(AmazonInstaller, FileObserverHijacker)
    scenario.run_install(TARGET)
    assert any(
        "certificate" in alarm and "differs" in alarm
        for alarm in scenario.dapp.report.alarms
    )


def test_no_false_positive_on_benign_install():
    scenario = scenario_with_dapp(AmazonInstaller)
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install
    assert not scenario.dapp.detected


def test_no_false_positive_on_xiaomi_rename_dance():
    """The tmp-name rename is benign and must not alarm."""
    scenario = scenario_with_dapp(XiaomiInstaller)
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install
    assert not scenario.dapp.detected


def test_no_false_positive_on_updates():
    scenario = scenario_with_dapp(AmazonInstaller)
    scenario.run_install(TARGET)
    scenario.publish_app(TARGET, version=2)
    scenario.run_install(TARGET)
    assert not scenario.dapp.detected


def test_protects_installers_without_integrity_checks():
    """Section V-B: DAPP covers installers that skip the hash check."""
    scenario = scenario_with_dapp(NaiveSdcardInstaller, FileObserverHijacker)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    assert scenario.dapp.detected


def test_grabs_signature_at_download_completion():
    scenario = scenario_with_dapp(AmazonInstaller)
    scenario.run_install(TARGET)
    assert TARGET in scenario.dapp.grabbed_packages()


def test_runs_as_foreground_service():
    """startForeground protects DAPP from KILL_BACKGROUND_PROCESSES."""
    scenario = scenario_with_dapp(AmazonInstaller)
    assert scenario.dapp.foreground_service


def test_dapp_is_unprivileged():
    scenario = scenario_with_dapp(AmazonInstaller)
    granted = scenario.system.pms.require_package(
        scenario.dapp.package
    ).permissions.granted
    assert "android.permission.INSTALL_PACKAGES" not in granted


def test_no_false_positive_on_fixed_path_updates():
    """Regression: stores with a fixed staging path (DTIgnite) re-download
    over a consumed stage on updates; the DELETE + fresh CLOSE_WRITE of
    that housekeeping must not alarm."""
    scenario = scenario_with_dapp(DTIgniteInstaller)
    scenario.run_install(TARGET)
    scenario.publish_app(TARGET, version=2)
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install
    assert not scenario.dapp.detected


def test_update_swap_blocked_by_cert_continuity_and_still_alarmed():
    """Attacking the *update* of a genuinely installed app fails at the
    PMS (certificate continuity) — and DAPP still alarms on the swap."""
    scenario = scenario_with_dapp(DTIgniteInstaller, FileObserverHijacker)
    first = scenario.run_install(TARGET, arm_attacker=False)
    assert first.clean_install
    scenario.publish_app(TARGET, version=2)
    outcome = scenario.run_install(TARGET)
    assert not outcome.hijacked                # continuity held
    installed = scenario.system.pms.require_package(TARGET)
    assert installed.version_code == 1         # the update was refused
    assert installed.certificate.owner == "legit-developer"
    assert scenario.dapp.detected              # the race was still seen
