"""DAPP covering multiple stores' staging directories at once."""

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller, DTIgniteInstaller

TARGET = "com.victim.app"


def test_dapp_watches_attached_stores_too():
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)   # attacker targets store #2
        ),
        defenses=("dapp",),
    )
    dtignite = scenario.attach_installer(DTIgniteInstaller)
    scenario.publish_app(TARGET, installer=dtignite)
    outcome = scenario.run_install(TARGET, installer=dtignite)
    assert outcome.hijacked
    assert scenario.dapp.detected


def test_dapp_still_clean_across_benign_multistore_traffic():
    scenario = Scenario.build(installer=AmazonInstaller, defenses=("dapp",))
    dtignite = scenario.attach_installer(DTIgniteInstaller)
    scenario.publish_app("com.a")
    scenario.publish_app("com.b", installer=dtignite)
    assert scenario.run_install("com.a").clean_install
    assert scenario.run_install("com.b", installer=dtignite).clean_install
    assert not scenario.dapp.detected


def test_dapp_grabs_signatures_from_both_stores():
    scenario = Scenario.build(installer=AmazonInstaller, defenses=("dapp",))
    dtignite = scenario.attach_installer(DTIgniteInstaller)
    scenario.publish_app("com.a")
    scenario.publish_app("com.b", installer=dtignite)
    scenario.run_install("com.a")
    scenario.run_install("com.b", installer=dtignite)
    assert set(scenario.dapp.grabbed_packages()) == {"com.a", "com.b"}
