"""Tests for the system-level FUSE DAC defense."""

import pytest

from repro.errors import AccessDenied
from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.scenario import Scenario
from repro.defenses.fuse_dac import HardenedFuseDaemon, install_fuse_dac
from repro.installers import AmazonInstaller, BaiduInstaller, DTIgniteInstaller

TARGET = "com.victim.app"


def defended_scenario(installer_cls, attacker_cls):
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=lambda s: attacker_cls(fingerprint_for(installer_cls)),
        defenses=("fuse-dac",),
    )
    scenario.publish_app(TARGET, label="Victim")
    return scenario


@pytest.mark.parametrize("installer_cls", [
    AmazonInstaller, BaiduInstaller, DTIgniteInstaller,
])
def test_prevents_fileobserver_hijack(installer_cls):
    scenario = defended_scenario(installer_cls, FileObserverHijacker)
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install
    assert scenario.fuse_dac.report.prevented
    assert scenario.attacker.blocked


def test_prevents_wait_and_see_move(installer_cls=DTIgniteInstaller):
    scenario = defended_scenario(installer_cls, WaitAndSeeHijacker)
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install
    assert scenario.fuse_dac.report.prevented


def test_apk_mode_is_640_on_create():
    scenario = defended_scenario(AmazonInstaller, FileObserverHijacker)
    scenario.run_install(TARGET)
    apk_paths = list(scenario.fuse_dac.apk_list)
    assert apk_paths
    for path in apk_paths:
        if scenario.system.fs.exists(path):
            assert scenario.system.fs.stat(path).mode == 0o640


def test_owner_can_still_rewrite_own_apk(system):
    daemon = install_fuse_dac(system)
    from repro.android.filesystem import Caller
    owner = Caller(uid=10042, package="com.owner", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    system.fs.makedirs("/sdcard/store", owner)
    system.fs.write_bytes("/sdcard/store/a.apk", owner, b"v1")
    system.fs.write_bytes("/sdcard/store/a.apk", owner, b"v2")
    assert system.fs.read_bytes("/sdcard/store/a.apk", owner) == b"v2"


def test_non_owner_write_blocked_despite_permission(system):
    daemon = install_fuse_dac(system)
    from repro.android.filesystem import Caller
    owner = Caller(uid=10042, package="com.owner", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    attacker = Caller(uid=10066, package="com.evil", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    system.fs.makedirs("/sdcard/store", owner)
    system.fs.write_bytes("/sdcard/store/a.apk", owner, b"v1")
    with pytest.raises(AccessDenied):
        system.fs.write_bytes("/sdcard/store/a.apk", attacker, b"evil")
    with pytest.raises(AccessDenied):
        system.fs.unlink("/sdcard/store/a.apk", attacker)


def test_non_apk_files_unaffected(system):
    daemon = install_fuse_dac(system)
    from repro.android.filesystem import Caller
    alice = Caller(uid=10042, package="com.a", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    bob = Caller(uid=10043, package="com.b", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    system.fs.write_bytes("/sdcard/photo.jpg", alice, b"img")
    system.fs.write_bytes("/sdcard/photo.jpg", bob, b"img2")  # still allowed
    assert system.fs.read_bytes("/sdcard/photo.jpg", bob) == b"img2"


def test_rename_guard_blocks_path_alteration(system):
    """The handle_rename/APK-list guard against moving the whole dir."""
    daemon = install_fuse_dac(system)
    from repro.android.filesystem import Caller
    owner = Caller(uid=10042, package="com.owner", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    attacker = Caller(uid=10066, package="com.evil", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    system.fs.makedirs("/sdcard/store", owner)
    system.fs.write_bytes("/sdcard/store/a.apk", owner, b"v1")
    with pytest.raises(AccessDenied):
        system.fs.rename("/sdcard/store", "/sdcard/elsewhere", attacker)
    with pytest.raises(AccessDenied):
        system.fs.rename("/sdcard/store/a.apk", "/sdcard/b.apk", attacker)
    assert daemon.report.prevented


def test_owner_rename_keeps_protection(system):
    daemon = install_fuse_dac(system)
    from repro.android.filesystem import Caller
    owner = Caller(uid=10042, package="com.owner", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    system.fs.makedirs("/sdcard/store", owner)
    system.fs.write_bytes("/sdcard/store/a.apk", owner, b"v1")
    system.fs.rename("/sdcard/store/a.apk", "/sdcard/store/b.apk", owner)
    assert "/sdcard/store/b.apk" in daemon.apk_list
    assert daemon.apk_list["/sdcard/store/b.apk"].owner_uid == 10042


def test_system_can_always_delete(system):
    """Settings (a system process) can free space despite protection."""
    daemon = install_fuse_dac(system)
    from repro.android.filesystem import Caller
    owner = Caller(uid=10042, package="com.owner", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    system.fs.makedirs("/sdcard/store", owner)
    system.fs.write_bytes("/sdcard/store/a.apk", owner, b"v1")
    system.fs.unlink("/sdcard/store/a.apk", system.system_caller)
    assert not system.fs.exists("/sdcard/store/a.apk")
    assert "/sdcard/store/a.apk" not in daemon.apk_list


def test_protection_kept_after_install():
    """The access setting survives installation for future re-installs."""
    scenario = defended_scenario(DTIgniteInstaller, FileObserverHijacker)
    scenario.run_install(TARGET)
    staged = "/sdcard/DTIgnite/com.victim.app.apk"
    assert staged in scenario.fuse_dac.apk_list
    from repro.android.filesystem import Caller
    with pytest.raises(AccessDenied):
        scenario.system.fs.write_bytes(
            staged, scenario.attacker.caller, b"late tamper"
        )


def test_owner_delete_then_attacker_recreate_takes_ownership(system):
    daemon = install_fuse_dac(system)
    from repro.android.filesystem import Caller
    owner = Caller(uid=10042, package="com.owner", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    other = Caller(uid=10066, package="com.other", permissions=frozenset(
        {"android.permission.WRITE_EXTERNAL_STORAGE"}))
    system.fs.makedirs("/sdcard/store", owner)
    system.fs.write_bytes("/sdcard/store/a.apk", owner, b"v1")
    system.fs.unlink("/sdcard/store/a.apk", owner)
    system.fs.write_bytes("/sdcard/store/a.apk", other, b"theirs")
    assert daemon.apk_list["/sdcard/store/a.apk"].owner_uid == 10066


def test_renamed_tmp_download_is_protected():
    """Regression: the Xiaomi tmp-name dance must not leave the official
    APK untracked (caught by the attack-matrix benchmark).

    The store downloads to ``x.apk.tmp`` (not tracked: not an .apk
    name), then renames it to ``x.apk``; the destination must enter the
    APK list owned by the store, so a subsequent attacker *move* over
    it is refused.
    """
    from repro.attacks.base import fingerprint_for
    from repro.attacks.wait_and_see import WaitAndSeeHijacker
    from repro.core.scenario import Scenario
    from repro.installers import XiaomiInstaller

    scenario = Scenario.build(
        installer=XiaomiInstaller,
        attacker_factory=lambda s: WaitAndSeeHijacker(
            fingerprint_for(XiaomiInstaller)
        ),
        defenses=("fuse-dac",),
    )
    scenario.publish_app("com.victim.app")
    outcome = scenario.run_install("com.victim.app")
    assert outcome.clean_install
    assert scenario.fuse_dac.report.prevented
    staged = "/sdcard/xiaomi-market/com.victim.app.apk"
    assert staged in scenario.fuse_dac.apk_list
