"""Tests for the Hare study and the platform-key study."""

import pytest

from repro.analysis.factory_images import generate_fleet
from repro.analysis.hare_analysis import find_hare_apps, search_images
from repro.analysis.platform_keys import (
    PLATFORM_SIGNED_IN_STORES,
    TEAMVIEWER_PACKAGE,
    analyze,
    generate_appstore_catalogs,
)


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(seed=2016)


@pytest.fixture(scope="module")
def catalogs():
    return generate_appstore_catalogs(seed=2016)


# -- Hare ------------------------------------------------------------------------


def test_sample_images_yield_178_hare_apps(fleet):
    hare_apps = find_hare_apps(fleet)
    assert len(hare_apps) == 178
    assert len({hare.permission for hare in hare_apps}) == 178


def test_search_finds_27763_vulnerable_cases(fleet):
    study = search_images(fleet)
    assert study.total_cases == 27763
    assert study.average_per_image == pytest.approx(23.5, abs=0.1)
    assert len(study.cases_by_image) == 1181


def test_every_search_image_is_samsung(fleet):
    by_id = {image.image_id: image for image in fleet.images}
    assert all(by_id[i].vendor == "samsung" for i in fleet.search_image_ids)


def test_hare_apps_are_platform_signed(fleet):
    by_id = {image.image_id: image for image in fleet.images}
    hare_packages = set(fleet.hare_app_packages)
    for image_id in fleet.sample_image_ids:
        for app in by_id[image_id].apps:
            if app.package in hare_packages:
                assert app.platform_signed


# -- platform keys ------------------------------------------------------------------


def test_one_platform_key_per_vendor(fleet):
    study = analyze(fleet)
    assert study.keys_per_vendor == {"samsung": 1, "xiaomi": 1, "huawei": 1}


def test_platform_package_counts(fleet):
    study = analyze(fleet)
    assert study.distinct_platform_packages == {
        "samsung": 884, "huawei": 301, "xiaomi": 216,
    }


def test_avg_platform_signed_per_image(fleet):
    study = analyze(fleet)
    assert study.avg_platform_signed_per_image["samsung"] == pytest.approx(142, abs=4)
    assert study.avg_platform_signed_per_image["huawei"] == pytest.approx(68, abs=2)
    assert study.avg_platform_signed_per_image["xiaomi"] == pytest.approx(84, abs=2)


def test_appstore_corpus_size(catalogs):
    assert len(catalogs) == 33
    assert sum(catalog.size for catalog in catalogs) == 1_200_000
    assert catalogs[0].name == "google-play"
    assert catalogs[0].size == 400_000


def test_store_signed_counts_match_paper(fleet, catalogs):
    study = analyze(fleet, catalogs)
    assert study.store_signed_counts == PLATFORM_SIGNED_IN_STORES


def test_teamviewer_among_platform_signed(fleet, catalogs):
    study = analyze(fleet, catalogs)
    vulnerable = study.vulnerable_store_apps()
    assert len(vulnerable) == 1
    assert vulnerable[0].package == TEAMVIEWER_PACKAGE
    assert vulnerable[0].vendor == "samsung"


def test_platform_signed_store_apps_have_expected_categories(catalogs):
    categories = {
        entry.category
        for catalog in catalogs
        for entry in catalog.platform_entries
    }
    assert categories <= {"MDM", "remote-support", "VPN", "backup"}


def test_catalogs_deterministic():
    first = generate_appstore_catalogs(seed=4)
    second = generate_appstore_catalogs(seed=4)
    assert (first[3].signers == second[3].signers).all()
