"""Differential property suite: single-pass scanner vs the regex parser.

``reference_smali.parse_program`` is the verbatim pre-optimization
per-line-regex parser.  The production single-pass scanner must agree
with it on *every* program either can see: identical program structure,
identical per-instruction fields, identical lenient-mode unparsed
evidence, and identical strict-mode errors.  The corpus sweeps pin the
hot path; the edge-case section pins the weird inputs the corpora never
produce.
"""

import pytest

from repro.analysis.corpus import (
    corpus_plan,
    scaled_play_spec,
    scaled_preinstalled_spec,
)
from repro.analysis.factory_images import FactoryImagePlan, scaled_image_specs
from repro.analysis.smali import SmaliParseError, parse_program

import reference_smali  # sibling module; pytest puts this dir on sys.path


def assert_programs_identical(text, lenient=True):
    actual = parse_program(text, lenient=lenient)
    expected = reference_smali.parse_program(text, lenient=lenient)
    assert actual.unparsed == expected.unparsed
    assert len(actual.classes) == len(expected.classes)
    for got_class, want_class in zip(actual.classes, expected.classes):
        assert got_class.name == want_class.name
        assert len(got_class.methods) == len(want_class.methods)
        for got, want in zip(got_class.methods, want_class.methods):
            assert got.name == want.name
            assert got.instructions == want.instructions
    return actual


# -- corpus sweeps ----------------------------------------------------------------


def test_scanner_matches_reference_on_play_corpus():
    plan = corpus_plan("play", seed=7, spec=scaled_play_spec(400))
    for index in range(400):
        assert_programs_identical(plan.app_at(index).smali_text)


def test_scanner_matches_reference_on_preinstalled_corpus():
    plan = corpus_plan("preinstalled", seed=7,
                       spec=scaled_preinstalled_spec(200))
    for index in range(200):
        assert_programs_identical(plan.app_at(index).smali_text)


def test_scanner_matches_reference_on_paper_seed_sample():
    # The exact seed the measurement study runs with.
    plan = corpus_plan("play", seed=2016)
    for index in range(0, plan.spec.total, 97):
        assert_programs_identical(plan.app_at(index).smali_text)


def test_scanner_matches_reference_on_image_manifests():
    # Factory-image "apps" have no smali in this model, but their
    # packages feed synthetic manifests elsewhere; cover the plan's
    # metadata-bearing strings through a constructed program per image.
    plan = FactoryImagePlan(seed=2016, specs=scaled_image_specs(60))
    for image in plan.iter_images():
        lines = [".class Lcom/vendor/Manifest;", ".method probe()V"]
        for app in image.apps[:20]:
            lines.append(f'    const-string v0, "{app.package}"')
        lines.append(".end method")
        assert_programs_identical("\n".join(lines))


# -- structural edge cases --------------------------------------------------------


EDGE_PROGRAMS = [
    "",
    "\n\n\n",
    "# just a comment\n   # another",
    ".class LOnly;",
    ".class LA;\n.method m()V\n.end method\n.class LB;\n.method n()V\n"
    "    return-void\n.end method",
    # Directives with and without operands.
    ".class LX;\n.super Ljava/lang/Object;\n.source \"X.java\"\n"
    ".method <init>()V\n    .locals 1\n    .param p1\n    return-void\n"
    ".end method",
    # Every scanner-dispatched opcode family at least once.
    ".class LOps;\n.method ops()V\n"
    "    const-string v0, \"text with spaces, commas\"\n"
    "    const/4 v1, 0x7\n"
    "    const/16 v2, -0x10\n"
    "    move v3, v1\n"
    "    move-object v4, v0\n"
    "    move-result v5\n"
    "    move-result-object v6\n"
    "    new-instance v7, Ljava/io/File;\n"
    "    invoke-direct {v7, v0}, Ljava/io/File;-><init>(Ljava/lang/String;)V\n"
    "    invoke-virtual {v7}, Ljava/io/File;->exists()Z\n"
    "    invoke-static {}, Ljava/lang/Runtime;->getRuntime()Ljava/lang/Runtime;\n"
    "    invoke-interface {v4}, Ljava/lang/CharSequence;->length()I\n"
    "    invoke-super {v7}, Ljava/lang/Object;->hashCode()I\n"
    "    check-cast v4, Ljava/lang/String;\n"
    "    if-eqz v5, :cond_0\n"
    "    goto :goto_0\n"
    "    :cond_0\n"
    "    :goto_0\n"
    "    return-void\n"
    ".end method",
    # Register ranges in invokes.
    ".class LR;\n.method r()V\n"
    "    invoke-virtual/range {v0 .. v5}, La;->b(IIIIII)V\n"
    "    return-void\n.end method",
    # Strings that *look* like other syntax.
    '.class LS;\n.method s()V\n'
    '    const-string v0, ".end method"\n'
    '    const-string v1, "invoke-virtual {v0}, La;->b()V"\n'
    '    const-string v2, ""\n'
    '    const-string v3, "line one\\nline two"\n'
    '    return-void\n.end method',
    # Whitespace torture.
    ".class   LW;\n.method   w()V\n"
    "      const/4    v0,   0x1\n"
    "\t invoke-static   {},   La;->b()V\n"
    "    return-void\n.end method",
    # Unparsable junk in lenient mode.
    ".class LJ;\n.method j()V\n"
    "    not-an-opcode v0, v1\n"
    "    @#$%^&\n"
    "    const/4 v0, 0x1\n"
    ".end method",
    # Code outside any method / class (evidence collection).
    "const/4 v0, 0x1\n.class LLate;\n.method m()V\n    return-void\n"
    ".end method\nstray trailing line",
]


@pytest.mark.parametrize("text", EDGE_PROGRAMS)
def test_scanner_matches_reference_on_edge_programs(text):
    assert_programs_identical(text, lenient=True)


@pytest.mark.parametrize("text", EDGE_PROGRAMS)
def test_scanner_and_reference_agree_on_strict_mode(text):
    try:
        expected = reference_smali.parse_program(text, lenient=False)
        failed = None
    except SmaliParseError as error:
        expected, failed = None, str(error)
    if failed is None:
        actual = parse_program(text, lenient=False)
        assert len(actual.classes) == len(expected.classes)
    else:
        with pytest.raises(SmaliParseError) as caught:
            parse_program(text, lenient=False)
        assert str(caught.value) == failed


def test_invoked_name_matches_reference_resolution():
    text = (
        ".class LN;\n.method n()V\n"
        "    invoke-virtual {v0}, Landroid/content/pm/PackageManager;"
        "->installPackage(Landroid/net/Uri;)V\n"
        "    invoke-static {}, Ljava/lang/Runtime;->exec"
        "(Ljava/lang/String;)Ljava/lang/Process;\n"
        "    return-void\n.end method"
    )
    program = assert_programs_identical(text)
    reference = reference_smali.parse_program(text, lenient=True)
    for got, want in zip(program.classes[0].methods[0].instructions,
                         reference.classes[0].methods[0].instructions):
        assert got.invoked_name == want.invoked_name
        assert got.op == want.op
        assert got.line_no == want.line_no
        assert got.index == want.index
