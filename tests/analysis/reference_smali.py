"""The retained regex smali parser — differential-test reference.

This is the pre-scanner implementation of ``repro.analysis.smali``'s
parse path, kept verbatim as the ground truth for the differential
property suite (``test_smali_differential.py``).  The production
scanner (first-token dispatch + combined rare-form alternation) must
produce the exact same :class:`~repro.analysis.smali.SmaliProgram`
for every input — including lenient-mode ``unparsed`` evidence lines
and the exceptions raised on malformed input.

It reuses the production dataclasses (``Instruction``, ``SmaliMethod``,
``SmaliClass``, ``SmaliProgram``) so programs compare structurally with
plain ``==``; only the parsing strategy differs.

Do not \"fix\" behaviour here: quirks (greedy const-string values,
``int(..., 0)`` rejecting leading zeros, descending register ranges
raising even in lenient mode, prefix-matched directives) are part of
the contract the scanner preserves bug-for-bug.
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

from repro.analysis.smali import (
    Instruction,
    SmaliClass,
    SmaliMethod,
    SmaliProgram,
)
from repro.errors import SmaliParseError

_INVOKE_RE = re.compile(
    r"^invoke-(?:virtual|static|direct|interface|super)(?:/range)?\s*"
    r"\{(?P<regs>[^}]*)\}\s*,\s*(?P<sig>\S.*)$"
)
_CONST_STRING_RE = re.compile(
    r'^const-string(?:/jumbo)?\s+(?P<reg>[vp]\d+)\s*,\s*"(?P<value>.*)"$'
)
_CONST_INT_RE = re.compile(
    r"^const(?:-wide)?(?:/(?:\d+|high16))?\s+(?P<reg>[vp]\d+)\s*,\s*"
    r"(?P<value>-?(?:0x[0-9a-fA-F]+|\d+))(?:L)?$"
)
_MOVE_RE = re.compile(
    r"^move(?:-object|-wide)?(?:/from16|/16)?\s+(?P<dst>[vp]\d+)\s*,\s*(?P<src>[vp]\d+)$"
)
_IGET_RE = re.compile(
    r"^[is]get(?:-object|-boolean|-wide)?\s+(?P<reg>[vp]\d+)\s*,.*$"
)
_RANGE_RE = re.compile(
    r"^(?P<kind>[vp])(?P<start>\d+)\s*\.\.\s*(?P=kind)(?P<stop>\d+)$"
)

_BLOCK_DIRECTIVES = {
    ".annotation": ".end annotation",
    ".subannotation": ".end subannotation",
    ".packed-switch": ".end packed-switch",
    ".sparse-switch": ".end sparse-switch",
    ".array-data": ".end array-data",
}

_SKIP_DIRECTIVES = (
    ".locals", ".registers", ".line", ".param", ".end param", ".prologue",
    ".source", ".super", ".implements", ".field", ".end field",
    ".local", ".end local", ".restart local", ".catch", ".catchall",
)


def _expand_registers(spec: str) -> Tuple[str, ...]:
    spec = spec.strip()
    match = _RANGE_RE.match(spec)
    if match is not None:
        start, stop = int(match.group("start")), int(match.group("stop"))
        if stop < start:
            raise SmaliParseError(f"descending register range {spec!r}")
        kind = match.group("kind")
        return tuple(f"{kind}{n}" for n in range(start, stop + 1))
    return tuple(reg.strip() for reg in spec.split(",") if reg.strip())


def parse_program(text: str, lenient: bool = False) -> SmaliProgram:
    """Reference parse: the original per-line regex cascade."""
    program = SmaliProgram()
    current_class: Optional[SmaliClass] = None
    current_method: Optional[SmaliMethod] = None
    block_end: Optional[str] = None
    block_depth = 0
    block_start: Optional[str] = None
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if block_end is not None:
            if line == block_end:
                block_depth -= 1
                if block_depth == 0:
                    block_end = block_start = None
            elif block_start is not None and line.startswith(block_start):
                block_depth += 1
            continue
        if line.startswith(".class"):
            current_class = SmaliClass(name=line.split(None, 1)[1])
            program.classes.append(current_class)
            current_method = None
            continue
        if line.startswith(".method"):
            if current_class is None:
                if lenient:
                    program.unparsed.append((line_no, line))
                    current_class = SmaliClass(name="<anonymous>")
                    program.classes.append(current_class)
                else:
                    raise SmaliParseError(
                        f"line {line_no}: method outside class")
            current_method = SmaliMethod(name=line.split(None, 1)[1])
            current_class.methods.append(current_method)
            continue
        if line.startswith(".end method"):
            current_method = None
            continue
        matched_block = next(
            (d for d in _BLOCK_DIRECTIVES
             if line == d or line.startswith(d + " ")), None)
        if matched_block is not None:
            block_start = matched_block
            block_end = _BLOCK_DIRECTIVES[matched_block]
            block_depth = 1
            continue
        if any(line == d or line.startswith(d + " ")
               for d in _SKIP_DIRECTIVES):
            continue
        if current_method is None:
            if lenient:
                program.unparsed.append((line_no, line))
                continue
            raise SmaliParseError(f"line {line_no}: instruction outside method")
        instruction = _parse_instruction(
            line, line_no, index=len(current_method.instructions),
            lenient=lenient)
        if instruction is None:
            program.unparsed.append((line_no, line))
        else:
            current_method.instructions.append(instruction)
    return program


def _parse_instruction(line: str, line_no: int, index: int = -1,
                       lenient: bool = False) -> Optional[Instruction]:
    match = _CONST_STRING_RE.match(line)
    if match:
        return Instruction(op="const-string", line_no=line_no,
                           dest=match.group("reg"),
                           literal=match.group("value"), index=index)
    match = _CONST_INT_RE.match(line)
    if match:
        return Instruction(op="const-int", line_no=line_no,
                           dest=match.group("reg"),
                           literal=int(match.group("value"), 0), index=index)
    match = _MOVE_RE.match(line)
    if match:
        return Instruction(op="move", line_no=line_no, dest=match.group("dst"),
                           sources=(match.group("src"),), index=index)
    match = _INVOKE_RE.match(line)
    if match:
        registers = _expand_registers(match.group("regs"))
        return Instruction(op="invoke", line_no=line_no, sources=registers,
                           method_sig=match.group("sig").strip(), index=index)
    match = _IGET_RE.match(line)
    if match:
        return Instruction(op="iget", line_no=line_no,
                           dest=match.group("reg"), index=index)
    if lenient:
        return None
    raise SmaliParseError(f"line {line_no}: cannot parse {line!r}")
