"""Tests for the hardcoded-redirect scan (Table IV)."""

import pytest

from repro.analysis.corpus import (
    CorpusApp,
    GroundTruth,
    MARKET_SCHEME,
    PLAY_URL,
    generate_play_corpus,
)
from repro.analysis.redirect_scan import scan_app, scan_corpus


def make_app(smali):
    return CorpusApp(
        package="com.hand.crafted",
        category="TOOLS",
        truth=GroundTruth.NON_INSTALLER,
        declared_permissions=frozenset(),
        smali_text=smali,
    )


def test_scan_finds_play_url():
    app = make_app(
        '.class La;\n.method m()V\n'
        f'const-string v1, "{PLAY_URL}com.target.app"\n.end method'
    )
    result = scan_app(app)
    assert result.count == 1
    assert result.targets == ("com.target.app",)
    assert result.single_predictable_target


def test_scan_finds_market_scheme():
    app = make_app(
        '.class La;\n.method m()V\n'
        f'const-string v1, "{MARKET_SCHEME}com.x"\n.end method'
    )
    assert scan_app(app).count == 1


def test_scan_ignores_other_urls():
    app = make_app(
        '.class La;\n.method m()V\n'
        'const-string v1, "https://example.com/page"\n.end method'
    )
    assert scan_app(app).count == 0


def test_scan_counts_multiple():
    lines = [".class La;", ".method m()V"]
    for index in range(5):
        lines.append(f'const-string v{index}, "{PLAY_URL}com.t{index}"')
    lines.append(".end method")
    app = make_app("\n".join(lines))
    result = scan_app(app)
    assert result.count == 5
    assert not result.single_predictable_target


@pytest.fixture(scope="module")
def study():
    return scan_corpus(generate_play_corpus(seed=2016))


def test_table_iv_buckets_match_paper(study):
    buckets = study.table_iv_row()
    assert buckets[1] == (723, pytest.approx(0.0567, abs=0.0005))
    assert buckets[2][0] == 1405
    assert buckets[4][0] == 2090
    assert buckets[8][0] == 2337


def test_redirecting_fraction_matches_847_percent(study):
    assert study.apps_with_any() == 10799
    assert study.apps_with_any() / study.corpus_size == pytest.approx(0.847, abs=0.001)


def test_easy_targets_are_single_url_apps(study):
    easy = study.easy_targets()
    assert len(easy) == 723
    assert all(result.count == 1 for result in easy)


def test_single_url_targets_are_predictable(study):
    """The one hardcoded target is a companion of the hosting app."""
    sample = study.easy_targets()[:20]
    assert all(result.targets[0].endswith(".companion") for result in sample)
