"""Pack-format cache: segments, indexes, legacy migration, corruption."""

import json
import os

import pytest

from repro.analysis.cache import PackStore
from repro.analysis.corpus import corpus_plan, scaled_play_spec
from repro.analysis.pipeline import (
    AnalysisCache,
    AnalysisSpec,
    analyze_app,
    run_analysis,
)
from repro.analysis.classifier import InstallerClassifier


def run_serial(spec, shards):
    return run_analysis(spec, shards=shards, backend="serial")


def populate(root, apps=40, seed=7):
    """Analyze ``apps`` Play apps into a cache at ``root``; the keys."""
    cache = AnalysisCache(str(root))
    plan = corpus_plan("play", seed=seed, spec=scaled_play_spec(apps))
    classifier = InstallerClassifier()
    keys = []
    for index in range(apps):
        app = plan.app_at(index)
        key = cache.key_for(app)
        cache.store(key, analyze_app(app, classifier))
        keys.append(key)
    cache.flush()
    return keys


# -- pack round trip --------------------------------------------------------------


def test_pack_round_trip_and_segment_layout(tmp_path):
    keys = populate(tmp_path)
    names = sorted(os.listdir(tmp_path))
    packs = [name for name in names if name.endswith(".pack")]
    idxs = [name for name in names if name.endswith(".idx")]
    assert len(packs) == len(idxs) == 1
    # No legacy per-app fanout directories are created anymore.
    assert not [name for name in names if os.path.isdir(tmp_path / name)]
    fresh = AnalysisCache(str(tmp_path))
    assert fresh.segment_count == 1
    for key in keys:
        record = fresh.load(key)
        assert record is not None and record.instructions > 0
    assert fresh.load("ff" * 32) is None


def test_iter_entries_covers_pack_legacy_and_buffer(tmp_path):
    keys = populate(tmp_path, apps=10)
    cache = AnalysisCache(str(tmp_path))
    seen = {key for key, _versions, _record in cache.iter_entries()}
    assert seen == set(keys)
    # Every entry carries the versions map the loader validates.
    for _key, versions, record in cache.iter_entries():
        assert "redirect" in versions
        assert isinstance(record["package"], str)


def test_flush_is_idempotent_and_content_addressed(tmp_path):
    populate(tmp_path, apps=10, seed=7)
    first = sorted(os.listdir(tmp_path))
    # Re-analyzing the identical content produces the identical segment
    # name, so the re-flush replaces rather than duplicates.
    populate(tmp_path, apps=10, seed=7)
    assert sorted(os.listdir(tmp_path)) == first


def test_put_rotates_past_record_cap(tmp_path):
    store = PackStore(str(tmp_path), rotate_records=4)
    for index in range(10):
        key = f"{index:02x}" * 32
        store.put(key, {"key": key, "value": index})
    store.flush()
    packs = [name for name in os.listdir(tmp_path)
             if name.endswith(".pack")]
    assert len(packs) == 3  # 4 + 4 + 2
    fresh = PackStore(str(tmp_path))
    for index in range(10):
        key = f"{index:02x}" * 32
        assert fresh.get(key) == {"key": key, "value": index}


# -- legacy per-app layout --------------------------------------------------------


def _demote_to_legacy(root):
    """Rewrite a packed cache as the old ``key[:2]/<key>.json`` layout."""
    store = PackStore(str(root))
    payloads = list(store.iter_payloads())
    assert payloads
    for name in list(os.listdir(root)):
        if name.endswith((".pack", ".idx")):
            os.unlink(os.path.join(root, name))
    for payload in payloads:
        key = payload["key"]
        shard_dir = root / key[:2]
        shard_dir.mkdir(exist_ok=True)
        (shard_dir / (key + ".json")).write_text(
            json.dumps(payload, sort_keys=True))


def test_legacy_cache_warm_runs_zero_apps(tmp_path):
    spec = AnalysisSpec(corpus="play", apps=120, cache_dir=str(tmp_path))
    cold = run_serial(spec, shards=3)
    assert cold.cache_misses == 120
    _demote_to_legacy(tmp_path)
    warm = run_serial(spec, shards=5)
    assert (warm.cache_hits, warm.cache_misses) == (120, 0)
    assert warm.stats.identity_tuple() == cold.stats.identity_tuple()


def test_mixed_legacy_and_pack_entries_both_hit(tmp_path):
    keys = populate(tmp_path, apps=20)
    _demote_to_legacy(tmp_path)
    # New analyses land in a fresh segment beside the legacy files.
    more = populate(tmp_path, apps=30)
    cache = AnalysisCache(str(tmp_path))
    for key in set(keys) | set(more):
        assert cache.load(key) is not None
    assert ({key for key, _v, _r in cache.iter_entries()}
            == set(keys) | set(more))


# -- corruption -------------------------------------------------------------------


def _segment_paths(root):
    return sorted(str(root / name) for name in os.listdir(root)
                  if name.endswith(".pack"))


def test_missing_index_is_rebuilt_from_segment(tmp_path):
    keys = populate(tmp_path, apps=15)
    for name in os.listdir(tmp_path):
        if name.endswith(".idx"):
            os.unlink(tmp_path / name)
    fresh = AnalysisCache(str(tmp_path))
    assert fresh.segment_count == 1
    for key in keys:
        assert fresh.load(key) is not None


def test_torn_segment_tail_drops_only_the_tail(tmp_path):
    keys = populate(tmp_path, apps=15)
    (path,) = _segment_paths(tmp_path)
    blob = open(path, "rb").read()
    open(path, "wb").write(blob[:len(blob) - 40])  # tear the last record
    for name in os.listdir(tmp_path):
        if name.endswith(".idx"):
            os.unlink(tmp_path / name)
    fresh = AnalysisCache(str(tmp_path))
    loaded = sum(1 for key in keys if fresh.load(key) is not None)
    assert loaded == len(keys) - 1


def test_flipped_payload_byte_reads_as_miss(tmp_path):
    keys = populate(tmp_path, apps=5)
    (path,) = _segment_paths(tmp_path)
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF  # corrupt the final payload byte
    open(path, "wb").write(bytes(blob))
    fresh = AnalysisCache(str(tmp_path))
    loaded = sum(1 for key in keys if fresh.load(key) is not None)
    assert loaded == len(keys) - 1


def test_foreign_file_with_pack_suffix_is_ignored(tmp_path):
    populate(tmp_path, apps=5)
    (tmp_path / "seg-feedface00000000.pack").write_bytes(b"not a pack")
    fresh = AnalysisCache(str(tmp_path))
    assert fresh.segment_count == 1


def test_sharded_cold_run_writes_one_segment_per_shard(tmp_path):
    spec = AnalysisSpec(corpus="play", apps=200, cache_dir=str(tmp_path))
    run_serial(spec, shards=4)
    assert len(_segment_paths(tmp_path)) == 4
    warm = run_serial(spec, shards=4)
    assert (warm.cache_hits, warm.cache_misses) == (200, 0)
