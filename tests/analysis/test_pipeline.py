"""Tests for the sharded measurement pipeline (repro.analysis.pipeline).

The load-bearing contract: for ANY shard/worker split, the merged
stats, the rendered tables, and the exported trace records are
identical to a serial run — and the serial run agrees with the
measurement layer's existing single-process tables.
"""

import json

import pytest

from repro.analysis import classifier as classifier_mod
from repro.analysis.factory_images import generate_fleet
from repro.analysis.hare_analysis import search_images
from repro.analysis.pipeline import (
    AnalysisCache,
    AnalysisSpec,
    AnalysisStats,
    merge_analysis_stats,
    run_analysis,
    table2_counts,
    table3_counts,
    table4_counts,
    table5_counts,
)
from repro.errors import ReproError
from repro.measurement.tables import (
    compute_table2,
    compute_table3,
    compute_table4,
    compute_table5,
)


def run_serial(spec, shards=1):
    return run_analysis(spec, shards=shards, backend="serial")


# -- mergeable tallies ------------------------------------------------------------


def test_stats_merge_is_associative_with_identity():
    a = AnalysisStats(counters={"apps": 1, "x": 2}, sets={"s": {"p"}})
    b = AnalysisStats(counters={"apps": 3}, sets={"s": {"q"}, "t": {"r"}})
    c = AnalysisStats(counters={"x": 5})
    left = merge_analysis_stats([merge_analysis_stats([a, b]), c])
    right = merge_analysis_stats([a, merge_analysis_stats([b, c])])
    assert left.identity_tuple() == right.identity_tuple()
    with_identity = merge_analysis_stats([AnalysisStats(), a])
    assert with_identity.identity_tuple() == a.identity_tuple()


# -- golden sharded-vs-serial equality on both paper corpora ----------------------


@pytest.fixture(scope="module")
def play_report():
    return run_serial(AnalysisSpec(corpus="play"), shards=4)


@pytest.fixture(scope="module")
def preinstalled_report():
    return run_serial(AnalysisSpec(corpus="preinstalled"), shards=4)


def test_play_pipeline_matches_measurement_tables(play_report):
    counts = table2_counts(play_report.stats)
    table2 = compute_table2()
    assert counts["total"] == table2.corpus_size == 12750
    assert counts["installers"] == table2.installers == 1493
    assert counts["vulnerable"] == table2.vulnerable == 779
    assert counts["secure"] == table2.secure == 152
    assert counts["unknown"] == table2.unknown == 562
    assert counts["write_external"] == table2.write_external == 8721
    table4 = compute_table4()
    assert table4_counts(play_report.stats) == {
        limit: count for limit, (count, _share) in table4.buckets.items()
    }
    assert (play_report.stats.count("redirect/apps_with_any")
            == table4.redirecting == 10799)


def test_preinstalled_pipeline_matches_measurement_tables(preinstalled_report):
    counts = table3_counts(preinstalled_report.stats)
    table3 = compute_table3()
    assert counts["total"] == table3.corpus_size == 1613
    assert counts["installers"] == table3.installers == 238
    assert counts["vulnerable"] == table3.vulnerable == 102
    assert counts["secure"] == table3.secure == 3
    assert counts["unknown"] == table3.unknown == 133
    assert counts["instances"] == 12050
    assert counts["write_external_instances"] == 5864


@pytest.mark.parametrize("corpus", ["play", "preinstalled"])
@pytest.mark.parametrize("shards", [1, 3, 8])
def test_sharded_equals_serial_on_paper_corpora(corpus, shards, play_report,
                                                preinstalled_report):
    golden = play_report if corpus == "play" else preinstalled_report
    report = run_serial(AnalysisSpec(corpus=corpus), shards=shards)
    assert report.stats.identity_tuple() == golden.stats.identity_tuple()
    assert report.render() == golden.render()


def test_process_backend_equals_serial():
    spec = AnalysisSpec(corpus="play", apps=2000)
    serial = run_serial(spec, shards=1)
    pooled = run_analysis(spec, shards=5, workers=2, backend="process")
    assert pooled.stats.identity_tuple() == serial.stats.identity_tuple()
    assert pooled.render() == serial.render()


# -- trace byte-identity across splits --------------------------------------------


def test_trace_records_identical_for_any_split():
    spec = AnalysisSpec(corpus="play", apps=600, observe=True)
    baseline = run_serial(spec, shards=1).trace_records()
    assert baseline, "observe=True must record spans"
    for shards in (2, 5, 9):
        records = run_serial(spec, shards=shards).trace_records()
        assert records == baseline
    # Byte-identical once serialized, not merely equal as objects.
    as_json = [json.dumps(record, sort_keys=True) for record in baseline]
    again = [json.dumps(record, sort_keys=True)
             for record in run_serial(spec, shards=7).trace_records()]
    assert again == as_json


def test_trace_spans_use_global_app_index_as_time():
    spec = AnalysisSpec(corpus="play", apps=50, observe=True)
    records = run_serial(spec, shards=3).trace_records()
    starts = [record["start_ns"] for record in records]
    assert starts == [index * 1000 for index in range(50)]
    assert all("shard" not in record for record in records)


# -- the images corpus (hare + platform keys + Table V) ---------------------------


@pytest.fixture(scope="module")
def images_report():
    return run_serial(AnalysisSpec(corpus="images"), shards=6)


def test_images_pipeline_matches_table5(images_report):
    expected = {
        row.installer_package: (row.image_count, len(row.carriers),
                                len(row.vendors), row.models)
        for row in compute_table5(generate_fleet(2016)).rows
    }
    for package, counts in table5_counts(images_report.stats).items():
        assert (counts["images"], counts["carriers"], counts["vendors"],
                counts["models"]) == expected[package]


def test_images_pipeline_matches_hare_study(images_report):
    study = search_images(generate_fleet(2016))
    assert images_report.stats.count("hare/cases") == study.total_cases == 27763
    assert (images_report.stats.cardinality("hare/apps")
            == len(study.hare_apps) == 178)
    assert images_report.stats.count("hare/searched_images") == 1181


def test_images_sharding_is_split_invariant(images_report):
    other = run_serial(AnalysisSpec(corpus="images"), shards=13)
    assert other.stats.identity_tuple() == images_report.stats.identity_tuple()


def test_scaled_images_corpus_shards_by_global_index():
    spec = AnalysisSpec(corpus="images", apps=150)
    serial = run_serial(spec, shards=1)
    assert serial.stats.count("images") == 150
    for shards in (4, 7):
        assert (run_serial(spec, shards=shards).stats.identity_tuple()
                == serial.stats.identity_tuple())


# -- the content-addressed cache --------------------------------------------------


def test_warm_cache_reanalyzes_nothing(tmp_path):
    spec = AnalysisSpec(corpus="play", apps=300, cache_dir=str(tmp_path))
    cold = run_serial(spec, shards=2)
    assert (cold.cache_hits, cold.cache_misses) == (0, 300)
    warm = run_serial(spec, shards=5)  # different split, same cache
    assert (warm.cache_hits, warm.cache_misses) == (300, 0)
    assert warm.stats.identity_tuple() == cold.stats.identity_tuple()
    assert warm.trace_records() == cold.trace_records()


def test_detector_version_bump_invalidates_only_consulted_apps(
        tmp_path, monkeypatch):
    spec = AnalysisSpec(corpus="play", apps=400, cache_dir=str(tmp_path))
    cold = run_serial(spec, shards=2)
    # Count apps whose verdict consulted the chmod detector: only
    # installers reach setter analysis, and of those only the ones whose
    # code invokes Runtime.exec.
    cache = AnalysisCache(str(tmp_path))
    consulted = sum(1 for _key, versions, _record in cache.iter_entries()
                    if "chmod" in versions)
    assert 0 < consulted < 400
    monkeypatch.setitem(classifier_mod.DETECTOR_VERSIONS, "chmod", 2)
    warm = run_serial(spec, shards=2)
    assert warm.cache_misses == consulted
    assert warm.cache_hits == 400 - consulted
    assert warm.stats.identity_tuple() == cold.stats.identity_tuple()


def test_cache_rejects_torn_or_foreign_entries(tmp_path):
    cache = AnalysisCache(str(tmp_path))
    key = "ab" + "0" * 62
    path = tmp_path / key[:2] / (key + ".json")
    path.parent.mkdir(parents=True)
    path.write_text("{not json")
    assert cache.load(key) is None
    path.write_text(json.dumps({"schema": 999, "record": {}}))
    assert cache.load(key) is None


# -- spec validation --------------------------------------------------------------


def test_spec_rejects_unknown_corpus_and_bad_sizes():
    with pytest.raises(ReproError):
        AnalysisSpec(corpus="walled-garden")
    with pytest.raises(ReproError):
        AnalysisSpec(corpus="play", apps=0)
    with pytest.raises(ReproError):
        AnalysisSpec(corpus="images", apps=10)  # below the 50-image floor
    with pytest.raises(ReproError):
        AnalysisSpec(corpus="play").shard(0)


def test_scaled_specs_shard_to_exact_totals():
    spec = AnalysisSpec(corpus="play", apps=4097)
    shards = spec.shard(7)
    assert shards[0].start == 0 and shards[-1].stop == 4097
    assert [s.stop - s.start for s in shards] == [586, 586, 585, 585,
                                                  585, 585, 585]
    report = run_serial(spec, shards=7)
    assert report.stats.count("apps") == 4097
