"""Tests for the smali-like IR parser and def-use analysis."""

import pytest

from repro.errors import SmaliParseError
from repro.analysis.smali import parse_program

SAMPLE = """
.class Lcom/example/Foo;
.method install()V
const-string v1, "/sdcard/app.apk"
const/4 v2, 1
move v3, v2
invoke-virtual {v0, v1, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
.end method
.method other()V
const-string v5, "hello"
.end method
"""


def test_parse_classes_and_methods():
    program = parse_program(SAMPLE)
    assert len(program.classes) == 1
    assert program.classes[0].name == "Lcom/example/Foo;"
    assert [m.name for m in program.classes[0].methods] == ["install()V", "other()V"]


def test_string_constants_collected():
    program = parse_program(SAMPLE)
    assert "/sdcard/app.apk" in list(program.all_strings())
    assert "hello" in list(program.all_strings())


def test_contains_string():
    program = parse_program(SAMPLE)
    assert program.contains_string("/sdcard")
    assert not program.contains_string("market://")


def test_invoke_parsed_with_registers_and_name():
    program = parse_program(SAMPLE)
    method = program.classes[0].methods[0]
    invoke = next(method.invokes())
    assert invoke.sources == ("v0", "v1", "v3")
    assert invoke.invoked_name == "openFileOutput"


def test_reaching_def_follows_move_chain():
    program = parse_program(SAMPLE)
    method = program.classes[0].methods[0]
    invoke = next(method.invokes())
    assert method.resolve_argument(invoke, 2) == 1   # v3 <- v2 <- const 1
    assert method.resolve_argument(invoke, 1) == "/sdcard/app.apk"


def test_resolve_unresolvable_returns_none():
    text = """
.class La;
.method m()V
iget v2, v0, La;->mode:I
invoke-virtual {v0, v1, v2}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
.end method
"""
    program = parse_program(text)
    method = program.classes[0].methods[0]
    invoke = next(method.invokes())
    assert method.resolve_argument(invoke, 2) is None  # field load dead-end
    assert method.resolve_argument(invoke, 1) is None  # v1 never defined


def test_resolve_out_of_range_argument():
    program = parse_program(SAMPLE)
    method = program.classes[0].methods[0]
    invoke = next(method.invokes())
    assert method.resolve_argument(invoke, 9) is None


def test_const_int_hex_parsing():
    program = parse_program(
        ".class La;\n.method m()V\nconst/high16 v1, 0x10\n.end method"
    )
    instruction = program.classes[0].methods[0].instructions[0]
    assert instruction.literal == 16


def test_comments_and_blank_lines_ignored():
    program = parse_program(
        ".class La;\n\n# comment\n.method m()V\nconst/4 v0, 1 # inline\n.end method"
    )
    assert len(program.classes[0].methods[0].instructions) == 1


def test_instruction_outside_method_rejected():
    with pytest.raises(SmaliParseError):
        parse_program('.class La;\nconst/4 v0, 1')


def test_method_outside_class_rejected():
    with pytest.raises(SmaliParseError):
        parse_program(".method m()V\n.end method")


def test_garbage_line_rejected():
    with pytest.raises(SmaliParseError):
        parse_program(".class La;\n.method m()V\nwobble v0\n.end method")


def test_invoke_static_form():
    program = parse_program(
        '.class La;\n.method m()V\nconst-string v1, "u"\n'
        "invoke-static {v1}, Lcom/h/Net;->get(Ljava/lang/String;)V\n.end method"
    )
    invoke = next(program.classes[0].methods[0].invokes())
    assert invoke.invoked_name == "get"


def test_const_wide_16_parses():
    program = parse_program(
        ".class La;\n.method m()V\nconst-wide/16 v4, 0x10\n.end method"
    )
    instruction = program.classes[0].methods[0].instructions[0]
    assert instruction.op == "const-int"
    assert instruction.literal == 16


def test_const_16_and_wide_variants_parse():
    text = """
.class La;
.method m()V
const/16 v1, 256
const-wide v2, 0x1234L
const-wide/32 v4, -5
const-wide/high16 v6, 0x4000
.end method
"""
    program = parse_program(text)
    literals = [ins.literal
                for ins in program.classes[0].methods[0].instructions]
    assert literals == [256, 0x1234, -5, 0x4000]


def test_invoke_range_expands_registers():
    text = """
.class La;
.method m()V
const-string v0, "staged.apk"
const/4 v1, 1
invoke-virtual/range {v0 .. v1}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
.end method
"""
    program = parse_program(text)
    method = program.classes[0].methods[0]
    invoke = next(method.invokes())
    assert invoke.sources == ("v0", "v1")
    assert method.resolve_argument(invoke, 1) == 1


def test_invoke_super_and_jumbo_string():
    text = """
.class La;
.method m()V
const-string/jumbo v1, "big"
invoke-super {v0, v1}, Lb;->log(Ljava/lang/String;)V
.end method
"""
    program = parse_program(text)
    method = program.classes[0].methods[0]
    assert method.string_constants() == ["big"]
    assert next(method.invokes()).invoked_name == "log"


def test_annotation_blocks_skipped():
    text = """
.class La;
.annotation system Ldalvik/annotation/MemberClasses;
    value = { La$b; }
.end annotation
.method m()V
.annotation runtime Lc/d;
    .subannotation Le/f;
        x = 1
    .end subannotation
.end annotation
const/4 v0, 1
.end method
"""
    program = parse_program(text)
    assert len(program.classes[0].methods[0].instructions) == 1
    assert not program.unparsed


def test_switch_and_array_data_payloads_skipped():
    text = """
.class La;
.method m()V
const/4 v0, 1
.packed-switch 0x0
    :case_0
    :case_1
.end packed-switch
.array-data 4
    0x1 0x2
.end array-data
.end method
"""
    program = parse_program(text)
    assert len(program.classes[0].methods[0].instructions) == 1


def test_bookkeeping_directives_skipped():
    text = """
.class La;
.super Ljava/lang/Object;
.source "A.java"
.field private mode:I
.method m()V
.locals 3
.param p1, "x"
.prologue
.line 12
const/4 v0, 1
.local v0, "m":I
.end local v0
.restart local v0
.end method
"""
    program = parse_program(text)
    assert len(program.classes[0].methods[0].instructions) == 1


def test_lenient_mode_records_unparsed_lines():
    text = ".class La;\n.method m()V\nwobble v0\nconst/4 v1, 1\n.end method"
    program = parse_program(text, lenient=True)
    assert program.unparsed == [(3, "wobble v0")]
    assert len(program.classes[0].methods[0].instructions) == 1
    # strict mode still refuses the same input
    with pytest.raises(SmaliParseError):
        parse_program(text)


def test_lenient_mode_survives_structure_errors():
    program = parse_program(".method m()V\nconst/4 v0, 1\n.end method",
                            lenient=True)
    assert program.classes[0].name == "<anonymous>"
    assert len(program.unparsed) == 1
    assert program.instruction_count == 1


def test_instruction_index_recorded_at_parse_time():
    program = parse_program(SAMPLE)
    for method in program.all_methods():
        assert [ins.index for ins in method.instructions] == list(
            range(len(method.instructions)))


def test_descending_register_range_rejected():
    with pytest.raises(SmaliParseError):
        parse_program(
            ".class La;\n.method m()V\n"
            "invoke-virtual/range {v5 .. v2}, La;->m()V\n.end method"
        )


def test_latest_definition_wins():
    text = """
.class La;
.method m()V
const/4 v1, 0
const/4 v1, 1
invoke-virtual {v0, v2, v1}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
.end method
"""
    program = parse_program(text)
    method = program.classes[0].methods[0]
    invoke = next(method.invokes())
    assert method.resolve_argument(invoke, 2) == 1
