"""Tests for the factory-image fleet generator."""

import pytest

from repro.analysis.factory_images import (
    ALL_SPECS,
    AMAZON_PKG,
    DTIGNITE_PKG,
    DTIGNITE_CARRIERS,
    HUAWEI_STORE_PKG,
    SPRINTZONE_PKG,
    TOTAL_DISTINCT_APPS,
    XIAOMI_STORE_PKG,
    generate_fleet,
)


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(seed=2016)


def test_image_and_model_counts_match_paper(fleet):
    by_vendor = {spec.vendor: fleet.by_vendor(spec.vendor) for spec in ALL_SPECS}
    assert len(by_vendor["samsung"]) == 1239
    assert len({i.model for i in by_vendor["samsung"]}) == 849
    assert len(by_vendor["xiaomi"]) == 382
    assert len({i.model for i in by_vendor["xiaomi"]}) == 149
    assert len(by_vendor["huawei"]) == 234
    assert len({i.model for i in by_vendor["huawei"]}) == 135


def test_distinct_records_exactly_206674(fleet):
    assert fleet.distinct_records() == TOTAL_DISTINCT_APPS


def test_region_codes_and_countries(fleet):
    assert len({image.region_code for image in fleet.images}) == 231
    assert len({image.country for image in fleet.images}) == 79


def test_platform_package_pools_match_paper(fleet):
    assert len(fleet.distinct_platform_packages("samsung")) == 884
    assert len(fleet.distinct_platform_packages("huawei")) == 301
    assert len(fleet.distinct_platform_packages("xiaomi")) == 216


def test_platform_signed_per_image_near_paper(fleet):
    expectations = {"samsung": 142, "huawei": 68, "xiaomi": 84}
    for vendor, expected in expectations.items():
        images = fleet.by_vendor(vendor)
        average = sum(
            sum(1 for app in image.apps if app.platform_signed)
            for image in images
        ) / len(images)
        assert abs(average - expected) < 4


def test_install_packages_ratio_near_10_percent(fleet):
    targets = {"samsung": 0.0845, "huawei": 0.1032, "xiaomi": 0.1187}
    for vendor, target in targets.items():
        images = fleet.by_vendor(vendor)
        apps = sum(len(image.apps) for image in images)
        privileged = sum(len(image.install_packages_apps()) for image in images)
        assert privileged / apps == pytest.approx(target, abs=0.005)


def test_privilege_count_doubles_over_period(fleet):
    for spec in ALL_SPECS:
        images = fleet.by_vendor(spec.vendor)
        oldest = [i for i in images if i.year_index == 0 and not i.flagship]
        newest = [i for i in images if i.year_index == 3 and not i.flagship]
        avg_old = sum(len(i.install_packages_apps()) for i in oldest) / len(oldest)
        avg_new = sum(len(i.install_packages_apps()) for i in newest) / len(newest)
        assert avg_new >= 1.8 * avg_old


def test_flagships_carry_25_to_31_privileged_apps(fleet):
    flagships = [image for image in fleet.images if image.flagship]
    assert flagships
    for image in flagships:
        count = len(image.install_packages_apps())
        assert 25 <= count <= 31


def test_carrier_installer_placement(fleet):
    amazon_images = fleet.images_with_package(AMAZON_PKG)
    assert amazon_images
    assert all(image.carrier in ("verizon", "uscellular")
               for image in amazon_images)
    assert all(image.vendor == "samsung" for image in amazon_images)
    dtignite_images = fleet.images_with_package(DTIGNITE_PKG)
    assert len({image.carrier for image in dtignite_images}) >= 8
    assert all(image.carrier in DTIGNITE_CARRIERS for image in dtignite_images)
    assert all(image.vendor == "xiaomi"
               for image in fleet.images_with_package(XIAOMI_STORE_PKG))
    assert len(fleet.images_with_package(XIAOMI_STORE_PKG)) == 382
    assert len(fleet.images_with_package(HUAWEI_STORE_PKG)) == 234
    assert all(image.carrier == "sprint"
               for image in fleet.images_with_package(SPRINTZONE_PKG))


def test_carrier_installers_hold_install_packages(fleet):
    for image in fleet.images_with_package(DTIGNITE_PKG)[:10]:
        privileged = {app.package for app in image.install_packages_apps()}
        assert DTIGNITE_PKG in privileged


def test_per_image_app_counts(fleet):
    for spec in ALL_SPECS:
        for image in fleet.by_vendor(spec.vendor)[:20]:
            assert len(image.apps) == spec.apps_per_image


def test_fleet_is_deterministic():
    first = generate_fleet(seed=3)
    second = generate_fleet(seed=3)
    assert first.distinct_records() == second.distinct_records()
    assert [i.carrier for i in first.images[:50]] == [
        i.carrier for i in second.images[:50]
    ]


# -- the index-addressable plan (scaled fleets) -----------------------------------


def test_plan_at_paper_scale_matches_generate_fleet(fleet):
    from repro.analysis.factory_images import FactoryImagePlan

    plan = FactoryImagePlan(seed=2016)
    assert plan.total == 1855
    for index in (0, 700, 1238, 1239, 1620, 1621, 1854):
        image = plan.image_at(index)
        reference = fleet.images[index]
        assert (image.vendor, image.model, image.carrier,
                image.region_code, image.year_index, image.flagship) == (
            reference.vendor, reference.model, reference.carrier,
            reference.region_code, reference.year_index, reference.flagship)
        assert ([app.record_id for app in image.apps]
                == [app.record_id for app in reference.apps])
    planned = plan.fleet()
    assert planned.sample_image_ids == fleet.sample_image_ids
    assert planned.search_image_ids == fleet.search_image_ids
    assert planned.distinct_records() == fleet.distinct_records()


def test_scaled_image_specs_preserve_vendor_mix():
    from repro.analysis.factory_images import paper_image_total, scaled_image_specs
    from repro.errors import CorpusError

    assert scaled_image_specs(paper_image_total()) is ALL_SPECS
    for total in (50, 200, 1855, 4000, 10000):
        scaled = scaled_image_specs(total)
        assert sum(spec.image_count for spec in scaled) == total
        for spec, base in zip(scaled, ALL_SPECS):
            assert spec.vendor == base.vendor
            assert spec.model_count == base.model_count
            assert spec.apps_per_image == base.apps_per_image
            assert spec.platform_package_pool == base.platform_package_pool
    # The three vendors keep (roughly) the paper's 67/21/13 percent mix.
    scaled = scaled_image_specs(1000)
    assert [spec.image_count for spec in scaled] == [668, 206, 126]
    with pytest.raises(CorpusError):
        scaled_image_specs(49)


def test_scaled_fleet_keeps_traits_and_hare_density():
    from repro.analysis.factory_images import (
        HARE_APP_COUNT,
        HARE_SAMPLE_IMAGES,
        scaled_image_specs,
    )

    scaled = generate_fleet(seed=2016, specs=scaled_image_specs(300))
    assert len(scaled.images) == 300
    samsung = scaled.by_vendor("samsung")
    assert len(scaled.search_image_ids) == len(samsung) - HARE_SAMPLE_IMAGES
    assert len(scaled.hare_permissions) == HARE_APP_COUNT
    for image in scaled.images:
        spec = next(s for s in ALL_SPECS if s.vendor == image.vendor)
        assert len(image.apps) == spec.apps_per_image
    # Hare density stays at the paper's ~23.5 cases per searched image.
    search = {image.image_id: image for image in samsung}
    cases = 0
    for image_id in scaled.search_image_ids:
        defined = search[image_id].defined_permissions()
        cases += sum(1 for permission in scaled.hare_permissions
                     if permission not in defined)
    assert cases / len(scaled.search_image_ids) == pytest.approx(23.5, abs=0.6)
