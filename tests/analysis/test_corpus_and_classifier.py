"""Tests for corpus generation and the installer classifier.

These verify both the *analysis logic* (on handcrafted apps) and the
*calibration* (on the full generated corpora, matching the paper).
"""

import pytest

from repro.analysis.classifier import Category, InstallerClassifier
from repro.analysis.corpus import (
    CorpusApp,
    GroundTruth,
    INSTALL_MARKER,
    PlayCorpusSpec,
    PreinstalledCorpusSpec,
    SECURE_PREINSTALLED_PACKAGES,
    WRITE_EXTERNAL,
    generate_play_corpus,
    generate_preinstalled_corpus,
)


@pytest.fixture(scope="module")
def play_corpus():
    return generate_play_corpus(seed=2016)


@pytest.fixture(scope="module")
def preinstalled_corpus():
    return generate_preinstalled_corpus(seed=2016)


@pytest.fixture(scope="module")
def classifier():
    return InstallerClassifier()


def make_app(smali, permissions=(WRITE_EXTERNAL,)):
    return CorpusApp(
        package="com.hand.crafted",
        category="TOOLS",
        truth=GroundTruth.NON_INSTALLER,
        declared_permissions=frozenset(permissions),
        smali_text=smali,
    )


# -- unit behaviour on handcrafted apps ------------------------------------------


def test_non_installer_without_marker(classifier):
    app = make_app('.class La;\n.method m()V\nconst-string v1, "x"\n.end method')
    assert classifier.classify(app).category is Category.NOT_AN_INSTALLER


def test_vulnerable_sdcard_installer(classifier):
    smali = f"""
.class La;
.method m()V
const-string v1, "/sdcard/dl/app.apk"
const-string v3, "{INSTALL_MARKER}"
invoke-virtual {{v0, v4, v3}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    result = classifier.classify(make_app(smali))
    assert result.category is Category.POTENTIALLY_VULNERABLE
    assert result.uses_sdcard


def test_sdcard_without_write_permission_is_unknown(classifier):
    smali = f"""
.class La;
.method m()V
const-string v1, "/sdcard/dl/app.apk"
const-string v3, "{INSTALL_MARKER}"
invoke-virtual {{v0, v4, v3}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    result = classifier.classify(make_app(smali, permissions=()))
    assert result.category is Category.UNKNOWN


def test_secure_internal_installer_openfileoutput(classifier):
    smali = f"""
.class La;
.method m()V
const-string v1, "staged.apk"
const/4 v2, 1
invoke-virtual {{v0, v1, v2}}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
const-string v3, "{INSTALL_MARKER}"
invoke-virtual {{v0, v4, v3}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    result = classifier.classify(make_app(smali))
    assert result.category is Category.POTENTIALLY_SECURE
    assert result.sets_world_readable


def test_mode_private_is_not_world_readable(classifier):
    smali = f"""
.class La;
.method m()V
const-string v1, "staged.apk"
const/4 v2, 0
invoke-virtual {{v0, v1, v2}}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
const-string v3, "{INSTALL_MARKER}"
invoke-virtual {{v0, v4, v3}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    result = classifier.classify(make_app(smali))
    assert not result.sets_world_readable
    assert result.category is Category.UNKNOWN


def test_set_readable_true_not_owner_only(classifier):
    smali = f"""
.class La;
.method m()V
const/4 v2, 1
const/4 v3, 0
invoke-virtual {{v1, v2, v3}}, Ljava/io/File;->setReadable(ZZ)Z
const-string v5, "{INSTALL_MARKER}"
invoke-virtual {{v0, v4, v5}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    assert classifier.classify(make_app(smali)).sets_world_readable


def test_set_readable_owner_only_rejected(classifier):
    smali = f"""
.class La;
.method m()V
const/4 v2, 1
const/4 v3, 1
invoke-virtual {{v1, v2, v3}}, Ljava/io/File;->setReadable(ZZ)Z
const-string v5, "{INSTALL_MARKER}"
invoke-virtual {{v0, v4, v5}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    assert not classifier.classify(make_app(smali)).sets_world_readable


def test_chmod_644_detected(classifier):
    smali = f"""
.class La;
.method m()V
const-string v2, "chmod 644 /data/data/a/files/x.apk"
invoke-virtual {{v1, v2}}, Ljava/lang/Runtime;->exec(Ljava/lang/String;)Ljava/lang/Process;
const-string v5, "{INSTALL_MARKER}"
invoke-virtual {{v0, v4, v5}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    assert classifier.classify(make_app(smali)).sets_world_readable


def test_chmod_600_not_world_readable(classifier):
    smali = f"""
.class La;
.method m()V
const-string v2, "chmod 600 /data/data/a/files/x.apk"
invoke-virtual {{v1, v2}}, Ljava/lang/Runtime;->exec(Ljava/lang/String;)Ljava/lang/Process;
const-string v5, "{INSTALL_MARKER}"
invoke-virtual {{v0, v4, v5}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    assert not classifier.classify(make_app(smali)).sets_world_readable


def test_unresolved_mode_forces_unknown(classifier):
    smali = f"""
.class La;
.method m()V
const-string v1, "staged.apk"
iget v2, v0, La;->mode:I
invoke-virtual {{v0, v1, v2}}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
const-string v5, "{INSTALL_MARKER}"
invoke-virtual {{v0, v4, v5}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    result = classifier.classify(make_app(smali))
    assert result.unresolved_setter
    assert result.category is Category.UNKNOWN


def test_get_external_storage_directory_counts_as_sdcard(classifier):
    smali = f"""
.class La;
.method m()V
invoke-static {{}}, Landroid/os/Environment;->getExternalStorageDirectory()Ljava/io/File;
const-string v5, "{INSTALL_MARKER}"
invoke-virtual {{v0, v4, v5}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    assert classifier.classify(make_app(smali)).uses_sdcard


def _setter_app(setter_lines, permissions=(WRITE_EXTERNAL,)):
    """An installer whose only world-readable signal is ``setter_lines``."""
    body = "\n".join(setter_lines)
    smali = f"""
.class La;
.method m()V
{body}
const-string v9, "{INSTALL_MARKER}"
invoke-virtual {{v0, v8, v9}}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
.end method
"""
    return make_app(smali, permissions=permissions)


def test_chmod_four_digit_0640_not_world_readable(classifier):
    app = _setter_app([
        'const-string v2, "chmod 0640 /data/data/a/files/x.apk"',
        "invoke-virtual {v1, v2}, Ljava/lang/Runtime;->exec(Ljava/lang/String;)Ljava/lang/Process;",
    ])
    result = classifier.classify(app)
    assert not result.sets_world_readable
    assert "chmod" in result.detectors


def test_chmod_four_digit_0644_world_readable(classifier):
    app = _setter_app([
        'const-string v2, "chmod 0644 /data/data/a/files/x.apk"',
        "invoke-virtual {v1, v2}, Ljava/lang/Runtime;->exec(Ljava/lang/String;)Ljava/lang/Process;",
    ])
    assert classifier.classify(app).sets_world_readable


def test_set_readable_true_true_is_owner_only(classifier):
    # setReadable(true, true): readable, but for the owner only.
    app = _setter_app([
        "const/4 v2, 1",
        "const/4 v3, 1",
        "invoke-virtual {v1, v2, v3}, Ljava/io/File;->setReadable(ZZ)Z",
    ])
    result = classifier.classify(app)
    assert not result.sets_world_readable
    assert "setReadable" in result.detectors


def test_posix_group_only_permissions_not_world_readable(classifier):
    app = _setter_app([
        'const-string v2, "rw-rw----"',
        "invoke-static {v1, v2}, Ljava/nio/file/Files;->setPosixFilePermissions(Ljava/nio/file/Path;Ljava/util/Set;)Ljava/nio/file/Path;",
    ])
    result = classifier.classify(app)
    assert not result.sets_world_readable
    assert "posix" in result.detectors


def test_posix_other_read_permissions_world_readable(classifier):
    app = _setter_app([
        'const-string v2, "rw-r--r--"',
        "invoke-static {v1, v2}, Ljava/nio/file/Files;->setPosixFilePermissions(Ljava/nio/file/Path;Ljava/util/Set;)Ljava/nio/file/Path;",
    ])
    assert classifier.classify(app).sets_world_readable


def test_marker_inside_url_still_counts_as_installer(classifier):
    # The paper's tool greps for the MIME-type constant; a URL that
    # merely *contains* it is indistinguishable at this layer, so the
    # app lands in the installer population (then: unknown bucket).
    smali = """
.class La;
.method m()V
const-string v1, "https://cdn.example.com/application/vnd.android.package-archive/latest"
.end method
"""
    result = classifier.classify(make_app(smali))
    assert result.has_install_api
    assert result.category is Category.UNKNOWN


# -- seeded validation sampling ---------------------------------------------------


def test_validation_sampling_is_seeded_and_unbiased(classifier):
    corpus = generate_play_corpus(seed=11)
    results = classifier.classify_corpus(corpus)
    first = classifier.validate_against_truth(corpus, results, sample=20,
                                              seed=3)
    again = classifier.validate_against_truth(corpus, results, sample=20,
                                              seed=3)
    assert first == again
    other_seed = classifier.validate_against_truth(corpus, results,
                                                   sample=20, seed=4)
    assert set(other_seed) == set(first)  # same buckets, fresh draw


def test_validation_omits_empty_buckets(classifier):
    app = make_app('.class La;\n.method m()V\nconst-string v1, "x"\n.end method')
    results = classifier.classify_corpus([app])
    precision = classifier.validate_against_truth([app], results)
    assert precision == {}  # no vulnerable/secure apps -> no claims


# -- calibration against the paper's numbers (Tables II / III) --------------------


def test_play_corpus_size_and_permission_count(play_corpus):
    assert len(play_corpus) == 12750
    assert sum(1 for a in play_corpus if a.has_permission(WRITE_EXTERNAL)) == 8721


def test_play_classification_matches_table2(play_corpus, classifier):
    results = classifier.classify_corpus(play_corpus)
    assert results.installers == 1493
    assert results.count(Category.POTENTIALLY_VULNERABLE) == 779
    assert results.count(Category.POTENTIALLY_SECURE) == 152
    assert results.count(Category.UNKNOWN) == 562


def test_play_validation_has_no_false_positives(play_corpus, classifier):
    results = classifier.classify_corpus(play_corpus)
    precision = classifier.validate_against_truth(play_corpus, results)
    assert precision["potentially-vulnerable"] == 1.0
    assert precision["potentially-secure"] == 1.0


def test_preinstalled_classification_matches_table3(preinstalled_corpus,
                                                    classifier):
    results = classifier.classify_corpus(preinstalled_corpus)
    assert len(preinstalled_corpus) == 1613
    assert results.installers == 238
    assert results.count(Category.POTENTIALLY_VULNERABLE) == 102
    assert results.count(Category.POTENTIALLY_SECURE) == 3
    assert results.count(Category.UNKNOWN) == 133


def test_preinstalled_instance_weighted_write_permission(preinstalled_corpus):
    assert sum(a.instances for a in preinstalled_corpus) == 12050
    write_instances = sum(
        a.instances for a in preinstalled_corpus if a.has_permission(WRITE_EXTERNAL)
    )
    assert write_instances == 5864


def test_secure_preinstalled_are_the_papers_three(preinstalled_corpus,
                                                  classifier):
    secure = [
        app.package
        for app in preinstalled_corpus
        if classifier.classify(app).category is Category.POTENTIALLY_SECURE
    ]
    assert sorted(secure) == sorted(SECURE_PREINSTALLED_PACKAGES)


def test_corpus_is_deterministic():
    first = generate_play_corpus(seed=5)
    second = generate_play_corpus(seed=5)
    assert [a.package for a in first[:100]] == [a.package for a in second[:100]]
    assert first[0].smali_text == second[0].smali_text


def test_spec_totals_are_consistent():
    spec = PlayCorpusSpec()
    assert spec.installers == 1493
    assert spec.redirecting == 10799
    pre = PreinstalledCorpusSpec()
    assert pre.installers == 238
