"""Tests for the Flowdroid-style baseline and its failure modes."""

import pytest

from repro.analysis.corpus import (
    CorpusApp,
    GroundTruth,
    INSTALL_MARKER,
    generate_play_corpus,
)
from repro.analysis.taint_baseline import (
    TaintAnalysisBaseline,
    TaintOutcome,
    yield_rate,
)


def make_app(smali, package="com.sample.app"):
    return CorpusApp(
        package=package,
        category="TOOLS",
        truth=GroundTruth.NON_INSTALLER,
        declared_permissions=frozenset(),
        smali_text=smali,
    )


INSTALL_BLOCK = (
    f'const-string v3, "{INSTALL_MARKER}"\n'
    "invoke-virtual {v0, v4, v3}, Landroid/content/Intent;->"
    "setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;"
)


@pytest.fixture
def tool():
    return TaintAnalysisBaseline(bug_rate=0.0)  # failure modes only


def test_non_installer_skipped(tool):
    app = make_app('.class La;\n.method m()V\nconst-string v1, "x"\n.end method')
    assert tool.analyze(app).outcome is TaintOutcome.NOT_AN_INSTALLER


def test_plain_installer_analyzed(tool):
    app = make_app(
        f'.class La;\n.method m()V\nconst-string v1, "/sdcard/a.apk"\n'
        f"{INSTALL_BLOCK}\n.end method"
    )
    result = tool.analyze(app)
    assert result.succeeded
    assert result.uses_sdcard


def test_reflection_kills_cfg(tool):
    app = make_app(
        '.class La;\n.method m()V\nconst-string v1, "com.x.Task"\n'
        "invoke-static {v1}, Ljava/lang/Class;->forName(Ljava/lang/String;)"
        "Ljava/lang/Class;\n"
        f"{INSTALL_BLOCK}\n.end method"
    )
    assert tool.analyze(app).outcome is TaintOutcome.INCOMPLETE_CFG


def test_handle_message_untracked(tool):
    app = make_app(
        ".class La;\n.method m()V\n"
        "invoke-virtual {v0, v2}, Landroid/os/Handler;->"
        "handleMessage(Landroid/os/Message;)V\n"
        f"{INSTALL_BLOCK}\n.end method"
    )
    assert tool.analyze(app).outcome is TaintOutcome.HANDLER_UNTRACKED


def test_tool_bugs_are_deterministic_per_app():
    buggy_tool = TaintAnalysisBaseline(bug_rate=1.0)
    app = make_app(
        f'.class La;\n.method m()V\n{INSTALL_BLOCK}\n.end method'
    )
    first = buggy_tool.analyze(app)
    second = buggy_tool.analyze(app)
    assert first.outcome is TaintOutcome.TOOL_BUG
    assert first.outcome == second.outcome


def test_corpus_unknowns_defeat_the_baseline(tool):
    """The generator's unknown-reflection apps kill the taint walk."""
    corpus = generate_play_corpus(seed=2016)
    reflective = [
        app for app in corpus
        if app.truth is GroundTruth.UNKNOWN_REFLECTION
    ][:10]
    for app in reflective:
        assert tool.analyze(app).outcome in (
            TaintOutcome.INCOMPLETE_CFG, TaintOutcome.HANDLER_UNTRACKED
        )


def test_yield_rate_math():
    results = [
        TaintAnalysisBaseline(bug_rate=0.0).analyze(make_app(
            f'.class La;\n.method m()V\n{INSTALL_BLOCK}\n.end method',
            package=f"com.app{i}",
        ))
        for i in range(4)
    ]
    assert yield_rate(results) == 1.0
    assert yield_rate([]) == 0.0


def test_realistic_bug_rate_loses_many_apps():
    corpus = generate_play_corpus(seed=2016)
    installers = [app for app in corpus if app.truth.is_installer][:200]
    results = TaintAnalysisBaseline().analyze_sample(installers)
    rate = yield_rate(results)
    # The paper managed ~30%; our modelled tool lands in that region.
    assert 0.1 < rate < 0.6
