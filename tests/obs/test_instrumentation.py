"""Observability hooks across the simulator and scenario layers."""

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.installers import installer_by_name
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.sim.kernel import Kernel, Sleep


def build_scenario(defenses=(), attack=True, recorder=None, metrics=None):
    installer_cls = installer_by_name("amazon")
    factory = None
    if attack:
        factory = lambda s: FileObserverHijacker(
            fingerprint_for(installer_cls))
    scenario = Scenario.build(
        installer=installer_cls,
        attacker_factory=factory,
        defenses=defenses,
        seed=7,
        recorder=recorder,
        metrics=metrics,
    )
    scenario.publish_app("com.bank.app", label="MyBank")
    return scenario


# -- kernel-level hooks ------------------------------------------------------


def test_kernel_defaults_to_null_observability():
    kernel = Kernel()
    assert kernel.obs is NULL_RECORDER
    assert kernel.metrics is None


def test_kernel_counts_dispatches_and_queue_peak():
    metrics = MetricsRegistry()
    kernel = Kernel(metrics=metrics)
    for index in range(3):
        kernel.call_later(index, lambda: None)
    kernel.run()
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["kernel/events_dispatched"] == 3
    assert snapshot["counters"]["kernel/run_calls"] == 1
    assert snapshot["gauges"]["kernel/queue_depth_peak"] == 3


def test_kernel_records_process_spans_and_step_latency():
    metrics = MetricsRegistry()
    recorder = TraceRecorder()
    kernel = Kernel(recorder=recorder, metrics=metrics)

    def proc():
        yield Sleep(100)
        yield Sleep(200)

    kernel.spawn(proc(), name="worker")
    kernel.run()
    spans = [r for r in recorder.records() if r["name"] == "kernel/process"]
    assert len(spans) == 1
    assert spans[0]["start_ns"] == 0
    assert spans[0]["end_ns"] == 300
    assert spans[0]["attrs"]["process"] == "worker"
    assert spans[0]["attrs"]["error"] == ""
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["kernel/processes_finished"] == 1
    latency = snapshot["histograms"]["kernel/step_latency_ns"]
    assert latency["count"] >= 2
    assert latency["max"] == 200


def test_kernel_counts_failed_processes():
    metrics = MetricsRegistry()
    recorder = TraceRecorder()
    kernel = Kernel(recorder=recorder, metrics=metrics)

    def proc():
        yield Sleep(1)
        raise RuntimeError("boom")

    kernel.spawn(proc(), name="bad")
    kernel.run()
    assert metrics.snapshot()["counters"]["kernel/processes_failed"] == 1
    (span,) = [r for r in recorder.records()
               if r["name"] == "kernel/process"]
    assert span["attrs"]["error"] == "RuntimeError"


# -- scenario-level hooks ----------------------------------------------------


def test_scenario_defaults_to_null_observability():
    scenario = build_scenario(attack=False)
    assert scenario.obs is NULL_RECORDER
    assert scenario.metrics is None
    outcome = scenario.run_install("com.bank.app")
    assert outcome.installed


def test_hijack_run_emits_ait_spans_and_attack_events():
    recorder = TraceRecorder()
    scenario = build_scenario(recorder=recorder)
    outcome = scenario.run_install("com.bank.app")
    assert outcome.hijacked
    names = [record["name"] for record in recorder.records()]
    # One span per traced AIT step (amazon's AIT starts at DOWNLOAD).
    for step in ("ait/download", "ait/trigger", "ait/install"):
        assert step in names
    assert "attack/arm" in names
    assert "attack/strike" in names
    assert "attack/window" in names
    assert "attack/hijack" in names
    assert "install/outcome" in names
    (outcome_event,) = [r for r in recorder.records()
                        if r["name"] == "install/outcome"]
    assert outcome_event["attrs"]["hijacked"] is True


def test_defended_run_emits_block_events_not_hijack():
    recorder = TraceRecorder()
    scenario = build_scenario(defenses=("fuse-dac",), recorder=recorder)
    outcome = scenario.run_install("com.bank.app")
    assert not outcome.hijacked
    names = [record["name"] for record in recorder.records()]
    assert "defense/block" in names
    assert "attack/hijack" not in names
    (strike,) = [r for r in recorder.records()
                 if r["name"] == "attack/strike"]
    assert strike["attrs"]["blocked"] is True


def test_intent_defenses_emit_decision_events():
    from repro.android.intent_firewall import IntentRecord
    from repro.android.intents import Intent
    from repro.defenses.intent_detection import IntentDetectionScheme
    from repro.defenses.intent_origin import IntentOriginScheme
    from repro.sim.clock import millis

    def record_at(sender, time_ns, uid):
        return IntentRecord(
            intent=Intent(target_package="com.store"),
            sender_package=sender, sender_uid=uid,
            sender_is_system=False, recipient_package="com.store",
            delivery_time_ns=time_ns)

    recorder = TraceRecorder()
    origin = IntentOriginScheme()
    origin.bind_observability(recorder)
    origin.inspect(record_at("com.facebook", 0, uid=10050))
    (stamp,) = recorder.records()
    assert stamp["name"] == "defense/stamp"
    assert stamp["attrs"]["sender"] == "com.facebook"
    assert stamp["t_ns"] == 0

    recorder = TraceRecorder()
    detection = IntentDetectionScheme()
    detection.bind_observability(recorder)
    detection.inspect(record_at("com.facebook", 0, uid=10050))
    detection.inspect(record_at("com.evil", millis(300), uid=10099))
    (alarm,) = recorder.records()
    assert alarm["name"] == "defense/alarm"
    assert alarm["t_ns"] == millis(300)
    assert "com.evil" in alarm["attrs"]["reason"]


def test_scenario_binds_intent_defense_observability():
    recorder = TraceRecorder()
    scenario = build_scenario(
        defenses=("intent-detection", "intent-origin"), recorder=recorder)
    assert scenario.intent_detection._obs is recorder
    assert scenario.intent_origin._obs is recorder


def test_scenario_metrics_counters():
    metrics = MetricsRegistry()
    scenario = build_scenario(metrics=metrics)
    scenario.run_install("com.bank.app")
    counters = metrics.snapshot()["counters"]
    assert counters["ait/runs"] == 1
    assert counters["ait/installed"] == 1
    assert counters["ait/hijacked"] == 1
    assert counters["attack/strikes"] == 1
    histograms = metrics.snapshot()["histograms"]
    assert histograms["ait/elapsed_ns"]["count"] == 1
    assert histograms["attack/window_ns"]["count"] == 1


def test_trace_uses_simulated_time_only():
    # Every timestamp in the trace is a simulated-nanosecond integer,
    # far below any wall-clock epoch reading — the determinism
    # guarantee rests on this.
    recorder = TraceRecorder()
    scenario = build_scenario(defenses=("fuse-dac",), recorder=recorder)
    scenario.run_install("com.bank.app")
    for record in recorder.records():
        for key in ("t_ns", "start_ns", "end_ns"):
            if key in record:
                assert 0 <= record[key] < 10**15
