"""The wall-clock plane: telemetry rollups, flight ring, exposition.

Everything here is about :mod:`repro.obs.runtime` in isolation — the
determinism interaction (goldens stay byte-identical with telemetry
on, the disabled path samples nothing) lives in
``tests/engine/test_telemetry.py``.
"""

import cProfile
import json

import pytest

from repro.errors import ReproError
from repro.obs.runtime import (
    FLIGHT_CAPACITY,
    FlightRecorder,
    ShardTelemetry,
    TelemetryProbe,
    TelemetryRollup,
    fold_shard_telemetry,
    host_metadata,
    merged_hotspots,
    profile_blob,
    prometheus_name,
    render_prometheus,
    validate_exposition,
    write_hotspots,
)


def shard(index, wall_ns=1000, user=0.5, system=0.1, rss=2048):
    return ShardTelemetry(shard_index=index, wall_ns=wall_ns,
                          cpu_user_s=user, cpu_system_s=system,
                          max_rss_kb=rss)


# -- probe / telemetry ------------------------------------------------------

def test_probe_measures_a_real_delta():
    probe = TelemetryProbe.start()
    sum(range(50000))  # burn a little CPU
    sample = probe.finish(3)
    assert sample.shard_index == 3
    assert sample.wall_ns > 0
    assert sample.cpu_user_s >= 0.0
    assert sample.max_rss_kb > 0


def test_shard_telemetry_round_trips_through_dict():
    sample = shard(2, wall_ns=123456789, user=1.25, system=0.25, rss=4096)
    assert ShardTelemetry.from_dict(sample.to_dict()) == sample


# -- rollup fold ------------------------------------------------------------

def test_rollup_sums_and_takes_rss_max():
    rollup = TelemetryRollup()
    rollup.add(shard(0, wall_ns=10, user=1.0, system=0.5, rss=100))
    rollup.add(shard(1, wall_ns=20, user=2.0, system=0.5, rss=300))
    assert rollup.shards == 2
    assert rollup.wall_ns == 30
    assert rollup.cpu_user_s == pytest.approx(3.0)
    assert rollup.cpu_s == pytest.approx(4.0)
    assert rollup.max_rss_kb == 300


def test_rollup_merge_is_associative_and_order_free():
    samples = [shard(i, wall_ns=i * 10 + 1, user=float(i), rss=i * 100)
               for i in range(6)]

    def fold(groups):
        total = TelemetryRollup()
        for group in groups:
            partial = TelemetryRollup()
            for sample in group:
                partial.add(sample)
            total.merge(partial)
        return total.to_dict()

    flat = fold([samples])
    assert fold([samples[:2], samples[2:]]) == flat
    assert fold([samples[4:], samples[:4]]) == flat
    assert fold([[s] for s in reversed(samples)]) == flat


def test_rollup_round_trips_and_renders():
    rollup = TelemetryRollup(shards=4, wall_ns=2_500_000_000,
                             cpu_user_s=1.5, cpu_system_s=0.5,
                             max_rss_kb=20480, retries=1,
                             queue_wait_s=0.25)
    assert TelemetryRollup.from_dict(rollup.to_dict()) == rollup
    text = rollup.render()
    assert "cpu 1.50s user" in text
    assert "20.0 MB" in text
    assert "4 shard(s)" in text


def test_fold_shard_telemetry_tolerates_missing_attributes():
    class WithTelemetry:
        telemetry = shard(0).to_dict()

    class Legacy:  # unpickled from a pre-telemetry checkpoint
        pass

    assert fold_shard_telemetry([Legacy(), Legacy()]) is None
    folded = fold_shard_telemetry([WithTelemetry(), Legacy()])
    assert folded["shards"] == 1


def test_host_metadata_names_the_interpreter():
    meta = host_metadata()
    assert meta["cpus"] >= 1
    assert meta["python"].count(".") == 2


# -- flight recorder --------------------------------------------------------

def test_flight_ring_keeps_the_tail_and_counts_overflow():
    flight = FlightRecorder(capacity=4)
    for index in range(10):
        flight.record("tick", index=index)
    assert flight.recorded == 10
    assert flight.dropped == 6
    kept = [event["index"] for event in flight.events()]
    assert kept == [6, 7, 8, 9]
    snapshot = flight.snapshot()
    assert snapshot["capacity"] == 4
    assert len(snapshot["events"]) == 4


def test_flight_events_filter_by_kind_and_stamp_sequence():
    flight = FlightRecorder(capacity=8)
    flight.record("submit", job="job-1")
    flight.record("start", job="job-1")
    flight.record("submit", job="job-2")
    submits = flight.events("submit")
    assert [event["job"] for event in submits] == ["job-1", "job-2"]
    seqs = [event["seq"] for event in flight.events()]
    assert seqs == sorted(seqs) and len(set(seqs)) == 3


def test_flight_file_survives_a_reload(tmp_path):
    path = tmp_path / "flight.jsonl"
    first = FlightRecorder(capacity=8, path=path)
    first.record("submit", job="job-1")
    first.record("finish", job="job-1")
    # a new recorder on the same file = the restarted daemon
    second = FlightRecorder(capacity=8, path=path)
    kinds = [event["kind"] for event in second.events()]
    assert kinds == ["submit", "finish"]
    second.record("recover", requeued=0)
    third = FlightRecorder(capacity=8, path=path)
    assert [e["kind"] for e in third.events()] == ["submit", "finish",
                                                  "recover"]
    assert third._seq == 3  # sequence continues across restarts


def test_flight_reload_drops_a_torn_last_line(tmp_path):
    path = tmp_path / "flight.jsonl"
    flight = FlightRecorder(capacity=8, path=path)
    flight.record("submit", job="job-1")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "torn-by-sigki')  # no newline, no close
    reloaded = FlightRecorder(capacity=8, path=path)
    assert [e["kind"] for e in reloaded.events()] == ["submit"]


def test_flight_file_compacts_instead_of_growing_forever(tmp_path):
    path = tmp_path / "flight.jsonl"
    flight = FlightRecorder(capacity=4, path=path)
    for index in range(100):
        flight.record("tick", index=index)
    # The sidecar compacts once it outgrows capacity * factor, so 100
    # events never leave more than one factor's worth of lines behind,
    # and a restart still sees exactly the ring tail.
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) <= 4 * 8
    reloaded = FlightRecorder(capacity=4, path=path)
    assert [e["index"] for e in reloaded.events()] == [96, 97, 98, 99]
    assert FLIGHT_CAPACITY >= 4  # default capacity is far larger


# -- Prometheus exposition --------------------------------------------------

def test_prometheus_name_sanitizes_metric_paths():
    assert prometheus_name("serve/jobs_completed") == \
        "repro_serve_jobs_completed"
    assert prometheus_name("kernel/queue-depth.peak") == \
        "repro_kernel_queue_depth_peak"


def test_render_prometheus_covers_all_metric_kinds():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("serve/jobs_completed").inc(3)
    registry.gauge("serve/queue_depth_peak").set(2)
    registry.histogram("serve/shard_wall_ms").observe(15)
    registry.histogram("serve/shard_wall_ms").observe(200)
    rollup = TelemetryRollup(shards=2, wall_ns=10**9, cpu_user_s=1.0,
                             cpu_system_s=0.1, max_rss_kb=1024)
    text = render_prometheus(
        registry.snapshot(), rollup=rollup.to_dict(),
        job_rollups={"job-000001": rollup.to_dict()},
        gauges={"serve/uptime_seconds": 12.5})
    samples = validate_exposition(text)
    assert samples >= 10
    assert "repro_serve_jobs_completed_total 3" in text
    assert "repro_serve_shard_wall_ms_bucket" in text
    assert 'le="+Inf"' in text
    assert 'repro_telemetry_cpu_seconds_total{mode="user",' \
        'scope="service"} 1' in text
    assert 'job="job-000001"' in text
    assert "repro_serve_uptime_seconds 12.5" in text


def test_validate_exposition_rejects_undeclared_samples():
    with pytest.raises(ReproError, match="no TYPE declaration"):
        validate_exposition("repro_thing_total 3\n")


def test_validate_exposition_rejects_bad_values():
    bad = "# TYPE repro_x counter\nrepro_x not-a-number\n"
    with pytest.raises(ReproError, match="value"):
        validate_exposition(bad)


def test_validate_exposition_rejects_interleaved_families():
    interleaved = ("# TYPE repro_a counter\n"
                   "repro_a 1\n"
                   "# TYPE repro_b counter\n"
                   "repro_b 1\n"
                   "repro_a{scope=\"job\"} 2\n")
    with pytest.raises(ReproError, match="contiguous"):
        validate_exposition(interleaved)


# -- profiling --------------------------------------------------------------

def _blob_of(workload):
    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()
    return profile_blob(profiler)


def test_merged_hotspots_is_deterministic_and_merges_counts():
    blobs = [_blob_of(lambda: json.dumps(list(range(2000))))
             for _ in range(3)]
    table_one = merged_hotspots(blobs, top=10)
    table_two = merged_hotspots(list(blobs), top=10)
    assert table_one == table_two
    assert "3 shard profile(s)" in table_one
    assert "cumtime" in table_one


def test_write_hotspots_creates_parent_dirs(tmp_path):
    out = tmp_path / "nested" / "HOTSPOTS_test.txt"
    path = write_hotspots(out, [_blob_of(lambda: sorted(range(100)))])
    assert path.exists()
    assert "1 shard profile(s)" in path.read_text(encoding="utf-8")
