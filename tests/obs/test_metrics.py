"""Tests for the metrics registry and snapshot merge semantics."""

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
    empty_snapshot,
    merge_snapshots,
    snapshot_names,
    summary_percentile,
)


def test_counter_accumulates():
    registry = MetricsRegistry()
    registry.counter("runs").inc()
    registry.counter("runs").inc(4)
    assert registry.snapshot()["counters"]["runs"] == 5


def test_counter_rejects_negative_amounts():
    # The docstring always said ">= 0"; now it is enforced.
    registry = MetricsRegistry()
    registry.counter("runs").inc(2)
    with pytest.raises(ReproError, match="negative"):
        registry.counter("runs").inc(-1)
    assert registry.counter("runs").value == 2
    registry.counter("runs").inc(0)  # zero stays legal (delta counters)
    assert registry.counter("runs").value == 2


def test_gauge_keeps_high_water_mark():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(3)
    gauge.set(1)
    gauge.set(7)
    gauge.set(2)
    assert registry.snapshot()["gauges"]["depth"] == 7


def test_histogram_summary():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in (10, 30, 20):
        histogram.observe(value)
    assert histogram.mean == 20.0
    # Classic keys preserved; log-bucket counts ride alongside them.
    assert registry.snapshot()["histograms"]["latency"] == {
        "count": 3, "sum": 60, "min": 10, "max": 30,
        "buckets": {"4": 1, "5": 2}}


def test_empty_histogram_summary():
    registry = MetricsRegistry()
    registry.histogram("untouched")
    summary = registry.snapshot()["histograms"]["untouched"]
    assert summary == {"count": 0, "sum": 0, "min": None, "max": None,
                       "buckets": {}}
    assert registry.histogram("untouched").mean == 0.0


def test_bucket_index_and_bounds():
    assert bucket_index(0) == 0
    assert bucket_index(-5) == 0
    assert bucket_index(1) == 1
    assert bucket_index(2) == 2
    assert bucket_index(3) == 2
    assert bucket_index(4) == 3
    assert bucket_bounds(0) == (0, 0)
    assert bucket_bounds(3) == (4, 7)
    # Every positive value lies inside its own bucket's bounds.
    for value in (1, 2, 3, 7, 8, 1023, 1024, 10**12):
        low, high = bucket_bounds(bucket_index(value))
        assert low <= value <= high


def test_histogram_percentiles_are_clamped_estimates():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat")
    for value in (10, 20, 30, 40, 100):
        histogram.observe(value)
    # p50 rank 3 -> value 30 lives in bucket 5 ([16, 31]); the upper
    # bound 31 is the deterministic estimate.
    assert histogram.percentile(50) == 31
    # p99 rank 5 -> bucket 7 upper bound 127, clamped to max=100.
    assert histogram.percentile(99) == 100
    # p0-ish clamps to min.
    assert histogram.percentile(0) >= 10
    assert registry.histogram("empty").percentile(50) is None


def test_summary_percentile_ignores_bucketless_summaries():
    # Snapshots recorded before buckets existed still load and merge;
    # percentile estimation degrades to None instead of guessing.
    legacy = {"count": 3, "sum": 60, "min": 10, "max": 30}
    assert summary_percentile(legacy, 50) is None


def test_metrics_created_on_first_use_and_reused():
    registry = MetricsRegistry()
    assert registry.counter("c") is registry.counter("c")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_snapshot_names_are_sorted():
    registry = MetricsRegistry()
    registry.counter("z")
    registry.counter("a")
    registry.gauge("m")
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "z"]
    assert snapshot_names(snapshot) == ["counters:a", "counters:z", "gauges:m"]


def test_merge_adds_counters_maxes_gauges_folds_histograms():
    left = MetricsRegistry()
    left.counter("runs").inc(3)
    left.gauge("depth").set(5)
    left.histogram("lat").observe(10)
    right = MetricsRegistry()
    right.counter("runs").inc(2)
    right.gauge("depth").set(9)
    right.histogram("lat").observe(40)
    merged = merge_snapshots([left.snapshot(), right.snapshot()])
    assert merged["counters"]["runs"] == 5
    assert merged["gauges"]["depth"] == 9
    assert merged["histograms"]["lat"] == {
        "count": 2, "sum": 50, "min": 10, "max": 40,
        "buckets": {"4": 1, "6": 1}}


def test_merge_identity_and_associativity():
    a = MetricsRegistry()
    a.counter("x").inc(1)
    a.histogram("h").observe(5)
    b = MetricsRegistry()
    b.counter("x").inc(2)
    b.histogram("h").observe(1)
    c = MetricsRegistry()
    c.gauge("g").set(4)
    snaps = [a.snapshot(), b.snapshot(), c.snapshot()]
    with_identity = merge_snapshots([empty_snapshot()] + snaps)
    left_assoc = merge_snapshots(
        [merge_snapshots(snaps[:2]), snaps[2]])
    right_assoc = merge_snapshots(
        [snaps[0], merge_snapshots(snaps[1:])])
    assert with_identity == left_assoc == right_assoc


def test_merge_handles_empty_histogram_extremes():
    empty = MetricsRegistry()
    empty.histogram("h")  # count 0, min/max None
    full = MetricsRegistry()
    full.histogram("h").observe(7)
    merged = merge_snapshots([empty.snapshot(), full.snapshot()])
    assert merged["histograms"]["h"] == {
        "count": 1, "sum": 7, "min": 7, "max": 7, "buckets": {"3": 1}}


def test_merge_pins_none_extremes_from_empty_shard_fold():
    # An empty shard's summary has min/max None in *both* argument
    # positions; the fold must keep the other side's extremes, and two
    # empties stay None (never 0, which would poison a later min()).
    empty = {"counters": {}, "gauges": {},
             "histograms": {"h": {"count": 0, "sum": 0, "min": None,
                                  "max": None, "buckets": {}}}}
    full = {"counters": {}, "gauges": {},
            "histograms": {"h": {"count": 2, "sum": 30, "min": 10,
                                 "max": 20, "buckets": {"4": 1, "5": 1}}}}
    for ordering in ([empty, full], [full, empty]):
        merged = merge_snapshots(ordering)
        assert merged["histograms"]["h"] == {
            "count": 2, "sum": 30, "min": 10, "max": 20,
            "buckets": {"4": 1, "5": 1}}
    both_empty = merge_snapshots([empty, empty])
    assert both_empty["histograms"]["h"]["min"] is None
    assert both_empty["histograms"]["h"]["max"] is None


def test_merge_folds_legacy_bucketless_summaries():
    legacy = {"counters": {}, "gauges": {},
              "histograms": {"h": {"count": 1, "sum": 5, "min": 5,
                                   "max": 5}}}
    modern = {"counters": {}, "gauges": {},
              "histograms": {"h": {"count": 1, "sum": 9, "min": 9,
                                   "max": 9, "buckets": {"4": 1}}}}
    merged = merge_snapshots([legacy, modern])
    assert merged["histograms"]["h"]["count"] == 2
    assert merged["histograms"]["h"]["buckets"] == {"4": 1}
    # Both legacy: no buckets key appears (old shape round-trips).
    assert "buckets" not in merge_snapshots(
        [legacy, legacy])["histograms"]["h"]


def test_merged_buckets_identical_for_any_shard_grouping():
    shards = []
    for seed in range(6):
        registry = MetricsRegistry()
        for value in range(seed, 40 + seed * 7, 3):
            registry.histogram("lat").observe(value)
        shards.append(registry.snapshot())
    whole = merge_snapshots(shards)
    pairs = merge_snapshots(
        [merge_snapshots(shards[:2]), merge_snapshots(shards[2:4]),
         merge_snapshots(shards[4:])])
    lopsided = merge_snapshots([shards[0], merge_snapshots(shards[1:])])
    assert whole == pairs == lopsided


def test_merge_of_nothing_is_empty_snapshot():
    assert merge_snapshots([]) == empty_snapshot()


def test_merge_does_not_mutate_inputs():
    import copy

    source = MetricsRegistry()
    source.histogram("h").observe(3)
    snap = source.snapshot()
    before = copy.deepcopy(snap)
    merge_snapshots([snap, snap])
    assert snap == before


def test_bound_instruments_share_state_with_named_lookups():
    registry = MetricsRegistry()
    inc = registry.bind_counter("runs")
    observe = registry.bind_histogram("latency")
    raise_peak = registry.bind_gauge("peak")
    inc()
    inc(3)
    observe(5)
    raise_peak(7)
    raise_peak(2)  # gauges keep the high-water mark
    assert registry.counter("runs").value == 4
    assert registry.histogram("latency").count == 1
    assert registry.gauge("peak").value == 7
    snapshot = registry.snapshot()
    assert snapshot["counters"]["runs"] == 4
    assert snapshot["gauges"]["peak"] == 7


def test_binding_creates_the_instrument_in_snapshots():
    # Bind-time creation is the visibility contract: callers must only
    # bind unconditionally-recorded metrics, because the name appears
    # in snapshots from the moment of binding.
    registry = MetricsRegistry()
    registry.bind_counter("created")
    assert registry.snapshot()["counters"] == {"created": 0}


def test_histogram_observe_inline_bucketing_matches_bucket_index():
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    values = (-3, 0, 1, 2, 3, 1023, 1024)
    for value in values:
        histogram.observe(value)
    assert histogram.buckets == {
        bucket_index(value): count
        for value, count in {-3: 2, 1: 1, 2: 2, 1023: 1, 1024: 1}.items()
    }
