"""Tests for the metrics registry and snapshot merge semantics."""

from repro.obs.metrics import (
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    snapshot_names,
)


def test_counter_accumulates():
    registry = MetricsRegistry()
    registry.counter("runs").inc()
    registry.counter("runs").inc(4)
    assert registry.snapshot()["counters"]["runs"] == 5


def test_gauge_keeps_high_water_mark():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(3)
    gauge.set(1)
    gauge.set(7)
    gauge.set(2)
    assert registry.snapshot()["gauges"]["depth"] == 7


def test_histogram_summary():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in (10, 30, 20):
        histogram.observe(value)
    assert histogram.mean == 20.0
    assert registry.snapshot()["histograms"]["latency"] == {
        "count": 3, "sum": 60, "min": 10, "max": 30}


def test_empty_histogram_summary():
    registry = MetricsRegistry()
    registry.histogram("untouched")
    summary = registry.snapshot()["histograms"]["untouched"]
    assert summary == {"count": 0, "sum": 0, "min": None, "max": None}
    assert registry.histogram("untouched").mean == 0.0


def test_metrics_created_on_first_use_and_reused():
    registry = MetricsRegistry()
    assert registry.counter("c") is registry.counter("c")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_snapshot_names_are_sorted():
    registry = MetricsRegistry()
    registry.counter("z")
    registry.counter("a")
    registry.gauge("m")
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "z"]
    assert snapshot_names(snapshot) == ["counters:a", "counters:z", "gauges:m"]


def test_merge_adds_counters_maxes_gauges_folds_histograms():
    left = MetricsRegistry()
    left.counter("runs").inc(3)
    left.gauge("depth").set(5)
    left.histogram("lat").observe(10)
    right = MetricsRegistry()
    right.counter("runs").inc(2)
    right.gauge("depth").set(9)
    right.histogram("lat").observe(40)
    merged = merge_snapshots([left.snapshot(), right.snapshot()])
    assert merged["counters"]["runs"] == 5
    assert merged["gauges"]["depth"] == 9
    assert merged["histograms"]["lat"] == {
        "count": 2, "sum": 50, "min": 10, "max": 40}


def test_merge_identity_and_associativity():
    a = MetricsRegistry()
    a.counter("x").inc(1)
    a.histogram("h").observe(5)
    b = MetricsRegistry()
    b.counter("x").inc(2)
    b.histogram("h").observe(1)
    c = MetricsRegistry()
    c.gauge("g").set(4)
    snaps = [a.snapshot(), b.snapshot(), c.snapshot()]
    with_identity = merge_snapshots([empty_snapshot()] + snaps)
    left_assoc = merge_snapshots(
        [merge_snapshots(snaps[:2]), snaps[2]])
    right_assoc = merge_snapshots(
        [snaps[0], merge_snapshots(snaps[1:])])
    assert with_identity == left_assoc == right_assoc


def test_merge_handles_empty_histogram_extremes():
    empty = MetricsRegistry()
    empty.histogram("h")  # count 0, min/max None
    full = MetricsRegistry()
    full.histogram("h").observe(7)
    merged = merge_snapshots([empty.snapshot(), full.snapshot()])
    assert merged["histograms"]["h"] == {
        "count": 1, "sum": 7, "min": 7, "max": 7}


def test_merge_of_nothing_is_empty_snapshot():
    assert merge_snapshots([]) == empty_snapshot()


def test_merge_does_not_mutate_inputs():
    import copy

    source = MetricsRegistry()
    source.histogram("h").observe(3)
    snap = source.snapshot()
    before = copy.deepcopy(snap)
    merge_snapshots([snap, snap])
    assert snap == before
