"""Tests for the span/event trace recorder."""

from repro.obs.trace import EVENT, NULL_RECORDER, SPAN, NullRecorder, TraceRecorder


def test_null_recorder_is_disabled_and_empty():
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.event("x", 10, detail="dropped")
    NULL_RECORDER.span("y", 0, 5)
    assert NULL_RECORDER.records() == []


def test_null_recorder_is_stateless_singleton():
    # Shared process-wide: no __dict__, nothing to mutate.
    assert not hasattr(NULL_RECORDER, "__dict__")
    assert isinstance(NULL_RECORDER, NullRecorder)


def test_trace_recorder_is_a_null_recorder():
    # Call sites type against the null interface; the live recorder
    # must substitute for it.
    assert isinstance(TraceRecorder(), NullRecorder)
    assert TraceRecorder().enabled is True


def test_event_record_shape():
    recorder = TraceRecorder()
    recorder.event("defense/alarm", 1234, reason="mismatch")
    assert recorder.records() == [
        {"type": EVENT, "name": "defense/alarm", "t_ns": 1234,
         "attrs": {"reason": "mismatch"}}
    ]


def test_event_without_attrs_omits_attrs_key():
    recorder = TraceRecorder()
    recorder.event("tick", 1)
    (record,) = recorder.records()
    assert "attrs" not in record


def test_span_record_shape():
    recorder = TraceRecorder()
    recorder.span("ait/download", 100, 900, package="com.a.b")
    assert recorder.records() == [
        {"type": SPAN, "name": "ait/download", "start_ns": 100,
         "end_ns": 900, "attrs": {"package": "com.a.b"}}
    ]


def test_records_preserves_emission_order_and_copies():
    recorder = TraceRecorder()
    recorder.event("a", 2)
    recorder.event("b", 1)  # order is emission order, not time order
    first = recorder.records()
    assert [r["name"] for r in first] == ["a", "b"]
    first.clear()
    assert len(recorder) == 2  # caller mutations don't reach the recorder


def test_times_are_coerced_to_int():
    recorder = TraceRecorder()
    recorder.event("e", 1.0)
    recorder.span("s", 0.0, 2.0)
    event, span = recorder.records()
    assert isinstance(event["t_ns"], int)
    assert isinstance(span["start_ns"], int)
    assert isinstance(span["end_ns"], int)
