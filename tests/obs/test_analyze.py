"""Tests for trace forensics: profiles, span trees, critical paths,
window forensics, and trace diffing — including the golden-stability
contract (same seed/shards -> byte-identical analysis reports)."""

import pytest

from repro.engine.executor import run_fleet
from repro.engine.spec import CampaignSpec
from repro.obs.analyze import (
    build_span_trees,
    critical_path,
    diff_traces,
    layer_of,
    profile_trace,
    render_critical_path,
    render_diff,
    render_profile,
    render_windows,
    window_forensics,
)
from repro.obs.trace import TraceRecorder


def make_records():
    """A tiny handcrafted two-run trace (one hijacked, one clean)."""
    recorder = TraceRecorder()
    # Run 1: hijacked, wide window.
    recorder.event("attack/arm", 0)
    recorder.event("attack/strike", 800, blocked=False)
    recorder.span("attack/window", 0, 800, blocked=False)
    recorder.span("kernel/process", 0, 1000, process="ait-a")
    recorder.span("ait/download", 0, 400)
    recorder.span("ait/trigger", 400, 800)
    recorder.span("ait/install", 1000, 1000)
    recorder.event("install/outcome", 1000, package="a", hijacked=True)
    # Run 2: clean (defense blocked the strike), narrow window.
    recorder.event("attack/arm", 1000)
    recorder.event("attack/strike", 1100, blocked=True)
    recorder.span("attack/window", 1000, 1100, blocked=True)
    recorder.span("kernel/process", 1000, 1900, process="ait-b")
    recorder.span("ait/download", 1000, 1500)
    recorder.span("ait/trigger", 1500, 1700)
    recorder.event("install/outcome", 1900, package="b", hijacked=False)
    return recorder.records()


# -- profiles ----------------------------------------------------------------


def test_profile_counts_spans_events_and_layers():
    profile = profile_trace(make_records())
    assert profile.records == 15
    assert profile.shards == 1
    assert profile.spans["ait/download"].count == 2
    assert profile.spans["ait/download"].total_ns == 400 + 500
    assert profile.events["attack/arm"].count == 2
    assert profile.layers["ait"].count == 5
    assert profile.layers["kernel"].total_ns == 1000 + 900
    assert layer_of("ait/download") == "ait"
    assert layer_of("bare") == "bare"


def test_profile_render_is_deterministic():
    records = make_records()
    assert render_profile(profile_trace(records)) == render_profile(
        profile_trace(records))


# -- span trees and critical path --------------------------------------------


def test_span_tree_nesting_by_containment():
    roots = build_span_trees(make_records())
    processes = [root for root in roots if root.name == "kernel/process"]
    assert len(processes) == 2
    first = processes[0]
    names = {child.name for child in first.children}
    assert "attack/window" in names
    window = next(c for c in first.children if c.name == "attack/window")
    assert {child.name for child in window.children} == {
        "ait/download", "ait/trigger"}


def test_critical_path_walks_dominant_children():
    path = critical_path(make_records())
    assert path[0].node.name == "kernel/process"
    assert path[0].node.duration_ns == 1000  # the longer of the two runs
    assert path[1].node.name == "attack/window"
    assert path[-1].node.duration_ns <= path[0].node.duration_ns
    assert path[0].share == 1.0
    text = render_critical_path(path)
    assert "critical path" in text
    assert "kernel/process" in text


def test_critical_path_honours_shard_filter():
    recorder = TraceRecorder()
    recorder.span("kernel/process", 0, 100)
    records = [dict(r, shard=3) for r in recorder.records()]
    assert critical_path(records, shard=3)[0].node.shard == 3
    assert critical_path(records, shard=1) == []
    assert render_critical_path([]) == "critical path: no spans in trace"


# -- window forensics --------------------------------------------------------


def test_window_forensics_splits_by_outcome():
    report = window_forensics(make_records())
    assert report.arms == 2
    assert report.strikes == 2
    assert report.outcomes == 2
    assert report.unresolved == 0
    assert report.hijacked.widths_ns == [800]
    assert report.hijacked.blocked == 0
    assert report.clean.widths_ns == [100]
    assert report.clean.blocked == 1


def test_window_forensics_keeps_shards_separate():
    # Two shards interleaved: each outcome only claims its own shard's
    # pending windows.
    records = [
        {"type": "span", "name": "attack/window", "start_ns": 0,
         "end_ns": 500, "shard": 0},
        {"type": "span", "name": "attack/window", "start_ns": 0,
         "end_ns": 900, "shard": 1},
        {"type": "event", "name": "install/outcome", "t_ns": 1000,
         "shard": 0, "attrs": {"hijacked": True}},
        {"type": "event", "name": "install/outcome", "t_ns": 1000,
         "shard": 1, "attrs": {"hijacked": False}},
    ]
    report = window_forensics(records)
    assert report.hijacked.widths_ns == [500]
    assert report.clean.widths_ns == [900]


def test_window_forensics_counts_unresolved_windows():
    records = [{"type": "span", "name": "attack/window", "start_ns": 0,
                "end_ns": 100}]
    report = window_forensics(records)
    assert report.unresolved == 1
    assert "unresolved" in render_windows(report)


def test_window_percentiles_are_exact_nearest_rank():
    report = window_forensics(make_records())
    stats = report.hijacked
    assert stats.percentile_ns(50) == 800
    assert stats.percentile_ns(99) == 800
    assert report.clean.percentile_ns(50) == 100
    empty_text = render_windows(window_forensics([]))
    assert "0 arm(s)" in empty_text


# -- trace diffing -----------------------------------------------------------


def test_diff_of_identical_traces_is_empty():
    records = make_records()
    diff = diff_traces(records, records)
    assert diff.empty
    assert render_diff(diff) == "trace diff: identical"


def test_diff_reports_added_removed_and_time_deltas():
    old = make_records()
    new = [dict(record) for record in old]
    # Stretch the second kernel/process span, drop an outcome, add a
    # defense event.
    new[11] = dict(new[11], end_ns=new[11]["end_ns"] + 50)  # 2nd process span
    removed = new.pop(7)  # first install/outcome
    new.append({"type": "event", "name": "defense/block", "t_ns": 900})
    diff = diff_traces(old, new)
    assert not diff.empty
    assert any(r.get("name") == "defense/block" for r in diff.added)
    assert any(r.get("name") == removed["name"] for r in diff.removed)
    span_deltas = [d for d in diff.changed if d.kind == "span"]
    assert any(d.duration_delta == 50 for d in span_deltas)
    text = render_diff(diff)
    assert "added" in text and "removed" in text and "changed" in text


def test_diff_detail_cap_never_hides_totals():
    old = [{"type": "event", "name": "e", "t_ns": t} for t in range(30)]
    new = [{"type": "event", "name": "e", "t_ns": t + 1} for t in range(30)]
    diff = diff_traces(old, new)
    assert len(diff.changed) == 30
    text = render_diff(diff, max_detail=5)
    assert "30 changed" in text
    assert "... 25 more" in text


# -- golden stability over a real fleet trace --------------------------------

SPEC = dict(installs=10, seed=11, attack="fileobserver", observe=True)


def fleet_records(defenses=()):
    report = run_fleet(CampaignSpec(defenses=tuple(defenses), **SPEC),
                       shards=2, backend="serial")
    return report.trace_records()


def test_fleet_analysis_reports_are_byte_stable():
    first = fleet_records()
    second = fleet_records()
    assert first == second
    assert (render_windows(window_forensics(first))
            == render_windows(window_forensics(second)))
    assert (render_critical_path(critical_path(first))
            == render_critical_path(critical_path(second)))
    assert (render_profile(profile_trace(first))
            == render_profile(profile_trace(second)))


def test_fleet_window_forensics_reproduces_hijack_split():
    undefended = window_forensics(fleet_records())
    defended = window_forensics(fleet_records(defenses=("fuse-dac",)))
    # Undefended Amazon + fileobserver hijacks every run (Table VII).
    assert undefended.hijacked.count == 10
    assert undefended.clean.count == 0
    # fuse-dac blocks the swap: every window ends clean and blocked.
    assert defended.hijacked.count == 0
    assert defended.clean.count == 10
    assert defended.clean.blocked == 10


def test_fleet_defense_diff_shows_blocked_strikes():
    diff = diff_traces(fleet_records(), fleet_records(("fuse-dac",)))
    assert not diff.empty
    added_names = {record.get("name") for record in diff.added}
    removed_names = {record.get("name") for record in diff.removed}
    assert "defense/block" in added_names
    assert "attack/hijack" in removed_names
