"""Tests for JSONL trace export and the text renderers."""

import pytest

from repro.errors import ReproError
from repro.obs.export import (
    iter_trace_jsonl,
    load_trace_jsonl,
    render_metrics,
    render_trace_summary,
    trace_to_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry, empty_snapshot
from repro.obs.trace import TraceRecorder


def sample_records():
    recorder = TraceRecorder()
    recorder.event("attack/strike", 500, path="/sdcard/a.apk")
    recorder.span("ait/download", 0, 400, package="com.a.b")
    recorder.event("attack/strike", 900)
    return recorder.records()


def test_jsonl_is_canonical_and_byte_stable():
    records = sample_records()
    payload = trace_to_jsonl(records)
    assert payload == trace_to_jsonl(records)
    first_line = payload.splitlines()[0]
    # keys sorted, compact separators
    assert first_line == ('{"attrs":{"path":"/sdcard/a.apk"},'
                          '"name":"attack/strike","t_ns":500,"type":"event"}')
    assert payload.endswith("\n")


def test_jsonl_of_no_records_is_empty_string():
    assert trace_to_jsonl([]) == ""


def test_write_and_load_round_trip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    records = sample_records()
    assert write_trace_jsonl(path, records) == 3
    assert load_trace_jsonl(path) == records


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("{not json\n")
    with pytest.raises(ReproError, match="invalid JSON"):
        load_trace_jsonl(str(path))


def test_load_rejects_unknown_record_type(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type":"mystery","name":"x"}\n')
    with pytest.raises(ReproError, match="unknown record type"):
        load_trace_jsonl(str(path))


def test_load_rejects_missing_required_keys(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type":"span","name":"x","start_ns":0}\n')
    with pytest.raises(ReproError, match="missing"):
        load_trace_jsonl(str(path))


def test_load_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('\n{"name":"e","t_ns":1,"type":"event"}\n\n')
    assert len(load_trace_jsonl(str(path))) == 1


def test_iter_streams_lazily_and_matches_load(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    write_trace_jsonl(path, sample_records())
    stream = iter_trace_jsonl(path)
    assert iter(stream) is stream  # a generator, not a list
    assert next(stream)["name"] == "attack/strike"
    assert list(stream) == load_trace_jsonl(path)[1:]


def test_iter_validates_lazily_up_to_the_bad_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"name":"ok","t_ns":1,"type":"event"}\n'
                    '{"type":"mystery","name":"x"}\n')
    stream = iter_trace_jsonl(str(path))
    assert next(stream)["name"] == "ok"
    with pytest.raises(ReproError, match="unknown record type"):
        next(stream)


def test_iter_rejects_non_dict_attrs(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"name":"e","t_ns":1,"type":"event","attrs":[1]}\n')
    with pytest.raises(ReproError, match="attrs must be an object"):
        load_trace_jsonl(str(path))


def test_iter_rejects_missing_file():
    with pytest.raises(ReproError, match="cannot read trace"):
        next(iter_trace_jsonl("/nonexistent/trace.jsonl"))


def test_render_trace_summary():
    text = render_trace_summary(sample_records())
    assert "trace: 3 record(s)" in text
    assert "span  ait/download" in text
    assert "x2" in text  # two attack/strike events


def test_render_metrics():
    registry = MetricsRegistry()
    registry.counter("ait/runs").inc(4)
    registry.gauge("kernel/queue_depth_peak").set(3)
    registry.histogram("ait/elapsed_ns").observe(100)
    text = render_metrics(registry.snapshot())
    assert text.startswith("metrics: 3 metric(s)")
    assert "counter   ait/runs" in text
    assert "gauge     kernel/queue_depth_peak" in text
    assert "count=1 mean=100.0 min=100 max=100" in text


def test_render_metrics_handles_none_and_empty():
    assert render_metrics(None) == "metrics: 0 metric(s)"
    assert render_metrics(empty_snapshot(),
                          title="fleet metrics") == "fleet metrics: 0 metric(s)"


def test_render_metrics_appends_percentiles_for_bucketed_histograms():
    registry = MetricsRegistry()
    for value in (10, 20, 30, 40, 100):
        registry.histogram("ait/elapsed_ns").observe(value)
    text = render_metrics(registry.snapshot())
    assert "p50=31" in text
    assert "p95=100" in text and "p99=100" in text
    # Legacy summaries without buckets render without percentiles.
    legacy = {"counters": {}, "gauges": {},
              "histograms": {"old": {"count": 1, "sum": 5, "min": 5,
                                     "max": 5}}}
    assert "p50" not in render_metrics(legacy)


def test_renderers_widen_columns_for_long_names():
    # Regression: names longer than 28 chars used to shear the value
    # columns out of alignment.
    long_name = "defense/very_long_subsystem_metric_name_indeed"
    registry = MetricsRegistry()
    registry.counter(long_name).inc()
    registry.counter("short").inc()
    lines = render_metrics(registry.snapshot()).splitlines()[1:]
    assert len({line.rfind(" ") for line in lines}) == 1  # values aligned
    recorder = TraceRecorder()
    recorder.span(long_name, 0, 10)
    recorder.span("short", 0, 10)
    summary_lines = render_trace_summary(recorder.records()).splitlines()[1:]
    positions = {line.index(" x") for line in summary_lines}
    assert len(positions) == 1  # count column starts at one offset
