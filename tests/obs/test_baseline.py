"""Tests for BENCH_*.json baselines and the regression gate."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.errors import ReproError
from repro.obs.baseline import (
    BenchBaseline,
    load_baseline,
    regression_gate,
    save_baseline,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def make_baseline(wall=1.0):
    return BenchBaseline(name="fleet", installs=100, shards=4,
                         backend="serial", repeats=3, wall_seconds=wall,
                         throughput=100 / wall, runs=[wall, wall * 1.1])


def test_baseline_round_trips_canonically(tmp_path):
    path = str(tmp_path / "BENCH_fleet.json")
    baseline = make_baseline(1.25)
    save_baseline(path, baseline)
    loaded = load_baseline(path)
    assert loaded == baseline
    # Canonical JSON: saving the loaded baseline is byte-identical.
    first = pathlib.Path(path).read_text()
    save_baseline(path, loaded)
    assert pathlib.Path(path).read_text() == first
    assert json.loads(first)["wall_seconds"] == 1.25


def test_load_rejects_malformed_baselines(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(ReproError, match="cannot read"):
        load_baseline(str(missing))
    bad_json = tmp_path / "bad.json"
    bad_json.write_text("{not json")
    with pytest.raises(ReproError, match="invalid baseline JSON"):
        load_baseline(str(bad_json))
    not_object = tmp_path / "list.json"
    not_object.write_text("[1, 2]")
    with pytest.raises(ReproError, match="JSON object"):
        load_baseline(str(not_object))
    incomplete = tmp_path / "incomplete.json"
    incomplete.write_text('{"name": "fleet"}')
    with pytest.raises(ReproError, match="missing field"):
        load_baseline(str(incomplete))
    zero_wall = tmp_path / "zero.json"
    zero_wall.write_text(json.dumps({
        "name": "fleet", "installs": 1, "shards": 1, "backend": "serial",
        "repeats": 1, "wall_seconds": 0, "throughput": 0}))
    with pytest.raises(ReproError, match="wall_seconds"):
        load_baseline(str(zero_wall))


def test_load_ignores_unknown_fields(tmp_path):
    path = tmp_path / "future.json"
    payload = json.loads(make_baseline().to_json())
    payload["new_field_from_the_future"] = True
    path.write_text(json.dumps(payload))
    assert load_baseline(str(path)).name == "fleet"


def test_gate_passes_within_threshold_and_on_speedups():
    baseline = make_baseline(1.0)
    assert regression_gate(baseline, 1.05, threshold=0.10).ok
    assert regression_gate(baseline, 0.5, threshold=0.10).ok
    result = regression_gate(baseline, 1.0, threshold=0.0)
    assert result.ok and result.slowdown == 0.0


def test_gate_fails_past_threshold():
    baseline = make_baseline(1.0)
    result = regression_gate(baseline, 1.2, threshold=0.10)
    assert not result.ok
    assert result.slowdown == pytest.approx(0.2)
    assert "REGRESSION" in result.render()
    assert "+20.0%" in result.render()


def test_gate_rejects_nonsense_inputs():
    with pytest.raises(ReproError, match="threshold"):
        regression_gate(make_baseline(), 1.0, threshold=-0.1)
    with pytest.raises(ReproError, match="wall clock"):
        regression_gate(make_baseline(), 0.0)


# -- tools/bench.py end to end ----------------------------------------------


def run_bench(*argv):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "bench.py"), *argv],
        capture_output=True, text=True)


def test_bench_tool_gate_fires_on_synthetic_slowdown(tmp_path):
    baseline_path = str(tmp_path / "BENCH_fleet.json")
    small = ["--installs", "30", "--shards", "2", "--repeat", "1"]
    wrote = run_bench("--write", baseline_path, *small)
    assert wrote.returncode == 0, wrote.stderr
    assert pathlib.Path(baseline_path).exists()
    # A generous threshold always passes (timing noise cannot flake it).
    ok = run_bench("--compare", baseline_path, *small, "--threshold", "10.0")
    assert ok.returncode == 0, ok.stderr
    assert "OK" in ok.stdout
    # A synthetic 10x slowdown must trip the default 10% gate.
    slow = run_bench("--compare", baseline_path, *small,
                     "--inject-slowdown", "10.0")
    assert slow.returncode == 1, slow.stdout + slow.stderr
    assert "REGRESSION" in slow.stdout


def test_bench_tool_rejects_mismatched_baseline(tmp_path):
    baseline_path = str(tmp_path / "BENCH_fleet.json")
    wrote = run_bench("--write", baseline_path, "--installs", "30",
                      "--shards", "2", "--repeat", "1")
    assert wrote.returncode == 0, wrote.stderr
    mismatched = run_bench("--compare", baseline_path, "--installs", "60",
                           "--shards", "2", "--repeat", "1")
    assert mismatched.returncode == 2
    assert "matching --installs" in mismatched.stderr


def test_bench_tool_requires_exactly_one_mode():
    neither = run_bench("--installs", "10")
    assert neither.returncode == 2
    both = run_bench("--write", "a.json", "--compare", "b.json")
    assert both.returncode == 2


def test_bench_write_stamps_host_metadata(tmp_path):
    baseline_path = str(tmp_path / "BENCH_fleet.json")
    wrote = run_bench("--write", baseline_path, "--installs", "30",
                      "--shards", "2", "--repeat", "1", "--telemetry")
    assert wrote.returncode == 0, wrote.stderr
    assert "telemetry=on" in wrote.stdout
    baseline = load_baseline(baseline_path)
    host = baseline.meta["host"]
    assert host["cpus"] >= 1
    assert host["platform"]
    assert host["python"].count(".") == 2
    assert baseline.meta["telemetry"] is True
    # the gate compares wall_seconds only — a baseline recorded on a
    # different host (different meta) still gates cleanly
    ok = run_bench("--compare", baseline_path, "--installs", "30",
                   "--shards", "2", "--repeat", "1",
                   "--threshold", "10.0")
    assert ok.returncode == 0, ok.stderr


def test_committed_baseline_is_loadable_and_matches_reference_shape():
    baseline = load_baseline(str(REPO_ROOT / "BENCH_fleet.json"))
    assert baseline.name == "fleet"
    assert baseline.backend == "serial"
    assert baseline.installs == 2000
    assert baseline.shards == 4
    assert baseline.wall_seconds > 0
    assert baseline.meta.get("seed") == 7
