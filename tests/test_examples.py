"""Smoke tests: every example script must run clean end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "carrier_bloatware_hijack.py",
    "appstore_phishing.py",
    "defense_evaluation.py",
    "secure_installer_toolkit.py",
    "attack_forensics.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_tells_the_story(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "HIJACKED         : True" in out
    assert "HIJACKED         : False" in out


def test_examples_directory_is_complete():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES) <= scripts
    assert "measurement_study.py" in scripts  # exercised by benchmarks
