"""Warm pool: reuse, determinism, crash recovery, leak-free shutdown."""

import os
import time

import pytest

from repro.engine import executor as executor_module
from repro.engine.executor import (
    FleetExecutor,
    WarmPool,
    drain_queue,
    multiprocessing_usable,
)
from repro.engine.spec import CampaignSpec

needs_multiprocessing = pytest.mark.skipif(
    not multiprocessing_usable(),
    reason="multiprocessing unavailable in this environment")


def _alive_children(pids):
    """Which of ``pids`` still exist as live processes?"""
    alive = []
    for pid in pids:
        try:
            os.kill(pid, 0)
        except OSError:
            continue
        alive.append(pid)
    return alive


# -- drain helper (shared by cold pool, warm pool, serve scheduler) -----------

@needs_multiprocessing
def test_drain_queue_sweeps_a_burst_in_one_pass():
    import multiprocessing

    result_queue = multiprocessing.get_context().Queue()
    for index in range(5):
        result_queue.put(index)
    time.sleep(0.1)  # let the feeder thread flush
    seen = []
    assert drain_queue(result_queue, seen.append, timeout=1.0) == 5
    assert seen == [0, 1, 2, 3, 4]
    result_queue.close()
    result_queue.join_thread()


@needs_multiprocessing
def test_drain_queue_returns_zero_on_an_empty_queue():
    import multiprocessing

    result_queue = multiprocessing.get_context().Queue()
    assert drain_queue(result_queue, lambda m: None, timeout=0.01) == 0
    result_queue.close()
    result_queue.join_thread()


# -- warm pool scheduling -----------------------------------------------------

def _drive(pool, spec, shards=4):
    """Run every shard of ``spec`` through ``pool``; results by index."""
    pending = list(spec.shard(shards))
    results = {}
    submitted = {}
    while pending or submitted:
        while pending and pool.has_idle():
            shard = pending.pop(0)
            pool.submit(shard.index, shard)
            submitted[shard.index] = shard
        for ticket, status, payload in pool.poll(timeout=5.0):
            assert status == "ok", (ticket, status, payload)
            submitted.pop(ticket)
            results[ticket] = payload
    return results


@needs_multiprocessing
def test_warm_pool_reuses_the_same_worker_processes():
    spec = CampaignSpec(installs=24, seed=7)
    with WarmPool(2) as pool:
        first = pool.worker_pids()
        _drive(pool, spec)
        _drive(pool, spec)
        assert pool.worker_pids() == first  # no respawn between runs
        assert pool.restarts == 0
        assert pool.tasks_done == 8


@needs_multiprocessing
def test_warm_pool_results_match_serial_execution():
    spec = CampaignSpec(installs=40, seed=7)
    serial = FleetExecutor(backend="serial").run(spec, shards=4)
    with WarmPool(2) as pool:
        results = _drive(pool, spec)
    assert sorted(results) == [0, 1, 2, 3]
    merged = results[0].stats
    for index in (1, 2, 3):
        merged = merged.merge(results[index].stats)
    assert merged.counter_tuple() == serial.stats.counter_tuple()
    assert all(result.backend == "warm" for result in results.values())


@needs_multiprocessing
def test_warm_pool_close_leaves_no_processes_behind():
    pool = WarmPool(3)
    pids = list(pool.worker_pids().values())
    assert len(_alive_children(pids)) == 3
    pool.close()
    deadline = time.monotonic() + 5.0
    while _alive_children(pids) and time.monotonic() < deadline:
        time.sleep(0.01)
    assert _alive_children(pids) == []
    assert pool.closed
    pool.close()  # idempotent


@needs_multiprocessing
def test_warm_pool_restarts_a_dead_worker_and_reports_the_crash():
    # chaos crash in shard 0 kills the resident worker mid-task; the
    # pool must surface the crash (satellite: the worker-death sentinel
    # path) and respawn the slot so the pool stays at full strength.
    spec = CampaignSpec(installs=8, seed=7, chaos="crash:0")
    shard = list(spec.shard(2))[0]
    with WarmPool(1) as pool:
        before = pool.worker_pids()
        pool.submit(shard.index, shard)
        events = []
        deadline = time.monotonic() + 10.0
        while not events and time.monotonic() < deadline:
            events = pool.poll(timeout=1.0)
        assert len(events) == 1
        ticket, status, payload = events[0]
        assert ticket == 0
        assert status == "crash"
        assert "died" in payload
        assert pool.restarts == 1
        assert pool.worker_pids() != before
        assert pool.has_idle()  # replacement is ready for work


@needs_multiprocessing
def test_warm_pool_reaps_a_hung_worker_on_timeout():
    spec = CampaignSpec(installs=8, seed=7, chaos="hang:0")
    shard = list(spec.shard(2))[0]
    with WarmPool(1) as pool:
        pool.submit(shard.index, shard)
        time.sleep(0.3)
        events = pool.reap_timeouts(0.1)
        assert [(t, s) for t, s, _ in events] == [(0, "timeout")]
        assert pool.restarts == 1
        assert pool.has_idle()


def test_warm_pool_validates_worker_count():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        WarmPool(0)


# -- executor integration -----------------------------------------------------

@needs_multiprocessing
def test_warm_executor_matches_serial_and_reuses_workers():
    spec = CampaignSpec(installs=60, seed=7)
    serial = FleetExecutor(backend="serial").run(spec, shards=4)
    with FleetExecutor(workers=2, backend="process", warm=True) as fleet:
        first = fleet.run(spec, shards=4)
        pids = fleet._pool.worker_pids()
        second = fleet.run(spec, shards=4)
        assert fleet._pool.worker_pids() == pids
    assert first.stats.counter_tuple() == serial.stats.counter_tuple()
    assert second.stats.counter_tuple() == serial.stats.counter_tuple()
    assert {shard.backend for shard in first.shards} == {"warm"}


@needs_multiprocessing
def test_warm_executor_survives_chaos_via_retry_and_fallback():
    spec = CampaignSpec(installs=24, seed=7, chaos="crash:1")
    serial = FleetExecutor(backend="serial").run(
        CampaignSpec(installs=24, seed=7))
    with FleetExecutor(workers=2, backend="process", warm=True,
                       max_retries=0) as fleet:
        report = fleet.run(spec, shards=3)
    assert report.stats.counter_tuple() == serial.stats.counter_tuple()
    assert report.counters["crashes"] >= 1
    assert report.counters["fallbacks"] == 1


@needs_multiprocessing
def test_executor_close_is_idempotent_and_releases_the_pool():
    fleet = FleetExecutor(workers=2, backend="process", warm=True)
    fleet.run(CampaignSpec(installs=8, seed=7), shards=2)
    pids = list(fleet._pool.worker_pids().values())
    fleet.close()
    assert fleet._pool is None
    deadline = time.monotonic() + 5.0
    while _alive_children(pids) and time.monotonic() < deadline:
        time.sleep(0.01)
    assert _alive_children(pids) == []
    fleet.close()  # second close is a no-op
    # a closed executor can still run (it rebuilds the pool lazily)
    report = fleet.run(CampaignSpec(installs=8, seed=7), shards=2)
    assert report.stats.runs == 8
    fleet.close()
