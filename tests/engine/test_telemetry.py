"""Telemetry rides beside the deterministic plane, never inside it.

Two contracts:

1. the golden fleet run WITH telemetry on still produces the exact
   golden trace bytes and metric bits — sampling the wall clock must
   not perturb anything determinism comparisons see;
2. with telemetry off (the default), the executor's fast path makes
   zero clock/rusage samples — proven by monkeypatch-counting the
   hooks every probe goes through.
"""

import json

import pytest

from repro.engine import CampaignSpec, NullProgress, run_fleet
from repro.obs import write_trace_jsonl
from repro.obs.runtime import TelemetryRollup

from tests.engine.test_golden import (
    GOLDEN_METRICS,
    GOLDEN_TRACE,
    golden_spec,
)


def run_golden(telemetry=False, profile_shards=False):
    return run_fleet(golden_spec(), shards=4, backend="serial",
                     progress=NullProgress(), telemetry=telemetry,
                     profile_shards=profile_shards)


# -- invariant 1: goldens unchanged with telemetry on -----------------------

def test_golden_trace_bytes_survive_telemetry(tmp_path):
    report = run_golden(telemetry=True)
    current = tmp_path / "with_telemetry.jsonl"
    write_trace_jsonl(str(current), report.trace_records())
    assert current.read_bytes() == GOLDEN_TRACE.read_bytes()


def test_golden_metrics_bits_survive_telemetry():
    report = run_golden(telemetry=True)
    rendered = json.dumps(report.metrics, indent=2, sort_keys=True) + "\n"
    assert rendered == GOLDEN_METRICS.read_text(encoding="utf-8")


def test_stats_identical_with_and_without_telemetry():
    plain = run_golden()
    probed = run_golden(telemetry=True)
    assert plain.stats.counter_tuple() == probed.stats.counter_tuple()
    assert plain.telemetry is None
    assert probed.telemetry is not None


# -- invariant 2: disabled path samples nothing -----------------------------

@pytest.fixture
def hook_counter(monkeypatch):
    """Count every telemetry clock/rusage sample the engine takes."""
    import repro.obs.runtime as runtime

    calls = {"clock": 0, "rusage": 0}
    real_clock, real_rusage = runtime._clock_ns, runtime._rusage

    def counting_clock():
        calls["clock"] += 1
        return real_clock()

    def counting_rusage():
        calls["rusage"] += 1
        return real_rusage()

    monkeypatch.setattr(runtime, "_clock_ns", counting_clock)
    monkeypatch.setattr(runtime, "_rusage", counting_rusage)
    return calls


def test_disabled_telemetry_takes_zero_samples(hook_counter):
    report = run_fleet(CampaignSpec(installs=40, seed=7), shards=2,
                       backend="serial", progress=NullProgress())
    assert report.stats.runs == 40
    assert report.telemetry is None
    assert hook_counter == {"clock": 0, "rusage": 0}


def test_enabled_telemetry_samples_twice_per_shard(hook_counter):
    report = run_fleet(CampaignSpec(installs=40, seed=7), shards=2,
                       backend="serial", progress=NullProgress(),
                       telemetry=True)
    assert report.telemetry is not None
    # one probe per shard: start + finish = 2 samples of each hook
    assert hook_counter == {"clock": 4, "rusage": 4}


# -- report surface ---------------------------------------------------------

def test_report_telemetry_folds_all_shards():
    report = run_golden(telemetry=True)
    rollup = TelemetryRollup.from_dict(report.telemetry)
    assert rollup.shards == 4
    assert rollup.wall_ns > 0
    assert rollup.retries == 0
    assert "telemetry" in report.render()


def test_profile_shards_returns_mergeable_blobs(tmp_path):
    from repro.obs.runtime import write_hotspots

    report = run_golden(profile_shards=True)
    blobs = [shard.profile for shard in report.shards if shard.profile]
    assert len(blobs) == 4
    table = write_hotspots(tmp_path / "hot.txt", blobs)
    text = table.read_text(encoding="utf-8")
    assert "4 shard profile(s)" in text
    assert "_execute_shard" in text


def test_analysis_report_carries_telemetry_beside_stdout():
    from repro.analysis.pipeline import AnalysisSpec, run_analysis

    spec = AnalysisSpec(corpus="play", apps=400, seed=2016)
    plain = run_analysis(spec, shards=2, backend="serial")
    probed = run_analysis(spec, shards=2, backend="serial",
                          telemetry=True)
    # the deterministic table never mentions the wall-clock plane
    assert plain.render() == probed.render()
    assert plain.telemetry is None
    assert probed.telemetry["shards"] == 2
