"""Golden-trace regression test for the determinism contract.

The goldens under ``tests/engine/golden/`` were recorded from the
reference fleet (200 installs, seed 7, 4 shards, serial backend)
*before* the hot-path optimization pass; this test re-runs the same
fleet and demands byte-identical trace JSONL and bit-identical merged
metric snapshots.  Any "optimization" that changes scheduling order,
metric values, or trace content fails here first.
"""

import json
import pathlib

from repro.__main__ import main
from repro.engine import CampaignSpec, NullProgress, run_fleet
from repro.obs import write_trace_jsonl

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_TRACE = GOLDEN_DIR / "fleet_s7x4.jsonl"
GOLDEN_METRICS = GOLDEN_DIR / "fleet_s7x4_metrics.json"


def golden_spec() -> CampaignSpec:
    return CampaignSpec(installs=200, seed=7, observe=True)


def run_golden_fleet(backend="serial", workers=None):
    return run_fleet(golden_spec(), shards=4, backend=backend,
                     workers=workers, progress=NullProgress())


def test_trace_is_byte_identical_to_the_golden(tmp_path):
    report = run_golden_fleet()
    current = tmp_path / "current.jsonl"
    count = write_trace_jsonl(str(current), report.trace_records())
    assert count == 1000
    assert current.read_bytes() == GOLDEN_TRACE.read_bytes()


def test_metrics_are_bit_identical_to_the_golden():
    report = run_golden_fleet()
    rendered = json.dumps(report.metrics, indent=2, sort_keys=True) + "\n"
    assert rendered == GOLDEN_METRICS.read_text(encoding="utf-8")


def test_trace_diff_against_the_golden_is_empty(tmp_path, capsys):
    report = run_golden_fleet()
    current = tmp_path / "current.jsonl"
    write_trace_jsonl(str(current), report.trace_records())
    exit_code = main(["trace", "diff", "--trace", str(current),
                      "--against", str(GOLDEN_TRACE)])
    capsys.readouterr()
    assert exit_code == 0
