"""Fleet-level observability: trace/metrics determinism, chaos
validation, zero-trial statistics, and fault counters."""

import pytest

from repro.engine.executor import multiprocessing_usable, run_fleet, run_shard
from repro.engine.merge import FleetReport, ShardResult, wilson_interval
from repro.engine.progress import MetricsProgress, TeeProgress
from repro.engine.spec import CampaignSpec, parse_chaos
from repro.errors import ReproError
from repro.obs.export import trace_to_jsonl

needs_multiprocessing = pytest.mark.skipif(
    not multiprocessing_usable(),
    reason="multiprocessing unavailable in this environment")

OBSERVED = CampaignSpec(installs=8, seed=11, attack="fileobserver",
                        defenses=("fuse-dac",), observe=True)


# -- chaos spec validation (the --chaos crash:bogus bugfix) ------------------


def test_parse_chaos_accepts_valid_specs():
    assert parse_chaos(None) == ("", ())
    assert parse_chaos("crash:1") == ("crash", (1,))
    assert parse_chaos("error:0,2") == ("error", (0, 2))
    assert parse_chaos("hang:") == ("hang", ())


def test_parse_chaos_rejects_unknown_mode():
    with pytest.raises(ReproError, match="unknown mode"):
        parse_chaos("explode:1")


def test_parse_chaos_rejects_non_integer_index():
    with pytest.raises(ReproError, match="not a shard index"):
        parse_chaos("crash:1,x")


def test_campaign_spec_validates_chaos_up_front():
    # Regression: a malformed spec used to escape as a raw ValueError
    # from inside worker scheduling; it must fail spec construction.
    with pytest.raises(ReproError, match="invalid chaos spec"):
        CampaignSpec(installs=4, chaos="crash:bogus")


# -- zero-trial statistics ---------------------------------------------------


def test_wilson_interval_zero_trials_is_vacuous():
    assert wilson_interval(0, 0) == (0.0, 1.0)


def test_empty_fleet_report_has_sane_aggregates():
    report = run_fleet(CampaignSpec(installs=0, observe=True),
                       shards=2, backend="serial")
    assert report.stats.runs == 0
    assert report.hijack_ci == (0.0, 1.0)
    assert report.alarm_ci == (0.0, 1.0)
    assert report.alarm_rate == 0.0
    assert report.stats.hijack_rate == 0.0
    text = report.render()
    assert "0 installs over 2 shard(s)" in text
    # Observability on a zero-install fleet: empty but well-formed.
    assert report.trace_records() == []
    assert report.metrics == {"counters": {}, "gauges": {},
                              "histograms": {}}


def test_report_from_no_shards_at_all():
    report = FleetReport.from_shards(
        CampaignSpec(installs=0), shards=[], wall_seconds=0.0,
        workers=1, backend="serial")
    assert report.throughput == 0.0
    assert report.shard_timing() == (0.0, 0.0, 0.0)
    assert report.metrics is None
    assert report.trace_records() == []


# -- trace/metrics plumbing --------------------------------------------------


def test_unobserved_shard_carries_no_trace_or_metrics():
    result = run_shard(CampaignSpec(installs=2, seed=3).shard(1)[0])
    assert result.trace is None
    assert result.metrics is None


def test_observed_shard_carries_trace_and_metrics():
    result = run_shard(OBSERVED.shard(2)[0])
    assert result.trace, "expected trace records"
    assert result.metrics["counters"]["ait/runs"] == 4
    assert all(record["type"] in ("span", "event")
               for record in result.trace)


def test_trace_records_are_shard_tagged_and_ordered():
    report = run_fleet(OBSERVED, shards=2, backend="serial")
    records = report.trace_records()
    assert records, "expected a merged trace"
    shards_seen = [record["shard"] for record in records]
    assert shards_seen == sorted(shards_seen)
    assert set(shards_seen) == {0, 1}


# -- the determinism contract, extended to observability ---------------------


def test_trace_and_metrics_identical_across_reruns():
    first = run_fleet(OBSERVED, shards=2, backend="serial")
    second = run_fleet(OBSERVED, shards=2, backend="serial")
    assert (trace_to_jsonl(first.trace_records())
            == trace_to_jsonl(second.trace_records()))
    assert first.metrics == second.metrics


def test_merged_fleet_histograms_carry_buckets_for_any_grouping():
    # The log-bucket counts thread through the shard merge: the fold
    # of per-shard snapshots equals the whole-fleet fold bit for bit,
    # regardless of how installs were sharded.
    from repro.obs.export import render_metrics
    from repro.obs.metrics import merge_snapshots, summary_percentile

    two = run_fleet(OBSERVED, shards=2, backend="serial")
    four = run_fleet(OBSERVED, shards=4, backend="serial")
    for report in (two, four):
        elapsed = report.metrics["histograms"]["ait/elapsed_ns"]
        assert elapsed["count"] == 8
        assert sum(elapsed["buckets"].values()) == 8
        assert summary_percentile(elapsed, 50) is not None
    # Same installs, different sharding: identical bucket totals.
    assert (two.metrics["histograms"]["ait/elapsed_ns"]
            == four.metrics["histograms"]["ait/elapsed_ns"])
    # Refolding the per-shard snapshots reproduces the report's merge.
    refolded = merge_snapshots([s.metrics for s in four.shards])
    assert refolded == four.metrics
    assert "p50=" in render_metrics(four.metrics)


@needs_multiprocessing
def test_trace_and_metrics_identical_across_layouts():
    serial = run_fleet(OBSERVED, shards=2, backend="serial")
    two_workers = run_fleet(OBSERVED, shards=2, workers=2,
                            backend="process")
    assert two_workers.backend == "process"
    assert (trace_to_jsonl(serial.trace_records())
            == trace_to_jsonl(two_workers.trace_records()))
    assert serial.metrics == two_workers.metrics
    assert serial.stats == two_workers.stats


# -- executor fault counters folded into the report --------------------------


def test_clean_run_has_zero_fault_counters():
    report = run_fleet(CampaignSpec(installs=4, seed=3), shards=2,
                       backend="serial")
    assert not any(report.counters.values())
    assert "faults" not in report.render()


@needs_multiprocessing
def test_injected_error_shows_up_in_counters_and_render():
    progress = MetricsProgress()
    spec = CampaignSpec(installs=4, seed=5, chaos="error:1")
    report = run_fleet(spec, shards=2, workers=2, max_retries=0,
                       progress=progress)
    assert report.counters["errors"] == 1
    assert report.counters["fallbacks"] == 1
    assert report.counters["retries"] == 0  # retries exhausted at 0
    assert "faults" in report.render()
    assert "1 error(s)" in report.render()
    assert progress.retries == 1
    assert "1 retried" in progress.render()


def test_tee_progress_broadcasts_to_all_observers():
    first, second = MetricsProgress(), MetricsProgress()
    run_fleet(CampaignSpec(installs=2, seed=3), shards=2,
              backend="serial", progress=TeeProgress(first, second))
    assert first.shards_done == second.shards_done == 2
    assert first.throughputs and second.throughputs
