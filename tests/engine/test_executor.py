"""Tests for the fleet executor: backends, retries, timeouts, fallback."""

import pytest

from repro.engine import executor as executor_module
from repro.engine.executor import (
    FleetExecutor,
    multiprocessing_usable,
    run_fleet,
    run_shard,
)
from repro.engine.progress import FleetProgress
from repro.engine.spec import CampaignSpec
from repro.errors import ReproError

needs_multiprocessing = pytest.mark.skipif(
    not multiprocessing_usable(),
    reason="multiprocessing unavailable in this environment")


class RecordingProgress(FleetProgress):
    def __init__(self):
        self.starts = []
        self.dones = []
        self.retries = []
        self.fleet = []

    def on_fleet_start(self, spec, shard_count, workers, backend):
        self.fleet.append((shard_count, workers, backend))

    def on_shard_start(self, shard, attempt):
        self.starts.append((shard.index, attempt))

    def on_shard_done(self, result, done, total):
        self.dones.append((result.shard_index, done, total))

    def on_shard_retry(self, shard, attempt, reason):
        self.retries.append((shard.index, attempt, reason))


def test_run_shard_executes_slice():
    shard = CampaignSpec(installs=6, seed=3).shard(2)[1]
    result = run_shard(shard)
    assert result.stats.runs == 3
    assert result.stats.clean_installs == 3
    assert (result.start, result.stop) == (3, 6)
    assert result.wall_seconds > 0


def test_serial_backend_runs_all_shards_with_progress():
    progress = RecordingProgress()
    report = run_fleet(CampaignSpec(installs=8, seed=3), shards=4,
                       backend="serial", progress=progress)
    assert report.backend == "serial"
    assert report.stats.runs == 8
    assert report.stats.clean_installs == 8
    assert progress.fleet == [(4, 1, "serial")]
    assert [d[0] for d in progress.dones] == [0, 1, 2, 3]
    assert progress.retries == []


def test_attack_fleet_counts_hijacks_and_blocks():
    spec = CampaignSpec(installs=6, installer="dtignite",
                        attack="fileobserver", seed=5)
    report = run_fleet(spec, shards=3, backend="serial")
    assert report.stats.hijacks == 6
    assert report.stats.hijack_rate == 1.0
    defended = CampaignSpec(installs=6, installer="dtignite",
                            attack="fileobserver", defenses=("fuse-dac",),
                            seed=5)
    dreport = run_fleet(defended, shards=3, backend="serial")
    assert dreport.stats.hijacks == 0
    assert dreport.stats.blocked >= 6
    assert dreport.stats.blocked_runs == 6


def test_auto_backend_with_one_worker_is_serial():
    report = run_fleet(CampaignSpec(installs=2, seed=1), shards=2, workers=1)
    assert report.backend == "serial"


def test_process_request_degrades_when_multiprocessing_unavailable(monkeypatch):
    monkeypatch.setattr(executor_module, "multiprocessing_usable",
                        lambda: False)
    progress = RecordingProgress()
    report = run_fleet(CampaignSpec(installs=4, seed=1), shards=2, workers=2,
                       backend="process", progress=progress)
    assert report.backend == "serial"
    assert report.stats.runs == 4
    assert progress.fleet == [(2, 1, "serial")]


def test_executor_validates_options():
    with pytest.raises(ReproError):
        FleetExecutor(backend="threads")
    with pytest.raises(ReproError):
        FleetExecutor(workers=0)
    with pytest.raises(ReproError):
        FleetExecutor(max_retries=-1)


def test_empty_campaign_is_fine():
    report = run_fleet(CampaignSpec(installs=0), shards=2, backend="serial")
    assert report.stats.runs == 0
    assert report.stats == run_fleet(
        CampaignSpec(installs=0), shards=1, backend="serial").stats


@needs_multiprocessing
def test_process_backend_matches_serial():
    spec = CampaignSpec(installs=8, seed=13, defenses=("dapp",))
    serial = run_fleet(spec, shards=4, backend="serial")
    parallel = run_fleet(spec, shards=4, workers=2, backend="process")
    assert parallel.backend == "process"
    assert parallel.stats == serial.stats


@needs_multiprocessing
def test_crashed_worker_is_retried_then_falls_back_to_serial():
    progress = RecordingProgress()
    spec = CampaignSpec(installs=8, seed=5, chaos="crash:1")
    report = run_fleet(spec, shards=4, workers=2, max_retries=1,
                       progress=progress)
    reference = run_fleet(CampaignSpec(installs=8, seed=5), shards=4,
                          backend="serial")
    assert report.stats == reference.stats
    crashed = [s for s in report.shards if s.shard_index == 1][0]
    assert crashed.attempts == 3  # 2 pool attempts + 1 serial fallback
    assert crashed.backend == "serial-fallback"
    assert [r[0] for r in progress.retries] == [1, 1]
    assert "crashed" in progress.retries[0][2]
    healthy = [s for s in report.shards if s.shard_index != 1]
    assert all(s.backend == "process" and s.attempts == 1 for s in healthy)


@needs_multiprocessing
def test_hung_worker_times_out_and_falls_back():
    progress = RecordingProgress()
    spec = CampaignSpec(installs=4, seed=5, chaos="hang:0")
    report = run_fleet(spec, shards=2, workers=2, max_retries=0,
                       shard_timeout=1.0, progress=progress)
    reference = run_fleet(CampaignSpec(installs=4, seed=5), shards=2,
                          backend="serial")
    assert report.stats == reference.stats
    hung = [s for s in report.shards if s.shard_index == 0][0]
    assert hung.backend == "serial-fallback"
    assert any("timeout" in r[2] for r in progress.retries)


@needs_multiprocessing
def test_worker_exception_is_reported_and_retried():
    progress = RecordingProgress()
    spec = CampaignSpec(installs=4, seed=5, chaos="error:1")
    report = run_fleet(spec, shards=2, workers=2, max_retries=0,
                       progress=progress)
    reference = run_fleet(CampaignSpec(installs=4, seed=5), shards=2,
                          backend="serial")
    assert report.stats == reference.stats
    assert any("RuntimeError" in r[2] for r in progress.retries)


# -- blocking result wait (replaces fixed-interval polling) -------------------

def _exit_immediately():  # worker target; must be module-level (spawn-safe)
    pass


@needs_multiprocessing
def test_wait_for_result_wakes_immediately_on_a_queued_message():
    import multiprocessing
    import time

    context = multiprocessing.get_context()
    result_queue = context.Queue()
    result_queue.put((0, "ok", "payload"))
    started = time.perf_counter()
    assert executor_module.wait_for_result(result_queue, (), timeout=5.0)
    elapsed = time.perf_counter() - started
    # The old scheduler polled at a fixed 50ms interval; a ready result
    # must wake the blocking wait in well under one poll tick.
    assert elapsed < 0.05
    assert result_queue.get(timeout=1.0) == (0, "ok", "payload")
    result_queue.close()
    result_queue.join_thread()


@needs_multiprocessing
def test_wait_for_result_wakes_on_worker_death_without_a_message():
    import multiprocessing
    import time

    context = multiprocessing.get_context()
    result_queue = context.Queue()
    process = context.Process(target=_exit_immediately)
    process.start()
    started = time.perf_counter()
    woke_for_result = executor_module.wait_for_result(
        result_queue, [process], timeout=5.0)
    elapsed = time.perf_counter() - started
    process.join()
    result_queue.close()
    result_queue.join_thread()
    # The death sentinel, not the timeout, ended the wait.
    assert woke_for_result is False
    assert elapsed < 5.0


@needs_multiprocessing
def test_wait_for_result_times_out_when_nothing_happens():
    import multiprocessing
    import time

    context = multiprocessing.get_context()
    result_queue = context.Queue()
    started = time.perf_counter()
    assert executor_module.wait_for_result(
        result_queue, (), timeout=0.05) is False
    assert time.perf_counter() - started >= 0.04
    result_queue.close()
    result_queue.join_thread()


def test_wait_for_result_degrades_when_the_queue_has_no_pipe():
    class OpaqueQueue:
        pass

    # No ``_reader`` to sleep on: report readable so the caller falls
    # back to its own timed ``get``.
    assert executor_module.wait_for_result(OpaqueQueue(), (), timeout=0.0)


# -- record-time outcome compaction -------------------------------------------

def test_run_shard_records_compact_outcomes():
    from repro.engine import OutcomeRecord

    shard = CampaignSpec(installs=4, seed=3).shard(1)[0]
    result = run_shard(shard)
    assert result.stats.runs == 4
    assert len(result.stats.outcomes) == 4
    assert all(isinstance(outcome, OutcomeRecord)
               for outcome in result.stats.outcomes)


def test_run_shard_honours_keep_outcomes_cap():
    from repro.engine import OutcomeRecord

    shard = CampaignSpec(installs=6, seed=3, keep_outcomes=2).shard(1)[0]
    result = run_shard(shard)
    # Counters cover every run; only the retained records are capped.
    assert result.stats.runs == 6
    assert result.stats.clean_installs == 6
    assert len(result.stats.outcomes) == 2
    assert all(isinstance(outcome, OutcomeRecord)
               for outcome in result.stats.outcomes)


def test_keep_outcomes_rejects_negative_values():
    with pytest.raises(ReproError, match="keep_outcomes"):
        CampaignSpec(installs=1, keep_outcomes=-1)
