"""The engine's core contract: one seed, bit-identical merged stats.

Acceptance: the same top-level seed must produce identical merged
``CampaignStats`` (counters *and* per-install outcome records,
including simulated elapsed time) for every combination of
``workers in {1, 2, 4}`` and ``shards in {1, 8}``, on both benign and
attack campaigns, with and without defenses.
"""

import pytest

from repro.engine import CampaignSpec, run_fleet

WORKERS = (1, 2, 4)
SHARDS = (1, 8)

BENIGN = CampaignSpec(
    installs=24,
    installer="amazon",
    defenses=("dapp", "fuse-dac", "intent-detection", "intent-origin"),
    seed=7,
)
ATTACKED = CampaignSpec(
    installs=24,
    installer="dtignite",
    attack="fileobserver",
    defenses=("dapp",),
    seed=7,
)


@pytest.mark.parametrize("spec", [BENIGN, ATTACKED],
                         ids=["benign-all-defenses", "attack-dapp"])
def test_merged_stats_identical_across_workers_and_shards(spec):
    reference = run_fleet(spec, shards=1, workers=1, backend="serial").stats
    assert reference.runs == spec.installs
    for shards in SHARDS:
        for workers in WORKERS:
            merged = run_fleet(spec, shards=shards, workers=workers).stats
            assert merged == reference, (
                f"shards={shards} workers={workers} diverged")


def test_attack_campaign_reference_values():
    """Pin the ground truth the determinism matrix compares against."""
    stats = run_fleet(ATTACKED, shards=1, workers=1, backend="serial").stats
    assert stats.runs == 24
    assert stats.hijacks == 24          # DAPP detects but does not prevent
    assert stats.alarmed_runs == 24
    assert stats.blocked == 0


def test_different_seeds_change_the_workload():
    a = run_fleet(CampaignSpec(installs=6, seed=1), shards=2,
                  backend="serial").stats
    b = run_fleet(CampaignSpec(installs=6, seed=2), shards=2,
                  backend="serial").stats
    assert a != b  # APK sizes (and thus simulated timing) shift with the seed
    assert a.runs == b.runs == 6


def test_rerun_same_seed_is_bit_identical():
    first = run_fleet(BENIGN, shards=8, workers=2).stats
    second = run_fleet(BENIGN, shards=8, workers=2).stats
    assert first == second
