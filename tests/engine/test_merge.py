"""Tests for stat merging: associativity, identity, fleet aggregates."""

from hypothesis import given, settings, strategies as st

from repro.core.campaign import CampaignStats
from repro.core.outcomes import InstallOutcome
from repro.engine.merge import (
    FleetReport,
    OutcomeRecord,
    ShardResult,
    compact_stats,
    merge_stats,
    wilson_interval,
)
from repro.engine.spec import CampaignSpec


def _record(index: int, hijacked: bool = False,
            error: bool = False) -> OutcomeRecord:
    return OutcomeRecord(
        requested_package=f"com.app{index}",
        installed=not error,
        hijacked=hijacked,
        error="boom" if error else None,
        elapsed_ns=1000 + index,
    )


def _stats_from_flags(flags) -> CampaignStats:
    """Build stats from a list of (hijacked, error) pairs."""
    stats = CampaignStats()
    for index, (hijacked, error) in enumerate(flags):
        record = _record(index, hijacked=hijacked, error=error)
        stats.runs += 1
        stats.outcomes.append(record)
        if record.installed:
            stats.installs_completed += 1
        if record.hijacked:
            stats.hijacks += 1
        if record.clean_install:
            stats.clean_installs += 1
        if record.error is not None:
            stats.errors += 1
    return stats


flags_lists = st.lists(
    st.tuples(st.booleans(), st.booleans()), max_size=8)


@given(flags_lists)
@settings(max_examples=50, deadline=None)
def test_merge_identity_on_empty_stats(flags):
    stats = _stats_from_flags(flags)
    assert CampaignStats().merge(stats) == stats
    assert stats.merge(CampaignStats()) == stats


@given(flags_lists, flags_lists, flags_lists)
@settings(max_examples=50, deadline=None)
def test_merge_is_associative(a_flags, b_flags, c_flags):
    a, b, c = (_stats_from_flags(f) for f in (a_flags, b_flags, c_flags))
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left == right
    assert left.runs == a.runs + b.runs + c.runs


def test_merge_sums_every_counter_and_concatenates_outcomes():
    a = CampaignStats(runs=2, installs_completed=2, hijacks=1,
                      clean_installs=1, alarms=3, blocked=1,
                      alarmed_runs=2, blocked_runs=1,
                      outcomes=[_record(0), _record(1, hijacked=True)])
    b = CampaignStats(runs=1, installs_completed=0, errors=1,
                      outcomes=[_record(2, error=True)])
    merged = a.merge(b)
    assert merged.runs == 3
    assert merged.hijacks == 1
    assert merged.errors == 1
    assert merged.alarms == 3
    assert merged.blocked == 1
    assert merged.alarmed_runs == 2
    assert merged.blocked_runs == 1
    assert [o.requested_package for o in merged.outcomes] == [
        "com.app0", "com.app1", "com.app2"]
    # Inputs are untouched (merge returns a new snapshot).
    assert a.runs == 2 and b.runs == 1


def test_merge_stats_folds_a_sequence():
    parts = [_stats_from_flags([(False, False)]) for _ in range(4)]
    merged = merge_stats(parts)
    assert merged.runs == 4
    assert merge_stats([]) == CampaignStats()


def test_compact_stats_strips_traces_and_preserves_counters():
    stats = CampaignStats()
    outcome = InstallOutcome(requested_package="com.a", installed=True,
                             installed_certificate_owner="dev",
                             elapsed_ns=77)
    stats.record(outcome, [])
    compact = compact_stats(stats)
    assert compact.runs == stats.runs == 1
    assert compact.installs_completed == 1
    record = compact.outcomes[0]
    assert isinstance(record, OutcomeRecord)
    assert record.requested_package == "com.a"
    assert record.elapsed_ns == 77
    assert not hasattr(record, "trace")
    # Idempotent on already-compacted stats.
    assert compact_stats(compact) == compact


def test_wilson_interval_bounds_and_known_value():
    assert wilson_interval(0, 0) == (0.0, 1.0)
    lo, hi = wilson_interval(50, 100)
    assert 0.40 < lo < 0.5 < hi < 0.60
    zlo, zhi = wilson_interval(0, 924)
    assert zlo == 0.0
    assert zhi < 0.005  # the paper's 0-alarm claim stays tight
    for successes, trials in ((0, 10), (10, 10), (3, 7)):
        lo, hi = wilson_interval(successes, trials)
        assert 0.0 <= lo <= successes / trials <= hi <= 1.0


def test_fleet_report_aggregates():
    spec = CampaignSpec(installs=4)
    shards = [
        ShardResult(shard_index=1, start=2, stop=4,
                    stats=_stats_from_flags([(True, False), (False, False)]),
                    wall_seconds=2.0),
        ShardResult(shard_index=0, start=0, stop=2,
                    stats=_stats_from_flags([(False, False), (False, False)]),
                    wall_seconds=1.0),
    ]
    report = FleetReport.from_shards(spec, shards, wall_seconds=2.0,
                                     workers=2, backend="process")
    # Shards are reordered by index before merging.
    assert [s.shard_index for s in report.shards] == [0, 1]
    assert report.stats.runs == 4
    assert report.stats.hijacks == 1
    assert report.stats.hijack_rate == 0.25
    lo, hi = report.hijack_ci
    assert lo < 0.25 < hi
    assert report.throughput == 2.0
    assert report.shard_timing() == (1.0, 1.5, 2.0)
    text = report.render()
    assert "4 installs" in text
    assert "95% CI" in text
