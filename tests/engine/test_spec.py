"""Tests for campaign/shard specs: validation, sharding, derivation."""

import pickle

import pytest

from repro.engine.spec import (
    ATTACKS,
    DEVICES,
    MIN_POLL_INTERVAL_NS,
    CampaignSpec,
    ShardSpec,
    parse_chaos,
)
from repro.errors import ReproError


def test_shard_partition_covers_workload_contiguously():
    spec = CampaignSpec(installs=10)
    shards = spec.shard(3)
    assert [(s.start, s.stop) for s in shards] == [(0, 4), (4, 7), (7, 10)]
    assert sum(s.installs for s in shards) == 10
    assert [s.index for s in shards] == [0, 1, 2]
    assert all(s.count == 3 for s in shards)


def test_shard_balance_within_one_install():
    shards = CampaignSpec(installs=100).shard(8)
    sizes = [s.installs for s in shards]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == 100


def test_more_shards_than_installs_yields_empty_shards():
    shards = CampaignSpec(installs=2).shard(4)
    assert [s.installs for s in shards] == [1, 1, 0, 0]


def test_child_seeds_differ_per_shard_and_are_stable():
    spec = CampaignSpec(installs=8, seed=42)
    seeds = [spec.child_seed(i) for i in range(4)]
    assert len(set(seeds)) == 4
    assert seeds == [CampaignSpec(installs=99, seed=42).child_seed(i)
                     for i in range(4)]


def test_sizes_derive_from_global_index_not_shard_layout():
    spec = CampaignSpec(installs=20, seed=9)
    sizes_direct = [spec.size_for(i) for i in range(20)]
    by_shards = []
    for shard in spec.shard(7):
        by_shards.extend(spec.size_for(i)
                         for i in range(shard.start, shard.stop))
    assert by_shards == sizes_direct
    assert all(spec.base_size_bytes <= s <= 2 * spec.base_size_bytes
               for s in sizes_direct)


def test_specs_are_picklable():
    spec = CampaignSpec(installs=5, attack="fileobserver",
                        defenses=("dapp",), device="xiaomi-mi4")
    shard = spec.shard(2)[1]
    clone = pickle.loads(pickle.dumps(shard))
    assert clone == shard
    assert clone.campaign == spec


def test_validation_rejects_unknown_names():
    with pytest.raises(ReproError):
        CampaignSpec(installs=1, installer="notastore")
    with pytest.raises(ReproError):
        CampaignSpec(installs=1, attack="notanattack")
    with pytest.raises(ReproError):
        CampaignSpec(installs=1, device="notadevice")
    with pytest.raises(ReproError):
        CampaignSpec(installs=1, defenses=("notadefense",))
    with pytest.raises(ReproError):
        CampaignSpec(installs=-1)


def test_shard_count_must_be_positive():
    with pytest.raises(ReproError):
        CampaignSpec(installs=4).shard(0)


def test_one_shot_attacker_refuses_to_shard():
    spec = CampaignSpec(installs=4, attack="fileobserver",
                        rearm_between=False)
    with pytest.raises(ReproError):
        spec.shard(2)
    # Unsharded and benign one-shot campaigns are fine.
    assert len(spec.shard(1)) == 1
    assert len(CampaignSpec(installs=4, rearm_between=False).shard(2)) == 2


def test_shard_builds_runnable_scenario():
    spec = CampaignSpec(installs=3, installer="dtignite",
                        attack="wait-and-see", defenses=("fuse-dac",))
    shard = spec.shard(1)[0]
    scenario = shard.build_scenario()
    assert scenario.attacker is not None
    assert scenario.fuse_dac is not None
    packages = shard.publish_workload(scenario)
    assert len(packages) == 3
    assert all(pkg in scenario.listings for pkg in packages)


def test_registries_expose_expected_entries():
    assert ATTACKS["none"] is None
    assert {"fileobserver", "wait-and-see"} <= set(ATTACKS)
    assert "nexus5" in DEVICES

# -- parse_chaos edge cases ----------------------------------------------------

def test_parse_chaos_rejects_duplicate_index_naming_the_token():
    with pytest.raises(ReproError, match=r"duplicate shard index '2'"):
        parse_chaos("crash:0,2,2")


def test_parse_chaos_rejects_negative_index_naming_the_token():
    with pytest.raises(ReproError, match=r"shard index '-1' is negative"):
        parse_chaos("hang:-1")


def test_parse_chaos_rejects_trailing_comma():
    with pytest.raises(ReproError, match=r"trailing or doubled comma"):
        parse_chaos("error:0,")


def test_parse_chaos_rejects_doubled_comma():
    with pytest.raises(ReproError, match=r"trailing or doubled comma"):
        parse_chaos("error:0,,1")


def test_parse_chaos_rejects_non_integer_naming_the_token():
    with pytest.raises(ReproError, match=r"'two' is not a shard index"):
        parse_chaos("crash:two")


def test_parse_chaos_rejects_out_of_range_index_against_shard_count():
    with pytest.raises(ReproError,
                       match=r"shard index 3 is out of range for 3 shard"):
        parse_chaos("crash:0,3", shard_count=3)
    # Without a shard count the same spec parses fine.
    assert parse_chaos("crash:0,3") == ("crash", (0, 3))


def test_parse_chaos_out_of_range_is_caught_at_shard_time():
    spec = CampaignSpec(installs=4, chaos="crash:5")
    with pytest.raises(ReproError, match=r"out of range for 2 shard"):
        spec.shard(2)
    assert len(spec.shard(6)) == 6  # index 5 exists here


def test_parse_chaos_accepts_whitespace_around_indices():
    assert parse_chaos("error: 0, 1") == ("error", (0, 1))


def test_poll_interval_floor_rejects_livelock_intervals():
    # Found by fuzzing: a 1 ns poll loop against the 60 s arm budget
    # floods the kernel event cap.  The spec rejects it up front.
    with pytest.raises(ReproError, match=r"poll_interval_ns must be >="):
        CampaignSpec(installs=1, attack="wait-and-see",
                     poll_interval_ns=1)
    with pytest.raises(ReproError, match=r"poll_interval_ns must be >="):
        CampaignSpec(installs=1, attack="wait-and-see",
                     poll_interval_ns=MIN_POLL_INTERVAL_NS - 1)
    spec = CampaignSpec(installs=1, attack="wait-and-see",
                        poll_interval_ns=MIN_POLL_INTERVAL_NS)
    assert spec.poll_interval_ns == MIN_POLL_INTERVAL_NS


def test_watch_limits_default_is_lossless():
    spec = CampaignSpec(installs=1)
    assert spec.watch_limits() is None
    scenario = spec.shard(1)[0].build_scenario()
    assert scenario.system.watch_limits is None


def test_watch_limits_lowering_fills_default_drain():
    from repro.sim.events import DEFAULT_DRAIN_INTERVAL_NS

    spec = CampaignSpec(installs=1, watch_queue_depth=32)
    limits = spec.watch_limits()
    assert limits.max_queue_depth == 32
    assert limits.drain_interval_ns == DEFAULT_DRAIN_INTERVAL_NS
    explicit = CampaignSpec(installs=1, watch_queue_depth=32,
                            watch_drain_interval_ns=5_000_000)
    assert explicit.watch_limits().drain_interval_ns == 5_000_000


def test_watch_limits_reach_the_device_and_apps():
    spec = CampaignSpec(installs=1, watch_queue_depth=16,
                        watch_coalesce=True)
    scenario = spec.shard(1)[0].build_scenario()
    limits = scenario.system.watch_limits
    assert limits.max_queue_depth == 16
    assert limits.coalesce


def test_watch_axis_validation():
    with pytest.raises(ReproError, match="watch_queue_depth"):
        CampaignSpec(installs=1, watch_queue_depth=0)
    with pytest.raises(ReproError, match="watch_drain_interval_ns"):
        CampaignSpec(installs=1, watch_drain_interval_ns=-1)


def test_dapp_variants_are_mutually_exclusive():
    with pytest.raises(ReproError, match="mutually exclusive"):
        CampaignSpec(installs=1, defenses=("dapp", "dapp-rescan"))
