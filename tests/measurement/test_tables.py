"""Tests for the measurement-table computations and their rendering."""

import pytest

from repro.analysis.factory_images import (
    AMAZON_PKG,
    DTIGNITE_PKG,
    generate_fleet,
)
from repro.measurement.report import (
    pct,
    render_installer_breakdown,
    render_table,
    render_table4,
    render_table5,
    render_table6,
)
from repro.measurement.tables import (
    compute_table2,
    compute_table3,
    compute_table4,
    compute_table5,
    compute_table6,
)


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(seed=2016)


@pytest.fixture(scope="module")
def table2():
    return compute_table2()


@pytest.fixture(scope="module")
def table3():
    return compute_table3()


@pytest.fixture(scope="module")
def table4():
    return compute_table4()


def test_table2_shares_match_paper(table2):
    assert table2.vulnerable == 779
    assert table2.secure == 152
    assert table2.known == 931
    assert table2.vulnerable_share_excluding_unknown == pytest.approx(0.837, abs=0.001)
    assert table2.secure_share_excluding_unknown == pytest.approx(0.163, abs=0.001)
    assert table2.vulnerable_share_including_unknown == pytest.approx(0.522, abs=0.001)
    assert table2.secure_share_including_unknown == pytest.approx(0.102, abs=0.001)
    assert table2.write_external == 8721


def test_table3_shares_match_paper(table3):
    assert table3.vulnerable == 102
    assert table3.secure == 3
    assert table3.vulnerable_share_excluding_unknown == pytest.approx(0.971, abs=0.001)
    assert table3.secure_share_excluding_unknown == pytest.approx(0.0286, abs=0.001)
    assert table3.vulnerable_share_including_unknown == pytest.approx(0.429, abs=0.001)
    assert table3.write_external_instances == 5864
    assert table3.total_instances == 12050


def test_table4_buckets(table4):
    assert table4.buckets[1][0] == 723
    assert table4.buckets[2][0] == 1405
    assert table4.buckets[4][0] == 2090
    assert table4.buckets[8][0] == 2337
    assert table4.redirecting_fraction == pytest.approx(0.847, abs=0.001)


def test_table5_rows(fleet):
    table5 = compute_table5(fleet)
    amazon = table5.row_for(AMAZON_PKG)
    assert amazon is not None
    assert set(amazon.carriers) == {"verizon", "uscellular"}
    assert amazon.vendors == ("samsung",)
    dtignite = table5.row_for(DTIGNITE_PKG)
    assert dtignite.image_count > 500
    assert table5.row_for("com.nonexistent") is None


def test_table6_rows(fleet):
    table6 = compute_table6(fleet)
    samsung = table6.row_for("samsung")
    assert samsung.ratio == pytest.approx(0.0845, abs=0.005)
    assert table6.row_for("xiaomi").ratio == pytest.approx(0.1187, abs=0.005)
    assert table6.row_for("huawei").ratio == pytest.approx(0.1032, abs=0.005)
    assert table6.doubled_over_period
    low, high = table6.flagship_range
    assert 25 <= low <= high <= 31


# -- rendering ---------------------------------------------------------------------


def test_pct_format():
    assert pct(0.837) == "83.7%"


def test_render_table_alignment():
    text = render_table("T", ["a", "bee"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bee" in lines[1]
    assert len(lines) == 5


def test_render_installer_breakdown(table2):
    text = render_installer_breakdown("Table II", table2)
    assert "779/931 (83.7%)" in text
    assert "152/1493 (10.2%)" in text
    assert "WRITE_EXTERNAL_STORAGE=8721" in text


def test_render_table4(table4):
    text = render_table4(table4)
    assert "5.7% (723/12750)" in text
    assert "84.7%" in text


def test_render_table5(fleet):
    text = render_table5(compute_table5(fleet))
    assert AMAZON_PKG in text
    assert "verizon" in text


def test_render_table6(fleet):
    text = render_table6(compute_table6(fleet))
    assert "samsung" in text
    assert "doubled over 3 years: True" in text
