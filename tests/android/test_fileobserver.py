"""Tests for FileObserver event delivery."""

import pytest

from repro.android.fileobserver import FileObserver
from repro.android.filesystem import Caller, FileEventType, Filesystem
from repro.sim.events import EventHub
from repro.sim.kernel import Kernel

APP = Caller(uid=10001, package="com.app")


@pytest.fixture
def env():
    kernel = Kernel()
    hub = EventHub(kernel)
    fs = Filesystem(hub, kernel.clock)
    fs.makedirs("/watched", APP)
    return kernel, hub, fs


def test_events_delivered_while_watching(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    observer.start_watching()
    fs.write_bytes("/watched/f.apk", APP, b"1")
    kernel.run()
    types = [event.event_type for event in observer.history]
    assert FileEventType.CREATE in types
    assert FileEventType.CLOSE_WRITE in types


def test_no_events_before_start(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    fs.write_bytes("/watched/f", APP, b"1")
    kernel.run()
    assert list(observer.history) == []


def test_stop_watching_stops_delivery(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    observer.start_watching()
    observer.stop_watching()
    fs.write_bytes("/watched/f", APP, b"1")
    kernel.run()
    assert list(observer.history) == []


def test_mask_filters_event_types(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched",
                            mask=[FileEventType.CLOSE_NOWRITE])
    observer.start_watching()
    fs.write_bytes("/watched/f", APP, b"1")
    fs.read_bytes("/watched/f", APP)
    kernel.run()
    assert [event.event_type for event in observer.history] == [
        FileEventType.CLOSE_NOWRITE
    ]


def test_non_recursive_like_android(env):
    kernel, hub, fs = env
    fs.makedirs("/watched/sub", APP)
    observer = FileObserver(hub, "/watched")
    observer.start_watching()
    fs.write_bytes("/watched/sub/f", APP, b"1")
    kernel.run()
    assert list(observer.history) == []


def test_listener_callbacks_fire(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    seen = []
    observer.on_event(seen.append)
    observer.start_watching()
    fs.write_bytes("/watched/f", APP, b"1")
    kernel.run()
    assert seen == list(observer.history)


def test_count_helper(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    observer.start_watching()
    fs.write_bytes("/watched/a.apk", APP, b"1")
    fs.read_bytes("/watched/a.apk", APP)
    fs.read_bytes("/watched/a.apk", APP)
    kernel.run()
    assert observer.count(FileEventType.CLOSE_NOWRITE) == 2
    assert observer.count(FileEventType.CLOSE_NOWRITE, name="a.apk") == 2
    assert observer.count(FileEventType.CLOSE_NOWRITE, name="b.apk") == 0


def test_start_watching_idempotent(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    observer.start_watching()
    observer.start_watching()
    fs.write_bytes("/watched/f", APP, b"1")
    kernel.run()
    close_writes = observer.count(FileEventType.CLOSE_WRITE)
    assert close_writes == 1  # not double-subscribed


def test_requires_no_permissions():
    """Any app can watch any directory — the paper's attack premise."""
    kernel = Kernel()
    hub = EventHub(kernel)
    fs = Filesystem(hub, kernel.clock)
    fs.makedirs("/sdcard/DTIgnite", APP)
    observer = FileObserver(hub, "/sdcard/DTIgnite")
    observer.start_watching()
    assert observer.watching


# -- bounded history and lossy watches --------------------------------------


def test_history_is_bounded_but_counters_are_exact(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched", history_limit=4)
    observer.start_watching()
    for i in range(10):
        fs.write_bytes(f"/watched/f{i}", APP, b"1")
    kernel.run()
    assert len(observer.history) == 4  # ring evicted the oldest
    assert all(event.name == "f9" for event in observer.history)
    # Counters survive eviction: count() stays exact and O(1).
    assert observer.count(FileEventType.CLOSE_WRITE) == 10
    assert observer.count(FileEventType.CLOSE_WRITE, name="f0") == 1
    assert observer.events_seen == 40  # four events per write


def test_unbounded_history_opt_in(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched", history_limit=None)
    observer.start_watching()
    for i in range(10):
        fs.write_bytes(f"/watched/f{i}", APP, b"1")
    kernel.run()
    assert len(observer.history) == 40


def test_lossy_watch_translates_overflow_to_q_overflow_event(env):
    from repro.sim.events import WatchLimits

    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched",
                            limits=WatchLimits(max_queue_depth=2))
    observer.start_watching()
    for i in range(5):
        fs.write_bytes(f"/watched/f{i}", APP, b"1")
    kernel.run()
    assert observer.overflows == 1
    assert observer.count(FileEventType.Q_OVERFLOW) == 1
    marker = [e for e in observer.history
              if e.event_type is FileEventType.Q_OVERFLOW]
    assert len(marker) == 1
    assert marker[0].directory == "/watched"
    assert marker[0].name == ""  # no single file: the whole watch lost
    sub = observer.subscription
    assert sub.dropped_overflow > 0
    assert sub.delivered + sub.dropped + sub.pending == sub.published


def test_q_overflow_respects_the_mask(env):
    from repro.sim.events import WatchLimits

    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched",
                            mask={FileEventType.CLOSE_WRITE},
                            limits=WatchLimits(max_queue_depth=1))
    observer.start_watching()
    for i in range(5):
        fs.write_bytes(f"/watched/f{i}", APP, b"1")
    kernel.run()
    # The sentinel still counts loss episodes even when masked out.
    assert observer.overflows == 1
    assert observer.count(FileEventType.Q_OVERFLOW) == 0


def _attached_observer(profile):
    from repro.android.apk import ApkBuilder
    from repro.android.app import App
    from repro.android.permissions import (
        READ_EXTERNAL_STORAGE,
        WRITE_EXTERNAL_STORAGE,
    )
    from repro.android.signing import SigningKey
    from repro.android.system import AndroidSystem

    class WatcherApp(App):
        package = "com.watcher"

    system = AndroidSystem(profile)
    apk = (ApkBuilder("com.watcher")
           .uses_permission(READ_EXTERNAL_STORAGE, WRITE_EXTERNAL_STORAGE)
           .build(SigningKey("watcher-dev", "k")))
    system.install_user_app(apk)
    app = WatcherApp()
    system.attach(app)
    observer = app.file_observer("/sdcard/Download")
    observer.start_watching()
    return observer


def test_app_observers_inherit_device_watch_limits():
    import dataclasses

    from repro.android.device import nexus5
    from repro.sim.events import WatchLimits

    limits = WatchLimits(max_queue_depth=16)
    profile = dataclasses.replace(nexus5(), watch_limits=limits)
    observer = _attached_observer(profile)
    assert observer.limits == limits
    assert observer.subscription.limits == limits


def test_default_device_watchers_are_lossless():
    from repro.android.device import nexus5

    observer = _attached_observer(nexus5())
    assert observer.limits is None
    assert observer.subscription.limits is None
