"""Tests for FileObserver event delivery."""

import pytest

from repro.android.fileobserver import FileObserver
from repro.android.filesystem import Caller, FileEventType, Filesystem
from repro.sim.events import EventHub
from repro.sim.kernel import Kernel

APP = Caller(uid=10001, package="com.app")


@pytest.fixture
def env():
    kernel = Kernel()
    hub = EventHub(kernel)
    fs = Filesystem(hub, kernel.clock)
    fs.makedirs("/watched", APP)
    return kernel, hub, fs


def test_events_delivered_while_watching(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    observer.start_watching()
    fs.write_bytes("/watched/f.apk", APP, b"1")
    kernel.run()
    types = [event.event_type for event in observer.history]
    assert FileEventType.CREATE in types
    assert FileEventType.CLOSE_WRITE in types


def test_no_events_before_start(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    fs.write_bytes("/watched/f", APP, b"1")
    kernel.run()
    assert observer.history == []


def test_stop_watching_stops_delivery(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    observer.start_watching()
    observer.stop_watching()
    fs.write_bytes("/watched/f", APP, b"1")
    kernel.run()
    assert observer.history == []


def test_mask_filters_event_types(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched",
                            mask=[FileEventType.CLOSE_NOWRITE])
    observer.start_watching()
    fs.write_bytes("/watched/f", APP, b"1")
    fs.read_bytes("/watched/f", APP)
    kernel.run()
    assert [event.event_type for event in observer.history] == [
        FileEventType.CLOSE_NOWRITE
    ]


def test_non_recursive_like_android(env):
    kernel, hub, fs = env
    fs.makedirs("/watched/sub", APP)
    observer = FileObserver(hub, "/watched")
    observer.start_watching()
    fs.write_bytes("/watched/sub/f", APP, b"1")
    kernel.run()
    assert observer.history == []


def test_listener_callbacks_fire(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    seen = []
    observer.on_event(seen.append)
    observer.start_watching()
    fs.write_bytes("/watched/f", APP, b"1")
    kernel.run()
    assert seen == observer.history


def test_count_helper(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    observer.start_watching()
    fs.write_bytes("/watched/a.apk", APP, b"1")
    fs.read_bytes("/watched/a.apk", APP)
    fs.read_bytes("/watched/a.apk", APP)
    kernel.run()
    assert observer.count(FileEventType.CLOSE_NOWRITE) == 2
    assert observer.count(FileEventType.CLOSE_NOWRITE, name="a.apk") == 2
    assert observer.count(FileEventType.CLOSE_NOWRITE, name="b.apk") == 0


def test_start_watching_idempotent(env):
    kernel, hub, fs = env
    observer = FileObserver(hub, "/watched")
    observer.start_watching()
    observer.start_watching()
    fs.write_bytes("/watched/f", APP, b"1")
    kernel.run()
    close_writes = observer.count(FileEventType.CLOSE_WRITE)
    assert close_writes == 1  # not double-subscribed


def test_requires_no_permissions():
    """Any app can watch any directory — the paper's attack premise."""
    kernel = Kernel()
    hub = EventHub(kernel)
    fs = Filesystem(hub, kernel.clock)
    fs.makedirs("/sdcard/DTIgnite", APP)
    observer = FileObserver(hub, "/sdcard/DTIgnite")
    observer.start_watching()
    assert observer.watching
