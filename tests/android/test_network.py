"""Tests for the simulated network."""

import pytest

from repro.errors import DownloadError
from repro.android.network import Network


def test_host_and_fetch():
    network = Network()
    network.host("http://x/file", b"payload")
    assert network.fetch("http://x/file") == b"payload"


def test_fetch_missing_raises_404():
    with pytest.raises(DownloadError, match="404"):
        Network().fetch("http://missing")


def test_callable_provider_evaluated_per_fetch():
    network = Network()
    counter = {"n": 0}

    def provider():
        counter["n"] += 1
        return f"v{counter['n']}".encode()

    network.host("http://x", provider)
    assert network.fetch("http://x") == b"v1"
    assert network.fetch("http://x") == b"v2"


def test_exists():
    network = Network()
    network.host("http://x", b"1")
    assert network.exists("http://x")
    assert not network.exists("http://y")


def test_transfer_time_scales_with_size():
    network = Network(bandwidth_bytes_per_sec=1_000_000, latency_ns=0)
    assert network.transfer_time_ns(1_000_000) == 1_000_000_000
    assert network.transfer_time_ns(500_000) == 500_000_000


def test_latency_added_to_transfer():
    network = Network(bandwidth_bytes_per_sec=1_000_000, latency_ns=5_000)
    assert network.transfer_time_ns(0) == 5_000


def test_rehosting_replaces_content():
    network = Network()
    network.host("http://x", b"old")
    network.host("http://x", b"new")
    assert network.fetch("http://x") == b"new"
