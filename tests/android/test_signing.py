"""Tests for signing keys, certificates and signatures."""

from repro.android.signing import Certificate, Signature, SigningKey, platform_key


def test_sign_and_verify_roundtrip():
    key = SigningKey("dev", "k1")
    signature = key.sign(b"content")
    assert signature.matches(b"content")


def test_signature_rejects_tampered_content():
    key = SigningKey("dev", "k1")
    signature = key.sign(b"content")
    assert not signature.matches(b"contenT")


def test_different_keys_different_certificates():
    assert SigningKey("a", "k").certificate != SigningKey("b", "k").certificate
    assert SigningKey("a", "k1").certificate != SigningKey("a", "k2").certificate


def test_same_key_parameters_reproduce_certificate():
    assert SigningKey("dev", "k1").certificate == SigningKey("dev", "k1").certificate


def test_forged_signature_with_wrong_cert_fails():
    honest = SigningKey("dev", "k1")
    attacker = SigningKey("evil", "k1")
    forged = Signature(certificate=honest.certificate,
                       value=attacker.sign(b"content").value)
    assert not forged.matches(b"content")


def test_platform_key_is_single_per_vendor():
    """One platform key per vendor — the paper's Section IV-B finding."""
    assert platform_key("samsung").certificate == platform_key("samsung").certificate
    assert platform_key("samsung").certificate != platform_key("huawei").certificate


def test_certificate_str_shows_owner():
    assert "dev" in str(SigningKey("dev", "k1").certificate)


def test_signature_binds_certificate():
    key_a = SigningKey("a", "k")
    key_b = SigningKey("b", "k")
    sig_a = key_a.sign(b"x")
    assert sig_a.certificate.owner == "a"
    assert key_b.sign(b"x").value != sig_a.value
