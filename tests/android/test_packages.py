"""Tests for the installed-package database."""

import pytest

from repro.errors import PackageNotFound
from repro.android.apk import AndroidManifest
from repro.android.filesystem import FIRST_APP_UID
from repro.android.packages import InstalledPackage, PackageDatabase
from repro.android.permissions import PermissionRegistry, PermissionState
from repro.android.signing import SigningKey


def make_package(db, name="com.x", is_system=False):
    registry = PermissionRegistry()
    return InstalledPackage(
        package=name,
        version_code=1,
        certificate=SigningKey("dev", "k").certificate,
        manifest=AndroidManifest(package=name),
        uid=db.allocate_uid(),
        permissions=PermissionState(registry),
        is_system=is_system,
    )


@pytest.fixture
def db():
    return PackageDatabase(PermissionRegistry())


def test_uid_allocation_starts_at_app_range(db):
    assert db.allocate_uid() == FIRST_APP_UID
    assert db.allocate_uid() == FIRST_APP_UID + 1


def test_add_get_remove(db):
    package = make_package(db)
    db.add(package)
    assert db.get("com.x") is package
    assert db.is_installed("com.x")
    removed = db.remove("com.x")
    assert removed is package
    assert not db.is_installed("com.x")


def test_require_raises_when_absent(db):
    with pytest.raises(PackageNotFound):
        db.require("com.ghost")


def test_remove_missing_raises(db):
    with pytest.raises(PackageNotFound):
        db.remove("com.ghost")


def test_all_packages_sorted(db):
    db.add(make_package(db, "com.b"))
    db.add(make_package(db, "com.a"))
    assert [pkg.package for pkg in db.all_packages()] == ["com.a", "com.b"]


def test_system_packages_filter(db):
    db.add(make_package(db, "com.user"))
    db.add(make_package(db, "com.sys", is_system=True))
    assert [pkg.package for pkg in db.system_packages()] == ["com.sys"]


def test_by_uid(db):
    package = make_package(db)
    db.add(package)
    assert db.by_uid(package.uid) is package
    assert db.by_uid(99999) is None


def test_len(db):
    assert len(db) == 0
    db.add(make_package(db))
    assert len(db) == 1
