"""Tests for the logcat model and its version gate."""

import pytest

from repro.errors import SecurityException
from repro.android.filesystem import Caller, SYSTEM_CALLER
from repro.android.logcat import Logcat, READ_LOGS
from repro.sim.events import EventHub
from repro.sim.kernel import Kernel

HOLDER = Caller(uid=10001, package="com.reader",
                permissions=frozenset({READ_LOGS}))
NOBODY = Caller(uid=10002, package="com.nobody")


def make_logcat(version):
    kernel = Kernel()
    return kernel, Logcat(EventHub(kernel), kernel.clock, version)


def test_entries_recorded_with_time():
    kernel, logcat = make_logcat("4.0.3")
    kernel.clock.advance_to(123)
    logcat.log("Tag", "message")
    assert logcat.entries[0].time_ns == 123
    assert logcat.entries[0].tag == "Tag"


def test_readable_by_apps_by_version():
    assert make_logcat("4.0.3")[1].readable_by_apps()
    assert make_logcat("4.0")[1].readable_by_apps()
    assert not make_logcat("4.1")[1].readable_by_apps()
    assert not make_logcat("5.1")[1].readable_by_apps()
    assert not make_logcat("6.0")[1].readable_by_apps()


def test_subscribe_on_old_build_with_permission():
    kernel, logcat = make_logcat("4.0.3")
    seen = []
    logcat.subscribe(HOLDER, seen.append)
    logcat.log("T", "m")
    kernel.run()
    assert len(seen) == 1


def test_subscribe_without_permission_rejected():
    _kernel, logcat = make_logcat("4.0.3")
    with pytest.raises(SecurityException):
        logcat.subscribe(NOBODY, lambda entry: None)


def test_subscribe_on_new_build_rejected_even_with_permission():
    _kernel, logcat = make_logcat("4.4")
    with pytest.raises(SecurityException, match="restricted to system"):
        logcat.subscribe(HOLDER, lambda entry: None)


def test_system_reads_any_build():
    kernel, logcat = make_logcat("6.0")
    seen = []
    logcat.subscribe(SYSTEM_CALLER, seen.append)
    logcat.log("T", "m")
    kernel.run()
    assert seen
