"""Tests for the App base class, device profiles and the system facade."""

import pytest

from repro.errors import AndroidError, PackageNotFound
from repro.android import device
from repro.android.apk import ApkBuilder
from repro.android.app import App
from repro.android.download_manager import SymlinkMode
from repro.android.intents import Intent
from repro.android.permissions import (
    READ_EXTERNAL_STORAGE,
    WRITE_EXTERNAL_STORAGE,
)
from repro.android.signing import SigningKey
from repro.android.system import AndroidSystem

DEV = SigningKey("dev", "k")


class EchoApp(App):
    package = "com.echo"

    def __init__(self):
        super().__init__()
        self.received = []

    def handle_intent(self, intent):
        self.received.append(intent)


def install_echo(system):
    apk = (
        ApkBuilder("com.echo")
        .uses_permission(READ_EXTERNAL_STORAGE, WRITE_EXTERNAL_STORAGE)
        .build(DEV)
    )
    system.install_user_app(apk)
    app = EchoApp()
    system.attach(app)
    return app


# -- App ------------------------------------------------------------------------


def test_app_requires_package_name():
    class Anonymous(App):
        package = ""

    with pytest.raises(AndroidError):
        Anonymous()


def test_attach_requires_installation(system):
    with pytest.raises(PackageNotFound):
        system.attach(EchoApp())


def test_caller_reflects_granted_permissions(system):
    app = install_echo(system)
    assert app.caller.has_permission(WRITE_EXTERNAL_STORAGE)
    assert app.caller.uid == app.uid


def test_caller_snapshot_updates_after_new_grant(system):
    app = install_echo(system)
    state = system.pms.require_package("com.echo").permissions
    state.grant("android.permission.READ_CONTACTS")
    assert app.caller.has_permission("android.permission.READ_CONTACTS")


def test_file_helpers_operate_as_app(system):
    app = install_echo(system)
    app.make_dirs("/sdcard/echo")
    app.write_file("/sdcard/echo/f", b"hello")
    assert app.read_file("/sdcard/echo/f") == b"hello"
    app.move_file("/sdcard/echo/f", "/sdcard/echo/g")
    app.delete_file("/sdcard/echo/g")


def test_set_world_readable_adds_bit(system):
    app = install_echo(system)
    path = f"{app.private_dir}/staged.apk"
    app.write_file(path, b"apk")
    app.set_world_readable(path)
    assert system.fs.stat(path).mode & 0o004


def test_intent_round_trip_between_apps(system):
    app = install_echo(system)
    other_apk = ApkBuilder("com.other").build(DEV)
    system.install_user_app(other_apk)

    class OtherApp(App):
        package = "com.other"

    other = OtherApp()
    system.attach(other)
    other.start_activity(Intent(target_package="com.echo"))
    system.run()
    assert len(app.received) == 1


def test_request_permission_group_trick(system):
    apk = ApkBuilder("com.sneaky").uses_permission(READ_EXTERNAL_STORAGE).build(DEV)
    system.install_user_app(apk)

    class Sneaky(App):
        package = "com.sneaky"

    app = Sneaky()
    system.attach(app)
    # WRITE arrives silently because READ (same group) is already held.
    assert app.request_permission(WRITE_EXTERNAL_STORAGE, user_approves=False)


# -- DeviceProfile -----------------------------------------------------------------


def test_runtime_permissions_by_version():
    assert not device.nexus5().runtime_permissions
    assert device.nexus5_marshmallow().runtime_permissions


def test_dm_mode_by_version():
    assert device.xiaomi_mi4().dm_symlink_mode is SymlinkMode.LEXICAL
    assert device.nexus5_marshmallow().dm_symlink_mode is SymlinkMode.CHECK_THEN_USE


def test_low_end_device_has_little_free_space():
    profile = device.galaxy_j5_lowend()
    assert profile.free_internal_bytes <= 3 * 1024 ** 3


def test_profiles_have_vendors():
    assert device.galaxy_s6_edge_verizon().vendor == "samsung"
    assert device.galaxy_s6_edge_verizon().carrier == "verizon"
    assert device.galaxy_note3().vendor == "samsung"


# -- AndroidSystem ------------------------------------------------------------------


def test_system_mounts_storage(system):
    assert system.fs.exists("/sdcard")
    assert system.fs.exists("/data/data")
    assert system.fs.exists("/data/app")


def test_system_platform_key_matches_vendor(system):
    assert system.platform_key.owner == system.profile.vendor
    assert system.pms.platform_certificate == system.platform_key.certificate


def test_install_system_app_flagged(system):
    apk = ApkBuilder("com.sys").build(DEV)
    package = system.install_system_app(apk)
    assert package.is_system


def test_caller_for_unknown_package(system):
    with pytest.raises(PackageNotFound):
        system.caller_for("com.ghost")


def test_internal_volume_reflects_profile():
    profile = device.galaxy_j5_lowend()
    system = AndroidSystem(profile)
    # Allow a small delta for boot-time system files (the DM database).
    assert 0 <= profile.free_internal_bytes - system.internal_volume.free_bytes < 4096


def test_repr(system):
    assert "Nexus 5" in repr(system)
