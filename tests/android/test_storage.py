"""Tests for volumes and the internal-storage app-sandbox policy."""

import pytest

from repro.errors import AccessDenied, StorageFull
from repro.android.filesystem import Caller, Filesystem, SYSTEM_CALLER, SYSTEM_UID
from repro.android.storage import (
    GB,
    InternalStoragePolicy,
    MB,
    StorageLayout,
    StorageVolume,
)
from repro.sim.events import EventHub
from repro.sim.kernel import Kernel

ALICE = Caller(uid=10001, package="com.alice")
BOB = Caller(uid=10002, package="com.bob")
PMS_READER = Caller(uid=SYSTEM_UID, package="com.android.server.pm")


@pytest.fixture
def fs():
    kernel = Kernel()
    filesystem = Filesystem(EventHub(kernel), kernel.clock)
    layout = StorageLayout()
    filesystem.mount("/data", StorageVolume("internal", 1 * GB),
                     InternalStoragePolicy(layout))
    filesystem.makedirs("/data/data/com.alice", SYSTEM_CALLER, mode=0o700)
    filesystem.chown("/data/data/com.alice", ALICE.uid, SYSTEM_CALLER)
    filesystem.makedirs("/data/data/com.bob", SYSTEM_CALLER, mode=0o700)
    filesystem.chown("/data/data/com.bob", BOB.uid, SYSTEM_CALLER)
    return filesystem


# -- StorageVolume -------------------------------------------------------------


def test_volume_charge_and_release():
    volume = StorageVolume("v", 100)
    assert volume.charge(60)
    assert volume.free_bytes == 40
    assert not volume.charge(50)
    assert volume.charge(-60)
    assert volume.free_bytes == 100


def test_volume_never_goes_negative():
    volume = StorageVolume("v", 100)
    volume.charge(-50)
    assert volume.used_bytes == 0


def test_volume_rejects_overfull_start():
    with pytest.raises(ValueError):
        StorageVolume("v", 10, used_bytes=20)


def test_can_fit():
    volume = StorageVolume("v", 100, used_bytes=90)
    assert volume.can_fit(10)
    assert not volume.can_fit(11)


def test_size_constants():
    assert GB == 1024 * MB


# -- StorageLayout ---------------------------------------------------------------


def test_app_private_dir():
    layout = StorageLayout()
    assert layout.app_private_dir("com.x") == "/data/data/com.x"


# -- InternalStoragePolicy ---------------------------------------------------------


def test_owner_reads_and_writes_own_sandbox(fs):
    fs.write_bytes("/data/data/com.alice/f", ALICE, b"secret")
    assert fs.read_bytes("/data/data/com.alice/f", ALICE) == b"secret"


def test_other_app_cannot_read_private_file(fs):
    fs.write_bytes("/data/data/com.alice/f", ALICE, b"secret")
    with pytest.raises(AccessDenied):
        fs.read_bytes("/data/data/com.alice/f", BOB)


def test_other_app_cannot_write_into_foreign_sandbox(fs):
    with pytest.raises(AccessDenied):
        fs.write_bytes("/data/data/com.alice/g", BOB, b"x")


def test_world_readable_file_is_readable_by_others(fs):
    fs.write_bytes("/data/data/com.alice/staged.apk", ALICE, b"apk", mode=0o644)
    assert fs.read_bytes("/data/data/com.alice/staged.apk", BOB) == b"apk"


def test_pms_reader_needs_world_readable():
    """The paper's Section II observation: PMS cannot read a private APK."""
    kernel = Kernel()
    fs = Filesystem(EventHub(kernel), kernel.clock)
    layout = StorageLayout()
    fs.mount("/data", StorageVolume("internal", GB), InternalStoragePolicy(layout))
    fs.makedirs("/data/data/com.alice", SYSTEM_CALLER, mode=0o700)
    fs.chown("/data/data/com.alice", ALICE.uid, SYSTEM_CALLER)
    fs.write_bytes("/data/data/com.alice/private.apk", ALICE, b"apk", mode=0o600)
    with pytest.raises(AccessDenied):
        fs.read_bytes("/data/data/com.alice/private.apk", PMS_READER)
    fs.chmod("/data/data/com.alice/private.apk", 0o644, ALICE)
    assert fs.read_bytes("/data/data/com.alice/private.apk", PMS_READER) == b"apk"


def test_true_system_caller_bypasses_sandbox(fs):
    fs.write_bytes("/data/data/com.alice/f", ALICE, b"secret", mode=0o600)
    assert fs.read_bytes("/data/data/com.alice/f", SYSTEM_CALLER) == b"secret"


def test_non_sandbox_area_is_system_only(fs):
    with pytest.raises(AccessDenied):
        fs.write_bytes("/data/system.conf", ALICE, b"x")
    fs.write_bytes("/data/system.conf", SYSTEM_CALLER, b"x")


def test_delete_requires_sandbox_ownership(fs):
    fs.write_bytes("/data/data/com.alice/f", ALICE, b"1", mode=0o644)
    with pytest.raises(AccessDenied):
        fs.unlink("/data/data/com.alice/f", BOB)
    fs.unlink("/data/data/com.alice/f", ALICE)


def test_rename_within_sandbox_allowed(fs):
    fs.write_bytes("/data/data/com.alice/a", ALICE, b"1")
    fs.rename("/data/data/com.alice/a", "/data/data/com.alice/b", ALICE)
    assert fs.exists("/data/data/com.alice/b")


def test_rename_out_of_foreign_sandbox_rejected(fs):
    fs.write_bytes("/data/data/com.alice/a", ALICE, b"1", mode=0o644)
    with pytest.raises(AccessDenied):
        fs.rename("/data/data/com.alice/a", "/data/data/com.bob/a", BOB)
