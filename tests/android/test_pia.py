"""Tests for the PackageInstallerActivity consent flow."""

import pytest

from repro.errors import InstallAbortedError, InstallVerificationError
from repro.android.apk import ApkBuilder, repackage
from repro.android.device import nexus5
from repro.android.pia import ConsentUser
from repro.android.signing import SigningKey
from repro.android.system import AndroidSystem
from repro.sim.clock import millis

DEV = SigningKey("dev", "k1")
EVIL = SigningKey("evil", "k0")


@pytest.fixture
def system():
    return AndroidSystem(nexus5())


def stage(system, apk, path="/sdcard/stage.apk"):
    system.fs.write_bytes(path, system.system_caller, apk.to_bytes())
    return path


def build(label="MyBank"):
    return ApkBuilder("com.bank.app").label(label).icon("icon:bank").payload(
        b"<bank>"
    ).build(DEV)


def test_consented_install_succeeds(system):
    path = stage(system, build())
    user = ConsentUser()
    package = system.run_process(
        system.pia.install(path, system.system_caller, user)
    )
    assert package.package == "com.bank.app"
    assert system.pms.is_installed("com.bank.app")


def test_user_decline_aborts(system):
    path = stage(system, build())
    user = ConsentUser(decide=lambda prompt: False)
    with pytest.raises(InstallAbortedError):
        system.run_process(system.pia.install(path, system.system_caller, user))
    assert not system.pms.is_installed("com.bank.app")


def test_prompt_shows_label_icon_permissions(system):
    path = stage(system, build())
    user = ConsentUser()
    system.run_process(system.pia.install(path, system.system_caller, user))
    prompt = user.prompts_seen[0]
    assert prompt.label == "MyBank"
    assert prompt.icon == "icon:bank"
    assert prompt.package == "com.bank.app"


def test_dialog_takes_simulated_time(system):
    path = stage(system, build())
    user = ConsentUser(think_time_ns=millis(2000))
    start = system.now_ns
    system.run_process(system.pia.install(path, system.system_caller, user))
    assert system.now_ns - start >= millis(2000)


def test_manifest_change_during_dialog_detected(system):
    """The PIA's defense works against *manifest* changes..."""
    path = stage(system, build())
    different = ApkBuilder("com.bank.app").label("Different").payload(b"x").build(DEV)

    def swap_during_dialog():
        system.fs.write_bytes(path, system.system_caller, different.to_bytes())

    system.kernel.call_later(millis(500), swap_during_dialog)
    with pytest.raises(InstallVerificationError):
        system.run_process(
            system.pia.install(path, system.system_caller, ConsentUser())
        )


def test_repackaged_swap_during_dialog_not_detected(system):
    """...but not against the paper's repackaging bypass (Step 4)."""
    genuine = build()
    path = stage(system, genuine)
    twin = repackage(genuine, EVIL, payload=b"<phishing bank>")

    def swap_during_dialog():
        system.fs.write_bytes(path, system.system_caller, twin.to_bytes())

    system.kernel.call_later(millis(500), swap_during_dialog)
    package = system.run_process(
        system.pia.install(path, system.system_caller, ConsentUser())
    )
    assert package.payload == b"<phishing bank>"
    assert package.certificate.owner == "evil"
    # The user approved a dialog showing the genuine label and icon.
    assert system.pia.prompts[0].label == "MyBank"
