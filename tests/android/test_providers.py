"""Tests for the content-provider registry and its permission guards."""

import pytest

from repro.errors import AndroidError, SecurityException
from repro.android.apk import ApkBuilder
from repro.android.signing import SigningKey
from repro.android.system import AndroidSystem
from repro.android.device import nexus5

DEV = SigningKey("dev", "k")


@pytest.fixture
def system():
    return AndroidSystem(nexus5())


def install(system, package, uses=(), defines=()):
    builder = ApkBuilder(package)
    if uses:
        builder.uses_permission(*uses)
    for name, level in defines:
        builder.defines_permission(name, level=level)
    system.install_user_app(builder.build(DEV))
    return system.caller_for(package)


def test_register_and_query_unguarded(system):
    caller = install(system, "com.reader")
    system.content_resolver.register("com.data", owner_package="com.owner",
                                     rows=["row1"])
    assert system.content_resolver.query(caller, "com.data") == ["row1"]


def test_duplicate_authority_rejected(system):
    system.content_resolver.register("com.data", owner_package="a")
    with pytest.raises(AndroidError):
        system.content_resolver.register("com.data", owner_package="b")


def test_query_unknown_authority(system):
    caller = install(system, "com.reader")
    with pytest.raises(AndroidError):
        system.content_resolver.query(caller, "com.ghost")


def test_read_permission_enforced(system):
    install(system, "com.definer", defines=[("com.perm.READ", "dangerous")])
    holder = install(system, "com.holder", uses=("com.perm.READ",))
    denied = install(system, "com.denied")
    system.content_resolver.register(
        "com.data", owner_package="com.definer",
        read_permission="com.perm.READ", rows=["secret"],
    )
    assert system.content_resolver.query(holder, "com.data") == ["secret"]
    with pytest.raises(SecurityException):
        system.content_resolver.query(denied, "com.data")


def test_owner_bypasses_own_guard(system):
    owner = install(system, "com.owner")
    system.content_resolver.register(
        "com.data", owner_package="com.owner",
        read_permission="com.never.DEFINED", rows=["mine"],
    )
    assert system.content_resolver.query(owner, "com.data") == ["mine"]


def test_system_bypasses_guards(system):
    system.content_resolver.register(
        "com.data", owner_package="com.owner",
        read_permission="com.never.DEFINED", rows=["x"],
    )
    assert system.content_resolver.query(system.system_caller, "com.data")


def test_write_permission_enforced(system):
    writer = install(system, "com.writer")
    system.content_resolver.register(
        "com.data", owner_package="com.owner",
        write_permission="com.perm.WRITE",
    )
    with pytest.raises(SecurityException):
        system.content_resolver.insert(writer, "com.data", "row")


def test_hare_guard_is_closed_until_someone_defines(system):
    """A provider guarded by an undefined permission: nobody (non-system)
    gets in — until a definer mints the permission for itself."""
    stranger = install(system, "com.stranger", uses=("com.hare.PERM",))
    system.content_resolver.register(
        "com.data", owner_package="com.owner",
        read_permission="com.hare.PERM", rows=["guarded"],
    )
    with pytest.raises(SecurityException):
        system.content_resolver.query(stranger, "com.data")
    # The grabber defines the hare at level normal and uses it.
    grabber = install(
        system, "com.grabber",
        uses=("com.hare.PERM",),
        defines=[("com.hare.PERM", "normal")],
    )
    assert system.content_resolver.query(grabber, "com.data") == ["guarded"]


def test_unregister_by_package(system):
    caller = install(system, "com.reader")
    system.content_resolver.register("com.data", owner_package="com.owner")
    system.content_resolver.unregister_by("com.owner")
    assert not system.content_resolver.has_provider("com.data")
