"""Tests for the APK model: serialization, verification, repackaging."""

import pytest

from repro.android.apk import (
    Apk,
    ApkBuilder,
    AndroidManifest,
    EOCD_MAGIC,
    MalformedApk,
    PermissionSpec,
    file_is_complete,
    hash_bytes,
    repackage,
)
from repro.android.signing import SigningKey

KEY = SigningKey("dev", "k1")
ATTACKER_KEY = SigningKey("attacker", "k0")


def build_sample(version=1):
    return (
        ApkBuilder("com.example.app")
        .version(version)
        .label("Example")
        .icon("icon:example")
        .uses_permission("android.permission.INTERNET")
        .defines_permission("com.example.PERM", level="dangerous", group="g")
        .payload(b"<dex code>")
        .build(KEY)
    )


def test_builder_sets_fields():
    apk = build_sample(version=7)
    assert apk.package == "com.example.app"
    assert apk.version_code == 7
    assert apk.manifest.label == "Example"
    assert apk.manifest.uses_permissions == ("android.permission.INTERNET",)
    assert apk.manifest.defines_permissions[0].name == "com.example.PERM"


def test_serialization_roundtrip():
    apk = build_sample()
    restored = Apk.from_bytes(apk.to_bytes())
    assert restored.package == apk.package
    assert restored.payload == apk.payload
    assert restored.signature == apk.signature
    assert restored.manifest == apk.manifest


def test_signature_verifies():
    assert build_sample().verify_signature()


def test_tampered_payload_fails_verification():
    apk = build_sample()
    tampered = Apk(manifest=apk.manifest, payload=b"<evil>", signature=apk.signature)
    assert not tampered.verify_signature()


def test_container_ends_with_eocd():
    assert build_sample().to_bytes().endswith(EOCD_MAGIC)


def test_file_is_complete_detects_eocd():
    data = build_sample().to_bytes()
    assert file_is_complete(data)
    assert not file_is_complete(data[:-1])
    assert not file_is_complete(b"garbage" + EOCD_MAGIC[:3])


def test_truncated_container_rejected():
    data = build_sample().to_bytes()
    with pytest.raises(MalformedApk):
        Apk.from_bytes(data[: len(data) // 2])


def test_bad_magic_rejected():
    with pytest.raises(MalformedApk):
        Apk.from_bytes(b"ZIP9" + build_sample().to_bytes()[4:])


def test_trailing_garbage_rejected():
    data = build_sample().to_bytes()
    corrupted = data[:-len(EOCD_MAGIC)] + b"xx" + EOCD_MAGIC
    with pytest.raises(MalformedApk):
        Apk.from_bytes(corrupted)


def test_file_hash_changes_with_content():
    assert build_sample(1).file_hash() != build_sample(2).file_hash()


def test_manifest_checksum_is_stable():
    assert build_sample().manifest.checksum() == build_sample().manifest.checksum()


def test_manifest_roundtrip():
    manifest = build_sample().manifest
    assert AndroidManifest.from_bytes(manifest.to_bytes()) == manifest


def test_payload_size_builder():
    apk = ApkBuilder("com.x").payload_size(10_000).build(KEY)
    assert len(apk.payload) == 10_000


def test_payload_size_is_deterministic():
    first = ApkBuilder("com.x").payload_size(512).build(KEY)
    second = ApkBuilder("com.x").payload_size(512).build(KEY)
    assert first.payload == second.payload


def test_permission_spec_to_definition():
    spec = PermissionSpec("com.p", level="signature")
    definition = spec.to_definition("com.definer")
    assert definition.defined_by == "com.definer"
    assert definition.level.value == "signature"


# -- repackaging: the manifest-verification bypass -----------------------------


def test_repackage_keeps_manifest_checksum():
    original = build_sample()
    twin = repackage(original, ATTACKER_KEY)
    assert twin.manifest.checksum() == original.manifest.checksum()


def test_repackage_swaps_payload_and_signer():
    original = build_sample()
    twin = repackage(original, ATTACKER_KEY, payload=b"<malware>")
    assert twin.payload == b"<malware>"
    assert twin.certificate != original.certificate
    assert twin.verify_signature()  # validly signed — just by the wrong party


def test_repackage_keeps_label_and_icon_for_pia_phishing():
    original = build_sample()
    twin = repackage(original, ATTACKER_KEY)
    assert twin.manifest.label == "Example"
    assert twin.manifest.icon == "icon:example"


def test_repackage_can_drop_label():
    original = build_sample()
    twin = repackage(original, ATTACKER_KEY, keep_label_and_icon=False)
    assert twin.manifest.label == "attacker"
    assert twin.manifest.checksum() != original.manifest.checksum()


def test_hash_bytes_matches_file_hash():
    apk = build_sample()
    assert hash_bytes(apk.to_bytes()) == apk.file_hash()
