"""Tests for the permission model: levels, groups, Hares, runtime grants."""

import pytest

from repro.errors import PermissionUnknown
from repro.android.permissions import (
    INSTALL_PACKAGES,
    PermissionDefinition,
    PermissionRegistry,
    PermissionState,
    ProtectionLevel,
    READ_EXTERNAL_STORAGE,
    STORAGE_GROUP,
    WRITE_EXTERNAL_STORAGE,
)


@pytest.fixture
def registry():
    return PermissionRegistry()


def test_builtins_are_defined(registry):
    assert registry.is_defined(INSTALL_PACKAGES)
    assert registry.is_defined(WRITE_EXTERNAL_STORAGE)


def test_install_packages_is_signature_or_system(registry):
    definition = registry.require(INSTALL_PACKAGES)
    assert definition.level is ProtectionLevel.SIGNATURE_OR_SYSTEM


def test_storage_permissions_share_group(registry):
    read = registry.require(READ_EXTERNAL_STORAGE)
    write = registry.require(WRITE_EXTERNAL_STORAGE)
    assert read.group == write.group == STORAGE_GROUP


def test_first_definer_wins(registry):
    first = PermissionDefinition("com.p", ProtectionLevel.NORMAL, defined_by="a")
    second = PermissionDefinition("com.p", ProtectionLevel.DANGEROUS, defined_by="b")
    assert registry.define(first)
    assert not registry.define(second)
    assert registry.require("com.p").defined_by == "a"


def test_undefine_all_by(registry):
    registry.define(PermissionDefinition("com.p1", ProtectionLevel.NORMAL, defined_by="a"))
    registry.define(PermissionDefinition("com.p2", ProtectionLevel.NORMAL, defined_by="a"))
    removed = registry.undefine_all_by("a")
    assert sorted(removed) == ["com.p1", "com.p2"]
    assert not registry.is_defined("com.p1")


def test_require_unknown_raises(registry):
    with pytest.raises(PermissionUnknown):
        registry.require("com.never.defined")


def test_hares_lists_undefined(registry):
    registry.define(PermissionDefinition("com.defined", ProtectionLevel.NORMAL))
    hares = registry.hares(["com.defined", "com.hare1", "com.hare2"])
    assert hares == ["com.hare1", "com.hare2"]


# -- runtime grant model --------------------------------------------------------


def test_normal_permission_granted_silently(registry):
    state = PermissionState(registry)
    assert state.request("android.permission.INTERNET", user_approves=False)


def test_dangerous_permission_needs_user(registry):
    state = PermissionState(registry)
    assert not state.request(READ_EXTERNAL_STORAGE, user_approves=False)
    assert state.request(READ_EXTERNAL_STORAGE, user_approves=True)


def test_group_auto_grant_is_silent(registry):
    """The paper's adversary-model loophole (Section III-A)."""
    state = PermissionState(registry)
    state.request(READ_EXTERNAL_STORAGE, user_approves=True)
    assert state.request_is_silent(WRITE_EXTERNAL_STORAGE)
    # Granted even though the user would have declined.
    assert state.request(WRITE_EXTERNAL_STORAGE, user_approves=False)


def test_no_group_grant_without_prior_member(registry):
    state = PermissionState(registry)
    assert not state.request_is_silent(WRITE_EXTERNAL_STORAGE)


def test_regranting_held_permission_is_silent(registry):
    state = PermissionState(registry)
    state.grant(READ_EXTERNAL_STORAGE)
    assert state.request(READ_EXTERNAL_STORAGE, user_approves=False)


def test_revoke(registry):
    state = PermissionState(registry)
    state.grant(READ_EXTERNAL_STORAGE)
    state.revoke(READ_EXTERNAL_STORAGE)
    assert not state.has(READ_EXTERNAL_STORAGE)


def test_granted_is_immutable_snapshot(registry):
    state = PermissionState(registry)
    state.grant("android.permission.INTERNET")
    snapshot = state.granted
    state.grant(READ_EXTERNAL_STORAGE)
    assert READ_EXTERNAL_STORAGE not in snapshot


def test_request_undefined_permission_raises(registry):
    state = PermissionState(registry)
    with pytest.raises(PermissionUnknown):
        state.request("com.undefined.PERM", user_approves=True)


def test_signature_permissions_never_granted_at_runtime(registry):
    """Regression: a runtime request must not mint signature-class
    permissions — only the PMS grants them, at install time."""
    from repro.android.permissions import DELETE_PACKAGES
    state = PermissionState(registry)
    assert not state.request(INSTALL_PACKAGES, user_approves=True)
    assert not state.request(DELETE_PACKAGES, user_approves=True)
    assert not state.has(INSTALL_PACKAGES)
