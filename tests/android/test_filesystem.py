"""Tests for the in-memory VFS: paths, symlinks, events, DAC hooks."""

import pytest

from repro.errors import (
    AccessDenied,
    FileExists,
    FileNotFound,
    FilesystemError,
    IsADirectory,
    NotADirectory,
    StorageFull,
    SymlinkLoop,
)
from repro.android.filesystem import (
    Caller,
    FileEventType,
    Filesystem,
    NodeKind,
    SYSTEM_CALLER,
    normalize,
    split,
)
from repro.android.storage import StorageVolume
from repro.sim.events import EventHub
from repro.sim.kernel import Kernel

ALICE = Caller(uid=10001, package="com.alice")
BOB = Caller(uid=10002, package="com.bob")


@pytest.fixture
def fs():
    kernel = Kernel()
    filesystem = Filesystem(EventHub(kernel), kernel.clock)
    filesystem.kernel = kernel  # test hook for draining events
    return filesystem


def drain(fs):
    fs.kernel.run()


# -- paths ------------------------------------------------------------------


def test_normalize_requires_absolute():
    with pytest.raises(FilesystemError):
        normalize("relative/path")


def test_normalize_collapses_dots():
    assert normalize("/a/b/../c/./d") == "/a/c/d"


def test_split_basename():
    assert split("/a/b/c.txt") == ("/a/b", "c.txt")


# -- directories and files --------------------------------------------------


def test_makedirs_and_listdir(fs):
    fs.makedirs("/data/app", SYSTEM_CALLER)
    assert fs.listdir("/data") == ["app"]


def test_makedirs_idempotent(fs):
    fs.makedirs("/x/y", ALICE)
    fs.makedirs("/x/y", ALICE)
    assert fs.exists("/x/y")


def test_create_and_read_roundtrip(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f.txt", ALICE, b"content")
    assert fs.read_bytes("/d/f.txt", ALICE) == b"content"


def test_create_exclusive_rejects_existing(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    with pytest.raises(FileExists):
        fs.create("/d/f", ALICE)


def test_create_in_missing_directory(fs):
    with pytest.raises(FileNotFound):
        fs.create("/missing/f", ALICE)


def test_create_under_file_raises_notadirectory(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    with pytest.raises(NotADirectory):
        fs.create("/d/f/child", ALICE)


def test_read_missing_file(fs):
    with pytest.raises(FileNotFound):
        fs.read_bytes("/nope", ALICE)


def test_open_directory_rejected(fs):
    fs.makedirs("/d", ALICE)
    with pytest.raises(IsADirectory):
        fs.open("/d", ALICE)


def test_listdir_on_file_rejected(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    with pytest.raises(NotADirectory):
        fs.listdir("/d/f")


def test_unlink_removes_file(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    fs.unlink("/d/f", ALICE)
    assert not fs.exists("/d/f")


def test_unlink_directory_rejected(fs):
    fs.makedirs("/d", ALICE)
    with pytest.raises(IsADirectory):
        fs.unlink("/d", ALICE)


def test_write_bytes_overwrites(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"old")
    fs.write_bytes("/d/f", ALICE, b"new")
    assert fs.read_bytes("/d/f", ALICE) == b"new"


def test_stat_reports_metadata(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"12345", mode=0o640)
    info = fs.stat("/d/f")
    assert info.size == 5
    assert info.mode == 0o640
    assert info.owner_uid == ALICE.uid
    assert info.kind is NodeKind.FILE


def test_walk_visits_everything(fs):
    fs.makedirs("/d/sub", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    fs.write_bytes("/d/sub/g", ALICE, b"2")
    paths = [path for path, _node in fs.walk("/d")]
    assert set(paths) == {"/d", "/d/f", "/d/sub", "/d/sub/g"}


# -- rename -------------------------------------------------------------------


def test_rename_moves_content(fs):
    fs.makedirs("/a", ALICE)
    fs.makedirs("/b", ALICE)
    fs.write_bytes("/a/f", ALICE, b"data")
    fs.rename("/a/f", "/b/g", ALICE)
    assert not fs.exists("/a/f")
    assert fs.read_bytes("/b/g", ALICE) == b"data"


def test_rename_over_existing_replaces(fs):
    fs.makedirs("/a", ALICE)
    fs.write_bytes("/a/src", ALICE, b"new")
    fs.write_bytes("/a/dst", ALICE, b"old")
    fs.rename("/a/src", "/a/dst", ALICE)
    assert fs.read_bytes("/a/dst", ALICE) == b"new"


# -- symlinks ------------------------------------------------------------------


def test_symlink_resolution(fs):
    fs.makedirs("/real", ALICE)
    fs.write_bytes("/real/f", ALICE, b"target")
    fs.symlink("/link", "/real/f", ALICE)
    assert fs.read_bytes("/link", ALICE) == b"target"


def test_symlink_to_directory_traversal(fs):
    fs.makedirs("/real/sub", ALICE)
    fs.write_bytes("/real/sub/f", ALICE, b"x")
    fs.symlink("/alias", "/real", ALICE)
    assert fs.read_bytes("/alias/sub/f", ALICE) == b"x"


def test_retarget_symlink_changes_resolution(fs):
    fs.makedirs("/a", ALICE)
    fs.makedirs("/b", ALICE)
    fs.write_bytes("/a/f", ALICE, b"A")
    fs.write_bytes("/b/f", ALICE, b"B")
    fs.symlink("/link", "/a/f", ALICE)
    assert fs.read_bytes("/link", ALICE) == b"A"
    fs.retarget_symlink("/link", "/b/f", ALICE)
    assert fs.read_bytes("/link", ALICE) == b"B"


def test_retarget_requires_ownership(fs):
    fs.makedirs("/a", ALICE)
    fs.write_bytes("/a/f", ALICE, b"A")
    fs.symlink("/link", "/a/f", ALICE)
    with pytest.raises(AccessDenied):
        fs.retarget_symlink("/link", "/a/f", BOB)


def test_readlink_returns_target(fs):
    fs.makedirs("/a", ALICE)
    fs.symlink("/link", "/a/f", ALICE)
    assert fs.readlink("/link") == "/a/f"


def test_readlink_on_regular_file_rejected(fs):
    fs.makedirs("/a", ALICE)
    fs.write_bytes("/a/f", ALICE, b"1")
    with pytest.raises(FilesystemError):
        fs.readlink("/a/f")


def test_is_symlink(fs):
    fs.makedirs("/a", ALICE)
    fs.write_bytes("/a/f", ALICE, b"1")
    fs.symlink("/link", "/a/f", ALICE)
    assert fs.is_symlink("/link")
    assert not fs.is_symlink("/a/f")
    assert not fs.is_symlink("/missing")


def test_symlink_loop_detected(fs):
    fs.symlink("/one", "/two", ALICE)
    fs.symlink("/two", "/one", ALICE)
    with pytest.raises(SymlinkLoop):
        fs.read_bytes("/one", ALICE)


def test_resolve_physical_follows_chain(fs):
    fs.makedirs("/real", ALICE)
    fs.write_bytes("/real/f", ALICE, b"1")
    fs.symlink("/l1", "/real/f", ALICE)
    fs.symlink("/l2", "/l1", ALICE)
    assert fs.resolve_physical("/l2") == "/real/f"


# -- chmod / chown -------------------------------------------------------------


def test_chmod_by_owner(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    fs.chmod("/d/f", 0o600, ALICE)
    assert fs.stat("/d/f").mode == 0o600


def test_chmod_by_other_rejected(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    with pytest.raises(AccessDenied):
        fs.chmod("/d/f", 0o777, BOB)


def test_chown_requires_system(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    with pytest.raises(AccessDenied):
        fs.chown("/d/f", BOB.uid, ALICE)
    fs.chown("/d/f", BOB.uid, SYSTEM_CALLER)
    assert fs.stat("/d/f").owner_uid == BOB.uid


# -- volume accounting -----------------------------------------------------------


def test_volume_full_rejects_write(fs):
    volume = StorageVolume("tiny", capacity_bytes=10)
    fs.mount("/tiny", volume)
    with pytest.raises(StorageFull):
        fs.write_bytes("/tiny/big", ALICE, b"x" * 11)


def test_volume_released_on_unlink(fs):
    volume = StorageVolume("tiny", capacity_bytes=10)
    fs.mount("/tiny", volume)
    fs.write_bytes("/tiny/f", ALICE, b"x" * 10)
    assert volume.free_bytes == 0
    fs.unlink("/tiny/f", ALICE)
    assert volume.free_bytes == 10
    fs.write_bytes("/tiny/g", ALICE, b"y" * 10)


def test_mount_for_picks_most_specific(fs):
    outer = StorageVolume("outer", 100)
    inner = StorageVolume("inner", 100)
    fs.mount("/m", outer)
    fs.mount("/m/inner", inner)
    assert fs.mount_for("/m/inner/f").volume is inner
    assert fs.mount_for("/m/f").volume is outer
    assert fs.mount_for("/elsewhere") is None


# -- events -----------------------------------------------------------------------


def collect_events(fs, directory):
    seen = []
    fs._hub.subscribe(f"fs:{directory}", seen.append)
    return seen


def test_write_emits_create_open_modify_close_write(fs):
    fs.makedirs("/d", ALICE)
    seen = collect_events(fs, "/d")
    fs.write_bytes("/d/f", ALICE, b"1")
    drain(fs)
    assert [event.event_type for event in seen] == [
        FileEventType.CREATE,
        FileEventType.OPEN,
        FileEventType.MODIFY,
        FileEventType.CLOSE_WRITE,
    ]


def test_read_emits_open_access_close_nowrite(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    seen = collect_events(fs, "/d")
    fs.read_bytes("/d/f", ALICE)
    drain(fs)
    assert [event.event_type for event in seen] == [
        FileEventType.OPEN,
        FileEventType.ACCESS,
        FileEventType.CLOSE_NOWRITE,
    ]


def test_quiet_read_emits_nothing(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    seen = collect_events(fs, "/d")
    fs.read_bytes("/d/f", ALICE, quiet=True)
    drain(fs)
    assert seen == []


def test_rename_emits_moved_from_and_to(fs):
    fs.makedirs("/a", ALICE)
    fs.makedirs("/b", ALICE)
    fs.write_bytes("/a/f", ALICE, b"1")
    seen_src = collect_events(fs, "/a")
    seen_dst = collect_events(fs, "/b")
    fs.rename("/a/f", "/b/f", ALICE)
    drain(fs)
    assert FileEventType.MOVED_FROM in [event.event_type for event in seen_src]
    assert [event.event_type for event in seen_dst] == [FileEventType.MOVED_TO]


def test_unlink_emits_delete(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    seen = collect_events(fs, "/d")
    fs.unlink("/d/f", ALICE)
    drain(fs)
    assert [event.event_type for event in seen] == [FileEventType.DELETE]


def test_event_carries_path_and_time(fs):
    fs.makedirs("/d", ALICE)
    seen = collect_events(fs, "/d")
    fs.kernel.clock.advance_to(777)
    fs.write_bytes("/d/f", ALICE, b"1")
    drain(fs)
    assert seen[0].path == "/d/f"
    assert seen[0].time_ns == 777


def test_close_is_idempotent(fs):
    fs.makedirs("/d", ALICE)
    seen = collect_events(fs, "/d")
    handle = fs.create("/d/f", ALICE)
    handle.write(b"1")
    handle.close()
    handle.close()
    drain(fs)
    close_events = [e for e in seen if e.event_type is FileEventType.CLOSE_WRITE]
    assert len(close_events) == 1


def test_io_on_closed_handle_rejected(fs):
    fs.makedirs("/d", ALICE)
    handle = fs.create("/d/f", ALICE)
    handle.close()
    with pytest.raises(FilesystemError):
        handle.read()


def test_write_on_readonly_handle_rejected(fs):
    fs.makedirs("/d", ALICE)
    fs.write_bytes("/d/f", ALICE, b"1")
    handle = fs.open("/d/f", ALICE, writable=False)
    with pytest.raises(AccessDenied):
        handle.write(b"2")


def test_cross_volume_rename_moves_the_accounting(fs):
    src_volume = StorageVolume("src", capacity_bytes=100)
    dst_volume = StorageVolume("dst", capacity_bytes=100)
    fs.mount("/srcvol", src_volume)
    fs.mount("/dstvol", dst_volume)
    fs.write_bytes("/srcvol/f", ALICE, b"x" * 40)
    assert src_volume.used_bytes == 40
    fs.rename("/srcvol/f", "/dstvol/f", ALICE)
    assert src_volume.used_bytes == 0
    assert dst_volume.used_bytes == 40


def test_cross_volume_rename_respects_destination_capacity(fs):
    src_volume = StorageVolume("src", capacity_bytes=100)
    tiny = StorageVolume("dst", capacity_bytes=10)
    fs.mount("/srcvol2", src_volume)
    fs.mount("/dstvol2", tiny)
    fs.write_bytes("/srcvol2/f", ALICE, b"x" * 40)
    with pytest.raises(StorageFull):
        fs.rename("/srcvol2/f", "/dstvol2/f", ALICE)
    # The failed move leaves the source intact and accounted.
    assert fs.exists("/srcvol2/f")
    assert src_volume.used_bytes == 40


# -- resolution caching -------------------------------------------------------

def test_resolution_cache_sees_retargeted_symlinks(fs):
    fs.makedirs("/data", SYSTEM_CALLER)
    fs.write_bytes("/data/a.txt", SYSTEM_CALLER, b"A", mode=0o644)
    fs.write_bytes("/data/b.txt", SYSTEM_CALLER, b"B", mode=0o644)
    fs.symlink("/data/link", "/data/a.txt", SYSTEM_CALLER)
    # Warm the cache through the link, then re-point it (the TOCTOU
    # primitive): the next resolution must follow the new target.
    assert fs.read_bytes("/data/link", SYSTEM_CALLER) == b"A"
    fs.retarget_symlink("/data/link", "/data/b.txt", SYSTEM_CALLER)
    assert fs.read_bytes("/data/link", SYSTEM_CALLER) == b"B"


def test_resolution_cache_sees_renames_and_unlinks(fs):
    fs.makedirs("/data", SYSTEM_CALLER)
    fs.write_bytes("/data/old.txt", SYSTEM_CALLER, b"X", mode=0o644)
    assert fs.read_bytes("/data/old.txt", SYSTEM_CALLER) == b"X"  # warm
    fs.rename("/data/old.txt", "/data/new.txt", SYSTEM_CALLER)
    with pytest.raises(FileNotFound):
        fs.read_bytes("/data/old.txt", SYSTEM_CALLER)
    assert fs.read_bytes("/data/new.txt", SYSTEM_CALLER) == b"X"
    fs.unlink("/data/new.txt", SYSTEM_CALLER)
    with pytest.raises(FileNotFound):
        fs.read_bytes("/data/new.txt", SYSTEM_CALLER)


def test_mount_cache_survives_policy_swaps(fs):
    from repro.android.filesystem import AccessPolicy

    volume = StorageVolume(name="data", capacity_bytes=1 << 20)
    fs.mount("/data", volume)
    first = fs.mount_for("/data/file")  # warm the mount cache
    replacement = AccessPolicy()
    fs.set_policy("/data", replacement)
    # set_policy swaps the policy on the mount object itself, so the
    # cached entry must expose the new policy.
    assert fs.mount_for("/data/file") is first
    assert first.policy is replacement
