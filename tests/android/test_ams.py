"""Tests for the ActivityManagerService: activities, foreground, broadcasts."""

import pytest

from repro.errors import ActivityNotFound
from repro.android.ams import (
    ActivityManagerService,
    BroadcastEnvelope,
    INTENT_DELIVERY_LATENCY_NS,
)
from repro.android.filesystem import Caller, SYSTEM_CALLER
from repro.android.intent_firewall import IntentFirewall
from repro.android.intents import FLAG_ACTIVITY_SINGLE_TOP, Intent
from repro.android.proc import OOM_ADJ_BACKGROUND, OOM_ADJ_FOREGROUND, ProcFs
from repro.sim.events import EventHub
from repro.sim.kernel import Kernel

ALICE = Caller(uid=10001, package="com.alice")
BOB = Caller(uid=10002, package="com.bob")


@pytest.fixture
def env():
    kernel = Kernel()
    procfs = ProcFs()
    ams = ActivityManagerService(kernel, EventHub(kernel), IntentFirewall(), procfs)
    return kernel, ams, procfs


def test_start_activity_delivers_after_latency(env):
    kernel, ams, procfs = env
    received = []
    ams.register_app("com.store", intent_handler=received.append)
    ams.start_activity(ALICE, Intent(target_package="com.store"))
    assert received == []
    kernel.run()
    assert len(received) == 1
    assert kernel.clock.now_ns == INTENT_DELIVERY_LATENCY_NS


def test_unknown_target_raises(env):
    _kernel, ams, _procfs = env
    with pytest.raises(ActivityNotFound):
        ams.start_activity(ALICE, Intent(target_package="com.ghost"))


def test_delivery_updates_foreground_and_oom_adj(env):
    kernel, ams, procfs = env
    ams.register_app("com.alice")
    ams.register_app("com.store")
    ams.bring_to_foreground("com.alice")
    assert procfs.oom_adj_of("com.alice") == OOM_ADJ_FOREGROUND
    ams.start_activity(ALICE, Intent(target_package="com.store"))
    kernel.run()
    assert ams.foreground_package == "com.store"
    assert procfs.oom_adj_of("com.alice") == OOM_ADJ_BACKGROUND
    assert procfs.oom_adj_of("com.store") == OOM_ADJ_FOREGROUND


def test_intent_has_no_origin_by_default(env):
    """The root cause of the redirect attack: recipient can't see sender."""
    kernel, ams, _procfs = env
    received = []
    ams.register_app("com.store", intent_handler=received.append)
    ams.start_activity(ALICE, Intent(target_package="com.store"))
    kernel.run()
    assert received[0].get_intent_origin() is None


def test_activity_stack_pushes_frames(env):
    kernel, ams, _procfs = env
    ams.register_app("com.store")
    ams.start_activity(ALICE, Intent(target_package="com.store",
                                     target_activity="Page"))
    kernel.run()
    frame = ams.top_frame()
    assert frame.package == "com.store"
    assert frame.activity == "Page"


def test_single_top_reuses_existing_activity(env):
    kernel, ams, _procfs = env
    ams.register_app("com.store")
    first = Intent(target_package="com.store", target_activity="Page")
    ams.start_activity(ALICE, first)
    kernel.run()
    second = Intent(target_package="com.store", target_activity="Page",
                    flags=FLAG_ACTIVITY_SINGLE_TOP)
    second.with_extra("show_package", "com.evil")
    ams.start_activity(BOB, second)
    kernel.run()
    assert len(ams.stack) == 1  # onNewIntent, no new frame
    assert ams.top_frame().intent.extras["show_package"] == "com.evil"


def test_non_single_top_stacks_new_frame(env):
    kernel, ams, _procfs = env
    ams.register_app("com.store")
    ams.start_activity(ALICE, Intent(target_package="com.store",
                                     target_activity="Page"))
    kernel.run()
    ams.start_activity(BOB, Intent(target_package="com.store",
                                   target_activity="Page"))
    kernel.run()
    assert len(ams.stack) == 2


def test_firewall_blocks_delivery(env):
    kernel, ams, _procfs = env
    from repro.android.intent_firewall import InspectionResult
    ams.firewall.add_inspector(lambda record: InspectionResult(allow=False))
    received = []
    ams.register_app("com.store", intent_handler=received.append)
    allowed = ams.start_activity(ALICE, Intent(target_package="com.store"))
    kernel.run()
    assert not allowed
    assert received == []


def test_broadcast_reaches_registered_receiver(env):
    kernel, ams, _procfs = env
    seen = []
    ams.register_receiver("com.store", "com.store.PUSH", seen.append)
    count = ams.send_broadcast(ALICE, "com.store.PUSH", {"k": "v"})
    kernel.run()
    assert count == 1
    envelope = seen[0]
    assert isinstance(envelope, BroadcastEnvelope)
    assert envelope.extras == {"k": "v"}
    assert envelope.sender_package == "com.alice"


def test_broadcast_permission_guard(env):
    kernel, ams, _procfs = env
    seen = []
    ams.register_receiver("com.store", "com.store.PUSH", seen.append,
                          required_permission="com.store.permission.PUSH")
    assert ams.send_broadcast(ALICE, "com.store.PUSH") == 0
    privileged = Caller(uid=10003, package="com.cloud",
                        permissions=frozenset({"com.store.permission.PUSH"}))
    assert ams.send_broadcast(privileged, "com.store.PUSH") == 1
    kernel.run()
    assert len(seen) == 1


def test_system_sender_passes_permission_guard(env):
    kernel, ams, _procfs = env
    seen = []
    ams.register_receiver("com.store", "a", seen.append,
                          required_permission="com.perm")
    assert ams.send_broadcast(SYSTEM_CALLER, "a") == 1


def test_unexported_receiver_only_own_package(env):
    kernel, ams, _procfs = env
    seen = []
    ams.register_receiver("com.store", "a", seen.append, exported=False)
    assert ams.send_broadcast(ALICE, "a") == 0
    store_caller = Caller(uid=10009, package="com.store")
    assert ams.send_broadcast(store_caller, "a") == 1


def test_broadcast_action_filtering(env):
    kernel, ams, _procfs = env
    seen = []
    ams.register_receiver("com.store", "action.A", seen.append)
    ams.send_broadcast(ALICE, "action.B")
    kernel.run()
    assert seen == []
