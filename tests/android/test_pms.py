"""Tests for the PackageManagerService."""

import pytest

from repro.errors import (
    InstallError,
    InstallSignatureError,
    InstallStorageError,
    InstallVerificationError,
    PackageNotFound,
    SecurityException,
)
from repro.android.apk import Apk, ApkBuilder, repackage
from repro.android.device import nexus5
from repro.android.permissions import (
    DELETE_PACKAGES,
    INSTALL_PACKAGES,
    READ_CONTACTS,
    WRITE_EXTERNAL_STORAGE,
)
from repro.android.pms import ACTION_PACKAGE_ADDED, ACTION_PACKAGE_REPLACED
from repro.android.signing import SigningKey
from repro.android.system import AndroidSystem

DEV = SigningKey("dev", "k1")
OTHER = SigningKey("other", "k2")


@pytest.fixture
def system():
    return AndroidSystem(nexus5())


def stage(system, apk, path="/sdcard/stage.apk"):
    system.fs.write_bytes(path, system.system_caller, apk.to_bytes())
    return path


def build(package="com.example.app", key=DEV, version=1, permissions=()):
    builder = ApkBuilder(package).version(version).payload(b"<code>")
    if permissions:
        builder.uses_permission(*permissions)
    return builder.build(key)


# -- install_package -----------------------------------------------------------


def test_silent_install_requires_permission(system):
    path = stage(system, build())
    unprivileged = system.caller_for
    apk = build("com.no.priv")
    system.install_user_app(apk)
    with pytest.raises(SecurityException):
        system.pms.install_package(path, system.caller_for("com.no.priv"))


def test_system_caller_installs(system):
    path = stage(system, build())
    package = system.pms.install_package(path, system.system_caller)
    assert system.pms.is_installed("com.example.app")
    assert package.version_code == 1


def test_install_reads_file_at_call_time(system):
    """Whatever bytes are staged at invocation get installed (the TOCTOU)."""
    path = stage(system, build())
    swapped = repackage(build(), SigningKey("evil", "k"), payload=b"<evil>")
    system.fs.write_bytes(path, system.system_caller, swapped.to_bytes())
    package = system.pms.install_package(path, system.system_caller)
    assert package.payload == b"<evil>"


def test_install_missing_file_fails(system):
    with pytest.raises(InstallError):
        system.pms.install_package("/sdcard/nope.apk", system.system_caller)


def test_install_garbage_file_fails(system):
    system.fs.write_bytes("/sdcard/junk.apk", system.system_caller, b"not an apk")
    with pytest.raises(InstallError):
        system.pms.install_package("/sdcard/junk.apk", system.system_caller)


def test_install_invalid_signature_fails(system):
    apk = build()
    forged = Apk(manifest=apk.manifest, payload=b"<tampered>", signature=apk.signature)
    path = stage(system, forged)
    with pytest.raises(InstallError):
        system.pms.install_package(path, system.system_caller)


def test_update_same_cert_succeeds(system):
    stage(system, build(version=1))
    system.pms.install_package("/sdcard/stage.apk", system.system_caller)
    stage(system, build(version=2))
    package = system.pms.install_package("/sdcard/stage.apk", system.system_caller)
    assert package.version_code == 2


def test_update_keeps_uid(system):
    stage(system, build(version=1))
    first = system.pms.install_package("/sdcard/stage.apk", system.system_caller)
    stage(system, build(version=2))
    second = system.pms.install_package("/sdcard/stage.apk", system.system_caller)
    assert first.uid == second.uid


def test_update_different_cert_rejected(system):
    stage(system, build(version=1, key=DEV))
    system.pms.install_package("/sdcard/stage.apk", system.system_caller)
    stage(system, build(version=2, key=OTHER))
    with pytest.raises(InstallSignatureError):
        system.pms.install_package("/sdcard/stage.apk", system.system_caller)


def test_insufficient_internal_storage(system):
    system.internal_volume.charge(system.internal_volume.free_bytes - 100)
    apk = ApkBuilder("com.big").payload_size(200).build(DEV)
    path = stage(system, apk)
    with pytest.raises(InstallStorageError):
        system.pms.install_package(path, system.system_caller)


# -- installPackageWithVerification -----------------------------------------------


def test_verification_accepts_matching_manifest(system):
    apk = build()
    path = stage(system, apk)
    system.pms.install_package_with_verification(
        path, system.system_caller, apk.manifest.checksum()
    )
    assert system.pms.is_installed(apk.package)


def test_verification_rejects_different_manifest(system):
    apk = build()
    path = stage(system, apk)
    other_checksum = build("com.other").manifest.checksum()
    with pytest.raises(InstallVerificationError):
        system.pms.install_package_with_verification(
            path, system.system_caller, other_checksum
        )


def test_verification_bypassed_by_repackaging(system):
    """The Step-4 flaw: same manifest, different payload, passes."""
    apk = build()
    twin = repackage(apk, SigningKey("evil", "k"), payload=b"<malware>")
    path = stage(system, twin)
    package = system.pms.install_package_with_verification(
        path, system.system_caller, apk.manifest.checksum()
    )
    assert package.payload == b"<malware>"


# -- permission granting -------------------------------------------------------------


def test_normal_and_dangerous_granted_at_install(system):
    apk = build(permissions=("android.permission.INTERNET",
                             WRITE_EXTERNAL_STORAGE))
    package = system.install_user_app(apk)
    assert package.permissions.has("android.permission.INTERNET")
    assert package.permissions.has(WRITE_EXTERNAL_STORAGE)


def test_signature_or_system_denied_to_ordinary_app(system):
    apk = build(permissions=(INSTALL_PACKAGES,))
    package = system.install_user_app(apk)
    assert not package.permissions.has(INSTALL_PACKAGES)


def test_signature_or_system_granted_to_platform_signed(system):
    apk = ApkBuilder("com.oem.tool").uses_permission(INSTALL_PACKAGES).build(
        system.platform_key
    )
    package = system.install_user_app(apk)
    assert package.permissions.has(INSTALL_PACKAGES)


def test_signature_or_system_granted_to_system_image_app(system):
    apk = build("com.carrier.bloat", key=OTHER, permissions=(INSTALL_PACKAGES,))
    package = system.install_system_app(apk)
    assert package.permissions.has(INSTALL_PACKAGES)


def test_undefined_permission_not_granted(system):
    apk = build(permissions=("com.hare.PERM",))
    package = system.install_user_app(apk)
    assert not package.permissions.has("com.hare.PERM")


def test_defining_app_registers_permission(system):
    apk = (
        ApkBuilder("com.definer")
        .defines_permission("com.definer.PERM", level="normal")
        .uses_permission("com.definer.PERM")
        .build(DEV)
    )
    package = system.install_user_app(apk)
    assert system.permission_registry.is_defined("com.definer.PERM")
    assert package.permissions.has("com.definer.PERM")


def test_signature_level_requires_matching_cert(system):
    definer = (
        ApkBuilder("com.definer")
        .defines_permission("com.definer.SIG", level="signature")
        .build(DEV)
    )
    system.install_user_app(definer)
    same_cert = build("com.friend", key=DEV, permissions=("com.definer.SIG",))
    other_cert = build("com.stranger", key=OTHER, permissions=("com.definer.SIG",))
    assert system.install_user_app(same_cert).permissions.has("com.definer.SIG")
    assert not system.install_user_app(other_cert).permissions.has("com.definer.SIG")


# -- uninstall -----------------------------------------------------------------------


def test_uninstall_requires_delete_packages(system):
    system.install_user_app(build())
    victim_caller = system.caller_for("com.example.app")
    with pytest.raises(SecurityException):
        system.pms.uninstall_package("com.example.app", victim_caller)


def test_uninstall_removes_package_and_definitions(system):
    apk = (
        ApkBuilder("com.definer")
        .defines_permission("com.definer.PERM", level="normal")
        .build(DEV)
    )
    system.install_user_app(apk)
    system.pms.uninstall_package("com.definer", system.system_caller)
    assert not system.pms.is_installed("com.definer")
    assert not system.permission_registry.is_defined("com.definer.PERM")


def test_uninstall_missing_package(system):
    with pytest.raises(PackageNotFound):
        system.pms.uninstall_package("com.ghost", system.system_caller)


# -- broadcasts and queries -------------------------------------------------------------


def test_package_added_broadcast(system):
    seen = []
    system.hub.subscribe(f"broadcast:{ACTION_PACKAGE_ADDED}", seen.append)
    system.install_user_app(build())
    system.run()
    assert len(seen) == 1
    assert seen[0].package == "com.example.app"


def test_package_replaced_broadcast_on_update(system):
    seen = []
    system.hub.subscribe(f"broadcast:{ACTION_PACKAGE_REPLACED}", seen.append)
    system.install_user_app(build(version=1))
    system.install_user_app(build(version=2))
    system.run()
    assert len(seen) == 1


def test_check_permission_api(system):
    system.install_user_app(build(permissions=(WRITE_EXTERNAL_STORAGE,)))
    assert system.pms.check_permission(WRITE_EXTERNAL_STORAGE, "com.example.app")
    assert not system.pms.check_permission(READ_CONTACTS, "com.example.app")
    assert not system.pms.check_permission(WRITE_EXTERNAL_STORAGE, "com.ghost")


def test_installed_signature(system):
    system.install_user_app(build())
    assert system.pms.installed_signature("com.example.app") == DEV.certificate


def test_installed_copy_materialized(system):
    system.install_user_app(build())
    assert system.fs.exists("/data/app/com.example.app.apk")
    assert system.fs.exists("/data/data/com.example.app")
