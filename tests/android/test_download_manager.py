"""Tests for the AOSP Download Manager and its symlink handling."""

import pytest

from repro.errors import DownloadDestinationError, DownloadError
from repro.android.device import nexus5, xiaomi_mi4
from repro.android.download_manager import (
    DownloadStatus,
    SymlinkMode,
)
from repro.android.filesystem import Caller
from repro.android.permissions import WRITE_EXTERNAL_STORAGE
from repro.android.system import AndroidSystem
from repro.android.apk import ApkBuilder
from repro.android.signing import SigningKey

URL = "http://cdn.example/file.bin"
CONTENT = b"x" * 200_000


def make_system(profile=None):
    system = AndroidSystem(profile or nexus5())
    system.network.host(URL, CONTENT)
    apk = (
        ApkBuilder("com.client")
        .uses_permission(WRITE_EXTERNAL_STORAGE,
                         "android.permission.READ_EXTERNAL_STORAGE")
        .build(SigningKey("dev", "k"))
    )
    system.install_user_app(apk)
    return system, system.caller_for("com.client")


def test_download_to_sdcard(system=None):
    system, caller = make_system()
    download_id = system.dm.enqueue(caller, URL, "/sdcard/Download/f.bin")
    system.run()
    assert system.fs.read_bytes("/sdcard/Download/f.bin", caller) == CONTENT
    record = system.dm.query(caller, download_id)
    assert record.status is DownloadStatus.SUCCESSFUL
    assert record.bytes_so_far == len(CONTENT)


def test_download_takes_simulated_time():
    system, caller = make_system()
    system.dm.enqueue(caller, URL, "/sdcard/Download/f.bin")
    system.run()
    assert system.now_ns > 0


def test_destination_outside_sdcard_rejected():
    system, caller = make_system()
    with pytest.raises(DownloadDestinationError):
        system.dm.enqueue(caller, URL, "/data/data/com.other/f.bin")


def test_cache_destination_allowed():
    system, caller = make_system()
    system.fs.makedirs("/data/data/com.client/cache", system.system_caller)
    download_id = system.dm.enqueue(
        caller, URL, "/data/data/com.client/cache/f.bin"
    )
    assert download_id > 0


def test_404_marks_failed():
    system, caller = make_system()
    download_id = system.dm.enqueue(caller, "http://missing/x", "/sdcard/f")
    system.run()
    assert system.dm.query(caller, download_id).status is DownloadStatus.FAILED


def test_id_bound_to_requesting_package():
    system, caller = make_system()
    other_apk = (
        ApkBuilder("com.other").uses_permission(WRITE_EXTERNAL_STORAGE)
        .build(SigningKey("o", "k"))
    )
    system.install_user_app(other_apk)
    download_id = system.dm.enqueue(caller, URL, "/sdcard/f.bin")
    system.run()
    with pytest.raises(DownloadError):
        system.dm.query(system.caller_for("com.other"), download_id)


def test_retrieve_returns_bytes():
    system, caller = make_system()
    download_id = system.dm.enqueue(caller, URL, "/sdcard/f.bin")
    system.run()
    data = system.run_process(system.dm.retrieve(caller, download_id))
    assert data == CONTENT


def test_remove_deletes_file_and_record():
    system, caller = make_system()
    download_id = system.dm.enqueue(caller, URL, "/sdcard/f.bin")
    system.run()
    path, unlinked = system.run_process(system.dm.remove(caller, download_id))
    assert unlinked
    assert not system.fs.exists("/sdcard/f.bin")
    with pytest.raises(DownloadError):
        system.dm.query(caller, download_id)


def test_completion_topic_announced():
    system, caller = make_system()
    download_id = system.dm.enqueue(caller, URL, "/sdcard/f.bin")
    seen = []
    system.hub.subscribe(system.dm.completion_topic(download_id), seen.append)
    system.run()
    assert len(seen) == 1
    assert seen[0].status is DownloadStatus.SUCCESSFUL


def test_database_file_exists_and_lists_downloads():
    system, caller = make_system()
    system.dm.enqueue(caller, URL, "/sdcard/f.bin")
    system.run()
    raw = system.fs.read_bytes(system.dm.database_path(), system.system_caller)
    assert URL.encode() in raw


def test_download_through_symlink_writes_physical_target():
    system, caller = make_system()
    system.fs.makedirs("/sdcard/mine", caller)
    system.fs.symlink("/sdcard/link", "/sdcard/mine/real.bin", caller)
    system.dm.enqueue(caller, URL, "/sdcard/link")
    system.run()
    assert system.fs.read_bytes("/sdcard/mine/real.bin", caller) == CONTENT


def test_lexical_mode_never_rechecks():
    system, caller = make_system(xiaomi_mi4())
    assert system.dm.symlink_mode is SymlinkMode.LEXICAL


def test_symlink_mode_by_android_version():
    from repro.android.device import nexus5_marshmallow
    assert AndroidSystem(nexus5_marshmallow()).dm.symlink_mode is (
        SymlinkMode.CHECK_THEN_USE
    )
    assert AndroidSystem(nexus5()).dm.symlink_mode is SymlinkMode.LEXICAL


def test_safe_mode_blocks_redirected_retrieve():
    system, caller = make_system()
    system.dm.symlink_mode = SymlinkMode.SAFE
    system.fs.makedirs("/sdcard/mine", caller)
    system.fs.symlink("/sdcard/link", "/sdcard/mine/real.bin", caller)
    download_id = system.dm.enqueue(caller, URL, "/sdcard/link")
    system.run()
    system.fs.retarget_symlink("/sdcard/link", "/data/secret", caller)
    with pytest.raises(DownloadDestinationError):
        system.run_process(system.dm.retrieve(caller, download_id))


def test_redownload_overwrites_existing():
    system, caller = make_system()
    system.dm.enqueue(caller, URL, "/sdcard/f.bin")
    system.run()
    system.dm.enqueue(caller, URL, "/sdcard/f.bin")
    system.run()
    assert system.fs.read_bytes("/sdcard/f.bin", caller) == CONTENT
