"""Tests for the IntentFirewall inspection pipeline."""

from repro.android.intent_firewall import (
    InspectionResult,
    IntentFirewall,
    IntentRecord,
)
from repro.android.intents import Intent


def make_record(sender="com.a", recipient="com.b", time_ns=0,
                uid=10001, is_system=False):
    return IntentRecord(
        intent=Intent(target_package=recipient),
        sender_package=sender,
        sender_uid=uid,
        sender_is_system=is_system,
        recipient_package=recipient,
        delivery_time_ns=time_ns,
    )


def test_stock_firewall_allows_everything():
    firewall = IntentFirewall()
    assert firewall.check_intent(make_record())
    assert firewall.alarm_count() == 0


def test_records_are_kept():
    firewall = IntentFirewall()
    firewall.check_intent(make_record())
    firewall.check_intent(make_record(sender="com.c"))
    assert len(firewall.records) == 2


def test_inspector_can_block():
    firewall = IntentFirewall()
    firewall.add_inspector(lambda record: InspectionResult(allow=False))
    assert not firewall.check_intent(make_record())
    assert len(firewall.blocked) == 1


def test_inspector_can_alarm_without_blocking():
    firewall = IntentFirewall()
    firewall.add_inspector(
        lambda record: InspectionResult(alarm="suspicious")
    )
    assert firewall.check_intent(make_record())
    assert firewall.alarms == ["suspicious"]
    assert firewall.blocked == []


def test_inspectors_run_in_order_and_all_run():
    firewall = IntentFirewall()
    calls = []
    firewall.add_inspector(lambda r: (calls.append("a"), InspectionResult())[1])
    firewall.add_inspector(
        lambda r: (calls.append("b"), InspectionResult(allow=False))[1]
    )
    firewall.add_inspector(lambda r: (calls.append("c"), InspectionResult())[1])
    assert not firewall.check_intent(make_record())
    assert calls == ["a", "b", "c"]


def test_one_veto_blocks_despite_later_allows():
    firewall = IntentFirewall()
    firewall.add_inspector(lambda r: InspectionResult(allow=False))
    firewall.add_inspector(lambda r: InspectionResult(allow=True))
    assert not firewall.check_intent(make_record())
