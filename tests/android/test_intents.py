"""Unit tests for the Intent model."""

from repro.android.intents import (
    ACTION_MAIN,
    ACTION_VIEW,
    FLAG_ACTIVITY_SINGLE_TOP,
    Intent,
)


def test_defaults():
    intent = Intent()
    assert intent.action == ACTION_VIEW
    assert intent.extras == {}
    assert intent.flags == 0
    assert not intent.single_top


def test_single_top_flag():
    intent = Intent(flags=FLAG_ACTIVITY_SINGLE_TOP)
    assert intent.single_top
    combined = Intent(flags=FLAG_ACTIVITY_SINGLE_TOP | 0x1)
    assert combined.single_top


def test_with_extra_is_fluent_and_mutating():
    intent = Intent().with_extra("a", 1).with_extra("b", "two")
    assert intent.extras == {"a": 1, "b": "two"}


def test_intent_ids_unique():
    assert Intent().intent_id != Intent().intent_id


def test_origin_hidden_api_defaults_none():
    intent = Intent()
    assert intent.get_intent_origin() is None
    intent.set_intent_origin("com.sender")
    assert intent.get_intent_origin() == "com.sender"


def test_repr_mentions_target():
    intent = Intent(target_package="com.store", target_activity="Page")
    assert "com.store" in repr(intent)
    assert "<unresolved>" in repr(Intent())


def test_action_main_constant():
    assert ACTION_MAIN.endswith("MAIN")


def test_extras_are_per_instance():
    first = Intent().with_extra("k", 1)
    second = Intent()
    assert second.extras == {}
