"""Tests for the /proc oom_adj side channel."""

import pytest

from repro.errors import AndroidError
from repro.android.proc import (
    OOM_ADJ_BACKGROUND,
    OOM_ADJ_FOREGROUND,
    ProcFs,
)


def test_register_assigns_stable_pid():
    procfs = ProcFs()
    pid = procfs.register("com.app")
    assert procfs.register("com.app") == pid
    assert procfs.pid_of("com.app") == pid


def test_pids_are_distinct():
    procfs = ProcFs()
    assert procfs.register("com.a") != procfs.register("com.b")


def test_oom_adj_reflects_foreground():
    procfs = ProcFs()
    pid = procfs.register("com.app")
    assert procfs.oom_adj(pid) == OOM_ADJ_BACKGROUND
    procfs.set_foreground("com.app")
    assert procfs.oom_adj(pid) == OOM_ADJ_FOREGROUND
    procfs.set_foreground("com.other-thing")
    assert procfs.oom_adj(pid) == OOM_ADJ_BACKGROUND


def test_oom_adj_of_by_package():
    procfs = ProcFs()
    procfs.register("com.app")
    procfs.set_foreground("com.app")
    assert procfs.oom_adj_of("com.app") == OOM_ADJ_FOREGROUND


def test_unknown_pid_raises():
    procfs = ProcFs()
    with pytest.raises(AndroidError):
        procfs.oom_adj(9999)


def test_unknown_package_raises():
    procfs = ProcFs()
    with pytest.raises(AndroidError):
        procfs.pid_of("com.ghost")


def test_side_channel_needs_no_permission():
    """Any process may read any other's oom_adj — the attack premise."""
    procfs = ProcFs()
    victim_pid = procfs.register("com.facebook.katana")
    procfs.register("com.fun.flashlight")
    # The attacker just reads the victim's value directly.
    assert procfs.oom_adj(victim_pid) in (OOM_ADJ_FOREGROUND, OOM_ADJ_BACKGROUND)
