"""Tests for the stock FUSE daemon policy over /sdcard."""

import pytest

from repro.errors import AccessDenied
from repro.android.filesystem import Caller, Filesystem, SYSTEM_CALLER
from repro.android.fuse import (
    FuseDaemon,
    READ_EXTERNAL_STORAGE,
    WRITE_EXTERNAL_STORAGE,
)
from repro.android.storage import GB, StorageVolume
from repro.sim.events import EventHub
from repro.sim.kernel import Kernel

WRITER = Caller(uid=10001, package="com.writer",
                permissions=frozenset({WRITE_EXTERNAL_STORAGE}))
READER = Caller(uid=10002, package="com.reader",
                permissions=frozenset({READ_EXTERNAL_STORAGE}))
NOBODY = Caller(uid=10003, package="com.nobody")


@pytest.fixture
def fs():
    kernel = Kernel()
    filesystem = Filesystem(EventHub(kernel), kernel.clock)
    filesystem.mount("/sdcard", StorageVolume("external", GB), FuseDaemon())
    return filesystem


def test_write_requires_write_permission(fs):
    with pytest.raises(AccessDenied):
        fs.write_bytes("/sdcard/f", NOBODY, b"x")
    fs.write_bytes("/sdcard/f", WRITER, b"x")


def test_read_requires_either_storage_permission(fs):
    fs.write_bytes("/sdcard/f", WRITER, b"x")
    assert fs.read_bytes("/sdcard/f", READER) == b"x"
    assert fs.read_bytes("/sdcard/f", WRITER) == b"x"
    with pytest.raises(AccessDenied):
        fs.read_bytes("/sdcard/f", NOBODY)


def test_dac_is_ignored_on_external_storage(fs):
    """The paper's root cause: any WRITE holder may overwrite any file."""
    other = Caller(uid=10009, package="com.other",
                   permissions=frozenset({WRITE_EXTERNAL_STORAGE}))
    fs.write_bytes("/sdcard/victim.apk", WRITER, b"genuine")
    fs.chmod("/sdcard/victim.apk", 0o600, WRITER)
    fs.write_bytes("/sdcard/victim.apk", other, b"malicious")
    assert fs.read_bytes("/sdcard/victim.apk", WRITER) == b"malicious"


def test_stock_mode_synthesized_on_create(fs):
    fs.write_bytes("/sdcard/f", WRITER, b"x", mode=0o600)
    assert fs.stat("/sdcard/f").mode == 0o664  # daemon overrides the mode


def test_delete_requires_write_permission(fs):
    fs.write_bytes("/sdcard/f", WRITER, b"x")
    with pytest.raises(AccessDenied):
        fs.unlink("/sdcard/f", READER)
    fs.unlink("/sdcard/f", WRITER)


def test_rename_requires_write_permission(fs):
    fs.write_bytes("/sdcard/f", WRITER, b"x")
    with pytest.raises(AccessDenied):
        fs.rename("/sdcard/f", "/sdcard/g", READER)
    fs.rename("/sdcard/f", "/sdcard/g", WRITER)


def test_any_write_holder_may_delete_others_files(fs):
    other = Caller(uid=10010, package="com.other",
                   permissions=frozenset({WRITE_EXTERNAL_STORAGE}))
    fs.write_bytes("/sdcard/f", WRITER, b"x")
    fs.unlink("/sdcard/f", other)
    assert not fs.exists("/sdcard/f")


def test_system_bypasses_permission_checks(fs):
    fs.write_bytes("/sdcard/f", SYSTEM_CALLER, b"x")
    assert fs.read_bytes("/sdcard/f", SYSTEM_CALLER) == b"x"
    fs.unlink("/sdcard/f", SYSTEM_CALLER)
