"""Tests for campaigns and the benign workload generator."""

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.campaign import Campaign, CampaignStats, benign_workload
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller, DTIgniteInstaller


def test_benign_campaign_counts_clean_installs():
    scenario = Scenario.build(installer=AmazonInstaller)
    packages = benign_workload(scenario, count=5)
    stats = Campaign(scenario).install_many(packages)
    assert stats.runs == 5
    assert stats.clean_installs == 5
    assert stats.hijacks == 0
    assert stats.false_positive_rate == 0.0


def test_attack_campaign_counts_hijacks():
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
    )
    packages = benign_workload(scenario, count=3)
    stats = Campaign(scenario).install_many(packages)
    assert stats.hijacks == 3
    assert stats.hijack_rate == 1.0


def test_rearm_between_runs_enables_serial_hijacks():
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
    )
    packages = benign_workload(scenario, count=2)
    stats = Campaign(scenario).install_many(packages, rearm_between=False)
    # Without re-arming, only the first install is hijacked.
    assert stats.hijacks == 1


def test_campaign_with_defense_counts_blocks():
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
        defenses=("fuse-dac",),
    )
    packages = benign_workload(scenario, count=2)
    stats = Campaign(scenario).install_many(packages)
    assert stats.hijacks == 0
    assert stats.blocked >= 1


def test_stats_error_counting():
    stats = CampaignStats()
    from repro.core.outcomes import InstallOutcome
    stats.record(InstallOutcome(requested_package="x", error="boom"), [])
    assert stats.errors == 1
    assert stats.runs == 1


def test_benign_workload_publishes_unique_packages():
    scenario = Scenario.build(installer=AmazonInstaller)
    packages = benign_workload(scenario, count=10)
    assert len(set(packages)) == 10
    assert all(pkg in scenario.listings for pkg in packages)
