"""Tests for campaigns and the benign workload generator."""

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.campaign import Campaign, CampaignStats, benign_workload
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller, DTIgniteInstaller


def test_benign_campaign_counts_clean_installs():
    scenario = Scenario.build(installer=AmazonInstaller)
    packages = benign_workload(scenario, count=5)
    stats = Campaign(scenario).install_many(packages)
    assert stats.runs == 5
    assert stats.clean_installs == 5
    assert stats.hijacks == 0
    assert stats.false_positive_rate == 0.0


def test_attack_campaign_counts_hijacks():
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
    )
    packages = benign_workload(scenario, count=3)
    stats = Campaign(scenario).install_many(packages)
    assert stats.hijacks == 3
    assert stats.hijack_rate == 1.0


def test_rearm_between_runs_enables_serial_hijacks():
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
    )
    packages = benign_workload(scenario, count=2)
    stats = Campaign(scenario).install_many(packages, rearm_between=False)
    # Without re-arming, only the first install is hijacked.
    assert stats.hijacks == 1


def test_campaign_with_defense_counts_blocks():
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
        defenses=("fuse-dac",),
    )
    packages = benign_workload(scenario, count=2)
    stats = Campaign(scenario).install_many(packages)
    assert stats.hijacks == 0
    assert stats.blocked >= 1


def test_stats_error_counting():
    stats = CampaignStats()
    from repro.core.outcomes import InstallOutcome
    stats.record(InstallOutcome(requested_package="x", error="boom"), [])
    assert stats.errors == 1
    assert stats.runs == 1


def _defended_attack_scenario():
    return Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
        defenses=("fuse-dac",),
    )


def test_blocked_accumulates_across_runs_of_one_campaign():
    """Regression: alarms/blocked were overwritten from the cumulative
    defense reports on each record() instead of accumulating deltas."""
    scenario = _defended_attack_scenario()
    packages = benign_workload(scenario, count=3)
    campaign = Campaign(scenario)
    per_run_blocked = []
    for package in packages:
        before = campaign.stats.blocked
        campaign.install_many([package])
        per_run_blocked.append(campaign.stats.blocked - before)
    # Every run contributes its own delta; the total is their sum, not
    # the last run's cumulative report.
    assert all(delta >= 1 for delta in per_run_blocked)
    assert campaign.stats.blocked == sum(per_run_blocked)
    assert campaign.stats.blocked_runs == 3


def test_stats_accumulate_across_scenarios():
    """A shared stats object keeps totals across fresh scenarios, whose
    defense reports restart from zero (the fleet engine relies on this)."""
    stats = CampaignStats()
    for _ in range(2):
        scenario = _defended_attack_scenario()
        packages = benign_workload(scenario, count=2)
        Campaign(scenario, stats=stats).install_many(packages)
    assert stats.runs == 4
    assert stats.blocked_runs == 4
    # Old `=` semantics would report only the second scenario's total.
    assert stats.blocked >= 4


def test_merge_matches_incremental_recording():
    scenario_a = _defended_attack_scenario()
    stats_a = Campaign(scenario_a).install_many(
        benign_workload(scenario_a, count=2))
    scenario_b = Scenario.build(installer=AmazonInstaller)
    stats_b = Campaign(scenario_b).install_many(
        benign_workload(scenario_b, count=3))
    merged = stats_a.merge(stats_b)
    assert merged.runs == 5
    assert merged.blocked == stats_a.blocked
    assert merged.clean_installs == stats_a.clean_installs + 3
    assert len(merged.outcomes) == 5


def test_benign_workload_publishes_unique_packages():
    scenario = Scenario.build(installer=AmazonInstaller)
    packages = benign_workload(scenario, count=10)
    assert len(set(packages)) == 10
    assert all(pkg in scenario.listings for pkg in packages)


def test_compact_stats_project_outcomes_at_record_time():
    from repro.core.outcomes import InstallOutcome, OutcomeRecord

    stats = CampaignStats(compact=True)
    heavy_trace = object()  # stands in for a TransactionTrace
    outcome = InstallOutcome(requested_package="com.a", installed=True,
                             trace=heavy_trace, elapsed_ns=42)
    stats.record(outcome, [])
    assert stats.runs == 1
    record = stats.outcomes[0]
    assert isinstance(record, OutcomeRecord)
    # The retained record must not pin the trace (that is the memory
    # leak this policy exists to prevent).
    assert not hasattr(record, "trace")
    assert record.elapsed_ns == 42
    assert record.clean_install


def test_keep_outcomes_caps_retained_records_not_counters():
    from repro.core.outcomes import InstallOutcome

    stats = CampaignStats(compact=True, keep_outcomes=2)
    for index in range(5):
        stats.record(InstallOutcome(requested_package=f"com.app{index}",
                                    installed=True), [])
    assert stats.runs == 5
    assert stats.installs_completed == 5
    assert len(stats.outcomes) == 2
    assert [o.requested_package for o in stats.outcomes] == [
        "com.app0", "com.app1"]


def test_keep_outcomes_zero_retains_nothing():
    from repro.core.outcomes import InstallOutcome

    stats = CampaignStats(keep_outcomes=0)
    stats.record(InstallOutcome(requested_package="com.a", installed=True), [])
    assert stats.runs == 1
    assert stats.outcomes == []


def test_retention_policy_does_not_break_stats_equality():
    from repro.core.outcomes import InstallOutcome, OutcomeRecord

    compact = CampaignStats(compact=True)
    default = CampaignStats()
    outcome = InstallOutcome(requested_package="com.a", installed=True)
    compact.record(outcome, [])
    default.record(OutcomeRecord.from_outcome(outcome), [])
    # Policy fields are bookkeeping: two stats with identical content
    # compare equal regardless of how they were recorded.
    assert compact == default
