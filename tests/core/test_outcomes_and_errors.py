"""Tests for outcome dataclasses and the error hierarchy."""

import pytest

from repro import errors
from repro.core.ait import AITStep
from repro.core.outcomes import AttackResult, DefenseReport, InstallOutcome


# -- outcomes --------------------------------------------------------------------


def test_clean_install_semantics():
    outcome = InstallOutcome(requested_package="x", installed=True)
    assert outcome.clean_install
    outcome.hijacked = True
    assert not outcome.clean_install
    assert not InstallOutcome(requested_package="x").clean_install


def test_attack_result_str():
    result = AttackResult(attack_name="toctou", ait_step=AITStep.TRIGGER,
                          succeeded=True)
    assert "toctou" in str(result)
    assert "step 3" in str(result)
    assert "SUCCEEDED" in str(result)
    failed = AttackResult(attack_name="x", ait_step=AITStep.DOWNLOAD,
                          succeeded=False)
    assert "FAILED" in str(failed)


def test_defense_report_flags():
    report = DefenseReport(defense_name="d")
    assert not report.detected and not report.prevented
    report.alarms.append("a")
    assert report.detected
    report.blocked_operations.append("b")
    assert report.prevented


# -- error hierarchy ----------------------------------------------------------------


def test_everything_derives_from_repro_error():
    for exc_type in (
        errors.SimulationError, errors.DeadlockError, errors.FileNotFound,
        errors.FileExists, errors.NotADirectory, errors.IsADirectory,
        errors.AccessDenied, errors.StorageFull, errors.SymlinkLoop,
        errors.SecurityException, errors.PermissionUnknown,
        errors.InstallError, errors.InstallVerificationError,
        errors.InstallSignatureError, errors.InstallStorageError,
        errors.InstallAbortedError, errors.PackageNotFound,
        errors.DownloadError, errors.DownloadDestinationError,
        errors.ActivityNotFound, errors.CorpusError, errors.SmaliParseError,
    ):
        assert issubclass(exc_type, errors.ReproError), exc_type


def test_filesystem_errors_carry_path():
    error = errors.FileNotFound("/some/path")
    assert error.path == "/some/path"
    assert "/some/path" in str(error)


def test_install_errors_have_failure_codes():
    assert errors.InstallVerificationError.failure_code == (
        "INSTALL_FAILED_VERIFICATION_FAILURE"
    )
    assert errors.InstallStorageError.failure_code == (
        "INSTALL_FAILED_INSUFFICIENT_STORAGE"
    )
    assert errors.InstallSignatureError.failure_code == (
        "INSTALL_FAILED_UPDATE_INCOMPATIBLE"
    )


def test_filesystem_error_subtypes_are_catchable_as_group():
    with pytest.raises(errors.FilesystemError):
        raise errors.AccessDenied("/p")
    with pytest.raises(errors.InstallError):
        raise errors.InstallAbortedError("user said no")
