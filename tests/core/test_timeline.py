"""Tests for the attack-timeline recorder."""

from repro.attacks.base import fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.core.timeline import Timeline
from repro.installers import AmazonInstaller, DTIgniteInstaller

TARGET = "com.victim.app"


def test_records_fs_and_pms_events():
    scenario = Scenario.build(installer=DTIgniteInstaller)
    timeline = Timeline(scenario.system).start()
    scenario.publish_app(TARGET)
    scenario.run_install(TARGET)
    sources = {entry.source for entry in timeline.entries}
    assert "fs" in sources
    assert "pms" in sources


def test_absorb_trace_adds_step_markers():
    scenario = Scenario.build(installer=DTIgniteInstaller)
    timeline = Timeline(scenario.system).start()
    scenario.publish_app(TARGET)
    outcome = scenario.run_install(TARGET)
    timeline.absorb_trace(outcome.trace)
    rendered = timeline.render(sources={"ait"})
    assert "step 2 (APK Download) begins" in rendered
    assert "step 4 (APK Install) ends" in rendered


def test_notes_stamped_at_sim_time():
    scenario = Scenario.build(installer=DTIgniteInstaller)
    timeline = Timeline(scenario.system).start()
    scenario.system.kernel.clock.advance_to(5_000_000)
    timeline.note("attacker armed")
    assert timeline.entries[-1].time_ns == 5_000_000
    assert "attacker armed" in timeline.render()


def test_render_is_time_sorted_and_limitable():
    scenario = Scenario.build(installer=AmazonInstaller)
    timeline = Timeline(scenario.system).start()
    scenario.publish_app(TARGET)
    scenario.run_install(TARGET)
    lines = timeline.render().splitlines()
    times = [float(line.split("ms")[0]) for line in lines]
    assert times == sorted(times)
    assert len(timeline.render(limit=5).splitlines()) == 5


def test_hijack_transcript_shows_the_swap():
    scenario = Scenario.build(
        installer=DTIgniteInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(DTIgniteInstaller)
        ),
    )
    timeline = Timeline(scenario.system).start()
    scenario.publish_app(TARGET)
    outcome = scenario.run_install(TARGET)
    assert outcome.hijacked
    staged_events = timeline.events_for("/sdcard/DTIgnite/com.victim.app.apk")
    # Two CLOSE_WRITEs on the staged file: the download and the swap.
    close_writes = [
        entry for entry in staged_events if "CLOSE_WRITE" in entry.text
    ]
    assert len(close_writes) == 2


def test_start_is_idempotent():
    scenario = Scenario.build(installer=DTIgniteInstaller)
    timeline = Timeline(scenario.system).start().start()
    scenario.publish_app(TARGET)
    scenario.run_install(TARGET)
    install_broadcasts = [
        entry for entry in timeline.entries
        if entry.source == "pms" and "PACKAGE_ADDED" in entry.text
    ]
    # One broadcast, recorded once (not double-subscribed).
    assert len(install_broadcasts) == 1
