"""Tests for scenario composition."""

import pytest

from repro.errors import ReproError
from repro.attacks.base import MaliciousApp, fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.installers import AmazonInstaller, DTIgniteInstaller, GooglePlayInstaller


def test_installer_provisioned_as_system_app():
    scenario = Scenario.build(installer=DTIgniteInstaller)
    package = scenario.system.pms.require_package("com.dti.ignite")
    assert package.is_system
    assert package.permissions.has("android.permission.INSTALL_PACKAGES")


def test_non_silent_installer_lacks_install_packages():
    from repro.installers import NaiveSdcardInstaller
    scenario = Scenario.build(installer=NaiveSdcardInstaller)
    package = scenario.system.pms.require_package(
        NaiveSdcardInstaller.profile.package
    )
    assert not package.permissions.has("android.permission.INSTALL_PACKAGES")


def test_attacker_provisioned_with_storage_only():
    scenario = Scenario.build(installer=AmazonInstaller, attacker=MaliciousApp)
    caller = scenario.attacker.caller
    assert caller.has_permission("android.permission.WRITE_EXTERNAL_STORAGE")
    assert not caller.has_permission("android.permission.INSTALL_PACKAGES")


def test_unknown_defense_rejected():
    with pytest.raises(ReproError):
        Scenario.build(installer=AmazonInstaller, defenses=("magic-shield",))


def test_run_install_requires_published_app():
    scenario = Scenario.build(installer=AmazonInstaller)
    with pytest.raises(ReproError):
        scenario.run_install("com.never.published")


def test_outcome_reports_certificates():
    scenario = Scenario.build(installer=AmazonInstaller)
    scenario.publish_app("com.app")
    outcome = scenario.run_install("com.app")
    assert outcome.genuine_certificate_owner == "legit-developer"
    assert outcome.installed_certificate_owner == "legit-developer"
    assert not outcome.hijacked


def test_outcome_elapsed_time_positive():
    scenario = Scenario.build(installer=AmazonInstaller)
    scenario.publish_app("com.app")
    outcome = scenario.run_install("com.app")
    assert outcome.elapsed_ns > 0


def test_defense_reports_collected():
    scenario = Scenario.build(
        installer=AmazonInstaller,
        defenses=("dapp", "fuse-dac", "intent-detection", "intent-origin"),
    )
    reports = scenario.defense_reports()
    assert sorted(report.defense_name for report in reports) == [
        "DAPP", "FUSE-DAC", "Intent-Detection", "Intent-Origin",
    ]
    assert not scenario.any_defense_reacted


def test_all_defenses_coexist_with_attack():
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(AmazonInstaller)
        ),
        defenses=("dapp", "fuse-dac"),
    )
    scenario.publish_app("com.app")
    outcome = scenario.run_install("com.app")
    # FUSE DAC prevents; DAPP has nothing to report beyond clean events.
    assert outcome.clean_install
    assert scenario.fuse_dac.report.prevented


def test_publish_app_with_custom_key():
    from repro.android.signing import SigningKey
    scenario = Scenario.build(installer=AmazonInstaller)
    key = SigningKey("indie", "k")
    scenario.publish_app("com.indie", key=key)
    outcome = scenario.run_install("com.indie")
    assert outcome.installed_certificate_owner == "indie"


def test_seed_changes_randomized_names():
    names = []
    for seed in (1, 2):
        scenario = Scenario.build(installer=AmazonInstaller, seed=seed)
        scenario.publish_app("com.app")
        outcome = scenario.run_install("com.app")
        from repro.core.ait import AITStep
        names.append(outcome.trace.step_for(AITStep.DOWNLOAD).detail["path"])
    assert names[0] != names[1]


def test_same_seed_reproduces_exactly():
    results = []
    for _ in range(2):
        scenario = Scenario.build(
            installer=AmazonInstaller,
            attacker_factory=lambda s: FileObserverHijacker(
                fingerprint_for(AmazonInstaller)
            ),
            seed=99,
        )
        scenario.publish_app("com.app")
        outcome = scenario.run_install("com.app")
        results.append((outcome.hijacked, outcome.elapsed_ns,
                        scenario.attacker.swaps))
    assert results[0] == results[1]
