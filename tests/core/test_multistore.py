"""Tests for multi-store scenarios: several installers on one device."""

import pytest

from repro.attacks.base import StoreFingerprint, fingerprint_for
from repro.attacks.toctou import FileObserverHijacker
from repro.core.scenario import Scenario
from repro.installers import (
    AmazonInstaller,
    DTIgniteInstaller,
    XiaomiInstaller,
)


def test_two_stores_coexist():
    scenario = Scenario.build(installer=AmazonInstaller)
    dtignite = scenario.attach_installer(DTIgniteInstaller)
    scenario.publish_app("com.from.amazon", label="A")
    scenario.publish_app("com.from.carrier", label="B", installer=dtignite)
    first = scenario.run_install("com.from.amazon")
    second = scenario.run_install("com.from.carrier", installer=dtignite)
    assert first.clean_install and second.clean_install
    assert scenario.system.pms.require_package(
        "com.from.amazon"
    ).installer_package == "com.amazon.venezia"
    assert scenario.system.pms.require_package(
        "com.from.carrier"
    ).installer_package == "com.dti.ignite"


def test_both_stores_hold_install_packages():
    scenario = Scenario.build(installer=AmazonInstaller)
    scenario.attach_installer(DTIgniteInstaller)
    for package in ("com.amazon.venezia", "com.dti.ignite"):
        assert scenario.system.pms.check_permission(
            "android.permission.INSTALL_PACKAGES", package
        )


def test_one_attacker_covers_multiple_stores():
    """An attacker watching both staging dirs hijacks either AIT."""
    scenario = Scenario.build(
        installer=AmazonInstaller,
        attacker_factory=lambda s: FileObserverHijacker(
            fingerprint_for(AmazonInstaller)
        ),
    )
    dtignite = scenario.attach_installer(DTIgniteInstaller)
    second_attacker = FileObserverHijacker(
        fingerprint_for(DTIgniteInstaller), package="com.fun.flashlight"
    )
    second_attacker.system = scenario.system  # same process, second watcher
    second_attacker.arm()

    scenario.publish_app("com.via.amazon")
    scenario.publish_app("com.via.carrier", installer=dtignite)
    amazon_outcome = scenario.run_install("com.via.amazon")
    carrier_outcome = scenario.run_install("com.via.carrier",
                                           installer=dtignite,
                                           arm_attacker=False)
    assert amazon_outcome.hijacked
    assert carrier_outcome.hijacked


def test_outcome_trace_belongs_to_the_right_store():
    scenario = Scenario.build(installer=AmazonInstaller)
    xiaomi = scenario.attach_installer(XiaomiInstaller)
    scenario.publish_app("com.a")
    scenario.publish_app("com.b", installer=xiaomi)
    outcome_a = scenario.run_install("com.a")
    outcome_b = scenario.run_install("com.b", installer=xiaomi)
    assert outcome_a.trace.installer_package == "com.amazon.venezia"
    assert outcome_b.trace.installer_package == "com.xiaomi.market"


def test_extra_installers_tracked():
    scenario = Scenario.build(installer=AmazonInstaller)
    extra = scenario.attach_installer(DTIgniteInstaller)
    assert scenario.extra_installers == [extra]
    assert scenario.installer.package == "com.amazon.venezia"
