"""Tests for the AIT model and transaction traces."""

from repro.core.ait import AITStep, StepTrace, TransactionTrace


def test_four_steps_numbered_like_figure1():
    assert AITStep.INVOCATION.value == 1
    assert AITStep.DOWNLOAD.value == 2
    assert AITStep.TRIGGER.value == 3
    assert AITStep.INSTALL.value == 4


def test_step_titles_match_paper():
    assert AITStep.INVOCATION.title == "AIT Invocation"
    assert AITStep.DOWNLOAD.title == "APK Download"
    assert AITStep.TRIGGER.title == "Installation Trigger"
    assert AITStep.INSTALL.title == "APK Install"


def test_begin_records_step():
    trace = TransactionTrace("com.store", "com.app")
    entry = trace.begin(AITStep.DOWNLOAD, 100, mechanism="dm", path="/x")
    assert entry.step is AITStep.DOWNLOAD
    assert entry.detail == {"path": "/x"}
    assert trace.steps == [entry]


def test_duration_requires_completion():
    entry = StepTrace(step=AITStep.DOWNLOAD, start_ns=10)
    assert entry.duration_ns == -1
    entry.end_ns = 50
    assert entry.duration_ns == 40


def test_step_for_returns_latest():
    trace = TransactionTrace("com.store", "com.app")
    trace.begin(AITStep.DOWNLOAD, 0, mechanism="first")
    trace.begin(AITStep.DOWNLOAD, 10, mechanism="retry")
    assert trace.step_for(AITStep.DOWNLOAD).mechanism == "retry"
    assert trace.step_for(AITStep.INSTALL) is None


def test_mechanisms_map():
    trace = TransactionTrace("com.store", "com.app")
    trace.begin(AITStep.DOWNLOAD, 0, mechanism="dm")
    trace.begin(AITStep.INSTALL, 10, mechanism="pms")
    assert trace.mechanisms() == {AITStep.DOWNLOAD: "dm", AITStep.INSTALL: "pms"}


def test_describe_renders_all_lines():
    trace = TransactionTrace("com.store", "com.app")
    entry = trace.begin(AITStep.DOWNLOAD, 0, mechanism="dm")
    entry.end_ns = 2_000_000
    trace.completed = True
    text = trace.describe()
    assert "APK Download" in text
    assert "2.00 ms" in text
    assert "completed" in text


def test_describe_failed_transaction():
    trace = TransactionTrace("com.store", "com.app")
    trace.begin(AITStep.DOWNLOAD, 0)
    trace.error = "hash mismatch"
    text = trace.describe()
    assert "failed: hash mismatch" in text
    assert "aborted" in text
