"""Kill/resume determinism: the checkpoint journal's acceptance tests.

The contract: a campaign killed partway through and resumed from its
shard journal produces **bit-identical** merged stats and
**byte-identical** trace JSONL to an uninterrupted run of the same
seed.  Proven here three ways:

- against the committed goldens (``tests/engine/golden/``), so resume
  output is pinned to the exact bytes recorded before the serve
  subsystem existed;
- on the 2000-install seed-7 reference fleet (the bench baseline),
  interrupted at several different points;
- through the daemon's recovery path (journal replay + re-enqueue).
"""

import json
import pathlib

import pytest

from repro.engine import CampaignSpec, FleetExecutor, NullProgress
from repro.obs import write_trace_jsonl
from repro.serve.checkpoint import ShardJournal

GOLDEN_DIR = (pathlib.Path(__file__).parent.parent
              / "engine" / "golden")
GOLDEN_TRACE = GOLDEN_DIR / "fleet_s7x4.jsonl"
GOLDEN_METRICS = GOLDEN_DIR / "fleet_s7x4_metrics.json"

#: The bench reference fleet (tools/bench.py) — 2000 installs, seed 7.
REFERENCE_SPEC = CampaignSpec(installs=2000, seed=7)
REFERENCE_SHARDS = 4


class _KillAfter:
    """Checkpoint wrapper that dies after recording ``after`` shards.

    Deterministic stand-in for ``kill -9`` mid-campaign: the journal
    holds exactly ``after`` completed shards, the run never finishes.
    """

    def __init__(self, journal: ShardJournal, after: int) -> None:
        self.journal = journal
        self.after = after
        self.recorded = 0

    def restore(self, spec, shard_count):
        return self.journal.restore(spec, shard_count)

    def record(self, result) -> None:
        self.journal.record(result)
        self.recorded += 1
        if self.recorded >= self.after:
            raise KeyboardInterrupt("simulated kill")


def _run(spec, shards, checkpoint=None):
    return FleetExecutor(backend="serial", progress=NullProgress()).run(
        spec, shards=shards, checkpoint=checkpoint)


def _kill_then_resume(spec, shards, kill_after, tmp_path):
    """One interrupted run + one resumed run; returns the final report."""
    journal_dir = tmp_path / f"journal-{kill_after}"
    with pytest.raises(KeyboardInterrupt):
        _run(spec, shards,
             checkpoint=_KillAfter(ShardJournal(journal_dir, spec, shards),
                                   kill_after))
    journal = ShardJournal(journal_dir, spec, shards)
    assert journal.completed_indices() != []
    return _run(spec, shards, checkpoint=journal)


def test_resumed_golden_fleet_is_byte_identical(tmp_path):
    spec = CampaignSpec(installs=200, seed=7, observe=True)
    report = _kill_then_resume(spec, 4, kill_after=2, tmp_path=tmp_path)
    assert report.counters["restored"] == 2
    current = tmp_path / "resumed.jsonl"
    write_trace_jsonl(str(current), report.trace_records())
    assert current.read_bytes() == GOLDEN_TRACE.read_bytes()
    rendered = json.dumps(report.metrics, indent=2, sort_keys=True) + "\n"
    assert rendered == GOLDEN_METRICS.read_text(encoding="utf-8")


@pytest.mark.parametrize("kill_after", [1, 3])
def test_reference_fleet_resumes_bit_identically(tmp_path, kill_after):
    baseline = _run(REFERENCE_SPEC, REFERENCE_SHARDS)
    resumed = _kill_then_resume(REFERENCE_SPEC, REFERENCE_SHARDS,
                                kill_after=kill_after, tmp_path=tmp_path)
    assert resumed.counters["restored"] == kill_after
    assert (resumed.stats.counter_tuple()
            == baseline.stats.counter_tuple())
    assert len(resumed.shards) == len(baseline.shards)
    for ours, theirs in zip(resumed.shards, baseline.shards):
        assert ours.stats.counter_tuple() == theirs.stats.counter_tuple()


def test_a_completed_journal_resumes_without_rerunning(tmp_path):
    spec = CampaignSpec(installs=100, seed=7)
    journal = ShardJournal(tmp_path / "full", spec, 4)
    baseline = _run(spec, 4, checkpoint=journal)
    resumed = _run(spec, 4, checkpoint=ShardJournal(tmp_path / "full",
                                                    spec, 4))
    assert resumed.counters["restored"] == 4
    assert resumed.stats.counter_tuple() == baseline.stats.counter_tuple()


def test_daemon_recovery_resumes_a_killed_job(tmp_path):
    """A daemon killed mid-job re-enqueues it and resumes the shards."""
    from repro.serve.daemon import CampaignService
    from repro.serve.protocol import (
        parse_submission,
        stats_counters,
        submit_campaign_request,
    )

    spec = CampaignSpec(installs=120, seed=7, observe=True)
    first = CampaignService(tmp_path / "state", workers=1,
                            backend="serial")
    job = first.submit(parse_submission(
        submit_campaign_request(spec, shards=4, label="victim")))
    claimed = first.queue.pop()  # scheduler claimed it...
    # ...and the daemon dies mid-run: two shards are already journaled.
    journal = ShardJournal(first.store.checkpoint_dir(claimed.job_id),
                           spec, 4)
    partial = _run(spec, 4)
    for shard in partial.shards[:2]:
        journal.record(shard)
    first.close()

    second = CampaignService(tmp_path / "state", workers=1,
                             backend="serial")
    try:
        assert second.recover() == 1
        revived = second.try_pop()
        assert revived.job_id == job.job_id
        assert revived.spec == spec
        second.execute(revived)
        assert revived.state == "done"
        assert revived.counters["restored"] == 2
        baseline = _run(spec, 4)
        assert revived.summary == stats_counters(baseline.stats)
        # the archived trace matches an uninterrupted run's, byte for byte
        archived = second.store.trace_path(revived.job_id)
        fresh = tmp_path / "fresh.jsonl"
        write_trace_jsonl(str(fresh), baseline.trace_records())
        assert archived.read_bytes() == fresh.read_bytes()
    finally:
        second.close()
