"""Ops surface of the campaign service: metrics, flight, health extras.

The scheduling/recovery contract is covered by ``test_daemon.py`` and
``test_resume.py``; here we pin the wall-clock plane the daemon grew
on top of it — the Prometheus ``metrics`` op, the ``flight`` recorder
op, per-job telemetry rollups, and the extended ``health`` payload.
"""

import asyncio
import socket as socket_module
import threading

import pytest

from repro.engine.spec import CampaignSpec
from repro.errors import ReproError
from repro.obs.runtime import validate_exposition
from repro.serve.client import ServeClient
from repro.serve.daemon import CampaignService, ServeDaemon
from repro.serve.protocol import parse_submission, submit_campaign_request

needs_unix_sockets = pytest.mark.skipif(
    not hasattr(socket_module, "AF_UNIX"),
    reason="unix sockets unavailable on this platform")


@pytest.fixture
def live_daemon(tmp_path):
    """A serving daemon on a unix socket, torn down after the test."""
    service = CampaignService(tmp_path / "state", workers=2,
                              backend="serial", seed=5)
    service.recover()
    daemon = ServeDaemon(service, socket_path=tmp_path / "serve.sock")
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.serve_forever(ready)),
        daemon=True)
    thread.start()
    assert ready.wait(10)
    client = ServeClient(socket_path=daemon.socket_path)
    client.wait_until_ready()
    yield client, daemon, service
    try:
        client.shutdown()
    except ReproError:
        pass
    thread.join(15)
    assert not thread.is_alive()


def run_one_job(service, installs=20, seed=7):
    job = service.submit(parse_submission(submit_campaign_request(
        CampaignSpec(installs=installs, seed=seed))))
    service.execute(service.try_pop())
    return job


# -- metrics op -------------------------------------------------------------

@needs_unix_sockets
def test_metrics_op_returns_valid_exposition(live_daemon):
    client, _, _ = live_daemon
    job = client.submit_campaign(CampaignSpec(installs=20, seed=7))
    client.wait(job["job_id"], timeout=60)
    text = client.metrics()
    assert validate_exposition(text) > 0
    assert "repro_serve_jobs_completed_total 1" in text
    assert "repro_telemetry_cpu_seconds_total" in text
    assert "repro_serve_shard_wall_ms_bucket" in text
    assert f'job="{job["job_id"]}"' in text


def test_service_exposition_separates_service_and_job_scopes(tmp_path):
    service = CampaignService(tmp_path, workers=1, backend="serial")
    try:
        first = run_one_job(service, seed=1)
        second = run_one_job(service, seed=2)
        text = service.prometheus()
        validate_exposition(text)
        assert 'scope="service"' in text
        for job in (first, second):
            assert (f'repro_telemetry_shards_total{{job="{job.job_id}"'
                    f',scope="job"}}') in text
    finally:
        service.close()


def test_exposition_reports_current_and_peak_queue_depth(tmp_path):
    service = CampaignService(tmp_path, workers=1, backend="serial")
    try:
        run_one_job(service)
        text = service.prometheus()
        assert "repro_serve_queue_depth 0" in text       # live depth
        assert "repro_serve_queue_depth_peak 1" in text  # high-water
    finally:
        service.close()


def test_telemetry_off_service_still_exposes_counters(tmp_path):
    service = CampaignService(tmp_path, workers=1, backend="serial",
                              telemetry=False)
    try:
        job = run_one_job(service)
        assert job.telemetry is None
        text = service.prometheus()
        validate_exposition(text)
        assert "repro_serve_jobs_completed_total 1" in text
        assert "repro_telemetry_shards_total" not in text
        assert service.health()["telemetry"] is None
    finally:
        service.close()


# -- flight op --------------------------------------------------------------

@needs_unix_sockets
def test_flight_op_streams_the_job_lifecycle(live_daemon):
    client, _, _ = live_daemon
    job = client.submit_campaign(CampaignSpec(installs=20, seed=7))
    client.wait(job["job_id"], timeout=60)
    flight = client.flight()
    kinds = [event["kind"] for event in flight["events"]]
    assert kinds[0] == "recover"  # service.recover() ran at startup
    for kind in ("submit", "schedule", "start", "checkpoint", "finish"):
        assert kind in kinds, (kind, kinds)
    submit = next(e for e in flight["events"] if e["kind"] == "submit")
    assert submit["job"] == job["job_id"]
    assert flight["dropped"] == 0


def test_flight_crash_event_carries_the_error(tmp_path):
    service = CampaignService(tmp_path, workers=1, backend="serial")
    try:
        service.submit(parse_submission(submit_campaign_request(
            CampaignSpec(installs=10, seed=1))))
        claimed = service.try_pop()

        def explode(*args, **kwargs):
            raise RuntimeError("worker pool caught fire")

        service.executor.run = explode
        service.execute(claimed)
        crashes = service.flight.events("crash")
        assert len(crashes) == 1
        assert "caught fire" in crashes[0]["error"]
    finally:
        service.close()


def test_flight_file_feeds_the_restarted_service(tmp_path):
    first = CampaignService(tmp_path, workers=1, backend="serial")
    try:
        run_one_job(first)
    finally:
        first.close()
    second = CampaignService(tmp_path, workers=1, backend="serial")
    try:
        second.recover()
        kinds = [e["kind"] for e in second.flight.events()]
        assert "finish" in kinds          # pre-restart history survived
        assert kinds[-1] == "recover"     # and the restart stamped its own
    finally:
        second.close()


# -- health extensions ------------------------------------------------------

def test_health_reports_states_pids_and_telemetry(tmp_path):
    service = CampaignService(tmp_path, workers=1, backend="serial")
    try:
        run_one_job(service)
        service.submit(parse_submission(submit_campaign_request(
            CampaignSpec(installs=10, seed=3))))
        health = service.health()
        assert health["jobs_by_state"]["done"] == 1
        assert health["jobs_by_state"]["queued"] == 1
        assert health["worker_pids"] == {}  # serial backend: no pool
        assert health["telemetry"]["shards"] == 1
        assert health["uptime_s"] >= 0
    finally:
        service.close()


def test_job_wire_dict_carries_its_telemetry_rollup(tmp_path):
    service = CampaignService(tmp_path, workers=1, backend="serial")
    try:
        job = run_one_job(service)
        wire = job.to_dict()
        assert wire["telemetry"]["shards"] == 1
        assert wire["telemetry"]["wall_ns"] > 0
        assert wire["telemetry"]["queue_wait_s"] >= 0.0
        # the stored result carries the same rollup for offline renders
        import json

        result = json.loads(service.store.result_path(job.job_id)
                            .read_text(encoding="utf-8"))
        assert result["telemetry"]["shards"] == 1
    finally:
        service.close()
