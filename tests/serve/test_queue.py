"""Job queue: deterministic ordering, seeds, cancellation, recovery."""

import pytest

from repro.engine.spec import CampaignSpec
from repro.errors import ReproError
from repro.serve.queue import Job, JobQueue


def _spec(installs=10, seed=1):
    return CampaignSpec(installs=installs, seed=seed)


def test_fifo_within_a_priority_level():
    queue = JobQueue()
    first = queue.submit(_spec(seed=1))
    second = queue.submit(_spec(seed=2))
    assert queue.pop() is first
    assert queue.pop() is second
    assert queue.pop() is None


def test_higher_priority_jumps_the_line():
    queue = JobQueue()
    routine = queue.submit(_spec(seed=1), priority=0)
    urgent = queue.submit(_spec(seed=2), priority=5)
    assert queue.pop() is urgent
    assert queue.pop() is routine


def test_job_ids_and_states_follow_the_lifecycle():
    queue = JobQueue()
    job = queue.submit(_spec())
    assert job.job_id == "job-000001"
    assert job.state == "queued"
    assert not job.terminal
    popped = queue.pop()
    assert popped is job
    assert job.state == "running"


def test_derived_seeds_are_a_pure_function_of_the_service_seed():
    one = JobQueue(seed=42)
    two = JobQueue(seed=42)
    other = JobQueue(seed=43)
    jobs_one = [one.submit(_spec(), derive_seed=True) for _ in range(3)]
    jobs_two = [two.submit(_spec(), derive_seed=True) for _ in range(3)]
    seeds = [job.spec.seed for job in jobs_one]
    assert seeds == [job.spec.seed for job in jobs_two]
    assert len(set(seeds)) == 3  # distinct per job
    assert other.submit(_spec(), derive_seed=True).spec.seed != seeds[0]
    # pure function, recomputable for any sequence number
    assert one.derive_seed(1) == seeds[0]


def test_cancel_is_for_queued_jobs_only():
    queue = JobQueue()
    job = queue.submit(_spec())
    running = queue.submit(_spec(seed=2))
    cancelled = queue.cancel(job.job_id)
    assert cancelled.state == "cancelled"
    assert cancelled.terminal
    popped = queue.pop()  # lazily skips the cancelled entry
    assert popped is running
    with pytest.raises(ReproError, match="only queued"):
        queue.cancel(running.job_id)
    with pytest.raises(ReproError, match="unknown job"):
        queue.cancel("job-999999")


def test_recovery_submit_reuses_journaled_identity():
    queue = JobQueue(seed=9)
    job = queue.submit(_spec(), job_id="job-000007", seq=7, priority=3)
    assert job.job_id == "job-000007"
    assert job.seq == 7
    # the sequence counter advances past recovered entries
    fresh = queue.submit(_spec(seed=2))
    assert fresh.seq == 8
    with pytest.raises(ReproError, match="duplicate job id"):
        queue.submit(_spec(), job_id="job-000007")


def test_register_finished_adopts_terminal_jobs_only():
    queue = JobQueue()
    done = Job(job_id="job-000003", spec=_spec(), seq=3, state="done")
    queue.register_finished(done)
    assert queue.get("job-000003") is done
    assert queue.pop() is None  # terminal jobs never reach the heap
    live = Job(job_id="job-000004", spec=_spec(), seq=4)
    with pytest.raises(ReproError, match="terminal"):
        queue.register_finished(live)


def test_depth_running_and_ordered_views():
    queue = JobQueue()
    a = queue.submit(_spec(seed=1), priority=1)
    b = queue.submit(_spec(seed=2))
    assert queue.depth() == 2
    assert queue.running() is None
    popped = queue.pop()
    assert popped is a
    assert queue.depth() == 1
    assert queue.running() is a
    assert queue.ordered() == [a, b]  # submission order, not priority


def test_wire_dict_is_json_clean():
    import json

    queue = JobQueue()
    job = queue.submit(_spec(), label="nightly")
    payload = json.loads(json.dumps(job.to_dict()))
    assert payload["job_id"] == job.job_id
    assert payload["label"] == "nightly"
    assert payload["spec"]["installs"] == 10
