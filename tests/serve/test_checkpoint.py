"""Shard journal and job store: durability, verification, refusal."""

import json

import pytest

from repro.engine import FleetExecutor, NullProgress
from repro.engine.spec import CampaignSpec
from repro.errors import ReproError
from repro.serve.checkpoint import JobStore, ShardJournal, job_key


def _spec(installs=20, seed=7):
    return CampaignSpec(installs=installs, seed=seed)


def _shard_results(spec, shards=4):
    report = FleetExecutor(backend="serial",
                           progress=NullProgress()).run(spec, shards=shards)
    return report.shards


def test_record_then_restore_round_trips_results(tmp_path):
    spec = _spec()
    results = _shard_results(spec)
    journal = ShardJournal(tmp_path, spec, 4)
    for result in results[:2]:
        journal.record(result)
    assert journal.completed_indices() == [0, 1]
    restored = ShardJournal(tmp_path, spec, 4).restore(spec, 4)
    assert sorted(restored) == [0, 1]
    for index in (0, 1):
        assert (restored[index].stats.counter_tuple()
                == results[index].stats.counter_tuple())
        assert restored[index].start == results[index].start
        assert restored[index].stop == results[index].stop


def test_restore_of_an_empty_directory_is_empty(tmp_path):
    spec = _spec()
    assert ShardJournal(tmp_path, spec, 4).restore(spec, 4) == {}


def test_corrupt_payload_is_dropped_not_merged(tmp_path):
    spec = _spec()
    results = _shard_results(spec)
    journal = ShardJournal(tmp_path, spec, 4)
    journal.record(results[0])
    journal.record(results[1])
    shard_file = next(tmp_path.glob("shard-00000-*.bin"))
    shard_file.write_bytes(b"garbage")  # bit rot on shard 0
    restored = ShardJournal(tmp_path, spec, 4).restore(spec, 4)
    assert sorted(restored) == [1]  # shard 0 re-runs, never merges garbage


def test_missing_payload_is_dropped_not_merged(tmp_path):
    spec = _spec()
    results = _shard_results(spec)
    journal = ShardJournal(tmp_path, spec, 4)
    journal.record(results[0])
    next(tmp_path.glob("shard-00000-*.bin")).unlink()
    assert ShardJournal(tmp_path, spec, 4).restore(spec, 4) == {}


def test_journal_refuses_a_different_campaign(tmp_path):
    spec = _spec()
    journal = ShardJournal(tmp_path, spec, 4)
    journal.record(_shard_results(spec)[0])
    other = _spec(seed=8)
    with pytest.raises(ReproError, match="different campaign"):
        ShardJournal(tmp_path, other, 4)._read_manifest()
    with pytest.raises(ReproError, match="different campaign"):
        journal.restore(other, 4)
    # a different shard layout is a different campaign too
    assert job_key(spec, 4) != job_key(spec, 8)


def test_journal_refuses_a_future_version(tmp_path):
    spec = _spec()
    journal = ShardJournal(tmp_path, spec, 4)
    journal.record(_shard_results(spec)[0])
    manifest_path = tmp_path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["version"] = 999
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ReproError, match="journal version"):
        ShardJournal(tmp_path, spec, 4).restore(spec, 4)


def test_record_validates_the_shard_index(tmp_path):
    spec = _spec()
    result = _shard_results(spec)[3]
    journal = ShardJournal(tmp_path, spec, 2)  # only indices 0..1 fit
    with pytest.raises(ReproError, match="outside the journal"):
        journal.record(result)
    with pytest.raises(ReproError, match="shard count"):
        ShardJournal(tmp_path, spec, 0)


def test_job_store_layout_and_result_round_trip(tmp_path):
    store = JobStore(tmp_path / "state")
    assert store.journal_path.name == "jobs.jsonl"
    assert store.default_socket_path().name == "serve.sock"
    payload = {"job_id": "job-000001", "state": "done"}
    store.write_result("job-000001", payload)
    assert store.read_result("job-000001") == payload
    assert store.read_result("job-000002") is None
    for bad in ("", "../escape", ".hidden", "a/b"):
        with pytest.raises(ReproError, match="invalid job id"):
            store.job_dir(bad)


def test_job_journal_survives_a_torn_final_line(tmp_path):
    store = JobStore(tmp_path)
    store.append_journal({"event": "submit", "job_id": "job-000001"})
    store.append_journal({"event": "end", "job_id": "job-000001"})
    with open(store.journal_path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "sub')  # killed mid-append
    records = store.read_journal()
    assert [r["event"] for r in records] == ["submit", "end"]
