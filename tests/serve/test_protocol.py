"""Wire protocol: canonical encoding, versioning, submission lowering."""

import json

import pytest

from repro.engine.spec import CampaignSpec
from repro.errors import ReproError
from repro.fuzz.gen import generate_case
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_message,
    decode_request,
    encode_message,
    job_request,
    parse_submission,
    plain_request,
    stats_counters,
    submit_campaign_request,
    submit_fuzz_request,
)


def test_encode_decode_round_trip_is_canonical():
    message = plain_request("health")
    wire = encode_message(message)
    assert wire.endswith(b"\n")
    assert decode_message(wire) == message
    # canonical: key order never varies with construction order
    assert encode_message({"v": PROTOCOL_VERSION, "op": "health"}) == wire


def test_version_mismatch_is_refused_up_front():
    stale = json.dumps({"v": PROTOCOL_VERSION + 1, "op": "health"})
    with pytest.raises(ReproError, match="version mismatch"):
        decode_message(stale)
    with pytest.raises(ReproError, match="version mismatch"):
        decode_message(json.dumps({"op": "health"}))  # no version at all


def test_malformed_lines_are_refused():
    with pytest.raises(ReproError, match="empty"):
        decode_message("   ")
    with pytest.raises(ReproError, match="invalid protocol JSON"):
        decode_message("{nope")
    with pytest.raises(ReproError, match="must be an object"):
        decode_message("[1,2]")


def test_unknown_operation_is_refused():
    line = encode_message({"v": PROTOCOL_VERSION, "op": "explode"})
    with pytest.raises(ReproError, match="unknown operation"):
        decode_request(line)


def test_campaign_submission_round_trips_the_spec():
    spec = CampaignSpec(installs=50, seed=11, attack="fileobserver",
                        defenses=("fuse-dac",), observe=True)
    message = submit_campaign_request(spec, shards=3, priority=2,
                                      label="grid")
    submission = parse_submission(decode_request(encode_message(message)))
    assert submission.kind == "campaign"
    assert submission.spec == spec
    assert submission.shards == 3
    assert submission.priority == 2
    assert submission.label == "grid"
    assert submission.derive_seed is False


def test_derive_seed_nulls_the_seed_on_the_wire():
    spec = CampaignSpec(installs=10, seed=5)
    message = submit_campaign_request(spec, derive_seed=True)
    assert message["spec"]["seed"] is None
    submission = parse_submission(message)
    assert submission.derive_seed is True
    # the placeholder seed is the spec default until the queue assigns one
    assert submission.spec == CampaignSpec(installs=10)


def test_fuzz_submission_lowers_to_an_observed_campaign():
    case = generate_case(99, 0)
    submission = parse_submission(submit_fuzz_request(case, label="f0"))
    assert submission.kind == "fuzz"
    assert submission.shards == case.shards
    assert submission.spec.observe is True
    assert submission.spec.seed == case.campaign_spec(observe=True).seed


def test_submission_validation_rejects_bad_fields():
    spec = CampaignSpec(installs=10)
    good = submit_campaign_request(spec)
    for field, value in (("priority", "high"), ("priority", True),
                         ("label", 7), ("shards", 0), ("shards", "4"),
                         ("kind", "mystery")):
        bad = dict(good)
        bad[field] = value
        with pytest.raises(ReproError):
            parse_submission(bad)
    with pytest.raises(ReproError, match="missing its 'spec'"):
        parse_submission({"v": PROTOCOL_VERSION, "op": "submit",
                          "kind": "campaign"})
    with pytest.raises(ReproError, match="missing its 'case'"):
        parse_submission({"v": PROTOCOL_VERSION, "op": "submit",
                          "kind": "fuzz"})


def test_campaign_submission_revalidates_the_spec():
    message = submit_campaign_request(CampaignSpec(installs=10))
    message["spec"]["installer"] = "not-a-real-installer"
    with pytest.raises(ReproError):
        parse_submission(message)


def test_job_request_carries_the_job_id():
    message = job_request("status", "job-000042")
    assert decode_request(encode_message(message))["job"] == "job-000042"


def test_stats_counters_covers_every_counter_field():
    from repro.core.campaign import CampaignStats

    stats = CampaignStats()
    counters = stats_counters(stats)
    assert tuple(counters) == CampaignStats.COUNTER_FIELDS
    assert set(counters.values()) == {0}
