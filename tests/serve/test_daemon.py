"""Daemon + client integration over a real unix socket."""

import asyncio
import socket as socket_module
import threading

import pytest

from repro.engine.spec import CampaignSpec
from repro.errors import ReproError
from repro.fuzz.gen import generate_case
from repro.serve.client import ServeClient
from repro.serve.daemon import CampaignService, ServeDaemon
from repro.serve.protocol import (
    parse_submission,
    submit_campaign_request,
)

needs_unix_sockets = pytest.mark.skipif(
    not hasattr(socket_module, "AF_UNIX"),
    reason="unix sockets unavailable on this platform")


@pytest.fixture
def live_daemon(tmp_path):
    """A serving daemon on a unix socket, torn down after the test.

    Serial backend: the scheduler/protocol behaviour under test is
    identical, and the suite stays runnable where multiprocessing is
    not.
    """
    service = CampaignService(tmp_path / "state", workers=2,
                              backend="serial", seed=5)
    service.recover()
    daemon = ServeDaemon(service, socket_path=tmp_path / "serve.sock")
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.serve_forever(ready)),
        daemon=True)
    thread.start()
    assert ready.wait(10)
    client = ServeClient(socket_path=daemon.socket_path)
    client.wait_until_ready()
    yield client, daemon, service
    try:
        client.shutdown()
    except ReproError:
        pass  # test already shut it down
    thread.join(15)
    assert not thread.is_alive()


@needs_unix_sockets
def test_submit_watch_and_status_over_the_socket(live_daemon):
    client, _, _ = live_daemon
    spec = CampaignSpec(installs=40, seed=7, observe=True)
    job = client.submit_campaign(spec, shards=4, label="wire")
    assert job["job_id"] == "job-000001"
    frames = client.watch(job["job_id"], timeout=60)
    events = [frame["event"] for frame in frames]
    assert events[0] == "status"
    assert events[-1] == "done"
    assert events.count("shard") == 4
    # incremental merged stats grow monotonically to the final count
    runs = [frame["stats"]["runs"] for frame in frames
            if frame["event"] == "shard"]
    assert runs == sorted(runs)
    assert runs[-1] == 40
    final = client.status(job["job_id"])
    assert final["state"] == "done"
    assert final["summary"]["runs"] == 40
    assert final["progress"] == [4, 4]


@needs_unix_sockets
def test_watching_a_finished_job_replays_its_terminal(live_daemon):
    client, _, _ = live_daemon
    job = client.submit_campaign(CampaignSpec(installs=10, seed=7))
    client.wait(job["job_id"], timeout=60)
    frames = client.watch(job["job_id"], timeout=10)
    assert [frame["event"] for frame in frames] == ["status", "done"]


@needs_unix_sockets
def test_fuzz_submission_runs_like_any_job(live_daemon):
    client, _, service = live_daemon
    case = generate_case(99, 1)
    job = client.submit_fuzz(case, label="fuzz")
    final = client.wait(job["job_id"], timeout=60)
    assert final["kind"] == "fuzz"
    assert final["state"] == "done"
    assert final["spec"]["seed"] == case.campaign_spec(observe=True).seed
    # fuzz jobs are observed, so their trace is archived
    info = client.trace_info(job["job_id"])
    assert info["exists"] is True


@needs_unix_sockets
def test_jobs_listing_and_health_counters(live_daemon):
    client, _, _ = live_daemon
    job = client.submit_campaign(CampaignSpec(installs=10, seed=7))
    client.wait(job["job_id"], timeout=60)
    listing = client.jobs()
    assert [j["job_id"] for j in listing["jobs"]] == [job["job_id"]]
    health = listing["health"]
    assert health["ok"] is True
    assert health["jobs_submitted"] == 1
    assert health["jobs_completed"] == 1
    assert health["jobs_failed"] == 0
    assert health["queue_depth"] == 0


@needs_unix_sockets
def test_unknown_job_and_bad_requests_return_errors(live_daemon):
    client, daemon, _ = live_daemon
    with pytest.raises(ReproError, match="unknown job"):
        client.status("job-424242")
    with pytest.raises(ReproError, match="unknown job"):
        client.watch("job-424242")
    # a raw connection speaking the wrong version is refused, not hung
    import json
    import socket

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
        raw.settimeout(10)
        raw.connect(daemon.socket_path)
        raw.sendall(b'{"v": 999, "op": "health"}\n')
        reply = json.loads(raw.makefile("rb").readline())
    assert reply["ok"] is False
    assert "version mismatch" in reply["error"]


@needs_unix_sockets
def test_shutdown_finishes_the_daemon_and_removes_the_socket(tmp_path):
    import os

    service = CampaignService(tmp_path / "state", workers=1,
                              backend="serial")
    daemon = ServeDaemon(service, socket_path=tmp_path / "serve.sock")
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.serve_forever(ready)),
        daemon=True)
    thread.start()
    assert ready.wait(10)
    client = ServeClient(socket_path=daemon.socket_path)
    client.wait_until_ready()
    client.shutdown()
    thread.join(15)
    assert not thread.is_alive()
    assert not os.path.exists(daemon.socket_path)
    with pytest.raises(ReproError, match="cannot reach"):
        client.health()


def test_service_cancel_skips_the_job_and_journals_it(tmp_path):
    service = CampaignService(tmp_path, workers=1, backend="serial")
    try:
        first = service.submit(parse_submission(submit_campaign_request(
            CampaignSpec(installs=10, seed=1))))
        second = service.submit(parse_submission(submit_campaign_request(
            CampaignSpec(installs=10, seed=2))))
        cancelled = service.cancel(second.job_id)
        assert cancelled.state == "cancelled"
        assert service.try_pop() is first
        assert service.try_pop() is None
        events = [(r["event"], r.get("state"))
                  for r in service.store.read_journal()]
        assert ("end", "cancelled") in events
    finally:
        service.close()


def test_service_reports_a_failing_job_without_dying(tmp_path):
    service = CampaignService(tmp_path, workers=1, backend="serial")
    try:
        job = service.submit(parse_submission(submit_campaign_request(
            CampaignSpec(installs=10, seed=1))))
        claimed = service.try_pop()

        def explode(*args, **kwargs):
            raise RuntimeError("worker pool caught fire")

        service.executor.run = explode  # sabotage the engine
        service.execute(claimed)
        assert claimed.state == "failed"
        assert claimed.error
        health = service.health()
        assert health["jobs_failed"] == 1
        final = service.get_job(job.job_id)
        assert final.terminal
    finally:
        service.close()


def test_derived_seeds_survive_recovery(tmp_path):
    spec = CampaignSpec(installs=10)
    message = submit_campaign_request(spec, derive_seed=True)
    first = CampaignService(tmp_path, workers=1, backend="serial", seed=21)
    job = first.submit(parse_submission(message))
    derived = job.spec.seed
    assert derived != spec.seed
    first.close()
    # a recovered daemon must not re-derive (journal holds the real seed)
    second = CampaignService(tmp_path, workers=1, backend="serial",
                             seed=9999)  # different service seed on purpose
    try:
        assert second.recover() == 1
        assert second.get_job(job.job_id).spec.seed == derived
    finally:
        second.close()
