"""CLI verbs: serve/submit/jobs/watch/metrics/top, fleet --checkpoint,
trace --job, and the fleet/analyze telemetry flags."""

import threading

import pytest

from repro.__main__ import main
from repro.serve.client import ServeClient
from repro.serve.daemon import run_daemon


@pytest.fixture
def cli_daemon(tmp_path):
    """A daemon run exactly as ``repro serve`` runs it, plus its args."""
    state_dir = tmp_path / "state"
    holder = {}
    ready = threading.Event()

    def on_ready(daemon):
        holder["daemon"] = daemon
        ready.set()

    thread = threading.Thread(
        target=lambda: run_daemon(str(state_dir), workers=1,
                                  backend="serial", seed=7,
                                  on_ready=on_ready),
        daemon=True)
    thread.start()
    assert ready.wait(10)
    args = ["--state-dir", str(state_dir)]
    yield args, state_dir
    try:
        ServeClient(
            socket_path=holder["daemon"].socket_path).shutdown()
    except Exception:
        pass
    thread.join(15)
    assert not thread.is_alive()


def test_submit_wait_jobs_watch_and_trace_by_job(cli_daemon, capsys):
    args, _ = cli_daemon
    assert main(["submit", *args, "--installs", "30", "--seed", "7",
                 "--shards", "3", "--label", "cli", "--wait"]) == 0
    out = capsys.readouterr().out
    assert "submitted job-000001" in out
    assert out.count("shard") >= 3
    assert "job-000001: done" in out
    assert "runs               : 30" in out

    assert main(["jobs", *args]) == 0
    out = capsys.readouterr().out
    assert "job-000001  done" in out
    assert "[cli]" in out
    assert "completed=1" in out

    assert main(["watch", "job-000001", *args]) == 0
    out = capsys.readouterr().out
    assert "job-000001: done" in out

    # forensics straight off the job id, no file paths involved
    assert main(["trace", "summary", "--job", "job-000001", *args]) == 0
    out = capsys.readouterr().out
    assert "span" in out

    assert main(["serve", *args, "--stop"]) == 0
    assert "shutdown requested" in capsys.readouterr().out


def test_submit_without_a_daemon_fails_cleanly(tmp_path, capsys):
    code = main(["submit", "--state-dir", str(tmp_path / "nowhere"),
                 "--installs", "5"])
    assert code == 2
    assert "cannot reach the serve daemon" in capsys.readouterr().err


def test_fleet_checkpoint_requires_explicit_shards(tmp_path, capsys):
    code = main(["fleet", "--installs", "10", "--quiet",
                 "--checkpoint", str(tmp_path / "ckpt")])
    assert code == 2
    assert "explicit --shards" in capsys.readouterr().err


def test_fleet_checkpoint_resumes_from_the_journal(tmp_path, capsys):
    ckpt = str(tmp_path / "ckpt")
    base = ["fleet", "--installs", "40", "--seed", "7", "--shards", "4",
            "--backend", "serial", "--quiet", "--checkpoint", ckpt]
    assert main(base) == 0
    first = capsys.readouterr().out
    assert "resumed" not in first
    assert main(base) == 0
    second = capsys.readouterr().out
    assert "resumed    : 4 shard(s) restored from checkpoint" in second
    # the resumed run reports the same merged counts
    count_lines = lambda text: [line for line in text.splitlines()
                                if "completed  :" in line or
                                "hijacked   :" in line]
    assert count_lines(first) == count_lines(second)


def test_metrics_and_top_over_a_live_daemon(cli_daemon, capsys):
    from repro.obs.runtime import validate_exposition

    args, state_dir = cli_daemon
    assert main(["submit", *args, "--installs", "20", "--seed", "7",
                 "--shards", "2", "--wait"]) == 0
    capsys.readouterr()

    assert main(["metrics", "--serve", *args]) == 0
    captured = capsys.readouterr()
    assert validate_exposition(captured.out) > 0
    assert "repro_serve_jobs_completed_total 1" in captured.out
    assert "repro_telemetry_cpu_seconds_total" in captured.out
    assert "valid sample(s)" in captured.err

    # offline render from the stored result, no daemon round trip
    assert main(["metrics", "--job", "job-000001", *args]) == 0
    out = capsys.readouterr().out
    assert 'repro_telemetry_shards_total{job="job-000001"' in out

    assert main(["top", *args, "--iterations", "1",
                 "--interval", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "repro top — frame 1" in out
    assert "job-000001  done" in out
    assert "jobs by state: queued=0 running=0 done=1" in out

    assert main(["jobs", *args]) == 0
    out = capsys.readouterr().out
    assert "jobs by state:" in out
    assert "telemetry    : cpu" in out


def test_metrics_for_an_unknown_job_explains_itself(tmp_path, capsys):
    code = main(["metrics", "--job", "job-000009",
                 "--state-dir", str(tmp_path)])
    assert code == 2
    assert "no stored result" in capsys.readouterr().err


def test_fleet_telemetry_flag_reports_beside_the_stats(capsys):
    base = ["fleet", "--installs", "20", "--seed", "7", "--shards", "2",
            "--backend", "serial", "--quiet"]
    assert main(base) == 0
    plain = capsys.readouterr().out
    assert "telemetry" not in plain
    assert main([*base, "--telemetry"]) == 0
    probed = capsys.readouterr().out
    assert "telemetry  : cpu" in probed
    # the deterministic stats block is unchanged by the probe
    stats = lambda text: [line for line in text.splitlines()
                          if "installed  :" in line or
                          "hijacked   :" in line]
    assert stats(plain) == stats(probed)


def test_profile_shards_writes_the_hotspot_table(tmp_path, capsys):
    out_path = tmp_path / "HOTSPOTS_fleet.txt"
    assert main(["fleet", "--installs", "20", "--seed", "7",
                 "--shards", "2", "--backend", "serial", "--quiet",
                 "--profile-shards", "--profile-out",
                 str(out_path)]) == 0
    captured = capsys.readouterr()
    assert "2 shard profile(s)" in captured.err
    text = out_path.read_text(encoding="utf-8")
    assert "merged shard profile" in text
    assert "_execute_shard" in text


def test_analyze_telemetry_goes_to_stderr_only(capsys):
    base = ["analyze", "--corpus", "play", "--apps", "400",
            "--shards", "2", "--backend", "serial", "--quiet"]
    assert main(base) == 0
    plain = capsys.readouterr()
    assert main([*base, "--telemetry"]) == 0
    probed = capsys.readouterr()
    # stdout is the CI-compared deterministic surface: byte-identical
    assert plain.out == probed.out
    assert "telemetry: cpu" in probed.err


def test_trace_commands_need_a_source(capsys):
    assert main(["trace", "summary"]) == 2
    assert "--trace PATH or --job ID" in capsys.readouterr().err


def test_trace_by_unknown_job_explains_itself(tmp_path, capsys):
    code = main(["trace", "summary", "--job", "job-000009",
                 "--state-dir", str(tmp_path)])
    assert code == 2
    assert "no archived trace" in capsys.readouterr().err
