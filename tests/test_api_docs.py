"""Consistency checks for the generated API reference."""

import pathlib
import runpy

DOCS = pathlib.Path(__file__).parent.parent / "docs" / "API.md"
TOOL = pathlib.Path(__file__).parent.parent / "tools" / "gen_api_docs.py"


def test_api_doc_exists_and_covers_key_symbols():
    text = DOCS.read_text()
    for symbol in (
        "InstallerClassifier", "FileObserverHijacker", "HardenedFuseDaemon",
        "PackageManagerService", "Scenario", "ToolkitInstaller",
        "DownloadManager", "Timeline",
    ):
        assert symbol in text, f"{symbol} missing from docs/API.md"


def test_api_doc_is_in_sync_with_the_code(capsys):
    """Regenerate and compare: stale docs/API.md fails the suite.

    Fix by running ``python tools/gen_api_docs.py``.
    """
    before = DOCS.read_text()
    try:
        runpy.run_path(str(TOOL), run_name="__main__")
    except SystemExit as exit_info:
        assert exit_info.code in (0, None)
    capsys.readouterr()
    after = DOCS.read_text()
    assert before == after, "docs/API.md is stale: run tools/gen_api_docs.py"


def test_package_doctest_passes():
    """The README-style doctest in repro/__init__ must keep working."""
    import doctest

    import repro

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
