"""Property-based tests for the toolkit's storage chooser."""

from hypothesis import given, settings, strategies as st

from repro.android.storage import StorageVolume
from repro.toolkit.storage_chooser import StorageChoice, choose_storage

sizes = st.integers(min_value=1, max_value=2**34)
frees = st.integers(min_value=0, max_value=2**35)
headrooms = st.integers(min_value=0, max_value=2**30)


@given(free=frees, size=sizes, headroom=headrooms)
@settings(max_examples=80, deadline=None)
def test_decision_matches_the_arithmetic(free, size, headroom):
    volume = StorageVolume("v", capacity_bytes=free, used_bytes=0)
    decision = choose_storage(volume, size, headroom_bytes=headroom)
    fits = free >= 2 * size + headroom
    assert (decision.choice is StorageChoice.INTERNAL) == fits
    assert decision.internal_viable == fits
    assert decision.required_internal_bytes == 2 * size + headroom
    assert decision.free_internal_bytes == free


@given(free=frees, small=sizes, headroom=headrooms,
       growth=st.integers(min_value=1, max_value=2**30))
@settings(max_examples=50, deadline=None)
def test_monotonic_in_apk_size(free, small, headroom, growth):
    """If the small APK is pushed external, a bigger one is too."""
    volume = StorageVolume("v", capacity_bytes=free, used_bytes=0)
    small_choice = choose_storage(volume, small, headroom_bytes=headroom).choice
    big_choice = choose_storage(volume, small + growth,
                                headroom_bytes=headroom).choice
    if small_choice is StorageChoice.EXTERNAL:
        assert big_choice is StorageChoice.EXTERNAL


@given(free=frees, size=sizes, headroom=headrooms,
       extra=st.integers(min_value=1, max_value=2**30))
@settings(max_examples=50, deadline=None)
def test_monotonic_in_free_space(free, size, headroom, extra):
    """More free space never flips a decision from internal to external."""
    smaller = StorageVolume("v", capacity_bytes=free, used_bytes=0)
    larger = StorageVolume("v", capacity_bytes=free + extra, used_bytes=0)
    small_choice = choose_storage(smaller, size, headroom_bytes=headroom).choice
    large_choice = choose_storage(larger, size, headroom_bytes=headroom).choice
    if small_choice is StorageChoice.INTERNAL:
        assert large_choice is StorageChoice.INTERNAL
