"""Property-based tests for permission-model invariants."""

from hypothesis import given, settings, strategies as st

from repro.android.permissions import (
    PermissionDefinition,
    PermissionRegistry,
    PermissionState,
    ProtectionLevel,
)

names = st.from_regex(r"com\.[a-z]{2,8}\.permission\.[A-Z]{2,10}", fullmatch=True)
levels = st.sampled_from(list(ProtectionLevel))
groups = st.one_of(st.none(), st.sampled_from(["g1", "g2", "g3"]))


@given(definitions=st.lists(
    st.tuples(names, levels, groups, st.text(min_size=1, max_size=8)),
    min_size=1, max_size=20,
))
@settings(max_examples=50, deadline=None)
def test_first_definer_always_wins(definitions):
    registry = PermissionRegistry()
    first_seen = {}
    for name, level, group, definer in definitions:
        definition = PermissionDefinition(name, level, group, definer)
        accepted = registry.define(definition)
        if name not in first_seen:
            assert accepted
            first_seen[name] = definition
        else:
            assert not accepted
    for name, definition in first_seen.items():
        assert registry.require(name) == definition


@given(grant_order=st.permutations(
    ["android.permission.READ_EXTERNAL_STORAGE",
     "android.permission.WRITE_EXTERNAL_STORAGE"]
))
@settings(max_examples=10, deadline=None)
def test_group_autogrant_is_symmetric(grant_order):
    """Whichever STORAGE member is granted first, the other is silent."""
    registry = PermissionRegistry()
    state = PermissionState(registry)
    first, second = grant_order
    state.request(first, user_approves=True)
    assert state.request_is_silent(second)
    assert state.request(second, user_approves=False)


@given(names_list=st.lists(names, min_size=1, max_size=15, unique=True))
@settings(max_examples=40, deadline=None)
def test_hares_partition_defined_and_undefined(names_list):
    registry = PermissionRegistry()
    defined = names_list[::2]
    for name in defined:
        registry.define(PermissionDefinition(name, ProtectionLevel.NORMAL))
    hares = registry.hares(names_list)
    assert set(hares) == set(names_list) - set(defined)
    assert all(not registry.is_defined(name) for name in hares)


@given(name=names)
@settings(max_examples=30, deadline=None)
def test_grant_revoke_roundtrip(name):
    registry = PermissionRegistry()
    registry.define(PermissionDefinition(name, ProtectionLevel.NORMAL))
    state = PermissionState(registry)
    state.grant(name)
    assert state.has(name)
    state.revoke(name)
    assert not state.has(name)
    state.revoke(name)  # idempotent
    assert not state.has(name)
