"""Property-based tests for the VFS (hypothesis)."""

import posixpath

from hypothesis import given, settings, strategies as st

from repro.android.filesystem import Caller, Filesystem, NodeKind
from repro.sim.events import EventHub
from repro.sim.kernel import Kernel

APP = Caller(uid=10001, package="com.app")

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_.-", min_size=1, max_size=12
).filter(lambda s: s not in (".", "..") and not s.startswith("."))

contents = st.binary(max_size=512)


def fresh_fs():
    kernel = Kernel()
    fs = Filesystem(EventHub(kernel), kernel.clock)
    fs.makedirs("/work", APP)
    return fs


@given(name=names, data=contents)
@settings(max_examples=60, deadline=None)
def test_write_read_roundtrip(name, data):
    fs = fresh_fs()
    path = f"/work/{name}"
    fs.write_bytes(path, APP, data)
    assert fs.read_bytes(path, APP) == data
    assert fs.stat(path).size == len(data)


@given(name=names, first=contents, second=contents)
@settings(max_examples=40, deadline=None)
def test_overwrite_is_last_writer_wins(name, first, second):
    fs = fresh_fs()
    path = f"/work/{name}"
    fs.write_bytes(path, APP, first)
    fs.write_bytes(path, APP, second)
    assert fs.read_bytes(path, APP) == second


@given(segments=st.lists(names, min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_makedirs_creates_resolvable_tree(segments):
    fs = fresh_fs()
    path = "/" + "/".join(segments)
    fs.makedirs(path, APP)
    assert fs.exists(path)
    assert fs.stat(path).kind is NodeKind.DIRECTORY
    # every prefix also exists
    for index in range(1, len(segments) + 1):
        assert fs.exists("/" + "/".join(segments[:index]))


@given(src=names, dst=names, data=contents)
@settings(max_examples=40, deadline=None)
def test_rename_preserves_content(src, dst, data):
    fs = fresh_fs()
    fs.write_bytes(f"/work/{src}", APP, data)
    fs.rename(f"/work/{src}", f"/work/renamed-{dst}", APP)
    assert fs.read_bytes(f"/work/renamed-{dst}", APP) == data
    if src != f"renamed-{dst}":
        assert not fs.exists(f"/work/{src}")


@given(name=names, data=contents)
@settings(max_examples=40, deadline=None)
def test_unlink_frees_exactly_the_bytes(name, data):
    from repro.android.storage import StorageVolume
    kernel = Kernel()
    fs = Filesystem(EventHub(kernel), kernel.clock)
    volume = StorageVolume("v", 10_000)
    fs.mount("/vol", volume)
    path = f"/vol/{name}"
    fs.write_bytes(path, APP, data)
    assert volume.used_bytes == len(data)
    fs.unlink(path, APP)
    assert volume.used_bytes == 0


@given(chain_length=st.integers(min_value=1, max_value=8), data=contents)
@settings(max_examples=30, deadline=None)
def test_symlink_chains_resolve(chain_length, data):
    fs = fresh_fs()
    fs.write_bytes("/work/real", APP, data)
    previous = "/work/real"
    for index in range(chain_length):
        link = f"/work/link{index}"
        fs.symlink(link, previous, APP)
        previous = link
    assert fs.read_bytes(previous, APP) == data
    assert fs.resolve_physical(previous) == "/work/real"


@given(names_list=st.lists(names, min_size=1, max_size=10, unique=True))
@settings(max_examples=30, deadline=None)
def test_listdir_matches_created_files(names_list):
    fs = fresh_fs()
    for name in names_list:
        fs.write_bytes(f"/work/{name}", APP, b"x")
    assert fs.listdir("/work") == sorted(names_list)
