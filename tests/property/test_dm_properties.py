"""Property-based tests for Download Manager invariants."""

from hypothesis import given, settings, strategies as st

from repro.errors import DownloadDestinationError
from repro.android.apk import ApkBuilder
from repro.android.device import nexus5
from repro.android.download_manager import DownloadStatus
from repro.android.permissions import (
    READ_EXTERNAL_STORAGE,
    WRITE_EXTERNAL_STORAGE,
)
from repro.android.signing import SigningKey
from repro.android.system import AndroidSystem

names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
                max_size=10)
contents = st.binary(min_size=1, max_size=4096)


def make_system():
    system = AndroidSystem(nexus5())
    apk = (
        ApkBuilder("com.client")
        .uses_permission(WRITE_EXTERNAL_STORAGE, READ_EXTERNAL_STORAGE)
        .build(SigningKey("dev", "k"))
    )
    system.install_user_app(apk)
    return system, system.caller_for("com.client")


@given(name=names, data=contents)
@settings(max_examples=30, deadline=None)
def test_download_delivers_exact_bytes(name, data):
    system, caller = make_system()
    url = f"http://cdn/{name}"
    system.network.host(url, data)
    destination = f"/sdcard/dl-{name}.bin"
    download_id = system.dm.enqueue(caller, url, destination)
    system.run()
    record = system.dm.query(caller, download_id)
    assert record.status is DownloadStatus.SUCCESSFUL
    assert record.bytes_so_far == len(data)
    assert system.fs.read_bytes(destination, caller) == data


@given(prefix=st.sampled_from(["/data", "/data/data/com.other", "/cache2",
                               "/system", "/"]))
@settings(max_examples=10, deadline=None)
def test_non_sdcard_destinations_always_rejected(prefix):
    system, caller = make_system()
    system.network.host("http://cdn/x", b"x")
    try:
        system.dm.enqueue(caller, "http://cdn/x", f"{prefix}/file.bin")
        rejected = False
    except DownloadDestinationError:
        rejected = True
    assert rejected


@given(count=st.integers(min_value=1, max_value=8))
@settings(max_examples=15, deadline=None)
def test_download_ids_unique_and_owned(count):
    system, caller = make_system()
    system.network.host("http://cdn/x", b"payload")
    ids = [
        system.dm.enqueue(caller, "http://cdn/x", f"/sdcard/f{i}.bin")
        for i in range(count)
    ]
    system.run()
    assert len(set(ids)) == count
    for download_id in ids:
        record = system.dm.query(caller, download_id)
        assert record.requesting_package == "com.client"


@given(data=contents)
@settings(max_examples=20, deadline=None)
def test_retrieve_equals_file_content(data):
    system, caller = make_system()
    system.network.host("http://cdn/x", data)
    download_id = system.dm.enqueue(caller, "http://cdn/x", "/sdcard/x.bin")
    system.run()
    retrieved = system.run_process(system.dm.retrieve(caller, download_id))
    assert retrieved == data
