"""Property-based tests for APK serialization and repackaging."""

from hypothesis import given, settings, strategies as st

from repro.android.apk import Apk, ApkBuilder, file_is_complete, repackage
from repro.android.signing import SigningKey

KEY = SigningKey("dev", "k")
EVIL = SigningKey("evil", "k")

packages = st.from_regex(r"com\.[a-z]{2,8}\.[a-z]{2,8}", fullmatch=True)
payloads = st.binary(max_size=2048)
labels = st.text(min_size=0, max_size=30).filter(lambda s: "\x00" not in s)


@given(package=packages, payload=payloads, label=labels,
       version=st.integers(min_value=1, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_roundtrip_preserves_everything(package, payload, label, version):
    apk = (
        ApkBuilder(package).version(version).label(label).payload(payload)
        .build(KEY)
    )
    restored = Apk.from_bytes(apk.to_bytes())
    assert restored.package == package
    assert restored.version_code == version
    assert restored.manifest.label == label
    assert restored.payload == payload
    assert restored.verify_signature()


@given(package=packages, payload=payloads)
@settings(max_examples=40, deadline=None)
def test_serialized_form_is_complete_and_prefixes_are_not(package, payload):
    data = ApkBuilder(package).payload(payload).build(KEY).to_bytes()
    assert file_is_complete(data)
    assert not file_is_complete(data[: len(data) - 1])


@given(package=packages, payload=payloads, evil_payload=payloads)
@settings(max_examples=40, deadline=None)
def test_repackaging_invariants(package, payload, evil_payload):
    original = ApkBuilder(package).payload(payload).build(KEY)
    twin = repackage(original, EVIL, payload=evil_payload)
    # Invariant 1: manifest checksum identical (verification bypass).
    assert twin.manifest.checksum() == original.manifest.checksum()
    # Invariant 2: the twin is validly signed by the attacker.
    assert twin.verify_signature()
    assert twin.certificate.owner == "evil"
    # Invariant 3: file hash differs whenever the payload differs.
    if evil_payload != payload:
        assert twin.file_hash() != original.file_hash()


@given(package=packages, payload=payloads)
@settings(max_examples=40, deadline=None)
def test_hash_is_deterministic_and_content_sensitive(package, payload):
    apk1 = ApkBuilder(package).payload(payload).build(KEY)
    apk2 = ApkBuilder(package).payload(payload).build(KEY)
    assert apk1.file_hash() == apk2.file_hash()
    tweaked = ApkBuilder(package).payload(payload + b"x").build(KEY)
    assert tweaked.file_hash() != apk1.file_hash()
