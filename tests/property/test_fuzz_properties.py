"""Property-based tests for the fuzz generator, serializer, and shrinker."""

from hypothesis import given, settings, strategies as st

from repro.fuzz.gen import (
    FUZZ_ATTACKS,
    FUZZ_DEVICES,
    FUZZ_INSTALLERS,
    PERMISSION_POOL,
    FuzzCase,
    generate_case,
)
from repro.fuzz.shrink import shrink_candidates, shrink_case

seeds = st.integers(min_value=0, max_value=2**31 - 1)
indices = st.integers(min_value=0, max_value=500)

# Arbitrary hand-rolled cases, *biased toward validity* but allowed to
# land on invalid combinations — those must be filtered by validate(),
# never crash it.
hand_cases = st.builds(
    FuzzCase,
    seed=seeds,
    trials=st.integers(min_value=1, max_value=8),
    installer=st.sampled_from(FUZZ_INSTALLERS),
    attack=st.sampled_from(FUZZ_ATTACKS),
    defenses=st.lists(
        st.sampled_from(["dapp", "fuse-dac", "intent-detection",
                         "intent-origin"]),
        unique=True, max_size=4).map(tuple),
    device=st.sampled_from(FUZZ_DEVICES),
    shards=st.integers(min_value=1, max_value=4),
    base_size_bytes=st.integers(min_value=512, max_value=16384),
    max_extra_permissions=st.integers(
        min_value=0, max_value=len(PERMISSION_POOL)),
    poll_interval_ns=st.one_of(
        st.none(), st.integers(min_value=1, max_value=10**9)),
    arm_attacker=st.booleans(),
    rearm_between=st.booleans(),
    chaos=st.one_of(st.none(), st.sampled_from(
        ["crash:0", "hang:0,1", "error:1"])),
)


def _valid(case):
    try:
        case.validate()
    except Exception:
        return False
    return True


@given(fuzz_seed=seeds, index=indices)
@settings(max_examples=80, deadline=None)
def test_generated_cases_always_validate(fuzz_seed, index):
    case = generate_case(fuzz_seed, index)
    case.validate()  # must never raise: valid by construction
    assert case == generate_case(fuzz_seed, index)  # and pure


@given(fuzz_seed=seeds, index=indices)
@settings(max_examples=80, deadline=None)
def test_serialized_replay_is_bit_identical(fuzz_seed, index):
    case = generate_case(fuzz_seed, index)
    text = case.to_json()
    clone = FuzzCase.from_json(text)
    assert clone == case
    assert clone.to_json() == text
    assert clone.case_id() == case.case_id()


@given(case=hand_cases)
@settings(max_examples=80, deadline=None)
def test_hand_rolled_round_trips_preserve_equality(case):
    clone = FuzzCase.from_json(case.to_json())
    assert clone == case
    assert _valid(clone) == _valid(case)


@given(fuzz_seed=seeds, index=indices)
@settings(max_examples=60, deadline=None)
def test_shrink_candidates_of_generated_cases_are_valid(fuzz_seed, index):
    case = generate_case(fuzz_seed, index)
    for candidate in shrink_candidates(case):
        candidate.validate()  # shrinking never emits an invalid spec


@given(case=hand_cases)
@settings(max_examples=60, deadline=None)
def test_shrink_candidates_of_any_valid_case_are_valid(case):
    if not _valid(case):
        return
    for candidate in shrink_candidates(case):
        candidate.validate()


@given(case=hand_cases, data=st.data())
@settings(max_examples=40, deadline=None)
def test_shrink_result_is_valid_under_arbitrary_predicates(case, data):
    if not _valid(case):
        return
    # A random (but drawn-once) predicate: shrink must stay valid no
    # matter which candidates it decides to accept.
    verdicts = {}

    def still_fails(candidate):
        key = candidate.to_json()
        if key not in verdicts:
            verdicts[key] = data.draw(st.booleans())
        return verdicts[key]

    small = shrink_case(case, still_fails, max_steps=30)
    small.validate()
