"""Property-based tests for the bounded (lossy) watch-queue model.

Three invariants pin the loss model for *any* seeded event sequence
and any limits:

1. **Conservation** — once the kernel drains, every event offered to a
   bounded subscription is accounted for exactly once:
   ``delivered + dropped == published``.
2. **Order preservation** — coalescing and overflow only *remove*
   events; the survivors arrive in publication order (the delivered
   stream is a subsequence of the published stream).
3. **Rescan convergence** — after a ``Q_OVERFLOW`` a consumer that
   falls back to listing the directory sees the true VFS state, no
   matter which notifications were lost (the dapp-rescan premise).
"""

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.android.fileobserver import FileObserver
from repro.android.filesystem import Caller, FileEventType, Filesystem
from repro.sim.events import EventHub, QueueOverflow, WatchLimits
from repro.sim.kernel import Kernel

APP = Caller(uid=10001, package="com.app")


@dataclass(frozen=True)
class Payload:
    """Carries the duck-typed coalescing identity."""

    event_type: str
    name: str
    serial: int  # unique per publish, to check ordering


limits_strategy = st.builds(
    WatchLimits,
    max_queue_depth=st.one_of(st.none(), st.integers(min_value=1,
                                                     max_value=12)),
    drain_interval_ns=st.integers(min_value=0, max_value=50),
    coalesce=st.booleans(),
)

# Event sequences: small type/name alphabets make coalescing and
# overflow both reachable; delays interleave bursts with quiet gaps.
event_strategy = st.tuples(
    st.sampled_from(["WRITE", "CLOSE", "MOVE"]),
    st.sampled_from(["a", "b"]),
    st.integers(min_value=0, max_value=120),  # publish-time gap (ns)
)
sequence_strategy = st.lists(event_strategy, min_size=0, max_size=40)


def _run_sequence(limits, sequence):
    """Publish ``sequence`` against one bounded subscription; drain."""
    kernel = Kernel()
    hub = EventHub(kernel)
    delivered = []
    sub = hub.subscribe("t", delivered.append, limits=limits)
    serial = 0
    published = []

    def publish_all():
        nonlocal serial
        when = 0
        for event_type, name, gap in sequence:
            when += gap
            payload = Payload(event_type, name, serial)
            serial += 1
            published.append(payload)
            kernel.call_at(when, lambda p=payload: hub.publish("t", p))

    publish_all()
    kernel.run()
    return sub, published, delivered


@given(limits=limits_strategy, sequence=sequence_strategy)
@settings(max_examples=120, deadline=None)
def test_conservation_after_drain(limits, sequence):
    sub, published, delivered = _run_sequence(limits, sequence)
    if sub.limits is None:  # lossless limits normalize away
        assert limits.lossless
        assert len([p for p in delivered
                    if not isinstance(p, QueueOverflow)]) == len(published)
        return
    assert sub.pending == 0
    assert sub.delivered + sub.dropped == sub.published == len(published)
    # The handler saw exactly the delivered events plus one sentinel
    # per congestion episode.
    sentinels = [p for p in delivered if isinstance(p, QueueOverflow)]
    assert len(sentinels) == sub.overflows
    assert len(delivered) - len(sentinels) == sub.delivered


@given(limits=limits_strategy, sequence=sequence_strategy)
@settings(max_examples=120, deadline=None)
def test_loss_never_reorders_survivors(limits, sequence):
    _sub, _published, delivered = _run_sequence(limits, sequence)
    serials = [p.serial for p in delivered
               if not isinstance(p, QueueOverflow)]
    assert serials == sorted(serials)  # a subsequence: strictly rising
    assert len(serials) == len(set(serials))  # and never duplicated


@given(
    depth=st.integers(min_value=1, max_value=4),
    drain_ns=st.integers(min_value=10, max_value=200),
    writes=st.integers(min_value=1, max_value=12),
    write_gap_ns=st.integers(min_value=0, max_value=150),
    rescan_interval_ns=st.integers(min_value=20, max_value=300),
)
@settings(max_examples=60, deadline=None)
def test_rescan_after_overflow_converges_to_vfs_state(
        depth, drain_ns, writes, write_gap_ns, rescan_interval_ns):
    """Overflow-triggered periodic rescans reconstruct the true VFS.

    The dapp-rescan premise, reduced to its mechanism: a consumer that
    mirrors the directory from ``CREATE`` notifications alone, and on
    ``Q_OVERFLOW`` starts rescanning (``listdir``) on a timer chain
    that outlives the write burst, must end bit-equal to the VFS no
    matter which notifications the bounded queue dropped.
    """
    kernel = Kernel()
    hub = EventHub(kernel)
    fs = Filesystem(hub, kernel.clock)
    fs.makedirs("/watched", APP)
    observer = FileObserver(
        hub, "/watched", mask={FileEventType.CREATE,
                               FileEventType.Q_OVERFLOW},
        limits=WatchLimits(max_queue_depth=depth,
                           drain_interval_ns=drain_ns))
    last_write_ns = writes * write_gap_ns
    mirror = set()
    rescanning = [False]

    def rescan_tick():
        mirror.update(fs.listdir("/watched"))
        if kernel.clock.now_ns <= last_write_ns:
            kernel.call_later(rescan_interval_ns, rescan_tick)
        else:
            rescanning[0] = False

    def consume(event):
        if event.event_type is FileEventType.Q_OVERFLOW:
            if not rescanning[0]:
                rescanning[0] = True
                rescan_tick()  # catch up now, then keep rescanning
        else:
            mirror.add(event.name)

    observer.on_event(consume)
    observer.start_watching()
    for i in range(writes):
        kernel.call_at(i * write_gap_ns,
                       lambda i=i: fs.write_bytes(f"/watched/f{i}",
                                                  APP, b"x"))
    kernel.run()
    truth = set(fs.listdir("/watched"))
    assert mirror <= truth  # never any phantom entries
    assert mirror == truth  # notify + rescan covers every drop
