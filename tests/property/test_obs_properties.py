"""Property-based tests for the observability analysis layer.

Two invariants the analyzer leans on:

- ``diff_traces(t, t)`` is empty for *every* trace, and a diff against
  a perturbed trace never is,
- bucketed histogram snapshots fold associatively under
  ``merge_snapshots`` — bit-identical for any shard grouping.
"""

from hypothesis import given, settings, strategies as st

from repro.obs.analyze import diff_traces, render_diff, window_forensics
from repro.obs.metrics import MetricsRegistry, merge_snapshots

names = st.sampled_from(
    ["ait/download", "ait/install", "attack/window", "attack/strike",
     "install/outcome", "kernel/process", "defense/alarm"])
times = st.integers(min_value=0, max_value=10**10)
shards = st.integers(min_value=0, max_value=3)


@st.composite
def trace_records(draw):
    records = []
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        name = draw(names)
        shard = draw(shards)
        if draw(st.booleans()):
            start = draw(times)
            records.append({"type": "span", "name": name, "shard": shard,
                            "start_ns": start,
                            "end_ns": start + draw(times)})
        else:
            records.append({"type": "event", "name": name, "shard": shard,
                            "t_ns": draw(times),
                            "attrs": {"hijacked": draw(st.booleans())}})
    return records


@given(records=trace_records())
@settings(max_examples=60, deadline=None)
def test_diff_of_a_trace_with_itself_is_empty(records):
    diff = diff_traces(records, records)
    assert diff.empty
    assert render_diff(diff) == "trace diff: identical"


@given(records=trace_records(), bump=st.integers(min_value=1, max_value=999))
@settings(max_examples=60, deadline=None)
def test_diff_detects_any_single_time_perturbation(records, bump):
    if not records:
        return
    perturbed = [dict(record) for record in records]
    record = perturbed[len(perturbed) // 2]
    if record["type"] == "span":
        record["end_ns"] += bump
    else:
        record["t_ns"] += bump
    diff = diff_traces(records, perturbed)
    assert not diff.empty
    assert len(diff.changed) >= 1


@given(records=trace_records())
@settings(max_examples=40, deadline=None)
def test_window_forensics_never_crashes_and_conserves_windows(records):
    report = window_forensics(records)
    windows = sum(1 for r in records
                  if r["type"] == "span" and r["name"] == "attack/window")
    assert (report.hijacked.count + report.clean.count
            + report.unresolved) == windows


@given(values=st.lists(st.integers(min_value=0, max_value=10**12),
                       min_size=0, max_size=80),
       cut_a=st.integers(min_value=0, max_value=80),
       cut_b=st.integers(min_value=0, max_value=80))
@settings(max_examples=80, deadline=None)
def test_bucketed_merge_is_associative_for_any_grouping(values, cut_a, cut_b):
    lo, hi = sorted((min(cut_a, len(values)), min(cut_b, len(values))))
    parts = [values[:lo], values[lo:hi], values[hi:]]
    snapshots = []
    for part in parts:
        registry = MetricsRegistry()
        for value in part:
            registry.histogram("h").observe(value)
        snapshots.append(registry.snapshot())
    flat = merge_snapshots(snapshots)
    left = merge_snapshots([merge_snapshots(snapshots[:2]), snapshots[2]])
    right = merge_snapshots([snapshots[0], merge_snapshots(snapshots[1:])])
    assert flat == left == right
    whole = MetricsRegistry()
    for value in values:
        whole.histogram("h").observe(value)
    if values:
        assert flat["histograms"]["h"] == whole.snapshot()["histograms"]["h"]
