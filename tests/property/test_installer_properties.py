"""Property-based tests: arbitrary installer profiles behave sanely."""

from hypothesis import given, settings, strategies as st

from repro.core.scenario import Scenario
from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis


@st.composite
def profiles(draw):
    uses_sdcard = draw(st.booleans())
    verify_hash = draw(st.booleans())
    silent = draw(st.booleans())
    return InstallerProfile(
        package="com.prop.store",
        label="prop-store",
        uses_sdcard=uses_sdcard,
        download_dir="/sdcard/prop-store" if uses_sdcard else "",
        randomize_names=draw(st.booleans()),
        world_readable_staging=not uses_sdcard,
        verify_hash=verify_hash,
        verify_reads=draw(st.integers(min_value=0, max_value=9)),
        verify_start_delay_ns=millis(draw(st.integers(min_value=0,
                                                      max_value=500))),
        per_read_ns=millis(draw(st.integers(min_value=0, max_value=200))),
        install_delay_ns=millis(draw(st.integers(min_value=0, max_value=3000))),
        rename_on_complete=uses_sdcard and draw(st.booleans()),
        silent=silent,
        redownload_on_corrupt=draw(st.booleans()),
        delete_after_install=draw(st.booleans()),
    )


class PropStore(BaseInstaller):
    profile = InstallerProfile(package="com.prop.store", label="prop-store")


@given(profile=profiles(), seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_any_profile_completes_a_benign_ait(profile, seed):
    """Whatever the design knobs, an unattacked AIT installs cleanly
    and the kernel drains."""
    scenario = Scenario.build(installer=PropStore(profile), seed=seed)
    scenario.publish_app("com.victim.app", size_bytes=2048)
    outcome = scenario.run_install("com.victim.app")
    assert outcome.clean_install, (profile, outcome.error)
    assert scenario.system.kernel.pending_events() == 0


@given(profile=profiles())
@settings(max_examples=25, deadline=None)
def test_hijackability_is_exactly_sdcard_exposure(profile):
    """The paper's core dichotomy, as a property: an armed FileObserver
    attacker wins iff the staged APK touches the SD-Card."""
    from repro.attacks.base import fingerprint_for
    from repro.attacks.toctou import FileObserverHijacker

    installer = PropStore(profile)
    fingerprint = fingerprint_for(installer)  # derived per design, as the
    scenario = Scenario.build(                # paper's pre-analysis would
        installer=installer,
        attacker_factory=lambda s: FileObserverHijacker(fingerprint),
    )
    scenario.publish_app("com.victim.app", size_bytes=2048)
    outcome = scenario.run_install("com.victim.app")
    if profile.uses_sdcard:
        assert outcome.hijacked
    else:
        assert not outcome.hijacked
        assert outcome.clean_install
