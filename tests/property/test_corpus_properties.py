"""Property-based tests: corpus generation honours arbitrary specs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.classifier import Category, InstallerClassifier
from repro.analysis.corpus import (
    PlayCorpusPlan,
    PlayCorpusSpec,
    PreinstalledCorpusPlan,
    PreinstalledCorpusSpec,
    WRITE_EXTERNAL,
    generate_play_corpus,
    generate_preinstalled_corpus,
)
from repro.errors import CorpusError


@st.composite
def play_specs(draw):
    vulnerable = draw(st.integers(min_value=0, max_value=40))
    secure = draw(st.integers(min_value=0, max_value=20))
    unknown_reflection = draw(st.integers(min_value=0, max_value=10))
    unknown_field = draw(st.integers(min_value=0, max_value=10))
    unknown_mixed = draw(st.integers(min_value=0, max_value=10))
    installers = (vulnerable + secure + unknown_reflection + unknown_field
                  + unknown_mixed)
    total = draw(st.integers(min_value=max(installers, 10),
                             max_value=installers + 200))
    write_external = draw(st.integers(min_value=vulnerable, max_value=total))
    # Redirect buckets must fit within the corpus.
    remaining = total
    exact1 = draw(st.integers(min_value=0, max_value=remaining // 4))
    exact2 = draw(st.integers(min_value=0, max_value=remaining // 4))
    three4 = draw(st.integers(min_value=0, max_value=remaining // 4))
    five8 = draw(st.integers(min_value=0, max_value=remaining // 8))
    nine_plus = max(0, min(remaining - exact1 - exact2 - three4 - five8,
                           draw(st.integers(min_value=0, max_value=50))))
    return PlayCorpusSpec(
        total=total,
        vulnerable=vulnerable,
        secure=secure,
        unknown_reflection=unknown_reflection,
        unknown_field_mode=unknown_field,
        unknown_mixed=unknown_mixed,
        write_external_total=write_external,
        redirect_exact_1=exact1,
        redirect_exact_2=exact2,
        redirect_3_to_4=three4,
        redirect_5_to_8=five8,
        redirect_9_plus=nine_plus,
    )


@given(spec=play_specs(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_generator_hits_any_spec_exactly(spec, seed):
    """For ANY consistent spec, the classifier recovers the plant."""
    corpus = generate_play_corpus(seed=seed, spec=spec)
    assert len(corpus) == spec.total
    assert sum(1 for app in corpus
               if app.has_permission(WRITE_EXTERNAL)) == spec.write_external_total
    results = InstallerClassifier().classify_corpus(corpus)
    assert results.installers == spec.installers
    assert results.count(Category.POTENTIALLY_VULNERABLE) == spec.vulnerable
    assert results.count(Category.POTENTIALLY_SECURE) == spec.secure
    assert results.count(Category.UNKNOWN) == (
        spec.unknown_reflection + spec.unknown_field_mode + spec.unknown_mixed
    )


_counts = st.integers(min_value=-5, max_value=120)


@given(
    total=_counts, vulnerable=_counts, secure=_counts,
    unknown_reflection=_counts, write_external=_counts,
    redirect_1=_counts, seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_any_play_spec_generates_consistently_or_fails_up_front(
        total, vulnerable, secure, unknown_reflection, write_external,
        redirect_1, seed):
    """UNVALIDATED specs either build a consistent corpus or raise
    CorpusError from plan construction — before any app is built."""
    spec = PlayCorpusSpec(
        total=total, vulnerable=vulnerable, secure=secure,
        unknown_reflection=unknown_reflection, unknown_field_mode=0,
        unknown_mixed=0, write_external_total=write_external,
        redirect_exact_1=redirect_1, redirect_exact_2=0,
        redirect_3_to_4=0, redirect_5_to_8=0, redirect_9_plus=0,
    )
    try:
        plan = PlayCorpusPlan(seed=seed, spec=spec)
    except CorpusError:
        return  # clean failure, nothing generated
    corpus = list(plan.iter_apps())
    assert len(corpus) == spec.total
    assert sum(1 for app in corpus
               if app.has_permission(WRITE_EXTERNAL)) == write_external
    results = InstallerClassifier().classify_corpus(corpus)
    assert results.installers == spec.installers
    assert results.count(Category.POTENTIALLY_VULNERABLE) == vulnerable


@given(
    unique_apps=_counts, total_instances=st.integers(-5, 1000),
    vulnerable=_counts, secure=st.integers(-2, 5), unknown=_counts,
    write_external_instances=st.integers(-8, 800),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_any_preinstalled_spec_generates_consistently_or_fails_up_front(
        unique_apps, total_instances, vulnerable, secure, unknown,
        write_external_instances, seed):
    spec = PreinstalledCorpusSpec(
        unique_apps=unique_apps, total_instances=total_instances,
        vulnerable=vulnerable, secure=secure, unknown=unknown,
        write_external_instances=write_external_instances,
    )
    try:
        plan = PreinstalledCorpusPlan(seed=seed, spec=spec)
    except CorpusError:
        return
    corpus = list(plan.iter_apps())
    assert len(corpus) == spec.unique_apps
    assert sum(app.instances for app in corpus) == spec.total_instances
    assert sum(app.instances for app in corpus
               if app.has_permission(WRITE_EXTERNAL)) == (
        spec.write_external_instances)


def test_infeasible_spec_fails_before_generation():
    with pytest.raises(CorpusError):
        generate_play_corpus(spec=PlayCorpusSpec(
            total=10, vulnerable=20, secure=0, unknown_reflection=0,
            unknown_field_mode=0, unknown_mixed=0, write_external_total=25,
            redirect_exact_1=0, redirect_exact_2=0, redirect_3_to_4=0,
            redirect_5_to_8=0, redirect_9_plus=0))
    with pytest.raises(CorpusError):
        generate_preinstalled_corpus(spec=PreinstalledCorpusSpec(
            unique_apps=10, total_instances=1000, vulnerable=2, secure=1,
            unknown=2, write_external_instances=40))


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=5, deadline=None)
def test_generation_is_seed_deterministic(seed):
    spec = PlayCorpusSpec(
        total=60, vulnerable=5, secure=3, unknown_reflection=2,
        unknown_field_mode=2, unknown_mixed=1, write_external_total=20,
        redirect_exact_1=4, redirect_exact_2=3, redirect_3_to_4=2,
        redirect_5_to_8=1, redirect_9_plus=5,
    )
    first = generate_play_corpus(seed=seed, spec=spec)
    second = generate_play_corpus(seed=seed, spec=spec)
    assert [a.smali_text for a in first] == [a.smali_text for a in second]
    assert [a.declared_permissions for a in first] == [
        a.declared_permissions for a in second
    ]
