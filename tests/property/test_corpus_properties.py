"""Property-based tests: corpus generation honours arbitrary specs."""

from hypothesis import given, settings, strategies as st

from repro.analysis.classifier import Category, InstallerClassifier
from repro.analysis.corpus import (
    PlayCorpusSpec,
    WRITE_EXTERNAL,
    generate_play_corpus,
)


@st.composite
def play_specs(draw):
    vulnerable = draw(st.integers(min_value=0, max_value=40))
    secure = draw(st.integers(min_value=0, max_value=20))
    unknown_reflection = draw(st.integers(min_value=0, max_value=10))
    unknown_field = draw(st.integers(min_value=0, max_value=10))
    unknown_mixed = draw(st.integers(min_value=0, max_value=10))
    installers = (vulnerable + secure + unknown_reflection + unknown_field
                  + unknown_mixed)
    total = draw(st.integers(min_value=max(installers, 10),
                             max_value=installers + 200))
    write_external = draw(st.integers(min_value=vulnerable, max_value=total))
    # Redirect buckets must fit within the corpus.
    remaining = total
    exact1 = draw(st.integers(min_value=0, max_value=remaining // 4))
    exact2 = draw(st.integers(min_value=0, max_value=remaining // 4))
    three4 = draw(st.integers(min_value=0, max_value=remaining // 4))
    five8 = draw(st.integers(min_value=0, max_value=remaining // 8))
    nine_plus = max(0, min(remaining - exact1 - exact2 - three4 - five8,
                           draw(st.integers(min_value=0, max_value=50))))
    return PlayCorpusSpec(
        total=total,
        vulnerable=vulnerable,
        secure=secure,
        unknown_reflection=unknown_reflection,
        unknown_field_mode=unknown_field,
        unknown_mixed=unknown_mixed,
        write_external_total=write_external,
        redirect_exact_1=exact1,
        redirect_exact_2=exact2,
        redirect_3_to_4=three4,
        redirect_5_to_8=five8,
        redirect_9_plus=nine_plus,
    )


@given(spec=play_specs(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_generator_hits_any_spec_exactly(spec, seed):
    """For ANY consistent spec, the classifier recovers the plant."""
    corpus = generate_play_corpus(seed=seed, spec=spec)
    assert len(corpus) == spec.total
    assert sum(1 for app in corpus
               if app.has_permission(WRITE_EXTERNAL)) == spec.write_external_total
    results = InstallerClassifier().classify_corpus(corpus)
    assert results.installers == spec.installers
    assert results.count(Category.POTENTIALLY_VULNERABLE) == spec.vulnerable
    assert results.count(Category.POTENTIALLY_SECURE) == spec.secure
    assert results.count(Category.UNKNOWN) == (
        spec.unknown_reflection + spec.unknown_field_mode + spec.unknown_mixed
    )


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=5, deadline=None)
def test_generation_is_seed_deterministic(seed):
    spec = PlayCorpusSpec(
        total=60, vulnerable=5, secure=3, unknown_reflection=2,
        unknown_field_mode=2, unknown_mixed=1, write_external_total=20,
        redirect_exact_1=4, redirect_exact_2=3, redirect_3_to_4=2,
        redirect_5_to_8=1, redirect_9_plus=5,
    )
    first = generate_play_corpus(seed=seed, spec=spec)
    second = generate_play_corpus(seed=seed, spec=spec)
    assert [a.smali_text for a in first] == [a.smali_text for a in second]
    assert [a.declared_permissions for a in first] == [
        a.declared_permissions for a in second
    ]
