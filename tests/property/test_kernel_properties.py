"""Property-based tests for the discrete-event kernel."""

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Kernel, Sleep

delays = st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                  max_size=30)


@given(delays=delays)
@settings(max_examples=60, deadline=None)
def test_events_dispatch_in_time_order(delays):
    kernel = Kernel()
    seen = []
    for delay in delays:
        kernel.call_later(delay, lambda d=delay: seen.append(d))
    kernel.run()
    assert seen == sorted(seen)
    assert kernel.clock.now_ns == max(delays)


@given(delays=delays)
@settings(max_examples=60, deadline=None)
def test_equal_times_preserve_submission_order(delays):
    kernel = Kernel()
    seen = []
    for index, delay in enumerate(delays):
        kernel.call_later(delay, lambda i=index, d=delay: seen.append((d, i)))
    kernel.run()
    # For equal delays, submission index must be ascending.
    for (d1, i1), (d2, i2) in zip(seen, seen[1:]):
        if d1 == d2:
            assert i1 < i2


@given(sleeps=st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                       max_size=20))
@settings(max_examples=60, deadline=None)
def test_process_sleep_durations_accumulate(sleeps):
    kernel = Kernel()

    def proc():
        for duration in sleeps:
            yield Sleep(duration)
        return kernel.clock.now_ns

    assert kernel.run_process(proc()) == sum(sleeps)


@given(count=st.integers(min_value=1, max_value=40))
@settings(max_examples=30, deadline=None)
def test_spawned_processes_all_complete(count):
    kernel = Kernel()

    def proc(duration):
        yield Sleep(duration)
        return duration

    handles = [kernel.spawn(proc(i * 7 % 13)) for i in range(count)]
    kernel.run()
    assert all(handle.done for handle in handles)
    assert [handle.result for handle in handles] == [i * 7 % 13 for i in range(count)]
