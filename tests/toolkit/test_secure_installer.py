"""Tests for the ToolkitInstaller: the paper's suggestions, executable."""

import pytest

from repro.attacks.base import StoreFingerprint
from repro.attacks.toctou import FileObserverHijacker
from repro.attacks.wait_and_see import WaitAndSeeHijacker
from repro.core.scenario import Scenario
from repro.toolkit.secure_installer import ToolkitInstaller
from repro.toolkit.storage_chooser import StorageChoice
from repro.sim.clock import millis, seconds

TARGET = "com.victim.app"
TOOLKIT_STAGING = "/sdcard/toolkit-installer"


def toolkit_fingerprint(wait_delay_ms=200):
    return StoreFingerprint(
        watch_dir=TOOLKIT_STAGING,
        close_nowrite_count=1,
        wait_and_see_delay_ns=millis(wait_delay_ms),
    )


def build(attacker_cls=None, device=None, idle_ms=0, squeeze_internal=False):
    factory = None
    if attacker_cls is not None:
        factory = lambda s: attacker_cls(toolkit_fingerprint())
    scenario = Scenario.build(
        installer=ToolkitInstaller(idle_before_install_ns=millis(idle_ms)),
        attacker_factory=factory,
        device=device,
    )
    if squeeze_internal:
        volume = scenario.system.internal_volume
        volume.charge(volume.free_bytes - 10 * 1024 * 1024)  # leave ~10 MB
    scenario.publish_app(TARGET, label="Victim")
    return scenario


def test_prefers_internal_storage():
    scenario = build()
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install
    assert scenario.installer.decisions[-1].choice is StorageChoice.INTERNAL


def test_falls_back_to_sdcard_when_space_starved():
    scenario = build(squeeze_internal=False)
    volume = scenario.system.internal_volume
    volume.charge(volume.free_bytes - 20 * 1024 * 1024)
    outcome = scenario.run_install(TARGET)
    # Headroom (64 MB) exceeds free internal space: external staging.
    assert scenario.installer.decisions[-1].choice is StorageChoice.EXTERNAL
    assert outcome.clean_install


def test_fileobserver_attacker_cannot_hijack_internal_path():
    scenario = build(attacker_cls=FileObserverHijacker)
    outcome = scenario.run_install(TARGET)
    assert outcome.clean_install
    assert not scenario.attacker.swaps


def test_fileobserver_attacker_cannot_hijack_external_path():
    """Even on the SD-Card, verify+install are atomic: no window."""
    scenario = build(attacker_cls=FileObserverHijacker, squeeze_internal=True)
    outcome = scenario.run_install(TARGET)
    assert scenario.installer.decisions[-1].choice is StorageChoice.EXTERNAL
    assert outcome.installed
    assert not outcome.hijacked


def test_wait_and_see_attacker_cannot_hijack_external_path():
    scenario = build(attacker_cls=WaitAndSeeHijacker, squeeze_internal=True)
    outcome = scenario.run_install(TARGET)
    assert not outcome.hijacked


def test_idle_stage_tampering_fails_closed():
    """A pre-downloaded stage gets swapped during idle: the guard sees
    it and the installer aborts/retries rather than installing."""
    scenario = build(attacker_cls=WaitAndSeeHijacker, squeeze_internal=True,
                     idle_ms=800)
    outcome = scenario.run_install(TARGET)
    # Fail closed: either a clean retry succeeded or nothing installed —
    # but never the attacker's package.
    assert not outcome.hijacked
    assert scenario.installer.aborted_stages >= 1


def test_guard_records_tamper_events():
    scenario = build(attacker_cls=WaitAndSeeHijacker, squeeze_internal=True,
                     idle_ms=800)
    scenario.run_install(TARGET)
    # At least one stage was discarded after guard evidence.
    assert scenario.installer.aborted_stages >= 1


def test_gives_up_after_persistent_tampering():
    from repro.errors import InstallVerificationError

    class RelentlessHijacker(WaitAndSeeHijacker):
        """Re-attacks every staged file, forever."""

        def _fire_due(self):
            super()._fire_due()

    scenario = Scenario.build(
        installer=ToolkitInstaller(idle_before_install_ns=millis(800)),
        attacker_factory=lambda s: RelentlessHijacker(toolkit_fingerprint()),
    )
    volume = scenario.system.internal_volume
    volume.charge(volume.free_bytes - 10 * 1024 * 1024)
    scenario.publish_app(TARGET)
    outcome = scenario.run_install(TARGET)
    if not outcome.installed:
        assert "tampering" in outcome.error or "gave up" in outcome.error
    assert not outcome.hijacked


def test_trace_shows_atomic_mechanism():
    scenario = build()
    outcome = scenario.run_install(TARGET)
    from repro.core.ait import AITStep
    assert "atomic" in outcome.trace.step_for(AITStep.TRIGGER).mechanism
    assert "same step" in outcome.trace.step_for(AITStep.INSTALL).mechanism


def test_stage_deleted_after_install():
    scenario = build(squeeze_internal=True)
    outcome = scenario.run_install(TARGET)
    staged = outcome.trace.step_for(
        __import__("repro.core.ait", fromlist=["AITStep"]).AITStep.DOWNLOAD
    ).detail["path"]
    assert not scenario.system.fs.exists(staged)
