"""Tests for the installer-design auditor."""

from repro.installers import (
    AmazonInstaller,
    BaiduInstaller,
    DTIgniteInstaller,
    GooglePlayInstaller,
    NaiveSdcardInstaller,
    NewAmazonInstaller,
    QihooInstaller,
    XiaomiInstaller,
)
from repro.toolkit.auditor import Severity, audit_profile, is_clean
from repro.toolkit.secure_installer import ToolkitInstaller


def severities(profile):
    return [finding.severity for finding in audit_profile(profile)]


def test_all_sdcard_stores_flagged_critical():
    for cls in (AmazonInstaller, XiaomiInstaller, BaiduInstaller,
                QihooInstaller, DTIgniteInstaller):
        assert Severity.CRITICAL in severities(cls.profile), cls.__name__
        assert not is_clean(cls.profile)


def test_naive_installer_flagged_for_missing_check():
    findings = audit_profile(NaiveSdcardInstaller.profile)
    assert any("without any integrity check" in finding.title
               for finding in findings)


def test_new_amazon_flagged_for_manifest_only_verification():
    findings = audit_profile(NewAmazonInstaller.profile)
    assert any("installPackageWithVerification" in finding.title
               for finding in findings)


def test_amazon_randomization_marked_cosmetic():
    findings = audit_profile(AmazonInstaller.profile)
    assert any("randomization" in finding.title for finding in findings)


def test_google_play_is_clean():
    assert is_clean(GooglePlayInstaller.profile)
    assert Severity.CRITICAL not in severities(GooglePlayInstaller.profile)


def test_toolkit_installer_is_fully_clean():
    assert audit_profile(ToolkitInstaller.profile) == []


def test_findings_sorted_critical_first():
    findings = audit_profile(AmazonInstaller.profile)
    ranks = [finding.severity for finding in findings]
    order = {Severity.CRITICAL: 0, Severity.WARNING: 1, Severity.INFO: 2}
    assert [order[r] for r in ranks] == sorted(order[r] for r in ranks)


def test_finding_str_names_suggestion():
    finding = audit_profile(AmazonInstaller.profile)[0]
    assert str(finding).startswith("[CRITICAL] S")


def test_internal_without_world_readable_warned():
    from dataclasses import replace
    broken = replace(GooglePlayInstaller.profile, world_readable_staging=False)
    findings = audit_profile(broken)
    assert any("world-readable" in finding.title for finding in findings)
