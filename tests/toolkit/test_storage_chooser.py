"""Tests for Suggestion 1: the storage chooser and its Section II math."""

from repro.android.storage import GB, MB, StorageVolume
from repro.toolkit.storage_chooser import (
    DEFAULT_HEADROOM_BYTES,
    StorageChoice,
    choose_storage,
)


def test_small_app_on_roomy_device_goes_internal():
    internal = StorageVolume("internal", 16 * GB, used_bytes=6 * GB)
    decision = choose_storage(internal, 50 * MB)
    assert decision.choice is StorageChoice.INTERNAL
    assert decision.internal_viable


def test_double_space_requirement():
    """Internal staging needs 2x the APK plus headroom."""
    apk = 100 * MB
    just_enough = StorageVolume("internal", 10 * GB,
                                used_bytes=10 * GB - (2 * apk + DEFAULT_HEADROOM_BYTES))
    assert choose_storage(just_enough, apk).choice is StorageChoice.INTERNAL
    one_byte_short = StorageVolume(
        "internal", 10 * GB,
        used_bytes=10 * GB - (2 * apk + DEFAULT_HEADROOM_BYTES) + 1,
    )
    assert choose_storage(one_byte_short, apk).choice is StorageChoice.EXTERNAL


def test_paper_example_gabriel_knight_on_galaxy_j5():
    """Section II: a 1.6 GB game cannot install internally with 2.5 GB free."""
    internal = StorageVolume("internal", 8 * GB, used_bytes=8 * GB - int(2.5 * GB))
    game = int(1.6 * GB)
    decision = choose_storage(internal, game)
    assert decision.choice is StorageChoice.EXTERNAL
    assert not decision.internal_viable
    assert decision.required_internal_bytes > decision.free_internal_bytes


def test_same_game_fits_on_flagship():
    internal = StorageVolume("internal", 32 * GB, used_bytes=12 * GB)
    decision = choose_storage(internal, int(1.6 * GB))
    assert decision.choice is StorageChoice.INTERNAL


def test_decision_records_arithmetic():
    internal = StorageVolume("internal", 1 * GB, used_bytes=0)
    decision = choose_storage(internal, 10 * MB)
    assert decision.apk_size_bytes == 10 * MB
    assert decision.required_internal_bytes == 2 * 10 * MB + DEFAULT_HEADROOM_BYTES
    assert decision.free_internal_bytes == 1 * GB


def test_custom_headroom():
    internal = StorageVolume("internal", 100 * MB, used_bytes=0)
    assert choose_storage(internal, 40 * MB,
                          headroom_bytes=0).choice is StorageChoice.INTERNAL
    assert choose_storage(internal, 40 * MB,
                          headroom_bytes=30 * MB).choice is StorageChoice.EXTERNAL
