"""repro — reproduction of *Ghost Installer in the Shadow* (DSN 2017).

A production-quality Python library that re-implements, over a
discrete-event Android platform simulator, the paper's App Installation
Transaction (AIT) analysis: the Ghost Installer Attacks (GIA), the
user-level and system-level defenses, and the measurement study.

Quick start
-----------
>>> from repro.core import Scenario
>>> from repro.installers import DTIgniteInstaller
>>> from repro.attacks import FileObserverHijacker
>>> from repro.attacks.base import fingerprint_for
>>> scenario = Scenario.build(
...     installer=DTIgniteInstaller,
...     attacker_factory=lambda s: FileObserverHijacker(
...         fingerprint_for(DTIgniteInstaller)),
... )
>>> _listing = scenario.publish_app("com.example.pushed")
>>> scenario.run_install("com.example.pushed").hijacked
True
"""

from repro.android import AndroidSystem, DeviceProfile
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["AndroidSystem", "DeviceProfile", "ReproError", "__version__"]
