"""Developer toolkit: the paper's Section VII suggestions as a library.

The paper closes with four suggestions for developers who must build
their own installers.  This package makes them executable:

- :mod:`repro.toolkit.storage_chooser` — Suggestion 1: use internal
  storage when the (2x) space is available, fall back to the SD-Card
  otherwise (the Section II economics),
- :mod:`repro.toolkit.secure_installer` — a
  :class:`~repro.toolkit.secure_installer.ToolkitInstaller` that
  implements Suggestions 1, 2 and the Section V FileObserver
  self-defense: it verifies the hash *atomically with* the install
  (no TOCTOU window), watches its own SD-Card staging directory, and
  fails closed on tampering,
- :mod:`repro.toolkit.auditor` — a linter for
  :class:`~repro.installers.base.InstallerProfile` objects that flags
  violations of the suggestions (the checks the paper wishes Android
  shipped as guidance).
"""

from repro.toolkit.storage_chooser import StorageChoice, choose_storage
from repro.toolkit.secure_installer import ToolkitInstaller
from repro.toolkit.auditor import AuditFinding, Severity, audit_profile

__all__ = [
    "StorageChoice",
    "choose_storage",
    "ToolkitInstaller",
    "AuditFinding",
    "Severity",
    "audit_profile",
]
