"""Suggestion 1: choose the staging storage by available space.

Installing through internal storage needs roughly **twice** the APK's
size — the staged copy plus the installed copy — which is why low-end
devices push third-party stores onto the SD-Card (Section II: the
1.6 GB Gabriel Knight download cannot install internally on a Galaxy J5
with 2.5 GB free).  The chooser encodes exactly that arithmetic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.android.storage import StorageVolume


class StorageChoice(enum.Enum):
    """Where to stage the APK."""

    INTERNAL = "internal"
    EXTERNAL = "external"


# Safety margin so an install never runs the device to zero bytes.
DEFAULT_HEADROOM_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class StorageDecision:
    """The chooser's verdict plus its arithmetic, for logging."""

    choice: StorageChoice
    apk_size_bytes: int
    required_internal_bytes: int
    free_internal_bytes: int

    @property
    def internal_viable(self) -> bool:
        """Whether the internal path would have fit."""
        return self.free_internal_bytes >= self.required_internal_bytes


def choose_storage(internal: StorageVolume, apk_size_bytes: int,
                   headroom_bytes: int = DEFAULT_HEADROOM_BYTES) -> StorageDecision:
    """Pick internal storage iff 2x the APK plus headroom fits.

    Returns a :class:`StorageDecision`; callers staging externally are
    expected to pair it with the Section V self-defense (see
    :class:`~repro.toolkit.secure_installer.ToolkitInstaller`).
    """
    required = 2 * apk_size_bytes + headroom_bytes
    if internal.free_bytes >= required:
        choice = StorageChoice.INTERNAL
    else:
        choice = StorageChoice.EXTERNAL
    return StorageDecision(
        choice=choice,
        apk_size_bytes=apk_size_bytes,
        required_internal_bytes=required,
        free_internal_bytes=internal.free_bytes,
    )
