"""A by-the-book installer implementing the paper's suggestions.

:class:`ToolkitInstaller` differs from every store in Section III in
three security-relevant ways:

1. **Suggestion 1** — it calls
   :func:`~repro.toolkit.storage_chooser.choose_storage` per install:
   internal staging whenever 2x the APK fits, SD-Card only as a
   fallback on space-starved devices.
2. **Suggestion 2** — the hash verification and the PMS invocation
   happen **atomically** (in one scheduler step, with no delay between
   them), so there is no check-to-use window for a Step-3 attacker to
   fill.
3. **Section V self-defense** — when forced onto the SD-Card, it runs
   its own FileObserver guard over the staging directory: the APK's
   signature is captured at download completion, any subsequent write
   or move is recorded, and a tampered stage is discarded and
   re-downloaded (fail closed).  After installation it re-checks the
   installed certificate against the captured one.

The result: on the same simulated device where Amazon/DTIgnite are
hijacked, the toolkit installer either installs the genuine package or
aborts — the attacker never gets code installed.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.errors import InstallVerificationError
from repro.android.apk import Apk, MalformedApk, hash_bytes
from repro.android.fileobserver import FileObserver
from repro.android.filesystem import FileEvent, FileEventType
from repro.android.packages import InstalledPackage
from repro.android.pia import ConsentUser
from repro.core.ait import AITStep, TransactionTrace
from repro.installers.base import BaseInstaller, InstallerProfile, StoreListing
from repro.sim.clock import millis
from repro.sim.kernel import Sleep
from repro.toolkit.storage_chooser import StorageChoice, StorageDecision, choose_storage

TOOLKIT_PACKAGE = "org.gia.toolkit.installer"

TOOLKIT_PROFILE = InstallerProfile(
    package=TOOLKIT_PACKAGE,
    label="toolkit-installer",
    uses_sdcard=False,               # dynamic; this is the preferred path
    world_readable_staging=True,
    verify_hash=True,
    verify_reads=1,
    verify_start_delay_ns=millis(20),
    install_delay_ns=0,              # Suggestion 2: no check-to-use gap
    silent=True,
    delete_after_install=True,
)


@dataclass
class StageGuard:
    """The installer's own mini-DAPP over its SD-Card staging directory."""

    observer: FileObserver
    staged_name: str = ""
    download_complete: bool = False
    captured_fingerprint: Optional[str] = None
    tamper_events: List[FileEvent] = field(default_factory=list)

    def watch(self) -> None:
        """Start observing."""
        self.observer.on_event(self._on_event)
        self.observer.start_watching()

    def stop(self) -> None:
        """Stop observing."""
        self.observer.stop_watching()

    @property
    def tampered(self) -> bool:
        """True once any post-completion write/move/delete was seen."""
        return bool(self.tamper_events)

    def _on_event(self, event: FileEvent) -> None:
        if event.name != self.staged_name:
            return
        if event.event_type is FileEventType.CLOSE_WRITE and not self.download_complete:
            self.download_complete = True
            return
        if not self.download_complete:
            return
        if event.event_type in (FileEventType.CLOSE_WRITE,
                                FileEventType.MOVED_TO,
                                FileEventType.DELETE,
                                FileEventType.MODIFY):
            self.tamper_events.append(event)


class ToolkitInstaller(BaseInstaller):
    """The secure installer built from the paper's suggestions."""

    profile = TOOLKIT_PROFILE

    def __init__(self, profile: Optional[InstallerProfile] = None,
                 idle_before_install_ns: int = 0) -> None:
        super().__init__(profile)
        self.decisions: List[StorageDecision] = []
        self.aborted_stages: int = 0
        # Stores that pre-download apps leave the stage idle before the
        # user triggers the install; the guard covers that window.
        self.idle_before_install_ns = idle_before_install_ns

    # The toolkit installer replaces the whole transaction so the
    # verify+install atomicity is explicit.
    def run_ait(self, target_package: str, user: Optional[ConsentUser] = None,
                ) -> Generator[Any, Any, InstalledPackage]:
        listing = self.backend.get(target_package)
        trace = TransactionTrace(
            installer_package=self.package, target_package=target_package
        )
        self.traces.append(trace)
        decision = choose_storage(
            self.system.internal_volume, listing.apk.size_bytes
        )
        self.decisions.append(decision)
        attempts = 0
        while True:
            attempts += 1
            if attempts > 1 + self.profile.max_retries:
                trace.error = "staging repeatedly tampered with"
                raise InstallVerificationError(
                    f"{self.package}: gave up installing {target_package} "
                    "after repeated tampering"
                )
            staged_path, guard = yield from self._stage(listing, trace, decision)
            if self.idle_before_install_ns:
                yield Sleep(self.idle_before_install_ns)
            package = self._verify_and_install_atomically(
                staged_path, listing, trace, guard
            )
            if package is None:
                self.aborted_stages += 1
                continue  # fail closed: discard and re-download
            if guard is not None:
                guard.stop()
            if self.system.fs.exists(staged_path):
                self.delete_file(staged_path)
            trace.completed = True
            return package

    # -- staging -----------------------------------------------------------------

    def _stage(self, listing: StoreListing, trace: TransactionTrace,
               decision: StorageDecision):
        if decision.choice is StorageChoice.INTERNAL:
            staging_dir = f"{self.private_dir}/staging"
            storage_label = "internal"
        else:
            staging_dir = f"/sdcard/{self.profile.label}"
            storage_label = "sdcard+guard"
        if not self.system.fs.exists(staging_dir):
            self.make_dirs(staging_dir)
        filename = f"{self.system.rng.token(12)}.apk"
        staged_path = posixpath.join(staging_dir, filename)
        guard: Optional[StageGuard] = None
        if decision.choice is StorageChoice.EXTERNAL:
            guard = StageGuard(
                observer=self.file_observer(staging_dir), staged_name=filename
            )
            guard.watch()
        entry = trace.begin(AITStep.DOWNLOAD, self.system.now_ns,
                            mechanism=f"self-download/{storage_label}",
                            path=staged_path)
        yield from self._self_download(listing, staged_path)
        if decision.choice is StorageChoice.INTERNAL:
            self.set_world_readable(staged_path)
        elif guard is not None:
            # Capture the certificate the instant the download lands.
            guard.captured_fingerprint = self._fingerprint(staged_path)
        entry.end_ns = self.system.now_ns
        return staged_path, guard

    def _fingerprint(self, path: str) -> Optional[str]:
        try:
            data = self.system.fs.read_bytes(path, self.caller, quiet=True)
            return Apk.from_bytes(data).certificate.fingerprint
        except (MalformedApk, Exception):
            return None

    # -- the atomic verify+install (Suggestion 2) -------------------------------------

    def _verify_and_install_atomically(self, staged_path: str,
                                       listing: StoreListing,
                                       trace: TransactionTrace,
                                       guard: Optional[StageGuard],
                                       ) -> Optional[InstalledPackage]:
        entry = trace.begin(
            AITStep.TRIGGER, self.system.now_ns,
            mechanism="atomic hash-check+install",
        )
        if guard is not None and guard.tampered:
            entry.detail["aborted"] = "guard saw tampering before check"
            entry.end_ns = self.system.now_ns
            self._discard(staged_path)
            return None
        content = self.read_file(staged_path)
        if hash_bytes(content) != listing.file_hash:
            entry.detail["hash_ok"] = False
            entry.end_ns = self.system.now_ns
            self._discard(staged_path)
            return None
        entry.detail["hash_ok"] = True
        entry.end_ns = self.system.now_ns
        install_entry = trace.begin(AITStep.INSTALL, self.system.now_ns,
                                    mechanism="PMS.installPackage (same step)")
        # No yield between the check above and this call: the scheduler
        # cannot interleave an attacker callback.
        package = self.system.pms.install_package(
            staged_path, self.caller, installer_package=self.package
        )
        install_entry.end_ns = self.system.now_ns
        if guard is not None and guard.captured_fingerprint is not None:
            if package.certificate.fingerprint != guard.captured_fingerprint:
                # Post-install signature mismatch: undo and fail closed.
                self.system.pms.uninstall_package(package.package, self.caller)
                install_entry.detail["rolled_back"] = True
                self._discard(staged_path)
                return None
        return package

    def _discard(self, staged_path: str) -> None:
        if self.system.fs.exists(staged_path):
            try:
                self.delete_file(staged_path)
            except Exception:
                pass
