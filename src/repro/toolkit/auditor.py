"""A linter for installer designs: Section VII's suggestions as checks.

``audit_profile`` inspects an
:class:`~repro.installers.base.InstallerProfile` and reports every
deviation from the paper's guidance.  Run against the Section III
installers it flags exactly the weaknesses the paper exploited; run
against the toolkit installer and Google Play it comes back clean.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.installers.base import InstallerProfile
from repro.sim.clock import millis


class Severity(enum.Enum):
    """How bad a finding is."""

    CRITICAL = "critical"   # directly exploitable by a GIA
    WARNING = "warning"     # widens the attack window / weakens a check
    INFO = "info"           # style/robustness advice


@dataclass(frozen=True)
class AuditFinding:
    """One deviation from the suggestions."""

    severity: Severity
    suggestion: int          # which of the paper's 4 suggestions (0 = other)
    title: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity.value.upper()}] S{self.suggestion}: {self.title}"


def audit_profile(profile: InstallerProfile) -> List[AuditFinding]:
    """Audit one installer design; returns findings sorted by severity."""
    findings: List[AuditFinding] = []

    if profile.uses_sdcard and not profile.verify_hash:
        findings.append(AuditFinding(
            Severity.CRITICAL, 2,
            "SD-Card staging without any integrity check",
            "any WRITE_EXTERNAL_STORAGE holder can replace the APK and "
            "nothing will notice before the PMS/PIA reads it",
        ))
    if profile.uses_sdcard and profile.verify_hash:
        findings.append(AuditFinding(
            Severity.CRITICAL, 1,
            "APK staged on shared external storage",
            "the TOCTOU window between the integrity check and the "
            "install is reliably catchable via FileObserver; prefer "
            "internal storage, or pair the SD-Card with the Section V "
            "guard (see repro.toolkit.secure_installer)",
        ))
    if (profile.uses_sdcard and profile.verify_hash
            and profile.install_delay_ns > millis(50)):
        findings.append(AuditFinding(
            Severity.WARNING, 2,
            f"{profile.install_delay_ns / 1e6:.0f} ms between check and install",
            "verify the hash immediately before invoking the PMS; every "
            "millisecond of delay widens the swap window",
        ))
    if profile.uses_pms_verification:
        findings.append(AuditFinding(
            Severity.WARNING, 2,
            "relies on installPackageWithVerification",
            "the API checks only the AndroidManifest checksum, which a "
            "repackaged APK preserves; verify the full file hash (or the "
            "signature) instead",
        ))
    if profile.randomize_names and profile.uses_sdcard:
        findings.append(AuditFinding(
            Severity.INFO, 1,
            "name randomization on the SD-Card is not a defense",
            "the staging directory is stable and FileObserver reports "
            "events for any name; randomization only obscures, it does "
            "not protect",
        ))
    if not profile.uses_sdcard and not profile.world_readable_staging:
        findings.append(AuditFinding(
            Severity.WARNING, 0,
            "internal staging without making the APK world-readable",
            "the PackageManagerService cannot read a private file; this "
            "install will fail (the failure mode that pushes developers "
            "onto the SD-Card)",
        ))
    if profile.redownload_on_corrupt and profile.uses_sdcard:
        findings.append(AuditFinding(
            Severity.INFO, 2,
            "transparent re-download on corruption",
            "retrying silently gives the attacker another shot at the "
            "window; at minimum, surface repeated corruption to the user",
        ))
    order = {Severity.CRITICAL: 0, Severity.WARNING: 1, Severity.INFO: 2}
    findings.sort(key=lambda finding: (order[finding.severity],
                                       finding.suggestion))
    return findings


def is_clean(profile: InstallerProfile) -> bool:
    """True when the design has no critical findings."""
    return not any(
        finding.severity is Severity.CRITICAL
        for finding in audit_profile(profile)
    )
