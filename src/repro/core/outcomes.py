"""Structured results of installs, attacks and defense reactions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.ait import AITStep, TransactionTrace


@dataclass
class InstallOutcome:
    """What one AIT run produced, from the *scenario's* point of view.

    ``hijacked`` is the ground truth the simulator can see directly:
    whether the package installed on the device carries the attacker's
    payload/certificate instead of the store's genuine one.
    """

    requested_package: str
    installed: bool = False
    installed_version: Optional[int] = None
    installed_certificate_owner: Optional[str] = None
    genuine_certificate_owner: Optional[str] = None
    hijacked: bool = False
    error: Optional[str] = None
    trace: Optional[TransactionTrace] = None
    elapsed_ns: int = 0

    @property
    def clean_install(self) -> bool:
        """Installed and not hijacked."""
        return self.installed and not self.hijacked


@dataclass(frozen=True)
class OutcomeRecord:
    """Picklable, trace-free projection of an :class:`InstallOutcome`.

    The unit the fleet engine ships across process boundaries, and what
    a compact :class:`repro.core.campaign.CampaignStats` retains per
    run: same read API as ``InstallOutcome``, minus the transaction
    trace (which references live simulator objects).
    """

    requested_package: str
    installed: bool = False
    installed_version: Optional[int] = None
    installed_certificate_owner: Optional[str] = None
    genuine_certificate_owner: Optional[str] = None
    hijacked: bool = False
    error: Optional[str] = None
    elapsed_ns: int = 0

    @classmethod
    def from_outcome(cls, outcome: InstallOutcome) -> "OutcomeRecord":
        return cls(
            requested_package=outcome.requested_package,
            installed=outcome.installed,
            installed_version=outcome.installed_version,
            installed_certificate_owner=outcome.installed_certificate_owner,
            genuine_certificate_owner=outcome.genuine_certificate_owner,
            hijacked=outcome.hijacked,
            error=outcome.error,
            elapsed_ns=outcome.elapsed_ns,
        )

    @property
    def clean_install(self) -> bool:
        """Installed and not hijacked."""
        return self.installed and not self.hijacked


@dataclass
class AttackResult:
    """What an attack module claims it achieved, plus verifiable facts."""

    attack_name: str
    ait_step: AITStep
    succeeded: bool
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "SUCCEEDED" if self.succeeded else "FAILED"
        return f"{self.attack_name} on AIT step {self.ait_step.value}: {status}"


@dataclass
class DefenseReport:
    """Alarms and blocks raised by the active defenses during a run."""

    defense_name: str
    alarms: List[str] = field(default_factory=list)
    blocked_operations: List[str] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        """True if the defense raised at least one alarm."""
        return bool(self.alarms)

    @property
    def prevented(self) -> bool:
        """True if the defense blocked at least one operation."""
        return bool(self.blocked_operations)
