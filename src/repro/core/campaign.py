"""Campaigns: batch scenario execution with aggregate statistics.

Powers Table VII (attack x defense effectiveness) and the Section VI-A
false-positive study (many benign installs, count spurious alarms).
``CampaignStats`` is also the unit of account of the fleet engine
(:mod:`repro.engine`): shard workers each produce one, and the merge
step folds them with :meth:`CampaignStats.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.outcomes import DefenseReport, InstallOutcome, OutcomeRecord
from repro.core.scenario import Scenario


@dataclass
class CampaignStats:
    """Aggregated results of a campaign.

    ``outcomes`` normally holds :class:`InstallOutcome` objects; stats
    returned by the fleet engine hold the slimmer, picklable
    :class:`repro.core.outcomes.OutcomeRecord` instead (same read API).

    ``compact``/``keep_outcomes`` set the retention policy *at record
    time* — the fleet path uses them so a 50k-install shard never holds
    50k transaction traces: ``compact=True`` projects each outcome to
    an :class:`OutcomeRecord` as it is recorded, and ``keep_outcomes``
    caps how many are retained (``None`` keeps all; ``0`` keeps none).
    Aggregate counters always cover every run regardless of policy.
    Policy fields are bookkeeping, excluded from equality.
    """

    #: The aggregate counters, in canonical order — the fields that
    #: must be conserved under any merge order (see :meth:`merge`).
    #: Consumers that compare or serialize counters (the fleet merge,
    #: the fuzz conservation oracle) read this instead of hardcoding
    #: the field list.
    COUNTER_FIELDS = (
        "runs", "installs_completed", "hijacks", "clean_installs",
        "errors", "alarms", "blocked", "alarmed_runs", "blocked_runs",
    )

    runs: int = 0
    installs_completed: int = 0
    hijacks: int = 0
    clean_installs: int = 0
    errors: int = 0
    alarms: int = 0
    blocked: int = 0
    alarmed_runs: int = 0
    blocked_runs: int = 0
    outcomes: List[InstallOutcome] = field(default_factory=list)
    #: Project outcomes to trace-free ``OutcomeRecord`` when recording.
    compact: bool = field(default=False, repr=False, compare=False)
    #: Retain at most this many outcomes (None = unlimited).
    keep_outcomes: Optional[int] = field(
        default=None, repr=False, compare=False)
    # Per-defense high-water marks of the cumulative report counters,
    # used to turn cumulative reports into per-run deltas.  Bookkeeping
    # only: excluded from equality and repr.
    _alarm_marks: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False)
    _blocked_marks: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False)

    def record(self, outcome: InstallOutcome,
               reports: Sequence[DefenseReport]) -> None:
        """Fold one run into the totals.

        Defense reports are *cumulative* over the life of a scenario,
        so each run's contribution is the delta of the counters since
        the previous ``record`` call that saw the same defense.  A
        counter smaller than its high-water mark means the report was
        reset (a fresh scenario re-using this stats object); the new
        total then counts in full.
        """
        self.runs += 1
        if self.keep_outcomes is None or len(self.outcomes) < self.keep_outcomes:
            if self.compact and not isinstance(outcome, OutcomeRecord):
                self.outcomes.append(OutcomeRecord.from_outcome(outcome))
            else:
                self.outcomes.append(outcome)
        if outcome.installed:
            self.installs_completed += 1
        if outcome.hijacked:
            self.hijacks += 1
        if outcome.clean_install:
            self.clean_installs += 1
        if outcome.error is not None:
            self.errors += 1
        alarm_delta = self._delta(
            self._alarm_marks, reports, lambda r: len(r.alarms))
        blocked_delta = self._delta(
            self._blocked_marks, reports, lambda r: len(r.blocked_operations))
        self.alarms += alarm_delta
        self.blocked += blocked_delta
        if alarm_delta:
            self.alarmed_runs += 1
        if blocked_delta:
            self.blocked_runs += 1

    @staticmethod
    def _delta(marks: Dict[str, int], reports: Sequence[DefenseReport],
               counter: Callable[[DefenseReport], int]) -> int:
        delta = 0
        for report in reports:
            total = counter(report)
            last = marks.get(report.defense_name, 0)
            if total < last:  # report reset under us: count it in full
                last = 0
            delta += total - last
            marks[report.defense_name] = total
        return delta

    def counter_tuple(self) -> Tuple[int, ...]:
        """The aggregate counters as a tuple, in canonical field order."""
        return tuple(getattr(self, name) for name in self.COUNTER_FIELDS)

    def merge(self, other: "CampaignStats") -> "CampaignStats":
        """Combine two stats into a new one (associative; identity =
        empty ``CampaignStats()``).

        The merged object is an aggregation snapshot: its delta
        bookkeeping is reset, so keep recording runs into the *input*
        stats, not into a merge result.
        """
        return CampaignStats(
            runs=self.runs + other.runs,
            installs_completed=self.installs_completed + other.installs_completed,
            hijacks=self.hijacks + other.hijacks,
            clean_installs=self.clean_installs + other.clean_installs,
            errors=self.errors + other.errors,
            alarms=self.alarms + other.alarms,
            blocked=self.blocked + other.blocked,
            alarmed_runs=self.alarmed_runs + other.alarmed_runs,
            blocked_runs=self.blocked_runs + other.blocked_runs,
            outcomes=list(self.outcomes) + list(other.outcomes),
        )

    @property
    def hijack_rate(self) -> float:
        """Fraction of runs that ended with the attacker's package installed."""
        return self.hijacks / self.runs if self.runs else 0.0

    @property
    def false_positive_rate(self) -> float:
        """Alarms per run — meaningful on all-benign campaigns."""
        return self.alarms / self.runs if self.runs else 0.0


class Campaign:
    """Run a sequence of installs through one scenario.

    Pass an existing ``stats`` to accumulate several campaigns (even
    over different scenarios) into one running total — the fleet
    engine's serial backend and multi-scenario studies both do this.
    """

    def __init__(self, scenario: Scenario,
                 stats: Optional[CampaignStats] = None) -> None:
        self.scenario = scenario
        self.stats = stats if stats is not None else CampaignStats()
        # Bound-instrument handles for the per-run counters, resolved on
        # the first observed run (not at construction) so metric names
        # appear in snapshots exactly when the legacy per-call lookups
        # would have created them.
        self._observe_bound: Optional[tuple] = None

    def install_many(self, packages: Sequence[str], arm_attacker: bool = True,
                     rearm_between: bool = True) -> CampaignStats:
        """Run one AIT per package, accumulating stats.

        ``rearm_between=False`` arms the attacker only for the first
        install (a one-shot attacker), which is how single-target
        attacks behave in the wild.
        """
        for index, package in enumerate(packages):
            arm_now = arm_attacker and (index == 0 or rearm_between)
            outcome = self.scenario.run_install(package, arm_attacker=arm_now)
            alarms_before = self.stats.alarms
            blocked_before = self.stats.blocked
            self.stats.record(outcome, self.scenario.defense_reports())
            self._observe_run(outcome, index,
                              self.stats.alarms - alarms_before,
                              self.stats.blocked - blocked_before)
        return self.stats

    def _observe_run(self, outcome: InstallOutcome, index: int,
                     alarm_delta: int, blocked_delta: int) -> None:
        """Narrate one campaign run to the observability layer."""
        obs = self.scenario.obs
        if obs.enabled and (alarm_delta or blocked_delta):
            obs.event(
                "campaign/defense_reaction", self.scenario.system.now_ns,
                package=outcome.requested_package, run_index=index,
                alarms=alarm_delta, blocked=blocked_delta,
            )
        metrics = self.scenario.metrics
        if metrics is not None:
            bound = self._observe_bound
            if bound is None:
                bound = self._observe_bound = (
                    metrics.bind_counter("campaign/runs"),
                    metrics.bind_counter("campaign/alarms"),
                    metrics.bind_counter("campaign/blocked"),
                )
            inc_runs, inc_alarms, inc_blocked = bound
            inc_runs()
            inc_alarms(alarm_delta)
            inc_blocked(blocked_delta)
            # Conditional counters stay dynamic lookups: binding would
            # create them in snapshots before the first nonzero delta.
            if alarm_delta:
                metrics.counter("campaign/alarmed_runs").inc()
            if blocked_delta:
                metrics.counter("campaign/blocked_runs").inc()


def benign_workload(scenario: Scenario, count: int,
                    size_bytes: int = 4096) -> List[str]:
    """Publish ``count`` benign apps and return their package names.

    Used by the false-positive study: the 45-day / 924-install field
    test becomes a randomized benign install stream.
    """
    packages = []
    for index in range(count):
        package = f"com.benign.app{index:04d}"
        scenario.publish_app(
            package,
            label=f"Benign App {index}",
            size_bytes=size_bytes + scenario.system.rng.randint(0, size_bytes),
        )
        packages.append(package)
    return packages
