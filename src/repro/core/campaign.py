"""Campaigns: batch scenario execution with aggregate statistics.

Powers Table VII (attack x defense effectiveness) and the Section VI-A
false-positive study (many benign installs, count spurious alarms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.outcomes import DefenseReport, InstallOutcome
from repro.core.scenario import Scenario


@dataclass
class CampaignStats:
    """Aggregated results of a campaign."""

    runs: int = 0
    installs_completed: int = 0
    hijacks: int = 0
    clean_installs: int = 0
    errors: int = 0
    alarms: int = 0
    blocked: int = 0
    outcomes: List[InstallOutcome] = field(default_factory=list)

    def record(self, outcome: InstallOutcome,
               reports: Sequence[DefenseReport]) -> None:
        """Fold one run into the totals."""
        self.runs += 1
        self.outcomes.append(outcome)
        if outcome.installed:
            self.installs_completed += 1
        if outcome.hijacked:
            self.hijacks += 1
        if outcome.clean_install:
            self.clean_installs += 1
        if outcome.error is not None:
            self.errors += 1
        self.alarms = sum(len(report.alarms) for report in reports)
        self.blocked = sum(len(report.blocked_operations) for report in reports)

    @property
    def hijack_rate(self) -> float:
        """Fraction of runs that ended with the attacker's package installed."""
        return self.hijacks / self.runs if self.runs else 0.0

    @property
    def false_positive_rate(self) -> float:
        """Alarms per run — meaningful on all-benign campaigns."""
        return self.alarms / self.runs if self.runs else 0.0


class Campaign:
    """Run a sequence of installs through one scenario."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self.stats = CampaignStats()

    def install_many(self, packages: Sequence[str], arm_attacker: bool = True,
                     rearm_between: bool = True) -> CampaignStats:
        """Run one AIT per package, accumulating stats.

        ``rearm_between=False`` arms the attacker only for the first
        install (a one-shot attacker), which is how single-target
        attacks behave in the wild.
        """
        for index, package in enumerate(packages):
            arm_now = arm_attacker and (index == 0 or rearm_between)
            outcome = self.scenario.run_install(package, arm_attacker=arm_now)
            self.stats.record(outcome, self.scenario.defense_reports())
        return self.stats


def benign_workload(scenario: Scenario, count: int,
                    size_bytes: int = 4096) -> List[str]:
    """Publish ``count`` benign apps and return their package names.

    Used by the false-positive study: the 45-day / 924-install field
    test becomes a randomized benign install stream.
    """
    packages = []
    for index in range(count):
        package = f"com.benign.app{index:04d}"
        scenario.publish_app(
            package,
            label=f"Benign App {index}",
            size_bytes=size_bytes + scenario.system.rng.randint(0, size_bytes),
        )
        packages.append(package)
    return packages
