"""The App Installation Transaction (AIT) model — the paper's Figure 1.

Every installer implementation narrates its transaction through a
:class:`TransactionTrace`: which of the four steps ran, when, with what
mechanism (Download Manager vs self-download, PMS vs PIA, SD-Card vs
internal storage).  Traces power the Figure 1 reproduction and give
tests a precise way to assert *where* in the AIT an attack landed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class AITStep(enum.Enum):
    """The four steps of the App Installation Transaction (Figure 1)."""

    INVOCATION = 1
    DOWNLOAD = 2
    TRIGGER = 3
    INSTALL = 4

    @property
    def title(self) -> str:
        """Human-readable step title, matching the paper's wording."""
        return {
            AITStep.INVOCATION: "AIT Invocation",
            AITStep.DOWNLOAD: "APK Download",
            AITStep.TRIGGER: "Installation Trigger",
            AITStep.INSTALL: "APK Install",
        }[self]


@dataclass
class StepTrace:
    """One recorded step of a transaction."""

    step: AITStep
    start_ns: int
    end_ns: int = -1
    mechanism: str = ""
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        """Step duration, or -1 if the step never completed."""
        if self.end_ns < 0:
            return -1
        return self.end_ns - self.start_ns


@dataclass
class TransactionTrace:
    """The full record of one AIT run by one installer."""

    installer_package: str
    target_package: str
    steps: List[StepTrace] = field(default_factory=list)
    completed: bool = False
    error: Optional[str] = None

    def begin(self, step: AITStep, start_ns: int, mechanism: str = "",
              **detail: Any) -> StepTrace:
        """Open a step; returns the trace entry to close later."""
        entry = StepTrace(step=step, start_ns=start_ns, mechanism=mechanism,
                          detail=dict(detail))
        self.steps.append(entry)
        return entry

    def step_for(self, step: AITStep) -> Optional[StepTrace]:
        """The last recorded entry for ``step``, if any."""
        for entry in reversed(self.steps):
            if entry.step is step:
                return entry
        return None

    def mechanisms(self) -> Dict[AITStep, str]:
        """Step -> mechanism map (the Figure 1 'design variant' row)."""
        return {entry.step: entry.mechanism for entry in self.steps}

    def emit_spans(self, recorder: Any, **attrs: Any) -> None:
        """Replay this transaction into an observability recorder.

        One span per recorded step (``ait/download``, ``ait/install``,
        ...), keyed on the simulated-time interval the step occupied.
        A step that never completed gets a zero-length span tagged
        ``aborted``.  Extra ``attrs`` ride on every span.
        """
        if not getattr(recorder, "enabled", False):
            return
        for entry in self.steps:
            aborted = entry.end_ns < 0
            recorder.span(
                f"ait/{entry.step.name.lower()}",
                entry.start_ns,
                entry.start_ns if aborted else entry.end_ns,
                installer=self.installer_package,
                package=self.target_package,
                mechanism=entry.mechanism,
                aborted=aborted,
                **attrs,
            )

    def describe(self) -> str:
        """Multi-line rendering of the transaction (Figure 1 style)."""
        lines = [
            f"AIT of {self.installer_package} installing {self.target_package}:"
        ]
        for entry in self.steps:
            duration = entry.duration_ns
            duration_text = f"{duration / 1e6:.2f} ms" if duration >= 0 else "aborted"
            lines.append(
                f"  [{entry.step.value}] {entry.step.title:22s} "
                f"via {entry.mechanism or 'n/a':28s} ({duration_text})"
            )
        status = "completed" if self.completed else f"failed: {self.error}"
        lines.append(f"  -> {status}")
        return "\n".join(lines)
