"""The paper's contribution as a library: AIT modelling and scenarios.

- :mod:`repro.core.ait` — the four-step App Installation Transaction
  model (Figure 1) with per-step tracing,
- :mod:`repro.core.outcomes` — structured results of installs, attacks
  and defenses,
- :mod:`repro.core.scenario` — compose a device + installer + attacker
  + defenses into one runnable experiment,
- :mod:`repro.core.campaign` — batch scenario execution with
  success/detection statistics (powers Table VII and the
  false-positive study).

``Scenario`` and ``Campaign`` are provided lazily (PEP 562): they pull
in the installers and attacks packages, which themselves import
``repro.core.ait`` — eager imports here would cycle.
"""

from repro.core.ait import AITStep, StepTrace, TransactionTrace
from repro.core.outcomes import AttackResult, DefenseReport, InstallOutcome

__all__ = [
    "AITStep",
    "StepTrace",
    "TransactionTrace",
    "InstallOutcome",
    "AttackResult",
    "DefenseReport",
    "Scenario",
    "Campaign",
    "CampaignStats",
    "Timeline",
]

_LAZY = {
    "Scenario": ("repro.core.scenario", "Scenario"),
    "Campaign": ("repro.core.campaign", "Campaign"),
    "CampaignStats": ("repro.core.campaign", "CampaignStats"),
    "Timeline": ("repro.core.timeline", "Timeline"),
}


def __getattr__(name):
    """Resolve the heavyweight exports on first access."""
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value
