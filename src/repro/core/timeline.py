"""Attack timelines: an annotated, human-readable event record.

A :class:`Timeline` taps the simulated device's global streams — every
filesystem event, every package broadcast, every Intent the firewall
sees — and merges them with the installer's AIT step boundaries into
one time-ordered transcript.  It is the tool you reach for when a
hijack 'shouldn't have worked': the transcript shows exactly which
CLOSE_NOWRITE the attacker counted and where the swap landed relative
to the integrity check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.android.filesystem import FileEvent
from repro.android.pms import PackageBroadcast
from repro.core.ait import TransactionTrace


@dataclass(frozen=True)
class TimelineEntry:
    """One annotated moment."""

    time_ns: int
    source: str      # fs | pms | ait | note
    text: str


@dataclass
class Timeline:
    """A recording of everything observable on one device."""

    system: "object"
    entries: List[TimelineEntry] = field(default_factory=list)
    _started: bool = False

    def start(self) -> "Timeline":
        """Begin recording; returns self for chaining."""
        if not self._started:
            self._started = True
            self.system.hub.subscribe("fs:*", self._on_fs_event)
            for action in (
                "android.intent.action.PACKAGE_ADDED",
                "android.intent.action.PACKAGE_REPLACED",
                "android.intent.action.PACKAGE_REMOVED",
            ):
                self.system.hub.subscribe(f"broadcast:{action}",
                                          self._on_broadcast)
        return self

    def note(self, text: str) -> None:
        """Add a manual annotation at the current simulated time."""
        self.entries.append(
            TimelineEntry(self.system.now_ns, "note", text)
        )

    def absorb_trace(self, trace: TransactionTrace) -> None:
        """Fold an AIT trace's step boundaries into the timeline."""
        for step in trace.steps:
            self.entries.append(TimelineEntry(
                step.start_ns, "ait",
                f"step {step.step.value} ({step.step.title}) begins "
                f"via {step.mechanism}",
            ))
            if step.end_ns >= 0:
                self.entries.append(TimelineEntry(
                    step.end_ns, "ait",
                    f"step {step.step.value} ({step.step.title}) ends",
                ))

    def render(self, limit: Optional[int] = None,
               sources: Optional[set] = None) -> str:
        """The transcript, time-sorted, optionally filtered by source."""
        selected = [
            entry for entry in sorted(self.entries, key=lambda e: (e.time_ns,))
            if sources is None or entry.source in sources
        ]
        if limit is not None:
            selected = selected[:limit]
        lines = []
        for entry in selected:
            lines.append(
                f"{entry.time_ns / 1e6:>10.2f} ms  [{entry.source:4s}] "
                f"{entry.text}"
            )
        return "\n".join(lines)

    def events_for(self, name_fragment: str) -> List[TimelineEntry]:
        """Entries mentioning ``name_fragment`` (e.g. an APK name)."""
        return [entry for entry in self.entries if name_fragment in entry.text]

    # -- taps -----------------------------------------------------------------

    def _on_fs_event(self, event: FileEvent) -> None:
        self.entries.append(TimelineEntry(
            event.time_ns, "fs", f"{event.event_type.value:13s} {event.path}"
        ))

    def _on_broadcast(self, broadcast: PackageBroadcast) -> None:
        self.entries.append(TimelineEntry(
            broadcast.time_ns, "pms",
            f"{broadcast.action.rsplit('.', 1)[-1]} {broadcast.package} "
            f"v{broadcast.version_code} (installer: {broadcast.installer})",
        ))
