"""Scenario: one device + installer + (optional) attacker + defenses.

A scenario provisions a simulated device end to end: the installer app
is pre-installed with ``INSTALL_PACKAGES`` (when its profile installs
silently), target apps are published to the store backend, the
malicious app is planted with SD-Card permissions, and any combination
of the paper's defenses is switched on.  ``run_install`` then executes
one full AIT and reports ground truth: did the genuine app land, or the
attacker's repackaged twin?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Type,
    Union,
)

from repro.errors import ReproError
from repro.android.apk import Apk, ApkBuilder
from repro.android.device import DeviceProfile, nexus5
from repro.android.permissions import (
    DELETE_PACKAGES,
    INSTALL_PACKAGES,
    INTERNET,
    READ_EXTERNAL_STORAGE,
    WRITE_EXTERNAL_STORAGE,
)
from repro.android.pia import ConsentUser
from repro.android.signing import SigningKey
from repro.android.system import AndroidSystem
from repro.attacks.base import ATTACKER_PAYLOAD, MaliciousApp
from repro.core.outcomes import DefenseReport, InstallOutcome
from repro.installers.base import BaseInstaller
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_RECORDER, NullRecorder
from repro.sim.clock import seconds

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.defenses.dapp import Dapp
    from repro.defenses.fuse_dac import HardenedFuseDaemon
    from repro.defenses.intent_detection import IntentDetectionScheme
    from repro.defenses.intent_origin import IntentOriginScheme

DEVELOPER_KEY = SigningKey("legit-developer", "release")

# Generous upper bound on one AIT in simulated time; polling attackers
# are armed for this long.
AIT_BUDGET_NS = seconds(60)

DefenseName = str
VALID_DEFENSES = ("dapp", "dapp-rescan", "fuse-dac", "intent-detection",
                  "intent-origin")


@dataclass
class Scenario:
    """A composed, runnable experiment."""

    system: AndroidSystem
    installer: BaseInstaller
    attacker: Optional[MaliciousApp] = None
    dapp: Optional["Dapp"] = None
    fuse_dac: Optional["HardenedFuseDaemon"] = None
    intent_detection: Optional["IntentDetectionScheme"] = None
    intent_origin: Optional["IntentOriginScheme"] = None
    listings: Dict[str, object] = field(default_factory=dict)
    extra_installers: List[BaseInstaller] = field(default_factory=list)
    # Bound-instrument handles for _observe_outcome, resolved lazily
    # (bookkeeping only — excluded from equality and repr).
    _outcome_bound: Optional[tuple] = field(
        default=None, repr=False, compare=False)

    @property
    def obs(self) -> NullRecorder:
        """The device's trace recorder (NULL_RECORDER when off)."""
        return self.system.obs

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The device's metrics registry (None when off)."""
        return self.system.metrics

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(cls, installer: Union[Type[BaseInstaller], BaseInstaller],
              attacker: Optional[Union[Type[MaliciousApp], Callable[..., MaliciousApp]]] = None,
              attacker_factory: Optional[Callable[["Scenario"], MaliciousApp]] = None,
              device: Optional[DeviceProfile] = None,
              defenses: Sequence[DefenseName] = (),
              seed: int = 7,
              recorder: Optional[NullRecorder] = None,
              metrics: Optional[MetricsRegistry] = None) -> "Scenario":
        """Provision a device with ``installer`` and optional extras.

        ``attacker`` may be a MaliciousApp subclass whose constructor
        takes no arguments; attacks needing configuration (fingerprints,
        victim names) use ``attacker_factory``, called with the
        half-built scenario.  ``recorder``/``metrics`` switch on
        observability for the device and everything attached to it.
        """
        system = AndroidSystem(profile=device or nexus5(), seed=seed,
                               recorder=recorder, metrics=metrics)
        installer_app = installer if isinstance(installer, BaseInstaller) else installer()
        scenario = cls(system=system, installer=installer_app)
        scenario._provision_installer()
        scenario._apply_defenses(defenses)
        if attacker_factory is not None:
            scenario.attacker = attacker_factory(scenario)
        elif attacker is not None:
            scenario.attacker = attacker()
        if scenario.attacker is not None:
            scenario._provision_attacker()
        return scenario

    def _provision_installer(self) -> None:
        profile = self.installer.profile
        builder = (
            ApkBuilder(profile.package)
            .label(profile.label)
            .uses_permission(INTERNET, READ_EXTERNAL_STORAGE,
                             WRITE_EXTERNAL_STORAGE)
        )
        if profile.silent:
            builder.uses_permission(INSTALL_PACKAGES, DELETE_PACKAGES)
        apk = builder.payload(b"<installer code>").build(self.system.platform_key)
        self.system.install_system_app(apk)
        self.system.attach(self.installer)

    def attach_installer(self, installer: Union[Type[BaseInstaller],
                                                BaseInstaller]) -> BaseInstaller:
        """Provision an additional store on the same device.

        Real devices ship several installers at once (a vendor store,
        a carrier pusher, side-loaded markets); each is a separate
        attack surface.  Returns the attached installer; publish apps
        to it via ``publish_app(..., installer=<returned>)`` and run
        with ``run_install(..., installer=<returned>)``.
        """
        extra = installer if isinstance(installer, BaseInstaller) else installer()
        current = self.installer
        try:
            self.installer = extra
            self._provision_installer()
        finally:
            self.installer = current
        self.extra_installers.append(extra)
        if self.dapp is not None:
            # DAPP covers every store's staging directory it knows of.
            self.dapp.watch(
                extra.profile.staging_dir(
                    self.system.layout.app_private_dir(extra.package)
                )
            )
        return extra

    def _provision_attacker(self) -> None:
        apk = MaliciousApp.build_apk(self.attacker.package)
        self.system.install_user_app(apk, installer="com.android.vending")
        self.system.attach(self.attacker)

    def _apply_defenses(self, defenses: Sequence[DefenseName]) -> None:
        from repro.defenses.dapp import Dapp
        from repro.defenses.fuse_dac import install_fuse_dac
        from repro.defenses.intent_detection import IntentDetectionScheme
        from repro.defenses.intent_origin import IntentOriginScheme

        for name in defenses:
            if name not in VALID_DEFENSES:
                raise ReproError(
                    f"unknown defense {name!r}; valid: {VALID_DEFENSES}"
                )
        if "dapp" in defenses and "dapp-rescan" in defenses:
            # Both are the same protection app (org.gia.dapp); a device
            # runs one or the other, never both.
            raise ReproError("defenses 'dapp' and 'dapp-rescan' are "
                             "mutually exclusive variants of the same app")
        if "fuse-dac" in defenses:
            self.fuse_dac = install_fuse_dac(self.system)
        if "dapp" in defenses or "dapp-rescan" in defenses:
            from repro.defenses.dapp_rescan import DappRescan

            dapp_cls = DappRescan if "dapp-rescan" in defenses else Dapp
            staging = self.installer.profile.staging_dir(
                self.system.layout.app_private_dir(self.installer.package)
            )
            dapp_apk = (
                ApkBuilder(Dapp.package)
                .label("DAPP")
                .uses_permission(READ_EXTERNAL_STORAGE, WRITE_EXTERNAL_STORAGE)
                .payload(b"<dapp code>")
                .build(DEVELOPER_KEY)
            )
            self.system.install_user_app(dapp_apk, installer="com.android.vending")
            self.dapp = dapp_cls(watch_dirs=[staging])
            self.system.attach(self.dapp)
        if "intent-detection" in defenses:
            self.intent_detection = IntentDetectionScheme().install(self.system.firewall)
            self.intent_detection.bind_observability(self.system.obs)
        if "intent-origin" in defenses:
            self.intent_origin = IntentOriginScheme().install(self.system.firewall)
            self.intent_origin.bind_observability(self.system.obs)

    # -- store content ------------------------------------------------------------------

    def publish_app(self, package: str, label: str = "", size_bytes: int = 4096,
                    uses_permissions: Sequence[str] = (),
                    version: int = 1, key: Optional[SigningKey] = None,
                    app_id: str = "",
                    installer: Optional[BaseInstaller] = None) -> object:
        """Publish a genuine app to a store backend (default: the main one)."""
        builder = ApkBuilder(package).version(version).payload_size(size_bytes)
        if label:
            builder.label(label)
        if uses_permissions:
            builder.uses_permission(*uses_permissions)
        apk = builder.build(key or DEVELOPER_KEY)
        target = installer or self.installer
        listing = target.backend.publish(apk, app_id=app_id)
        self.listings[package] = listing
        return listing

    def publish_apk(self, apk: Apk, app_id: str = "") -> object:
        """Publish a pre-built APK (e.g. a platform-signed system app)."""
        listing = self.installer.backend.publish(apk, app_id=app_id)
        self.listings[apk.package] = listing
        return listing

    # -- execution -----------------------------------------------------------------------

    def run_install(self, package: str, arm_attacker: bool = True,
                    user: Optional[ConsentUser] = None,
                    installer: Optional[BaseInstaller] = None) -> InstallOutcome:
        """Run one full AIT for ``package`` and report ground truth."""
        if package not in self.listings:
            raise ReproError(f"publish_app({package!r}) before installing it")
        if arm_attacker and self.attacker is not None:
            self._arm_attacker()
        runner = installer or self.installer
        start_ns = self.system.now_ns
        process = self.system.kernel.spawn(
            runner.run_ait(package, user=user),
            name=f"ait-{package}",
        )
        self.system.run()
        outcome = self._outcome(package, process, start_ns, runner)
        self._observe_outcome(outcome)
        return outcome

    def _observe_outcome(self, outcome: InstallOutcome) -> None:
        """Replay one AIT's result into the observability layer."""
        obs = self.system.obs
        if obs.enabled:
            if outcome.trace is not None:
                outcome.trace.emit_spans(obs)
            obs.event(
                "install/outcome", self.system.now_ns,
                package=outcome.requested_package,
                installed=outcome.installed,
                hijacked=outcome.hijacked,
                error=outcome.error or "",
            )
            if outcome.hijacked:
                obs.event("attack/hijack", self.system.now_ns,
                          package=outcome.requested_package,
                          signer=outcome.installed_certificate_owner or "")
        metrics = self.system.metrics
        if metrics is not None:
            # Bound handles for the unconditional instruments, resolved
            # on the first outcome so snapshot keys appear exactly when
            # legacy per-call lookups would have created them.  The
            # conditional counters stay dynamic for the same reason.
            bound = self._outcome_bound
            if bound is None:
                bound = self._outcome_bound = (
                    metrics.bind_counter("ait/runs"),
                    metrics.bind_histogram("ait/elapsed_ns"),
                )
            inc_runs, observe_elapsed = bound
            inc_runs()
            if outcome.installed:
                metrics.counter("ait/installed").inc()
            if outcome.hijacked:
                metrics.counter("ait/hijacked").inc()
            if outcome.error is not None:
                metrics.counter("ait/errors").inc()
            observe_elapsed(outcome.elapsed_ns)

    def _arm_attacker(self) -> None:
        arm = getattr(self.attacker, "arm", None)
        if arm is None:
            return
        try:
            arm()
        except TypeError:
            arm(AIT_BUDGET_NS)

    def _outcome(self, package: str, process: object, start_ns: int,
                 runner: Optional[BaseInstaller] = None) -> InstallOutcome:
        listing = self.listings[package]
        installed = self.system.pms.get_package(package)
        runner = runner or self.installer
        outcome = InstallOutcome(
            requested_package=package,
            elapsed_ns=self.system.now_ns - start_ns,
            genuine_certificate_owner=listing.apk.certificate.owner,
            trace=runner.traces[-1] if runner.traces else None,
        )
        if process.error is not None:
            outcome.error = str(process.error)
        if installed is not None:
            outcome.installed = True
            outcome.installed_version = installed.version_code
            outcome.installed_certificate_owner = installed.certificate.owner
            outcome.hijacked = (
                installed.certificate != listing.apk.certificate
                or ATTACKER_PAYLOAD in installed.payload
            )
        return outcome

    # -- reporting ------------------------------------------------------------------------

    def defense_reports(self) -> List[DefenseReport]:
        """Reports of every active defense."""
        reports = []
        if self.dapp is not None:
            reports.append(self.dapp.report)
        if self.fuse_dac is not None:
            reports.append(self.fuse_dac.report)
        if self.intent_detection is not None:
            reports.append(self.intent_detection.report)
        if self.intent_origin is not None:
            reports.append(self.intent_origin.report)
        return reports

    @property
    def any_defense_reacted(self) -> bool:
        """True if any active defense detected or prevented something."""
        return any(
            report.detected or report.prevented
            for report in self.defense_reports()
        )
