"""DTIgnite (Digital Turbine Ignite) — carrier bloatware pusher.

A pre-installed system app used by 30+ carriers to silently push apps
post-sale.  Paper facts reproduced (Section III-B):

- APKs fetched by the **AOSP Download Manager** into
  ``/sdcard/DTIgnite``,
- hash verification before a **silent** install via the PMS,
- both the FileObserver attack and a "wait-and-see" replacement
  **2 seconds** after download completion succeed on it.
"""

from __future__ import annotations

from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis

DTIGNITE_PACKAGE = "com.dti.ignite"

DTIGNITE_PROFILE = InstallerProfile(
    package=DTIGNITE_PACKAGE,
    label="DTIgnite",
    uses_sdcard=True,
    download_dir="/sdcard/DTIgnite",
    uses_download_manager=True,
    verify_hash=True,
    verify_reads=1,
    verify_start_delay_ns=millis(1000),
    install_delay_ns=millis(2500),
    silent=True,
)


class DTIgniteInstaller(BaseInstaller):
    """The carrier push installer."""

    profile = DTIGNITE_PROFILE

    def push_app(self, package: str):
        """Carrier-initiated silent push of ``package`` (no user at all)."""
        return self.system.kernel.spawn(
            self.run_ait(package), name=f"dtignite-push-{package}"
        )
