"""The Tencent MyApp appstore (``com.tencent.android.qqdownloader``).

One of the "popular appstore apps (Baidu, Tencent, Qihoo360, SlideMe)"
the paper tested and found vulnerable (Section IV-B, Table V text).
Fingerprint: SD-Card staging, 2-pass integrity check, silent install.
"""

from __future__ import annotations

from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis

TENCENT_PACKAGE = "com.tencent.android.qqdownloader"

TENCENT_PROFILE = InstallerProfile(
    package=TENCENT_PACKAGE,
    label="tencent-myapp",
    uses_sdcard=True,
    download_dir="/sdcard/tencent/tassistant/apk",
    verify_hash=True,
    verify_reads=2,
    verify_start_delay_ns=millis(150),
    per_read_ns=millis(60),
    install_delay_ns=millis(350),
    silent=True,
)


class TencentInstaller(BaseInstaller):
    """Tencent MyApp."""

    profile = TENCENT_PROFILE
