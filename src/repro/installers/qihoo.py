"""The Qihoo360 appstore (``com.qihoo.appstore``).

The paper calls Qihoo360 out as a renowned security company whose store
nonetheless stages APKs on the SD-Card; its integrity check makes **3**
read passes (3 ``CLOSE_NOWRITE`` events) before installation
(Section III-B).
"""

from __future__ import annotations

from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis

QIHOO_PACKAGE = "com.qihoo.appstore"

QIHOO_PROFILE = InstallerProfile(
    package=QIHOO_PACKAGE,
    label="qihoo360-appstore",
    uses_sdcard=True,
    download_dir="/sdcard/360Download",
    verify_hash=True,
    verify_reads=3,
    verify_start_delay_ns=millis(100),
    per_read_ns=millis(80),
    install_delay_ns=millis(300),
    silent=True,
)


class QihooInstaller(BaseInstaller):
    """The Qihoo360 appstore."""

    profile = QIHOO_PROFILE
