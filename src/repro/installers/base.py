"""The installer framework: store backends, profiles and the AIT engine.

:class:`BaseInstaller.run_ait` is a faithful rendering of the four-step
transaction of Figure 1, parameterized by an :class:`InstallerProfile`
that captures every security-relevant design choice the paper observed
in the wild.  Concrete installers (Amazon, Xiaomi, DTIgnite, ...) are
thin profile + interface wrappers in sibling modules.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.errors import DownloadError, InstallError, InstallVerificationError
from repro.android.apk import Apk, hash_bytes
from repro.android.app import App
from repro.android.packages import InstalledPackage
from repro.android.pia import ConsentUser
from repro.core.ait import AITStep, TransactionTrace
from repro.sim.clock import millis
from repro.sim.kernel import Sleep, SimEvent, WaitFor

DOWNLOAD_CHUNKS = 4


@dataclass(frozen=True)
class StoreListing:
    """One app as the store backend serves it: bytes plus metadata.

    ``file_hash`` and ``manifest_checksum`` are the integrity anchors
    real stores ship alongside the APK.
    """

    package: str
    apk: Apk
    url: str
    file_hash: str
    manifest_checksum: str
    app_id: str = ""

    @property
    def label(self) -> str:
        """Display label (what the store page shows)."""
        return self.apk.manifest.label


class AppStoreBackend:
    """The store's server side: hosts APKs and metadata on the network."""

    def __init__(self, network: "object", store_name: str) -> None:
        self._network = network
        self.store_name = store_name
        self._listings: Dict[str, StoreListing] = {}

    def publish(self, apk: Apk, app_id: str = "") -> StoreListing:
        """Add (or update) ``apk`` in the catalogue and host its bytes."""
        url = f"https://{self.store_name}.example/apk/{apk.package}"
        payload = apk.to_bytes()
        self._network.host(url, payload)
        listing = StoreListing(
            package=apk.package,
            apk=apk,
            url=url,
            file_hash=hash_bytes(payload),
            manifest_checksum=apk.manifest.checksum(),
            app_id=app_id or f"id-{len(self._listings) + 1}",
        )
        self._listings[apk.package] = listing
        return listing

    def get(self, package: str) -> StoreListing:
        """Catalogue lookup; raises :class:`InstallError` on a miss."""
        listing = self._listings.get(package)
        if listing is None:
            raise InstallError(f"{self.store_name} has no listing for {package}")
        return listing

    def by_app_id(self, app_id: str) -> Optional[StoreListing]:
        """Lookup by store-internal app id (used by push messages)."""
        for listing in self._listings.values():
            if listing.app_id == app_id:
                return listing
        return None

    def packages(self) -> List[str]:
        """All published package names."""
        return sorted(self._listings)


@dataclass(frozen=True)
class InstallerProfile:
    """Every AIT design choice the paper found security-relevant."""

    package: str
    label: str
    # -- storage (Section II) --
    uses_sdcard: bool = True
    download_dir: str = ""
    randomize_names: bool = False
    world_readable_staging: bool = False  # required for internal staging
    # -- download (Step 2) --
    uses_download_manager: bool = False
    # -- integrity check fingerprint (Step 3) --
    verify_hash: bool = True
    verify_reads: int = 1            # CLOSE_NOWRITE events per check
    verify_start_delay_ns: int = millis(50)
    per_read_ns: int = millis(40)
    install_delay_ns: int = millis(200)  # gap between check and PMS/PIA
    redownload_on_corrupt: bool = True
    max_retries: int = 2
    rename_on_complete: bool = False     # Xiaomi's tmp-name dance
    # -- install (Step 4) --
    silent: bool = True                   # PMS (INSTALL_PACKAGES) vs PIA
    uses_pms_verification: bool = False   # installPackageWithVerification
    drm_self_check: bool = False          # new-Amazon tamper self-check
    delete_after_install: bool = False

    def staging_dir(self, private_dir: str) -> str:
        """Where this installer stages APKs."""
        if self.uses_sdcard:
            return self.download_dir or f"/sdcard/{self.label}"
        return f"{private_dir}/staging"


class BaseInstaller(App):
    """An installer app driving full AITs against its store backend."""

    profile: InstallerProfile

    def __init__(self, profile: Optional[InstallerProfile] = None) -> None:
        if profile is not None:
            self.profile = profile
        super().__init__(package=self.profile.package)
        self.backend: Optional[AppStoreBackend] = None
        self.displayed_package: Optional[str] = None
        self.displayed_origin: Optional[str] = None
        self.display_history: List[Any] = []
        self.traces: List[TransactionTrace] = []
        self.tampered = False  # set by the repackaging attack

    # -- wiring ------------------------------------------------------------------

    def on_attached(self) -> None:
        if self.backend is None:
            self.backend = AppStoreBackend(self.system.network, self.profile.label)
        staging = self.profile.staging_dir(self.private_dir)
        if not self.system.fs.exists(staging):
            self.make_dirs(staging)

    # -- store UI (AIT Step 1 surface) ---------------------------------------------

    def handle_intent(self, intent: Any) -> None:
        """Default store activity: show the app page an Intent asks for."""
        shown = intent.extras.get("show_package")
        if shown is not None:
            self.displayed_package = shown
            # Suggestion 4: surface the redirect's origin when the
            # platform delivers it (the Intent-origin defense).  On
            # stock Android this is always None.
            self.displayed_origin = intent.get_intent_origin()
            self.display_history.append((self.system.now_ns, shown, intent))

    def user_clicks_install(self, user: Optional[ConsentUser] = None):
        """The user taps Install on whatever app page is displayed *now*.

        This is the moment the redirect-Intent attack targets: the page
        may have been silently switched since the user was redirected
        here.  Returns the spawned process.
        """
        if self.displayed_package is None:
            raise InstallError(f"{self.package} has no app page displayed")
        return self.system.kernel.spawn(
            self.run_ait(self.displayed_package, user=user),
            name=f"{self.profile.label}-install-{self.displayed_package}",
        )

    def user_clicks_install_if_trusted(self, trusted_origins,
                                       user: Optional[ConsentUser] = None):
        """Suggestion 4's origin-aware tap: decline unfamiliar senders.

        With the Intent-origin defense installed, the store can show the
        user *who* redirected them here.  A cautious user installs only
        when the origin is one they recognize.  Returns the spawned
        install process, or None when the user backs out.
        """
        if self.displayed_origin is not None \
                and self.displayed_origin not in trusted_origins:
            return None
        return self.user_clicks_install(user=user)

    # -- the transaction (Steps 2-4) -------------------------------------------------

    def run_ait(self, target_package: str, user: Optional[ConsentUser] = None,
                ) -> Generator[Any, Any, InstalledPackage]:
        """Run the full App Installation Transaction for ``target_package``."""
        if self.profile.drm_self_check and self.tampered_check_active():
            raise InstallError(f"{self.package}: DRM self-check failed")
        listing = self.backend.get(target_package)
        trace = TransactionTrace(
            installer_package=self.package, target_package=target_package
        )
        self.traces.append(trace)
        attempts = 0
        while True:
            attempts += 1
            try:
                staged_path = yield from self._download(listing, trace)
            except DownloadError as exc:
                # Transient network failure: retry like real stores do.
                if attempts > self.profile.max_retries:
                    trace.error = str(exc)
                    raise InstallError(
                        f"{self.package}: download of {target_package} "
                        f"failed: {exc}"
                    ) from exc
                yield Sleep(self.profile.verify_start_delay_ns)
                continue
            verified = yield from self._verify(staged_path, listing, trace)
            if verified:
                break
            if not self.profile.redownload_on_corrupt or attempts > self.profile.max_retries:
                trace.error = "integrity check failed"
                raise InstallVerificationError(
                    f"{self.package}: hash mismatch for {target_package}"
                )
            # Transparent re-download — the retry loop the paper notes
            # gives the attacker another shot at the window.
        yield Sleep(self.profile.install_delay_ns)
        package = yield from self._install(staged_path, listing, trace, user)
        if self.profile.delete_after_install and self.system.fs.exists(staged_path):
            self.delete_file(staged_path)
        trace.completed = True
        return package

    # -- Step 2: download ---------------------------------------------------------------

    def _download(self, listing: StoreListing,
                  trace: TransactionTrace) -> Generator[Any, Any, str]:
        staging = self.profile.staging_dir(self.private_dir)
        if not self.system.fs.exists(staging):
            self.make_dirs(staging)
        filename = self._staged_filename(listing)
        final_path = posixpath.join(staging, filename)
        mechanism = (
            "DownloadManager" if self.profile.uses_download_manager else "self-download"
        )
        storage = "sdcard" if self.profile.uses_sdcard else "internal"
        entry = trace.begin(AITStep.DOWNLOAD, self.system.now_ns,
                            mechanism=f"{mechanism}/{storage}", path=final_path)
        if self.profile.rename_on_complete:
            download_path = final_path + ".tmp"
        else:
            download_path = final_path
        if self.profile.uses_download_manager:
            yield from self._download_via_dm(listing, download_path)
        else:
            yield from self._self_download(listing, download_path)
        if self.profile.rename_on_complete:
            self.move_file(download_path, final_path)
        if self.profile.world_readable_staging and not self.profile.uses_sdcard:
            self.set_world_readable(final_path)
        entry.end_ns = self.system.now_ns
        return final_path

    def _download_via_dm(self, listing: StoreListing,
                         destination: str) -> Generator[Any, Any, None]:
        if self.system.fs.exists(destination):
            self.delete_file(destination)
        download_id = self.enqueue_download(listing.url, destination)
        done = SimEvent(name=f"dm-{download_id}")
        subscription = self.system.hub.subscribe(
            self.system.dm.completion_topic(download_id),
            lambda record: done.trigger(record),
        )
        record = yield WaitFor(done)
        subscription.cancel()
        if record.status.value != "successful":
            raise DownloadError(f"download of {listing.url} failed")

    def _self_download(self, listing: StoreListing,
                       destination: str) -> Generator[Any, Any, None]:
        content = self.system.network.fetch(listing.url)
        yield Sleep(self.system.network.latency_ns)
        if self.system.fs.exists(destination):
            self.delete_file(destination)
        handle = self.system.fs.create(destination, self.caller, exclusive=False)
        chunk_size = max(1, len(content) // DOWNLOAD_CHUNKS)
        chunk_time = self.system.network.transfer_time_ns(chunk_size)
        offset = 0
        while offset < len(content):
            handle.append(content[offset:offset + chunk_size])
            offset += chunk_size
            if offset < len(content):
                yield Sleep(chunk_time)
        handle.close()  # CLOSE_WRITE: the attacker's download-done cue

    def _staged_filename(self, listing: StoreListing) -> str:
        if self.profile.randomize_names:
            return f"{self.system.rng.token(16)}.apk"
        return f"{listing.package}.apk"

    # -- Step 3: integrity check + trigger --------------------------------------------------

    def _verify(self, staged_path: str, listing: StoreListing,
                trace: TransactionTrace) -> Generator[Any, Any, bool]:
        entry = trace.begin(
            AITStep.TRIGGER, self.system.now_ns,
            mechanism=(
                f"hash-check x{self.profile.verify_reads}"
                if self.profile.verify_hash else "no-check"
            ),
        )
        yield Sleep(self.profile.verify_start_delay_ns)
        if not self.profile.verify_hash:
            entry.end_ns = self.system.now_ns
            return True
        content = b""
        for index in range(max(1, self.profile.verify_reads)):
            content = self.read_file(staged_path)  # OPEN/ACCESS/CLOSE_NOWRITE
            if index < self.profile.verify_reads - 1:
                yield Sleep(self.profile.per_read_ns)
        entry.end_ns = self.system.now_ns
        passed = hash_bytes(content) == listing.file_hash
        entry.detail["hash_ok"] = passed
        return passed

    # -- Step 4: install -------------------------------------------------------------------

    def _install(self, staged_path: str, listing: StoreListing,
                 trace: TransactionTrace,
                 user: Optional[ConsentUser]) -> Generator[Any, Any, InstalledPackage]:
        if self.profile.silent:
            mechanism = (
                "PMS.installPackageWithVerification"
                if self.profile.uses_pms_verification else "PMS.installPackage"
            )
        else:
            mechanism = "PackageInstallerActivity"
        entry = trace.begin(AITStep.INSTALL, self.system.now_ns, mechanism=mechanism)
        try:
            if self.profile.silent:
                if self.profile.uses_pms_verification:
                    package = self.system.pms.install_package_with_verification(
                        staged_path, self.caller, listing.manifest_checksum,
                        installer_package=self.package,
                    )
                else:
                    package = self.system.pms.install_package(
                        staged_path, self.caller, installer_package=self.package
                    )
            else:
                package = yield from self.system.pia.install(
                    staged_path, self.caller, user or ConsentUser()
                )
        except InstallError as exc:
            trace.error = str(exc)
            entry.end_ns = self.system.now_ns
            raise
        entry.end_ns = self.system.now_ns
        return package

    # -- DRM hook (new Amazon appstore) ---------------------------------------------------

    def tampered_check_active(self) -> bool:
        """True when the DRM self-check should trip.

        The repackaging attack *removes* the check along with setting
        ``tampered``; a tampered installer whose DRM code was stripped
        returns False here (the paper's bypass).
        """
        return self.tampered and not getattr(self, "drm_stripped", False)
