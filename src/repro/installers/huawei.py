"""The Huawei appstore (``com.huawei.appmarket``).

Pre-installed on all Huawei devices (Table V).  Same AIT shape as the
other vendor stores: SD-Card staging, hash check, silent install.
"""

from __future__ import annotations

from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis

HUAWEI_PACKAGE = "com.huawei.appmarket"

HUAWEI_PROFILE = InstallerProfile(
    package=HUAWEI_PACKAGE,
    label="huawei-appmarket",
    uses_sdcard=True,
    download_dir="/sdcard/HwMarket",
    verify_hash=True,
    verify_reads=2,
    verify_start_delay_ns=millis(120),
    per_read_ns=millis(70),
    install_delay_ns=millis(300),
    silent=True,
)


class HuaweiInstaller(BaseInstaller):
    """The Huawei appstore."""

    profile = HUAWEI_PROFILE
