"""The Baidu appstore (``com.baidu.appsearch``).

Paper fingerprint: SD-Card staging, integrity check with **2** read
passes (2 ``CLOSE_NOWRITE`` events), and a wait-and-see replacement
window **500 ms** after download completion (Section III-B).
"""

from __future__ import annotations

from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis

BAIDU_PACKAGE = "com.baidu.appsearch"

BAIDU_PROFILE = InstallerProfile(
    package=BAIDU_PACKAGE,
    label="baidu-appstore",
    uses_sdcard=True,
    download_dir="/sdcard/baidu-appsearch",
    verify_hash=True,
    verify_reads=2,
    verify_start_delay_ns=millis(200),
    per_read_ns=millis(100),
    install_delay_ns=millis(400),
    silent=True,
)


class BaiduInstaller(BaseInstaller):
    """The Baidu appstore."""

    profile = BAIDU_PROFILE
