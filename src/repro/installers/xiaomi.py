"""The Xiaomi appstore (``com.xiaomi.market``).

Paper facts reproduced:

- SD-Card staging with a temporary name that is **renamed to the
  official name** when the download completes — the attacker's cue,
- integrity check with **1** read pass (1 ``CLOSE_NOWRITE``), then the
  PMS is activated immediately,
- a cloud-push **BroadcastReceiver with no permission guard**: a forged
  ``jsonContent`` payload (``{"type":"app","appId":...,"packageName":
  ...}``) makes the store silently install the named app
  (Section III-D, "Command injection").
"""

from __future__ import annotations

import json
from typing import Optional

from repro.android.ams import BroadcastEnvelope
from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis

XIAOMI_PACKAGE = "com.xiaomi.market"
XIAOMI_PUSH_ACTION = "com.xiaomi.market.push.RECEIVE"
XIAOMI_PUSH_PERMISSION = "com.xiaomi.market.permission.PUSH"

XIAOMI_PROFILE = InstallerProfile(
    package=XIAOMI_PACKAGE,
    label="xiaomi-appstore",
    uses_sdcard=True,
    download_dir="/sdcard/xiaomi-market",
    verify_hash=True,
    verify_reads=1,
    verify_start_delay_ns=millis(100),
    install_delay_ns=millis(300),
    rename_on_complete=True,
    silent=True,
)


class XiaomiInstaller(BaseInstaller):
    """The Xiaomi appstore with its unauthenticated push receiver."""

    profile = XIAOMI_PROFILE

    def __init__(self, profile: Optional[InstallerProfile] = None,
                 receiver_protected: bool = False) -> None:
        super().__init__(profile)
        # The fix the paper proposes: guard the receiver with a
        # signature permission.  Vulnerable builds leave it open.
        self.receiver_protected = receiver_protected
        self.push_log: list = []

    def on_attached(self) -> None:
        super().on_attached()
        self.register_receiver(
            XIAOMI_PUSH_ACTION,
            self._on_push,
            required_permission=(
                XIAOMI_PUSH_PERMISSION if self.receiver_protected else None
            ),
        )

    def _on_push(self, envelope: BroadcastEnvelope) -> None:
        """Cloud push handler: installs whatever the message names.

        Deliberately never inspects ``envelope.sender_package`` — the
        receiver cannot (and does not try to) authenticate the sender.
        """
        raw = envelope.extras.get("jsonContent")
        if raw is None:
            return
        try:
            message = json.loads(raw)
        except (ValueError, TypeError):
            return
        self.push_log.append(message)
        if message.get("type") != "app":
            return
        listing = self.backend.by_app_id(str(message.get("appId", "")))
        if listing is None:
            package_name = message.get("packageName", "")
            if package_name not in self.backend.packages():
                return
            target = package_name
        else:
            target = listing.package
        self.system.kernel.spawn(
            self.run_ait(target), name=f"xiaomi-push-install-{target}"
        )
