"""The SlideMe marketplace (``com.slideme.sam.manager``).

A side-loaded third-party store from the paper's vulnerable list
(Section IV-B).  Unlike the pre-installed stores it is typically NOT a
system app, so its installs go through the **PIA consent dialog** —
the Step-4 attack surface.
"""

from __future__ import annotations

from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis

SLIDEME_PACKAGE = "com.slideme.sam.manager"

SLIDEME_PROFILE = InstallerProfile(
    package=SLIDEME_PACKAGE,
    label="slideme",
    uses_sdcard=True,
    download_dir="/sdcard/slideme",
    verify_hash=True,
    verify_reads=1,
    verify_start_delay_ns=millis(120),
    install_delay_ns=millis(250),
    silent=False,   # side-loaded: no INSTALL_PACKAGES, uses the PIA
)


class SlideMeInstaller(BaseInstaller):
    """The SlideMe marketplace."""

    profile = SLIDEME_PROFILE
