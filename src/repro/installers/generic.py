"""Generic installers: the long tail the measurement study quantifies.

- :class:`NaiveSdcardInstaller` — the 83.7% case: an ordinary Google
  Play app that self-updates through the SD-Card with **no integrity
  check at all** and no silent-install privilege (it routes through the
  PIA consent dialog).
- :class:`SecureInternalInstaller` — the 16.3% case: internal staging
  made world-readable, hash verified right before install (the paper's
  Suggestion 1 + 2 followed to the letter).
"""

from __future__ import annotations

from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis

NAIVE_PACKAGE = "com.example.selfupdater"
SECURE_PACKAGE = "com.example.secureinstaller"

NAIVE_PROFILE = InstallerProfile(
    package=NAIVE_PACKAGE,
    label="naive-updater",
    uses_sdcard=True,
    download_dir="/sdcard/Download",
    verify_hash=False,
    verify_reads=0,
    verify_start_delay_ns=millis(100),
    install_delay_ns=millis(300),
    silent=False,
    redownload_on_corrupt=False,
)

SECURE_PROFILE = InstallerProfile(
    package=SECURE_PACKAGE,
    label="secure-installer",
    uses_sdcard=False,
    world_readable_staging=True,
    verify_hash=True,
    verify_reads=1,
    verify_start_delay_ns=millis(50),
    install_delay_ns=millis(100),
    silent=False,
    delete_after_install=True,
)


class NaiveSdcardInstaller(BaseInstaller):
    """A typical vulnerable self-updating app (SD-Card, no checks, PIA)."""

    profile = NAIVE_PROFILE


class SecureInternalInstaller(BaseInstaller):
    """An installer following the paper's developer suggestions."""

    profile = SECURE_PROFILE
