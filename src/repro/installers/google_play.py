"""Google Play (``com.android.vending``) — the secure baseline.

The one major store the paper found using **internal storage**: the APK
is staged inside Play's private directory, made world-readable so the
PMS can open it (the Section II requirement), verified, and installed
silently.  SD-Card attackers never see the file.
"""

from __future__ import annotations

from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis

GOOGLE_PLAY_PACKAGE = "com.android.vending"

GOOGLE_PLAY_PROFILE = InstallerProfile(
    package=GOOGLE_PLAY_PACKAGE,
    label="google-play",
    uses_sdcard=False,
    world_readable_staging=True,
    verify_hash=True,
    verify_reads=1,
    verify_start_delay_ns=millis(50),
    install_delay_ns=millis(150),
    silent=True,
    delete_after_install=True,
)


class GooglePlayInstaller(BaseInstaller):
    """Google Play: internal staging, the design GIA cannot hijack."""

    profile = GOOGLE_PLAY_PROFILE
