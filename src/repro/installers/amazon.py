"""The Amazon appstore (``com.amazon.venezia``).

Paper facts reproduced (Sections III-B and III-D):

- SD-Card staging with **randomized APK names**,
- integrity check that makes **7 passes** over the file (the attacker's
  ``CLOSE_NOWRITE`` fingerprint), then activates the PMS immediately,
- the "wait-and-see" variant needs to replace the file **500 ms** after
  download completion,
- the public ``Venezia`` activity runs JavaScript from Intent extras
  over a JS-Java bridge **without authenticating the sender**, letting
  any app silently install/uninstall through Amazon's privileges,
- the post-May-2015 version (:class:`NewAmazonInstaller`) adds
  ``installPackageWithVerification`` (manifest checksum) and a DRM
  tamper self-check — both defeated by manifest-preserving repackaging.
"""

from __future__ import annotations

import json
from typing import Any, List, Optional

from repro.installers.base import BaseInstaller, InstallerProfile
from repro.sim.clock import millis

AMAZON_PACKAGE = "com.amazon.venezia"
VENEZIA_JS_EXTRA = "com.amazon.venezia.jsBridgePayload"

AMAZON_PROFILE = InstallerProfile(
    package=AMAZON_PACKAGE,
    label="amazon-appstore",
    uses_sdcard=True,
    download_dir="/sdcard/amazon-appstore",
    randomize_names=True,
    verify_hash=True,
    verify_reads=7,
    verify_start_delay_ns=millis(50),
    per_read_ns=millis(60),
    install_delay_ns=millis(200),
    silent=True,
)

NEW_AMAZON_PROFILE = InstallerProfile(
    package=AMAZON_PACKAGE,
    label="amazon-appstore",
    uses_sdcard=True,
    download_dir="/sdcard/amazon-appstore",
    randomize_names=True,
    verify_hash=True,
    verify_reads=7,
    verify_start_delay_ns=millis(50),
    per_read_ns=millis(60),
    install_delay_ns=millis(200),
    silent=True,
    uses_pms_verification=True,
    drm_self_check=True,
)


class AmazonInstaller(BaseInstaller):
    """The pre-2015 Amazon appstore."""

    profile = AMAZON_PROFILE

    def __init__(self, profile: Optional[InstallerProfile] = None) -> None:
        super().__init__(profile)
        self.js_executions: List[dict] = []
        self.js_bridge_sanitized = False  # the post-report fix

    def handle_intent(self, intent: Any) -> None:
        """The Venezia activity: app pages plus the vulnerable JS bridge."""
        super().handle_intent(intent)
        payload = intent.extras.get(VENEZIA_JS_EXTRA)
        if payload is None:
            return
        if self.js_bridge_sanitized:
            # Fixed behaviour: script payloads from Intents are dropped.
            return
        # Vulnerable behaviour: no origin authentication, no input
        # sanitization — the script drives private install services.
        self._execute_js(payload)

    def _execute_js(self, payload: str) -> None:
        try:
            command = json.loads(payload)
        except (ValueError, TypeError):
            return
        self.js_executions.append(command)
        operation = command.get("op")
        target = command.get("package", "")
        if operation == "install":
            self.system.kernel.spawn(
                self.run_ait(target), name=f"amazon-js-install-{target}"
            )
        elif operation == "uninstall":
            self.system.pms.uninstall_package(target, self.caller)
        elif operation == "invokeService":
            # "a malware can actually invoke any private services"
            self.js_executions[-1]["service_invoked"] = command.get("service", "")


class NewAmazonInstaller(AmazonInstaller):
    """Amazon appstore >= 17.0000.893.3C_647000010 (May 2015).

    Adds the PMS manifest verification and DRM self-check the paper's
    Step-4 attack defeats.
    """

    profile = NEW_AMAZON_PROFILE
