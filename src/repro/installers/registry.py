"""Name-keyed registry of installer types (used by benches and examples)."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import ReproError
from repro.installers.amazon import AmazonInstaller, NewAmazonInstaller
from repro.installers.baidu import BaiduInstaller
from repro.installers.base import BaseInstaller
from repro.installers.dtignite import DTIgniteInstaller
from repro.installers.generic import NaiveSdcardInstaller, SecureInternalInstaller
from repro.installers.google_play import GooglePlayInstaller
from repro.installers.huawei import HuaweiInstaller
from repro.installers.slideme import SlideMeInstaller
from repro.installers.tencent import TencentInstaller
from repro.installers.qihoo import QihooInstaller
from repro.installers.xiaomi import XiaomiInstaller

_REGISTRY: Dict[str, Type[BaseInstaller]] = {
    "amazon": AmazonInstaller,
    "new-amazon": NewAmazonInstaller,
    "xiaomi": XiaomiInstaller,
    "baidu": BaiduInstaller,
    "qihoo360": QihooInstaller,
    "dtignite": DTIgniteInstaller,
    "google-play": GooglePlayInstaller,
    "huawei": HuaweiInstaller,
    "tencent": TencentInstaller,
    "slideme": SlideMeInstaller,
    "naive-sdcard": NaiveSdcardInstaller,
    "secure-internal": SecureInternalInstaller,
}


def all_installer_types() -> Dict[str, Type[BaseInstaller]]:
    """Copy of the full name -> installer-class map."""
    return dict(_REGISTRY)


def installer_by_name(name: str) -> Type[BaseInstaller]:
    """Installer class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown installer {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def sdcard_installer_names() -> List[str]:
    """Names of registered installers that stage on the SD-Card."""
    return sorted(
        name for name, cls in _REGISTRY.items() if cls.profile.uses_sdcard
    )
