"""Installer apps: behavioural re-implementations of the paper's subjects.

Each module encodes one installer's AIT design exactly as Section III
describes it — storage choice, integrity-check fingerprint (how many
``CLOSE_NOWRITE`` passes it makes over the APK), name randomization,
rename-on-complete, Download Manager vs self-download, PMS vs PIA, and
the Intent/broadcast interfaces that Step-1 attacks abuse.
"""

from repro.installers.base import (
    AppStoreBackend,
    BaseInstaller,
    InstallerProfile,
    StoreListing,
)
from repro.installers.amazon import AmazonInstaller, NewAmazonInstaller
from repro.installers.xiaomi import XiaomiInstaller, XIAOMI_PUSH_ACTION
from repro.installers.baidu import BaiduInstaller
from repro.installers.qihoo import QihooInstaller
from repro.installers.dtignite import DTIgniteInstaller
from repro.installers.google_play import GooglePlayInstaller
from repro.installers.huawei import HuaweiInstaller
from repro.installers.slideme import SlideMeInstaller
from repro.installers.tencent import TencentInstaller
from repro.installers.generic import (
    NaiveSdcardInstaller,
    SecureInternalInstaller,
)
from repro.installers.registry import all_installer_types, installer_by_name

__all__ = [
    "AppStoreBackend",
    "BaseInstaller",
    "InstallerProfile",
    "StoreListing",
    "AmazonInstaller",
    "NewAmazonInstaller",
    "XiaomiInstaller",
    "XIAOMI_PUSH_ACTION",
    "BaiduInstaller",
    "QihooInstaller",
    "DTIgniteInstaller",
    "GooglePlayInstaller",
    "HuaweiInstaller",
    "TencentInstaller",
    "SlideMeInstaller",
    "NaiveSdcardInstaller",
    "SecureInternalInstaller",
    "all_installer_types",
    "installer_by_name",
]
