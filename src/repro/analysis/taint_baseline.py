"""The failed Flowdroid-style approach — Section IV-A's negative result.

Before building the simple marker+def-use classifier, the paper tried a
full information-flow analysis on Flowdroid and gave up: of 43 apps
tested, 14% died on incomplete control-flow graphs, another 14% lost
taint through ``Handler.handleMessage`` (not modelled in Flowdroid's
call graph), and 42% hit outright tool bugs — only ~30% analyzed.

:class:`TaintAnalysisBaseline` models that tool *with its documented
failure modes*: it attempts an intraprocedural dataflow from download
sinks to install sources, but

- aborts on reflective call edges (``Class.forName`` — the incomplete
  CFG case),
- aborts when the flow crosses ``handleMessage`` (the untrackable
  callback case),
- and, like the real tool, crashes on a deterministic share of inputs
  (modelling the 42% "bugs in Flowdroid"; see DESIGN.md on synthetic
  substitution).

The benchmark compares its yield against the paper's simple classifier
over the same sample — the engineering argument for the paper's tool.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.corpus import CorpusApp, INSTALL_MARKER
from repro.analysis.smali import SmaliProgram, parse_program

# Calibrated to the paper's 43-app sample: 42% of runs die to tool bugs.
TOOL_BUG_RATE = 0.42


class TaintOutcome(enum.Enum):
    """How one analysis attempt ended."""

    ANALYZED = "analyzed"
    INCOMPLETE_CFG = "incomplete-control-flow-graph"
    HANDLER_UNTRACKED = "handleMessage-untracked"
    TOOL_BUG = "tool-bug"
    NOT_AN_INSTALLER = "not-an-installer"


@dataclass(frozen=True)
class TaintResult:
    """One app's analysis attempt."""

    package: str
    outcome: TaintOutcome
    uses_sdcard: Optional[bool] = None  # only meaningful when ANALYZED

    @property
    def succeeded(self) -> bool:
        """True when the tool produced a verdict."""
        return self.outcome is TaintOutcome.ANALYZED


class TaintAnalysisBaseline:
    """The Flowdroid-style tool, failure modes included."""

    def __init__(self, bug_rate: float = TOOL_BUG_RATE) -> None:
        self.bug_rate = bug_rate

    def analyze(self, app: CorpusApp) -> TaintResult:
        """Attempt whole-app dataflow on one app."""
        program = parse_program(app.smali_text)
        if not program.contains_string(INSTALL_MARKER):
            return TaintResult(app.package, TaintOutcome.NOT_AN_INSTALLER)
        if self._hits_tool_bug(app):
            return TaintResult(app.package, TaintOutcome.TOOL_BUG)
        failure = self._walk_flows(program)
        if failure is not None:
            return TaintResult(app.package, failure)
        return TaintResult(
            app.package, TaintOutcome.ANALYZED,
            uses_sdcard=self._sdcard_flow(program),
        )

    def analyze_sample(self, apps: List[CorpusApp]) -> List[TaintResult]:
        """Run over a sample, like the paper's 43-app trial."""
        return [self.analyze(app) for app in apps]

    # -- failure modes ----------------------------------------------------------

    def _walk_flows(self, program: SmaliProgram) -> Optional[TaintOutcome]:
        """Follow every invoke edge; reflective/handler edges kill the walk."""
        for method in program.all_methods():
            for invoke in method.invokes():
                if "Ljava/lang/Class;->forName" in invoke.method_sig:
                    return TaintOutcome.INCOMPLETE_CFG
                if invoke.invoked_name == "handleMessage":
                    return TaintOutcome.HANDLER_UNTRACKED
        return None

    def _hits_tool_bug(self, app: CorpusApp) -> bool:
        """Deterministic stand-in for the 42% crash rate.

        Hash-based so the same app always crashes (or not), like a real
        bug triggered by specific bytecode shapes.
        """
        digest = hashlib.sha256(app.package.encode("utf-8")).digest()
        return (digest[0] / 255.0) < self.bug_rate

    def _sdcard_flow(self, program: SmaliProgram) -> bool:
        return any(
            value.startswith("/sdcard") for value in program.all_strings()
        )


def yield_rate(results: List[TaintResult]) -> float:
    """Fraction of installer apps the tool managed to analyze."""
    attempted = [r for r in results
                 if r.outcome is not TaintOutcome.NOT_AN_INSTALLER]
    if not attempted:
        return 0.0
    return sum(1 for r in attempted if r.succeeded) / len(attempted)
