"""The measurement study (Section IV): corpora, static analysis, stats.

The paper measured real corpora (12,750 top Google Play apps, 12,050
pre-installed apps from 60 factory images, 1,855 factory images,
1.2 million store APKs).  Those are proprietary, so this package
*generates* synthetic corpora with the paper's reported trait
distributions — emitting smali-like code with the traits planted — and
then runs the paper's actual analyses over them:

- :mod:`repro.analysis.smali` — the IR + def-use-chain machinery
  standing in for Apktool + Soot/jimple,
- :mod:`repro.analysis.corpus` — Play and pre-installed app corpora,
- :mod:`repro.analysis.classifier` — the vulnerable/secure/unknown
  installer classifier (Tables II and III),
- :mod:`repro.analysis.redirect_scan` — hardcoded Play URL/scheme
  counting (Table IV),
- :mod:`repro.analysis.factory_images` — vendor image fleets,
  INSTALL_PACKAGES prevalence (Tables V and VI),
- :mod:`repro.analysis.platform_keys` — single-platform-key findings,
- :mod:`repro.analysis.hare_analysis` — Hare permission prevalence,
- :mod:`repro.analysis.pipeline` — every pass above as a sharded,
  cacheable :mod:`repro.engine` workload (``repro analyze``).
"""

from repro.analysis.smali import SmaliMethod, SmaliProgram, parse_program
from repro.analysis.corpus import (
    CorpusApp,
    GroundTruth,
    generate_play_corpus,
    generate_preinstalled_corpus,
)
from repro.analysis.classifier import Category, InstallerClassifier
from repro.analysis.pipeline import (
    AnalysisCache,
    AnalysisReport,
    AnalysisSpec,
    AnalysisStats,
    analyze_app,
    run_analysis,
)

__all__ = [
    "AnalysisCache",
    "AnalysisReport",
    "AnalysisSpec",
    "AnalysisStats",
    "analyze_app",
    "run_analysis",
    "SmaliMethod",
    "SmaliProgram",
    "parse_program",
    "CorpusApp",
    "GroundTruth",
    "generate_play_corpus",
    "generate_preinstalled_corpus",
    "Category",
    "InstallerClassifier",
]
