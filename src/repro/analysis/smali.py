"""A small smali-like IR with parsing and def-use-chain analysis.

Stands in for the paper's Apktool (decompilation) + Soot/jimple
(def-use chains) toolchain.  The classifier needs to answer, over real
code rather than metadata flags:

- does the app contain the installation API marker string
  (``application/vnd.android.package-archive``)?
- does it call a global-readable setter API — and do its *actual
  arguments*, resolved through def-use chains, make the file world
  readable (``MODE_WORLD_READABLE``, ``setReadable(true, false)``,
  ``chmod 644`` ...)?
- which string constants (paths, URLs) flow into file and intent
  operations?

Supported instruction forms (one per line, ``#`` comments allowed)::

    .class Lcom/example/Foo;
    .method install()V
    const-string v1, "/sdcard/download/app.apk"
    const/4 v2, 1
    const-wide/16 v4, 0x10
    move v3, v2
    invoke-virtual {v0, v1, v2}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
    invoke-virtual/range {v0 .. v2}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
    iget v2, v0, Lcom/example/Foo;->mode:I
    .end method

Class-level metadata directives (``.super``, ``.source``, ``.field``,
``.implements``), method-body bookkeeping directives (``.locals``,
``.registers``, ``.line``, ``.param``, ``.prologue``, ``.local``,
``.catch`` ...) and ``.annotation`` / ``.packed-switch`` /
``.sparse-switch`` / ``.array-data`` blocks are legal smali and are
skipped.  By default an *instruction* line that matches no supported
form raises :class:`~repro.errors.SmaliParseError`; at fleet scale one
odd app must not kill its whole shard, so ``parse_program(...,
lenient=True)`` instead records the line in
:attr:`SmaliProgram.unparsed` as evidence and keeps going.

Parsing strategy
----------------

The original implementation tried five compiled regexes per
instruction line (const-string, const-int, move, invoke, iget — in
that order) plus a 19-way directive scan per line; at measurement
scale (100k+ generated apps) that cascade dominated per-app wall
clock.  The parser is now a **single-pass scanner**:

- every directive starts with ``.`` and no instruction mnemonic does,
  so one ``line[0] == "."`` test replaces all directive probing on
  instruction lines;
- the instruction mnemonic (first whitespace-delimited token) selects
  an operand scanner from :data:`_DISPATCH` — a plain dict lookup —
  and the scanner walks the operand text once with ``str`` primitives,
  falling back to tiny anchored regexes only to validate rare operand
  spellings exactly as the old patterns did (``\\d`` is Unicode-aware,
  so e.g. ``v١`` must keep matching);
- mnemonic spellings the token split cannot key (today: invokes with
  no whitespace before ``{``, which ``\\s*`` used to admit) fall
  through to :data:`_RARE_RE`, one combined alternation with named
  groups;
- results are memoised per *line text* (bounded by
  :data:`_MEMO_CAP`): generated corpora share template lines across
  thousands of apps, so most lines resolve to a dict hit.

The scan is bug-for-bug equivalent to the regex cascade — same
``Program``/``Instruction`` objects, same lenient-mode evidence, same
exceptions (``int(..., 0)`` still rejects leading zeros, descending
register ranges still raise even in lenient mode).  The retained
cascade lives in ``tests/analysis/reference_smali.py`` and the
differential property suite holds the two equal over every corpus.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import SmaliParseError

#: Rare instruction spellings the first-token dispatch cannot key,
#: as one combined alternation with named groups.  Today that is the
#: zero-whitespace invoke (``invoke-virtual{v0}, ...``) — the only
#: supported form whose mnemonic is not whitespace-delimited (the old
#: ``_INVOKE_RE`` used ``\s*`` before ``{``; every other form required
#: ``\s+`` after its mnemonic).
_RARE_RE = re.compile(
    r"^(?:invoke-(?:virtual|static|direct|interface|super)(?:/range)?\s*"
    r"\{(?P<invoke_regs>[^}]*)\}\s*,\s*(?P<invoke_sig>\S.*))$"
)
_RANGE_RE = re.compile(
    r"^(?P<kind>[vp])(?P<start>\d+)\s*\.\.\s*(?P=kind)(?P<stop>\d+)$"
)
#: Operand validators.  Tiny and anchored; ``\d`` deliberately matches
#: Unicode digits exactly like the replaced patterns did.
_REG_RE = re.compile(r"[vp]\d+$")
_INT_RE = re.compile(r"-?(?:0x[0-9a-fA-F]+|\d+)L?$")
_INVOKED_NAME_RE = re.compile(r"->(\w+)\(")

#: Fast common-path register check: generated corpora use low ASCII
#: register numbers, so a frozenset probe short-circuits the regex.
_COMMON_REGS = frozenset(
    f"{kind}{number}" for kind in "vp" for number in range(32))

#: Block directives whose body lines are payload, not instructions.
#: Annotations may nest (parameter annotations hold sub-annotations),
#: so the parser tracks depth per block kind.
_BLOCK_DIRECTIVES = {
    ".annotation": ".end annotation",
    ".subannotation": ".end subannotation",
    ".packed-switch": ".end packed-switch",
    ".sparse-switch": ".end sparse-switch",
    ".array-data": ".end array-data",
}

#: Single-line bookkeeping directives that carry no dataflow.
_SKIP_DIRECTIVES = (
    ".locals", ".registers", ".line", ".param", ".end param", ".prologue",
    ".source", ".super", ".implements", ".field", ".end field",
    ".local", ".end local", ".restart local", ".catch", ".catchall",
)
#: The skip test the old parser ran as a 19-way generator expression,
#: split into an exact-match set and a prefix tuple ``str.startswith``
#: accepts directly.
_SKIP_EXACT = frozenset(_SKIP_DIRECTIVES)
_SKIP_PREFIXES = tuple(d + " " for d in _SKIP_DIRECTIVES)

_BLOCK_EXACT = frozenset(_BLOCK_DIRECTIVES)
_BLOCK_PREFIXES = tuple(d + " " for d in _BLOCK_DIRECTIVES)


@dataclass(frozen=True)
class Instruction:
    """One parsed instruction.

    ``invoked_name`` (the bare method name of an invoke, e.g.
    ``openFileOutput``) is computed once at construction time and
    stored on the instance — it used to be a property running
    ``re.search`` on every access, which the classifier hit per
    invoke per detector.
    """

    op: str                      # const-string | const-int | move | invoke | iget
    line_no: int
    dest: Optional[str] = None   # register written, if any
    sources: Tuple[str, ...] = ()
    literal: Union[str, int, None] = None
    method_sig: str = ""         # for invokes: full Lpkg;->name(args)ret
    index: int = -1              # position in the owning method, set at parse time

    def __post_init__(self) -> None:
        sig = self.method_sig
        if sig:
            match = _INVOKED_NAME_RE.search(sig)
            name = match.group(1) if match else ""
        else:
            name = ""
        object.__setattr__(self, "invoked_name", name)


@dataclass
class SmaliMethod:
    """A parsed method body."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)

    def invokes(self) -> Iterator[Instruction]:
        """All invoke instructions in order."""
        return (ins for ins in self.instructions if ins.op == "invoke")

    def string_constants(self) -> List[str]:
        """All string literals loaded anywhere in the method."""
        return [
            ins.literal
            for ins in self.instructions
            if ins.op == "const-string" and isinstance(ins.literal, str)
        ]

    def reaching_def(self, register: str,
                     before_index: int) -> Optional[Instruction]:
        """The def-use chain back-walk: last write to ``register``.

        Walks backwards from ``before_index`` following ``move`` chains.
        Returns the defining const/iget instruction, or None when the
        register has no visible definition (e.g. a parameter).
        """
        target = register
        for index in range(before_index - 1, -1, -1):
            ins = self.instructions[index]
            if ins.dest != target:
                continue
            if ins.op == "move":
                target = ins.sources[0]
                continue
            return ins
        return None

    def resolve_argument(self, invoke: Instruction,
                         arg_index: int) -> Union[str, int, None]:
        """Value of an invoke's argument, if a constant reaches it.

        Returns the constant (str or int), or None when the def-use
        chain dead-ends (field load, parameter, missing def) — the
        'cannot resolve' case that lands apps in the *unknown* bucket.
        """
        if arg_index >= len(invoke.sources):
            return None
        position = invoke.index
        if position < 0:  # hand-built instruction: fall back to a scan
            position = self._position_of(invoke)
        definition = self.reaching_def(invoke.sources[arg_index], position)
        if definition is None or definition.op == "iget":
            return None
        return definition.literal

    def _position_of(self, target: Instruction) -> int:
        for index, ins in enumerate(self.instructions):
            if ins is target:
                return index
        raise SmaliParseError("instruction not in method")


@dataclass
class SmaliClass:
    """A parsed class: name plus methods."""

    name: str
    methods: List[SmaliMethod] = field(default_factory=list)


@dataclass
class SmaliProgram:
    """A whole app's decompiled code."""

    classes: List[SmaliClass] = field(default_factory=list)
    unparsed: List[Tuple[int, str]] = field(default_factory=list)

    def all_methods(self) -> Iterator[SmaliMethod]:
        """Every method of every class."""
        for cls in self.classes:
            yield from cls.methods

    def string_list(self) -> List[str]:
        """Every string constant, as a list computed once per program.

        The analysis pipeline walks the program's strings several times
        per app (install-marker probe, sdcard probe, redirect scan);
        the flat list is built on first use and reused.  Callers must
        not mutate the program's instructions after reading it — the
        pipeline parses once and only reads from then on.
        """
        cached = self.__dict__.get("_string_list")
        if cached is None:
            cached = [
                ins.literal
                for cls in self.classes
                for method in cls.methods
                for ins in method.instructions
                if ins.op == "const-string" and isinstance(ins.literal, str)
            ]
            self.__dict__["_string_list"] = cached
        return cached

    def all_strings(self) -> Iterator[str]:
        """Every string constant in the program."""
        return iter(self.string_list())

    def contains_string(self, needle: str) -> bool:
        """True if any string constant contains ``needle``."""
        return any(needle in value for value in self.string_list())

    @property
    def instruction_count(self) -> int:
        """Total parsed instructions across every method."""
        return sum(len(method.instructions) for method in self.all_methods())


def _expand_registers(spec: str) -> Tuple[str, ...]:
    """Register list of an invoke: ``v0, v1`` or the range ``v0 .. v5``."""
    spec = spec.strip()
    match = _RANGE_RE.match(spec)
    if match is not None:
        start, stop = int(match.group("start")), int(match.group("stop"))
        if stop < start:
            raise SmaliParseError(f"descending register range {spec!r}")
        kind = match.group("kind")
        return tuple(f"{kind}{n}" for n in range(start, stop + 1))
    return tuple(reg.strip() for reg in spec.split(",") if reg.strip())


def _is_register(token: str) -> bool:
    return token in _COMMON_REGS or _REG_RE.match(token) is not None


# ---------------------------------------------------------------------------
# Operand scanners.  Each receives the text after the mnemonic token
# (leading whitespace already consumed by the split) and returns the
# memoisable shape ``(op, dest, sources, literal, method_sig,
# invoked_name)`` — everything an Instruction needs except line_no and
# index, which vary per occurrence.  ``None`` means the operands do
# not match the form; because no mnemonic in the dispatch table can
# begin a *different* supported form, a scanner miss is a parse miss.
# ---------------------------------------------------------------------------

_MISS = ("<miss>",)  # sentinel: line matches no supported form


def _scan_const_string(rest: str):
    comma = rest.find(",")
    if comma < 0:
        return None
    register = rest[:comma].rstrip()
    if not _is_register(register):
        return None
    value = rest[comma + 1:].lstrip()
    # The old pattern was "(?P<value>.*)"$ — greedy, so the literal
    # spans the first opening quote to the *last* quote on the line.
    if len(value) < 2 or value[0] != '"' or value[-1] != '"':
        return None
    return ("const-string", register, (), value[1:-1], "", "")


def _scan_const_int(rest: str):
    comma = rest.find(",")
    if comma < 0:
        return None
    register = rest[:comma].rstrip()
    if not _is_register(register):
        return None
    value = rest[comma + 1:].lstrip()
    if _INT_RE.match(value) is None:
        return None
    if value[-1] == "L":
        value = value[:-1]
    # int(..., 0) rejecting leading zeros ("007") is preserved: the
    # ValueError propagates at parse time exactly as before.
    return ("const-int", register, (), int(value, 0), "", "")


def _scan_move(rest: str):
    comma = rest.find(",")
    if comma < 0:
        return None
    dest = rest[:comma].rstrip()
    if not _is_register(dest):
        return None
    source = rest[comma + 1:].strip()
    if not _is_register(source):
        return None
    return ("move", dest, (source,), None, "", "")


def _scan_invoke(rest: str):
    if not rest or rest[0] != "{":
        return None
    brace = rest.find("}", 1)
    if brace < 0:
        return None
    tail = rest[brace + 1:].lstrip()
    if not tail or tail[0] != ",":
        return None
    sig = tail[1:].strip()
    if not sig:
        return None
    registers = _expand_registers(rest[1:brace])
    match = _INVOKED_NAME_RE.search(sig)
    invoked = match.group(1) if match else ""
    return ("invoke", None, registers, None, sig, invoked)


def _scan_iget(rest: str):
    comma = rest.find(",")
    if comma < 0:
        return None
    register = rest[:comma].rstrip()
    if not _is_register(register):
        return None
    return ("iget", register, (), None, "", "")


_DISPATCH = {}
for _mnemonic in ("const-string", "const-string/jumbo"):
    _DISPATCH[_mnemonic] = _scan_const_string
for _wide in ("", "-wide"):
    for _width in ("", "/4", "/16", "/32", "/high16"):
        _DISPATCH[f"const{_wide}{_width}"] = _scan_const_int
for _kind in ("move", "move-object", "move-wide"):
    for _width in ("", "/from16", "/16"):
        _DISPATCH[f"{_kind}{_width}"] = _scan_move
for _kind in ("virtual", "static", "direct", "interface", "super"):
    for _suffix in ("", "/range"):
        _DISPATCH[f"invoke-{_kind}{_suffix}"] = _scan_invoke
for _prefix in ("i", "s"):
    for _suffix in ("", "-object", "-boolean", "-wide"):
        _DISPATCH[f"{_prefix}get{_suffix}"] = _scan_iget
del _mnemonic, _wide, _width, _kind, _suffix, _prefix

#: Per-line-text scan memo.  Template lines recur across thousands of
#: generated apps; unique lines (randomised URLs) stop being admitted
#: once the cap is hit so memory stays bounded.  Values are the
#: memoisable tuples, ``_MISS``, or a ``str`` — the message of the
#: SmaliParseError the line deterministically raises.
_SCAN_MEMO: Dict[str, object] = {}
_MEMO_CAP = 65536


def _proto(result) -> Dict[str, object]:
    """Instruction prototype dict for the memo.

    ``parse_program`` materialises an :class:`Instruction` from a memo
    hit with one ``dict.copy`` plus the two per-occurrence fields
    (``line_no``, ``index``) — measurably cheaper than rebuilding the
    eight-key dict from a tuple on every hit.
    """
    op, dest, sources, literal, method_sig, invoked = result
    return {
        "op": op,
        "line_no": 0,
        "dest": dest,
        "sources": sources,
        "literal": literal,
        "method_sig": method_sig,
        "index": 0,
        "invoked_name": invoked,
    }


def _scan_line(line: str):
    """Classify one instruction line; see the scanner shape above."""
    parts = line.split(None, 1)
    scanner = _DISPATCH.get(parts[0])
    if scanner is not None:
        try:
            result = scanner(parts[1] if len(parts) > 1 else "")
        except SmaliParseError as error:  # descending register range
            return str(error)
        # A known mnemonic with non-matching operands cannot match any
        # other supported form (only invoke admitted zero whitespace
        # after its mnemonic, and no dispatch key starts with
        # "invoke-" while naming a different form).
        return _MISS if result is None else _proto(result)
    match = _RARE_RE.match(line)
    if match is not None:
        sig = match.group("invoke_sig").strip()
        try:
            registers = _expand_registers(match.group("invoke_regs"))
        except SmaliParseError as error:
            return str(error)
        name_match = _INVOKED_NAME_RE.search(sig)
        invoked = name_match.group(1) if name_match else ""
        return _proto(("invoke", None, registers, None, sig, invoked))
    return _MISS


_object_new = object.__new__
_object_setattr = object.__setattr__


def parse_program(text: str, lenient: bool = False) -> SmaliProgram:
    """Parse smali-like text into a :class:`SmaliProgram`.

    Raises :class:`~repro.errors.SmaliParseError` on malformed input.
    With ``lenient=True`` malformed lines are recorded in
    :attr:`SmaliProgram.unparsed` (as ``(line_no, line)`` evidence)
    instead of aborting the parse.
    """
    program = SmaliProgram()
    classes_append = program.classes.append
    unparsed_append = program.unparsed.append
    current_class: Optional[SmaliClass] = None
    instructions: Optional[List[Instruction]] = None
    instructions_append = None
    block_end: Optional[str] = None
    block_depth = 0
    block_start: Optional[str] = None
    memo_get = _SCAN_MEMO.get
    line_no = 0
    for raw_line in text.splitlines():
        line_no += 1
        if "#" in raw_line:
            raw_line = raw_line.split("#", 1)[0]
        line = raw_line.strip()
        if not line:
            continue
        if block_end is not None:
            if line == block_end:
                block_depth -= 1
                if block_depth == 0:
                    block_end = block_start = None
            elif block_start is not None and line.startswith(block_start):
                block_depth += 1  # nested annotation
            continue
        if line[0] == ".":
            # Directive ordering mirrors the original cascade exactly,
            # prefix matches included.
            if line.startswith(".class"):
                current_class = SmaliClass(name=line.split(None, 1)[1])
                classes_append(current_class)
                instructions = None
                continue
            if line.startswith(".method"):
                if current_class is None:
                    if lenient:
                        unparsed_append((line_no, line))
                        current_class = SmaliClass(name="<anonymous>")
                        classes_append(current_class)
                    else:
                        raise SmaliParseError(
                            f"line {line_no}: method outside class")
                method = SmaliMethod(name=line.split(None, 1)[1])
                current_class.methods.append(method)
                instructions = method.instructions
                instructions_append = instructions.append
                continue
            if line.startswith(".end method"):
                instructions = None
                continue
            if line in _BLOCK_EXACT:
                matched_block = line
            elif line.startswith(_BLOCK_PREFIXES):
                matched_block = next(
                    d for d in _BLOCK_DIRECTIVES if line.startswith(d + " "))
            else:
                matched_block = None
            if matched_block is not None:
                block_start = matched_block
                block_end = _BLOCK_DIRECTIVES[matched_block]
                block_depth = 1
                continue
            if line in _SKIP_EXACT or line.startswith(_SKIP_PREFIXES):
                continue
            # An unrecognised "." line falls through to the
            # instruction path, like the original did.
        if instructions is None:
            if lenient:
                unparsed_append((line_no, line))
                continue
            raise SmaliParseError(f"line {line_no}: instruction outside method")
        cached = memo_get(line)
        if cached is None:
            cached = _scan_line(line)
            if len(_SCAN_MEMO) < _MEMO_CAP:
                _SCAN_MEMO[line] = cached
            elif cached.__class__ is dict:
                # Past the memo cap the scan result is not shared, so
                # the prototype can become the instruction's __dict__
                # directly — app-unique lines (randomised URLs) skip
                # the defensive copy.
                cached["line_no"] = line_no
                cached["index"] = len(instructions)
                instruction = _object_new(Instruction)
                _object_setattr(instruction, "__dict__", cached)
                instructions_append(instruction)
                continue
        if cached.__class__ is dict:  # common case: an instruction
            fields = cached.copy()
            fields["line_no"] = line_no
            fields["index"] = len(instructions)
            instruction = _object_new(Instruction)
            _object_setattr(instruction, "__dict__", fields)
            instructions_append(instruction)
            continue
        if cached is _MISS:
            if lenient:
                unparsed_append((line_no, line))
                continue
            raise SmaliParseError(f"line {line_no}: cannot parse {line!r}")
        raise SmaliParseError(cached)  # memoised deterministic error
    return program
