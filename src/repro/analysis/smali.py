"""A small smali-like IR with parsing and def-use-chain analysis.

Stands in for the paper's Apktool (decompilation) + Soot/jimple
(def-use chains) toolchain.  The classifier needs to answer, over real
code rather than metadata flags:

- does the app contain the installation API marker string
  (``application/vnd.android.package-archive``)?
- does it call a global-readable setter API — and do its *actual
  arguments*, resolved through def-use chains, make the file world
  readable (``MODE_WORLD_READABLE``, ``setReadable(true, false)``,
  ``chmod 644`` ...)?
- which string constants (paths, URLs) flow into file and intent
  operations?

Supported instruction forms (one per line, ``#`` comments allowed)::

    .class Lcom/example/Foo;
    .method install()V
    const-string v1, "/sdcard/download/app.apk"
    const/4 v2, 1
    const-wide/16 v4, 0x10
    move v3, v2
    invoke-virtual {v0, v1, v2}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
    invoke-virtual/range {v0 .. v2}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
    iget v2, v0, Lcom/example/Foo;->mode:I
    .end method

Class-level metadata directives (``.super``, ``.source``, ``.field``,
``.implements``), method-body bookkeeping directives (``.locals``,
``.registers``, ``.line``, ``.param``, ``.prologue``, ``.local``,
``.catch`` ...) and ``.annotation`` / ``.packed-switch`` /
``.sparse-switch`` / ``.array-data`` blocks are legal smali and are
skipped.  By default an *instruction* line that matches no supported
form raises :class:`~repro.errors.SmaliParseError`; at fleet scale one
odd app must not kill its whole shard, so ``parse_program(...,
lenient=True)`` instead records the line in
:attr:`SmaliProgram.unparsed` as evidence and keeps going.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from repro.errors import SmaliParseError

_INVOKE_RE = re.compile(
    r"^invoke-(?:virtual|static|direct|interface|super)(?:/range)?\s*"
    r"\{(?P<regs>[^}]*)\}\s*,\s*(?P<sig>\S.*)$"
)
_CONST_STRING_RE = re.compile(
    r'^const-string(?:/jumbo)?\s+(?P<reg>[vp]\d+)\s*,\s*"(?P<value>.*)"$'
)
# const, const/4, const/16, const/high16, const-wide, const-wide/16,
# const-wide/32, const-wide/high16 — the width suffix comes *after* the
# optional -wide marker, which the previous pattern got backwards (it
# accepted ``const-wide`` but not ``const-wide/16``).
_CONST_INT_RE = re.compile(
    r"^const(?:-wide)?(?:/(?:\d+|high16))?\s+(?P<reg>[vp]\d+)\s*,\s*"
    r"(?P<value>-?(?:0x[0-9a-fA-F]+|\d+))(?:L)?$"
)
_MOVE_RE = re.compile(
    r"^move(?:-object|-wide)?(?:/from16|/16)?\s+(?P<dst>[vp]\d+)\s*,\s*(?P<src>[vp]\d+)$"
)
_IGET_RE = re.compile(
    r"^[is]get(?:-object|-boolean|-wide)?\s+(?P<reg>[vp]\d+)\s*,.*$"
)
_RANGE_RE = re.compile(
    r"^(?P<kind>[vp])(?P<start>\d+)\s*\.\.\s*(?P=kind)(?P<stop>\d+)$"
)

#: Block directives whose body lines are payload, not instructions.
#: Annotations may nest (parameter annotations hold sub-annotations),
#: so the parser tracks depth per block kind.
_BLOCK_DIRECTIVES = {
    ".annotation": ".end annotation",
    ".subannotation": ".end subannotation",
    ".packed-switch": ".end packed-switch",
    ".sparse-switch": ".end sparse-switch",
    ".array-data": ".end array-data",
}

#: Single-line bookkeeping directives that carry no dataflow.
_SKIP_DIRECTIVES = (
    ".locals", ".registers", ".line", ".param", ".end param", ".prologue",
    ".source", ".super", ".implements", ".field", ".end field",
    ".local", ".end local", ".restart local", ".catch", ".catchall",
)


@dataclass(frozen=True)
class Instruction:
    """One parsed instruction."""

    op: str                      # const-string | const-int | move | invoke | iget
    line_no: int
    dest: Optional[str] = None   # register written, if any
    sources: Tuple[str, ...] = ()
    literal: Union[str, int, None] = None
    method_sig: str = ""         # for invokes: full Lpkg;->name(args)ret
    index: int = -1              # position in the owning method, set at parse time

    @property
    def invoked_name(self) -> str:
        """Bare method name of an invoke (e.g. ``openFileOutput``)."""
        match = re.search(r"->(\w+)\(", self.method_sig)
        return match.group(1) if match else ""


@dataclass
class SmaliMethod:
    """A parsed method body."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)

    def invokes(self) -> Iterator[Instruction]:
        """All invoke instructions in order."""
        return (ins for ins in self.instructions if ins.op == "invoke")

    def string_constants(self) -> List[str]:
        """All string literals loaded anywhere in the method."""
        return [
            ins.literal
            for ins in self.instructions
            if ins.op == "const-string" and isinstance(ins.literal, str)
        ]

    def reaching_def(self, register: str,
                     before_index: int) -> Optional[Instruction]:
        """The def-use chain back-walk: last write to ``register``.

        Walks backwards from ``before_index`` following ``move`` chains.
        Returns the defining const/iget instruction, or None when the
        register has no visible definition (e.g. a parameter).
        """
        target = register
        for index in range(before_index - 1, -1, -1):
            ins = self.instructions[index]
            if ins.dest != target:
                continue
            if ins.op == "move":
                target = ins.sources[0]
                continue
            return ins
        return None

    def resolve_argument(self, invoke: Instruction,
                         arg_index: int) -> Union[str, int, None]:
        """Value of an invoke's argument, if a constant reaches it.

        Returns the constant (str or int), or None when the def-use
        chain dead-ends (field load, parameter, missing def) — the
        'cannot resolve' case that lands apps in the *unknown* bucket.
        """
        if arg_index >= len(invoke.sources):
            return None
        position = invoke.index
        if position < 0:  # hand-built instruction: fall back to a scan
            position = self._position_of(invoke)
        definition = self.reaching_def(invoke.sources[arg_index], position)
        if definition is None or definition.op == "iget":
            return None
        return definition.literal

    def _position_of(self, target: Instruction) -> int:
        for index, ins in enumerate(self.instructions):
            if ins is target:
                return index
        raise SmaliParseError("instruction not in method")


@dataclass
class SmaliClass:
    """A parsed class: name plus methods."""

    name: str
    methods: List[SmaliMethod] = field(default_factory=list)


@dataclass
class SmaliProgram:
    """A whole app's decompiled code."""

    classes: List[SmaliClass] = field(default_factory=list)
    unparsed: List[Tuple[int, str]] = field(default_factory=list)

    def all_methods(self) -> Iterator[SmaliMethod]:
        """Every method of every class."""
        for cls in self.classes:
            yield from cls.methods

    def all_strings(self) -> Iterator[str]:
        """Every string constant in the program."""
        for method in self.all_methods():
            yield from method.string_constants()

    def contains_string(self, needle: str) -> bool:
        """True if any string constant contains ``needle``."""
        return any(needle in value for value in self.all_strings())

    @property
    def instruction_count(self) -> int:
        """Total parsed instructions across every method."""
        return sum(len(method.instructions) for method in self.all_methods())


def _expand_registers(spec: str) -> Tuple[str, ...]:
    """Register list of an invoke: ``v0, v1`` or the range ``v0 .. v5``."""
    spec = spec.strip()
    match = _RANGE_RE.match(spec)
    if match is not None:
        start, stop = int(match.group("start")), int(match.group("stop"))
        if stop < start:
            raise SmaliParseError(f"descending register range {spec!r}")
        kind = match.group("kind")
        return tuple(f"{kind}{n}" for n in range(start, stop + 1))
    return tuple(reg.strip() for reg in spec.split(",") if reg.strip())


def parse_program(text: str, lenient: bool = False) -> SmaliProgram:
    """Parse smali-like text into a :class:`SmaliProgram`.

    Raises :class:`~repro.errors.SmaliParseError` on malformed input.
    With ``lenient=True`` malformed lines are recorded in
    :attr:`SmaliProgram.unparsed` (as ``(line_no, line)`` evidence)
    instead of aborting the parse.
    """
    program = SmaliProgram()
    current_class: Optional[SmaliClass] = None
    current_method: Optional[SmaliMethod] = None
    block_end: Optional[str] = None  # inside .annotation/.array-data/...
    block_depth = 0
    block_start: Optional[str] = None
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if block_end is not None:
            if line == block_end:
                block_depth -= 1
                if block_depth == 0:
                    block_end = block_start = None
            elif block_start is not None and line.startswith(block_start):
                block_depth += 1  # nested annotation
            continue
        if line.startswith(".class"):
            current_class = SmaliClass(name=line.split(None, 1)[1])
            program.classes.append(current_class)
            current_method = None
            continue
        if line.startswith(".method"):
            if current_class is None:
                if lenient:
                    program.unparsed.append((line_no, line))
                    current_class = SmaliClass(name="<anonymous>")
                    program.classes.append(current_class)
                else:
                    raise SmaliParseError(
                        f"line {line_no}: method outside class")
            current_method = SmaliMethod(name=line.split(None, 1)[1])
            current_class.methods.append(current_method)
            continue
        if line.startswith(".end method"):
            current_method = None
            continue
        matched_block = next(
            (d for d in _BLOCK_DIRECTIVES
             if line == d or line.startswith(d + " ")), None)
        if matched_block is not None:
            block_start = matched_block
            block_end = _BLOCK_DIRECTIVES[matched_block]
            block_depth = 1
            continue
        if any(line == d or line.startswith(d + " ")
               for d in _SKIP_DIRECTIVES):
            continue
        if current_method is None:
            if lenient:
                program.unparsed.append((line_no, line))
                continue
            raise SmaliParseError(f"line {line_no}: instruction outside method")
        instruction = _parse_instruction(
            line, line_no, index=len(current_method.instructions),
            lenient=lenient)
        if instruction is None:
            program.unparsed.append((line_no, line))
        else:
            current_method.instructions.append(instruction)
    return program


def _parse_instruction(line: str, line_no: int, index: int = -1,
                       lenient: bool = False) -> Optional[Instruction]:
    match = _CONST_STRING_RE.match(line)
    if match:
        return Instruction(op="const-string", line_no=line_no,
                           dest=match.group("reg"),
                           literal=match.group("value"), index=index)
    match = _CONST_INT_RE.match(line)
    if match:
        return Instruction(op="const-int", line_no=line_no,
                           dest=match.group("reg"),
                           literal=int(match.group("value"), 0), index=index)
    match = _MOVE_RE.match(line)
    if match:
        return Instruction(op="move", line_no=line_no, dest=match.group("dst"),
                           sources=(match.group("src"),), index=index)
    match = _INVOKE_RE.match(line)
    if match:
        registers = _expand_registers(match.group("regs"))
        return Instruction(op="invoke", line_no=line_no, sources=registers,
                           method_sig=match.group("sig").strip(), index=index)
    match = _IGET_RE.match(line)
    if match:
        return Instruction(op="iget", line_no=line_no,
                           dest=match.group("reg"), index=index)
    if lenient:
        return None
    raise SmaliParseError(f"line {line_no}: cannot parse {line!r}")
