"""A small smali-like IR with parsing and def-use-chain analysis.

Stands in for the paper's Apktool (decompilation) + Soot/jimple
(def-use chains) toolchain.  The classifier needs to answer, over real
code rather than metadata flags:

- does the app contain the installation API marker string
  (``application/vnd.android.package-archive``)?
- does it call a global-readable setter API — and do its *actual
  arguments*, resolved through def-use chains, make the file world
  readable (``MODE_WORLD_READABLE``, ``setReadable(true, false)``,
  ``chmod 644`` ...)?
- which string constants (paths, URLs) flow into file and intent
  operations?

Supported instruction forms (one per line, ``#`` comments allowed)::

    .class Lcom/example/Foo;
    .method install()V
    const-string v1, "/sdcard/download/app.apk"
    const/4 v2, 1
    move v3, v2
    invoke-virtual {v0, v1, v2}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
    iget v2, v0, Lcom/example/Foo;->mode:I
    .end method
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from repro.errors import SmaliParseError

_INVOKE_RE = re.compile(
    r"^invoke-(?:virtual|static|direct|interface)\s*"
    r"\{(?P<regs>[^}]*)\}\s*,\s*(?P<sig>\S.*)$"
)
_CONST_STRING_RE = re.compile(
    r'^const-string\s+(?P<reg>[vp]\d+)\s*,\s*"(?P<value>.*)"$'
)
_CONST_INT_RE = re.compile(
    r"^const(?:/\d+|/high16|-wide)?\s+(?P<reg>[vp]\d+)\s*,\s*(?P<value>-?(?:0x[0-9a-fA-F]+|\d+))$"
)
_MOVE_RE = re.compile(
    r"^move(?:-object|-wide)?(?:/from16|/16)?\s+(?P<dst>[vp]\d+)\s*,\s*(?P<src>[vp]\d+)$"
)
_IGET_RE = re.compile(
    r"^[is]get(?:-object|-boolean|-wide)?\s+(?P<reg>[vp]\d+)\s*,.*$"
)


@dataclass(frozen=True)
class Instruction:
    """One parsed instruction."""

    op: str                      # const-string | const-int | move | invoke | iget
    line_no: int
    dest: Optional[str] = None   # register written, if any
    sources: Tuple[str, ...] = ()
    literal: Union[str, int, None] = None
    method_sig: str = ""         # for invokes: full Lpkg;->name(args)ret

    @property
    def invoked_name(self) -> str:
        """Bare method name of an invoke (e.g. ``openFileOutput``)."""
        match = re.search(r"->(\w+)\(", self.method_sig)
        return match.group(1) if match else ""


@dataclass
class SmaliMethod:
    """A parsed method body."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)

    def invokes(self) -> Iterator[Instruction]:
        """All invoke instructions in order."""
        return (ins for ins in self.instructions if ins.op == "invoke")

    def string_constants(self) -> List[str]:
        """All string literals loaded anywhere in the method."""
        return [
            ins.literal
            for ins in self.instructions
            if ins.op == "const-string" and isinstance(ins.literal, str)
        ]

    def reaching_def(self, register: str,
                     before_index: int) -> Optional[Instruction]:
        """The def-use chain back-walk: last write to ``register``.

        Walks backwards from ``before_index`` following ``move`` chains.
        Returns the defining const/iget instruction, or None when the
        register has no visible definition (e.g. a parameter).
        """
        target = register
        for index in range(before_index - 1, -1, -1):
            ins = self.instructions[index]
            if ins.dest != target:
                continue
            if ins.op == "move":
                target = ins.sources[0]
                continue
            return ins
        return None

    def resolve_argument(self, invoke: Instruction,
                         arg_index: int) -> Union[str, int, None]:
        """Value of an invoke's argument, if a constant reaches it.

        Returns the constant (str or int), or None when the def-use
        chain dead-ends (field load, parameter, missing def) — the
        'cannot resolve' case that lands apps in the *unknown* bucket.
        """
        if arg_index >= len(invoke.sources):
            return None
        position = self._position_of(invoke)
        definition = self.reaching_def(invoke.sources[arg_index], position)
        if definition is None or definition.op == "iget":
            return None
        return definition.literal

    def _position_of(self, target: Instruction) -> int:
        for index, ins in enumerate(self.instructions):
            if ins is target:
                return index
        raise SmaliParseError("instruction not in method")


@dataclass
class SmaliClass:
    """A parsed class: name plus methods."""

    name: str
    methods: List[SmaliMethod] = field(default_factory=list)


@dataclass
class SmaliProgram:
    """A whole app's decompiled code."""

    classes: List[SmaliClass] = field(default_factory=list)

    def all_methods(self) -> Iterator[SmaliMethod]:
        """Every method of every class."""
        for cls in self.classes:
            yield from cls.methods

    def all_strings(self) -> Iterator[str]:
        """Every string constant in the program."""
        for method in self.all_methods():
            yield from method.string_constants()

    def contains_string(self, needle: str) -> bool:
        """True if any string constant contains ``needle``."""
        return any(needle in value for value in self.all_strings())


def parse_program(text: str) -> SmaliProgram:
    """Parse smali-like text into a :class:`SmaliProgram`.

    Raises :class:`~repro.errors.SmaliParseError` on malformed input.
    """
    program = SmaliProgram()
    current_class: Optional[SmaliClass] = None
    current_method: Optional[SmaliMethod] = None
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".class"):
            current_class = SmaliClass(name=line.split(None, 1)[1])
            program.classes.append(current_class)
            current_method = None
            continue
        if line.startswith(".method"):
            if current_class is None:
                raise SmaliParseError(f"line {line_no}: method outside class")
            current_method = SmaliMethod(name=line.split(None, 1)[1])
            current_class.methods.append(current_method)
            continue
        if line.startswith(".end method"):
            current_method = None
            continue
        if current_method is None:
            raise SmaliParseError(f"line {line_no}: instruction outside method")
        current_method.instructions.append(_parse_instruction(line, line_no))
    return program


def _parse_instruction(line: str, line_no: int) -> Instruction:
    match = _CONST_STRING_RE.match(line)
    if match:
        return Instruction(op="const-string", line_no=line_no,
                           dest=match.group("reg"), literal=match.group("value"))
    match = _CONST_INT_RE.match(line)
    if match:
        return Instruction(op="const-int", line_no=line_no,
                           dest=match.group("reg"),
                           literal=int(match.group("value"), 0))
    match = _MOVE_RE.match(line)
    if match:
        return Instruction(op="move", line_no=line_no, dest=match.group("dst"),
                           sources=(match.group("src"),))
    match = _INVOKE_RE.match(line)
    if match:
        registers = tuple(
            reg.strip() for reg in match.group("regs").split(",") if reg.strip()
        )
        return Instruction(op="invoke", line_no=line_no, sources=registers,
                           method_sig=match.group("sig").strip())
    match = _IGET_RE.match(line)
    if match:
        return Instruction(op="iget", line_no=line_no, dest=match.group("reg"))
    raise SmaliParseError(f"line {line_no}: cannot parse {line!r}")
