"""Hardcoded Play-redirect scanning (Table IV, Section IV-A).

The paper identified apps that redirect users to Google Play by
inspecting smali for the fixed URL
(``http://play.google.com/store/apps/details?id=``) or the schemes
(``market://details?id=``, ``https://market.android.com/details?id=``).
This module runs the same scan over the synthetic corpus's *code* —
counting string constants, not trusting the generator's metadata —
and aggregates the Table IV buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.corpus import (
    CorpusApp,
    MARKET_SCHEME,
    MARKET_URL,
    PLAY_URL,
)
from repro.analysis.smali import parse_program

REDIRECT_PREFIXES = (PLAY_URL, MARKET_SCHEME, MARKET_URL)


@dataclass
class RedirectScanResult:
    """One app's hardcoded redirect targets found in its code."""

    package: str
    targets: Tuple[str, ...]

    @property
    def count(self) -> int:
        """Number of hardcoded URLs/schemes."""
        return len(self.targets)

    @property
    def single_predictable_target(self) -> bool:
        """Exactly one hardcoded target: the easy redirect-attack victim."""
        return self.count == 1


@dataclass
class RedirectStudy:
    """Aggregate of a corpus scan."""

    results: List[RedirectScanResult] = field(default_factory=list)
    corpus_size: int = 0

    def apps_with_at_most(self, limit: int) -> int:
        """Apps with 1..limit hardcoded targets (Table IV columns)."""
        return sum(1 for result in self.results if 1 <= result.count <= limit)

    def apps_with_any(self) -> int:
        """Apps with >= 1 hardcoded target (the paper's 84.7%)."""
        return sum(1 for result in self.results if result.count >= 1)

    def fraction_with_at_most(self, limit: int) -> float:
        """Table IV percentage for a column."""
        return self.apps_with_at_most(limit) / self.corpus_size if self.corpus_size else 0.0

    def table_iv_row(self) -> Dict[int, Tuple[int, float]]:
        """{limit: (count, fraction)} for the paper's 1/2/4/8 columns."""
        return {
            limit: (self.apps_with_at_most(limit), self.fraction_with_at_most(limit))
            for limit in (1, 2, 4, 8)
        }

    def easy_targets(self) -> List[RedirectScanResult]:
        """Apps with exactly one hardcoded target."""
        return [result for result in self.results if result.single_predictable_target]


def scan_app(app: CorpusApp) -> RedirectScanResult:
    """Scan one app's code for hardcoded redirect targets."""
    program = parse_program(app.smali_text)
    targets = []
    for value in program.all_strings():
        for prefix in REDIRECT_PREFIXES:
            if value.startswith(prefix):
                targets.append(value[len(prefix):])
                break
    return RedirectScanResult(package=app.package, targets=tuple(targets))


def scan_corpus(apps: Sequence[CorpusApp]) -> RedirectStudy:
    """Scan a whole corpus (Table IV is taken over the Play corpus)."""
    study = RedirectStudy(corpus_size=len(apps))
    for app in apps:
        study.results.append(scan_app(app))
    return study
