"""Synthetic app corpora with planted, classifier-recoverable traits.

The generator emits real smali-like code per app (parsed and analyzed
by :mod:`repro.analysis.classifier`), planting the traits the paper
reports at their reported rates:

Google Play corpus (top 12,750 apps, Section IV-A):
    1,493 contain the installation API marker; of those 779 stage on
    /sdcard without making the APK world-readable (potentially
    vulnerable), 152 stage internally and set it world-readable
    (potentially secure), 562 are unresolvable (reflection, field-loaded
    modes, mixed storage).  8,721 request WRITE_EXTERNAL_STORAGE.
    84.7% carry >= 1 hardcoded Play URL/scheme, with Table IV's count
    distribution (723 exactly one, 1,405 <= 2, 2,090 <= 4, 2,337 <= 8).

Pre-installed corpus (12,050 app instances on 60 images, 1,613 unique):
    238 unique installers; 102 vulnerable / 3 secure / 133 unknown.
    5,864 of the 12,050 instances request WRITE_EXTERNAL_STORAGE.

Exact agreement with the paper's counts is therefore by construction —
the synthetic corpus validates the analysis pipeline, not the 2016 app
ecosystem (see DESIGN.md section 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import CorpusError
from repro.sim.rand import DeterministicRandom

WRITE_EXTERNAL = "android.permission.WRITE_EXTERNAL_STORAGE"
INSTALL_MARKER = "application/vnd.android.package-archive"

PLAY_URL = "http://play.google.com/store/apps/details?id="
MARKET_SCHEME = "market://details?id="
MARKET_URL = "https://market.android.com/details?id="

PLAY_CATEGORIES = [
    "BOOKS", "BUSINESS", "COMICS", "COMMUNICATION", "EDUCATION",
    "ENTERTAINMENT", "FINANCE", "GAMES", "HEALTH", "LIBRARIES",
    "LIFESTYLE", "MEDIA", "MEDICAL", "MUSIC", "NEWS", "PERSONALIZATION",
    "PHOTOGRAPHY", "PRODUCTIVITY", "SHOPPING", "SOCIAL", "SPORTS",
    "TOOLS", "TRANSPORTATION", "TRAVEL", "WEATHER", "WIDGETS", "UTILITIES",
]

# The paper's three confirmed-secure pre-installed installers.
SECURE_PREINSTALLED_PACKAGES = (
    "com.miui.tsmclient",
    "com.huawei.remoteassistant",
    "com.samsung.android.spay",
)


class GroundTruth(enum.Enum):
    """What the generator planted (the classifier must *recover* it)."""

    NON_INSTALLER = "non-installer"
    VULNERABLE = "vulnerable"            # sdcard staging, no readable setter
    SECURE = "secure"                    # internal staging, world-readable
    UNKNOWN_REFLECTION = "unknown-reflection"
    UNKNOWN_FIELD_MODE = "unknown-field-mode"
    UNKNOWN_MIXED = "unknown-mixed"

    @property
    def is_installer(self) -> bool:
        """True for apps carrying the installation API."""
        return self is not GroundTruth.NON_INSTALLER

    @property
    def is_unknown(self) -> bool:
        """True for the three unresolvable flavors."""
        return self in (
            GroundTruth.UNKNOWN_REFLECTION,
            GroundTruth.UNKNOWN_FIELD_MODE,
            GroundTruth.UNKNOWN_MIXED,
        )


@dataclass
class CorpusApp:
    """One synthetic app: manifest facts plus generated code."""

    package: str
    category: str
    truth: GroundTruth
    declared_permissions: frozenset
    smali_text: str
    redirect_urls: Tuple[str, ...] = ()
    is_preinstalled: bool = False
    vendor: str = ""
    instances: int = 1  # how many factory images carry it (pre-installed)

    def has_permission(self, name: str) -> bool:
        """Manifest check used by the classifier's first pass."""
        return name in self.declared_permissions


@dataclass(frozen=True)
class PlayCorpusSpec:
    """Calibration constants for the Play corpus (paper Section IV)."""

    total: int = 12750
    vulnerable: int = 779
    secure: int = 152
    unknown_reflection: int = 200
    unknown_field_mode: int = 200
    unknown_mixed: int = 162
    write_external_total: int = 8721
    # Table IV redirect-count buckets: (count, apps-with-exactly-that).
    redirect_exact_1: int = 723
    redirect_exact_2: int = 682
    redirect_3_to_4: int = 685
    redirect_5_to_8: int = 247
    redirect_9_plus: int = 8462

    @property
    def installers(self) -> int:
        """Apps containing the installation API (1,493 in the paper)."""
        return (self.vulnerable + self.secure + self.unknown_reflection
                + self.unknown_field_mode + self.unknown_mixed)

    @property
    def redirecting(self) -> int:
        """Apps with >= 1 hardcoded URL/scheme (84.7% in the paper)."""
        return (self.redirect_exact_1 + self.redirect_exact_2
                + self.redirect_3_to_4 + self.redirect_5_to_8
                + self.redirect_9_plus)


@dataclass(frozen=True)
class PreinstalledCorpusSpec:
    """Calibration constants for the pre-installed corpus."""

    unique_apps: int = 1613
    total_instances: int = 12050
    vulnerable: int = 102
    secure: int = 3
    unknown: int = 133
    write_external_instances: int = 5864

    @property
    def installers(self) -> int:
        """Unique pre-installed apps with the installation API (238)."""
        return self.vulnerable + self.secure + self.unknown


# ---------------------------------------------------------------------------
# smali code templates
# ---------------------------------------------------------------------------


def _class_header(package: str, suffix: str) -> str:
    path = package.replace(".", "/")
    return f".class L{path}/{suffix};"


def _install_trigger_block() -> List[str]:
    """The installation API call every installer carries."""
    return [
        f'const-string v3, "{INSTALL_MARKER}"',
        "invoke-virtual {v0, v4, v3}, Landroid/content/Intent;->"
        "setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;",
        "invoke-virtual {v0, v4}, Landroid/content/Context;->"
        "startActivity(Landroid/content/Intent;)V",
    ]


def _vulnerable_body(package: str) -> List[str]:
    """SD-Card staging, no world-readable call."""
    return [
        f'const-string v1, "https://cdn.{package}.example/update.apk"',
        f'const-string v2, "/sdcard/{package.split(".")[-1]}/update.apk"',
        "invoke-static {v1, v2}, Lcom/helper/Net;->"
        "download(Ljava/lang/String;Ljava/lang/String;)V",
        *_install_trigger_block(),
    ]


def _secure_body(package: str, variant: int) -> List[str]:
    """Internal staging with a *confirmed* world-readable setter."""
    if variant % 3 == 0:
        setter = [
            'const-string v1, "update.apk"',
            "const/4 v2, 1",  # MODE_WORLD_READABLE
            "invoke-virtual {v0, v1, v2}, Landroid/content/Context;->"
            "openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;",
        ]
    elif variant % 3 == 1:
        setter = [
            "const/4 v2, 1",  # readable = true
            "const/4 v3, 0",  # ownerOnly = false
            "invoke-virtual {v1, v2, v3}, Ljava/io/File;->setReadable(ZZ)Z",
        ]
    else:
        setter = [
            f'const-string v2, "chmod 644 /data/data/{package}/files/update.apk"',
            "invoke-virtual {v1, v2}, Ljava/lang/Runtime;->"
            "exec(Ljava/lang/String;)Ljava/lang/Process;",
        ]
    return [
        f'const-string v5, "/data/data/{package}/files/update.apk"',
        *setter,
        *_install_trigger_block(),
    ]


def _unknown_reflection_body(package: str, index: int = 0) -> List[str]:
    """Install marker present, but the flow runs through an opaque edge.

    Alternates between the two failure modes the paper hit with
    Flowdroid: reflective class loading (incomplete CFG) and
    ``Handler.handleMessage`` (untrackable callback).
    """
    if index % 2 == 0:
        opaque_edge = [
            f'const-string v1, "com.{package.split(".")[-1]}.DownloadTask"',
            "invoke-static {v1}, Ljava/lang/Class;->"
            "forName(Ljava/lang/String;)Ljava/lang/Class;",
        ]
    else:
        opaque_edge = [
            "invoke-virtual {v0, v2}, Landroid/os/Handler;->"
            "handleMessage(Landroid/os/Message;)V",
        ]
    return [*opaque_edge, *_install_trigger_block()]


def _unknown_field_mode_body(package: str) -> List[str]:
    """openFileOutput whose mode comes from a field: def-use dead end."""
    return [
        'const-string v1, "update.apk"',
        f"iget v2, v0, L{package.replace('.', '/')}/Config;->fileMode:I",
        "invoke-virtual {v0, v1, v2}, Landroid/content/Context;->"
        "openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;",
        *_install_trigger_block(),
    ]


def _unknown_mixed_body(package: str) -> List[str]:
    """Uses both sdcard and a confirmed readable setter: ambiguous."""
    return [
        f'const-string v1, "/sdcard/{package.split(".")[-1]}/cache.apk"',
        'const-string v2, "fallback.apk"',
        "const/4 v3, 1",
        "invoke-virtual {v0, v2, v3}, Landroid/content/Context;->"
        "openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;",
        *_install_trigger_block(),
    ]


def _non_installer_body(package: str, with_sdcard: bool) -> List[str]:
    body = [
        f'const-string v1, "https://api.{package.split(".")[-1]}.example/feed"',
        "invoke-static {v1}, Lcom/helper/Net;->get(Ljava/lang/String;)V",
    ]
    if with_sdcard:
        body.append('const-string v2, "/sdcard/Pictures/cache.jpg"')
    return body


def _redirect_method(urls: Sequence[str]) -> List[str]:
    lines = [".method openStorePage()V"]
    for index, url in enumerate(urls, start=1):
        lines.append(f'const-string v{index % 8}, "{url}"')
    lines.append(
        "invoke-virtual {v0, v4}, Landroid/content/Context;->"
        "startActivity(Landroid/content/Intent;)V"
    )
    lines.append(".end method")
    return lines


_BODY_BUILDERS = {
    GroundTruth.VULNERABLE: lambda pkg, idx: _vulnerable_body(pkg),
    GroundTruth.SECURE: _secure_body,
    GroundTruth.UNKNOWN_REFLECTION: _unknown_reflection_body,
    GroundTruth.UNKNOWN_FIELD_MODE: lambda pkg, idx: _unknown_field_mode_body(pkg),
    GroundTruth.UNKNOWN_MIXED: lambda pkg, idx: _unknown_mixed_body(pkg),
}


def _render_app_code(package: str, truth: GroundTruth, index: int,
                     redirect_urls: Sequence[str],
                     sdcard_noise: bool) -> str:
    lines = [_class_header(package, "MainActivity")]
    lines.append(".method run()V")
    if truth is GroundTruth.NON_INSTALLER:
        lines.extend(_non_installer_body(package, sdcard_noise))
    else:
        lines.extend(_BODY_BUILDERS[truth](package, index))
    lines.append(".end method")
    if redirect_urls:
        lines.extend(_redirect_method(redirect_urls))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# corpus generation
# ---------------------------------------------------------------------------


def _redirect_counts(spec: PlayCorpusSpec, rng: DeterministicRandom) -> List[int]:
    """Per-app hardcoded-URL counts matching Table IV's buckets."""
    counts: List[int] = []
    counts.extend([1] * spec.redirect_exact_1)
    counts.extend([2] * spec.redirect_exact_2)
    for index in range(spec.redirect_3_to_4):
        counts.append(3 + index % 2)
    for index in range(spec.redirect_5_to_8):
        counts.append(5 + index % 4)
    for index in range(spec.redirect_9_plus):
        counts.append(9 + index % 16)
    counts.extend([0] * (spec.total - len(counts)))
    rng.shuffle(counts)
    return counts


def _make_urls(package: str, count: int,
               rng: DeterministicRandom) -> Tuple[str, ...]:
    urls = []
    for index in range(count):
        target = f"com.promo.{rng.token(6)}" if index else _predictable_target(package)
        scheme = rng.choice([PLAY_URL, MARKET_SCHEME, MARKET_URL])
        urls.append(f"{scheme}{target}")
    return tuple(urls)


def _predictable_target(package: str) -> str:
    """Single-URL apps redirect to one predictable companion app."""
    return f"{package}.companion"


def generate_play_corpus(seed: int = 2016,
                         spec: Optional[PlayCorpusSpec] = None) -> List[CorpusApp]:
    """Generate the synthetic top-12,750 Google Play corpus."""
    spec = spec or PlayCorpusSpec()
    rng = DeterministicRandom(seed).fork("play-corpus")
    truths: List[GroundTruth] = []
    truths.extend([GroundTruth.VULNERABLE] * spec.vulnerable)
    truths.extend([GroundTruth.SECURE] * spec.secure)
    truths.extend([GroundTruth.UNKNOWN_REFLECTION] * spec.unknown_reflection)
    truths.extend([GroundTruth.UNKNOWN_FIELD_MODE] * spec.unknown_field_mode)
    truths.extend([GroundTruth.UNKNOWN_MIXED] * spec.unknown_mixed)
    truths.extend(
        [GroundTruth.NON_INSTALLER] * (spec.total - len(truths))
    )
    if len(truths) != spec.total:
        raise CorpusError("Play corpus spec does not sum to its total")
    rng.shuffle(truths)
    redirect_counts = _redirect_counts(spec, rng.fork("redirects"))

    # WRITE_EXTERNAL_STORAGE: every vulnerable app needs it; fill the
    # remainder from the other apps deterministically.
    permission_budget = spec.write_external_total - spec.vulnerable
    if permission_budget < 0:
        raise CorpusError("write_external_total below vulnerable count")

    apps: List[CorpusApp] = []
    for index, truth in enumerate(truths):
        category = PLAY_CATEGORIES[index % len(PLAY_CATEGORIES)]
        package = f"com.play.{category.lower()}.app{index:05d}"
        permissions = {"android.permission.INTERNET"}
        if truth is GroundTruth.VULNERABLE:
            permissions.add(WRITE_EXTERNAL)
        elif permission_budget > 0:
            permissions.add(WRITE_EXTERNAL)
            permission_budget -= 1
        urls = _make_urls(package, redirect_counts[index], rng)
        sdcard_noise = truth is GroundTruth.NON_INSTALLER and index % 5 == 0
        apps.append(
            CorpusApp(
                package=package,
                category=category,
                truth=truth,
                declared_permissions=frozenset(permissions),
                smali_text=_render_app_code(package, truth, index, urls,
                                            sdcard_noise),
                redirect_urls=urls,
            )
        )
    if permission_budget != 0:
        raise CorpusError("could not place all WRITE_EXTERNAL grants")
    return apps


def generate_preinstalled_corpus(
        seed: int = 2016,
        spec: Optional[PreinstalledCorpusSpec] = None) -> List[CorpusApp]:
    """Generate the synthetic pre-installed corpus (60 images, deduped).

    Returns the 1,613 *unique* apps; each carries ``instances`` — how
    many of the 60 images ship it — so instance-weighted statistics
    (like the paper's 5,864/12,050 WRITE_EXTERNAL count) can be taken.
    """
    spec = spec or PreinstalledCorpusSpec()
    rng = DeterministicRandom(seed).fork("preinstalled-corpus")
    truths: List[GroundTruth] = []
    truths.extend([GroundTruth.VULNERABLE] * spec.vulnerable)
    truths.extend([GroundTruth.SECURE] * spec.secure)
    reflection = spec.unknown // 2
    field_mode = spec.unknown - reflection
    truths.extend([GroundTruth.UNKNOWN_REFLECTION] * reflection)
    truths.extend([GroundTruth.UNKNOWN_FIELD_MODE] * field_mode)
    truths.extend(
        [GroundTruth.NON_INSTALLER] * (spec.unique_apps - len(truths))
    )
    rng.shuffle(truths)

    # Instance counts: N unique apps over `total_instances` placements.
    # With 1,613 apps and 12,050 instances: 759 apps appear on 8 images
    # and 854 on 7 (759*8 + 854*7 = 12,050).
    eight_count = spec.total_instances - 7 * spec.unique_apps
    if not 0 <= eight_count <= spec.unique_apps:
        raise CorpusError("instance arithmetic does not fit the spec")
    instance_counts = [8] * eight_count + [7] * (spec.unique_apps - eight_count)

    # WRITE_EXTERNAL is counted instance-weighted: 733 eight-instance
    # apps hold it (733 * 8 = 5,864).  Vulnerable apps must hold it, so
    # they are placed among those 733.
    if spec.write_external_instances % 8 != 0:
        raise CorpusError("write_external_instances must divide by 8 here")
    write_apps = spec.write_external_instances // 8
    if write_apps > eight_count or spec.vulnerable > write_apps:
        raise CorpusError("cannot place WRITE_EXTERNAL holders")

    vendors = ["samsung", "xiaomi", "huawei"]
    apps: List[CorpusApp] = []
    secure_assigned = 0
    # Vulnerable apps hold WRITE_EXTERNAL by definition; reserve their
    # quota upfront so the non-vulnerable fill stays exact.
    write_remaining = write_apps - spec.vulnerable
    for index, truth in enumerate(truths):
        vendor = vendors[index % len(vendors)]
        if truth is GroundTruth.SECURE:
            package = SECURE_PREINSTALLED_PACKAGES[secure_assigned]
            secure_assigned += 1
        else:
            package = f"com.{vendor}.sys.app{index:04d}"
        permissions = {"android.permission.INTERNET"}
        if truth is GroundTruth.VULNERABLE:
            instances = 8
            permissions.add(WRITE_EXTERNAL)
        else:
            instances = instance_counts[index]
            if instances == 8 and write_remaining > 0:
                permissions.add(WRITE_EXTERNAL)
                write_remaining -= 1
        urls: Tuple[str, ...] = ()
        apps.append(
            CorpusApp(
                package=package,
                category="PREINSTALLED",
                truth=truth,
                declared_permissions=frozenset(permissions),
                smali_text=_render_app_code(package, truth, index, urls, False),
                is_preinstalled=True,
                vendor=vendor,
                instances=instances,
            )
        )
    # Rebalance instance totals: vulnerable apps were forced to 8, which
    # may double-count slots; fix by trimming other 8-instance apps.
    _rebalance_instances(apps, spec.total_instances)
    return apps


def _rebalance_instances(apps: List[CorpusApp], target_total: int) -> None:
    current = sum(app.instances for app in apps)
    index = 0
    while current > target_total and index < len(apps):
        app = apps[index]
        if (app.instances == 8 and app.truth is not GroundTruth.VULNERABLE
                and WRITE_EXTERNAL not in app.declared_permissions):
            app.instances = 7
            current -= 1
        index += 1
    if current != target_total:
        raise CorpusError(
            f"instance rebalance failed: {current} != {target_total}"
        )
