"""Synthetic app corpora with planted, classifier-recoverable traits.

The generator emits real smali-like code per app (parsed and analyzed
by :mod:`repro.analysis.classifier`), planting the traits the paper
reports at their reported rates:

Google Play corpus (top 12,750 apps, Section IV-A):
    1,493 contain the installation API marker; of those 779 stage on
    /sdcard without making the APK world-readable (potentially
    vulnerable), 152 stage internally and set it world-readable
    (potentially secure), 562 are unresolvable (reflection, field-loaded
    modes, mixed storage).  8,721 request WRITE_EXTERNAL_STORAGE.
    84.7% carry >= 1 hardcoded Play URL/scheme, with Table IV's count
    distribution (723 exactly one, 1,405 <= 2, 2,090 <= 4, 2,337 <= 8).

Pre-installed corpus (12,050 app instances on 60 images, 1,613 unique):
    238 unique installers; 102 vulnerable / 3 secure / 133 unknown.
    5,864 of the 12,050 instances request WRITE_EXTERNAL_STORAGE.

Exact agreement with the paper's counts is therefore by construction —
the synthetic corpus validates the analysis pipeline, not the 2016 app
ecosystem (see DESIGN.md section 4).
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import CorpusError
from repro.sim.rand import TOKEN_ALPHABET as _ALNUM
from repro.sim.rand import DeterministicRandom

WRITE_EXTERNAL = "android.permission.WRITE_EXTERNAL_STORAGE"
INSTALL_MARKER = "application/vnd.android.package-archive"

PLAY_URL = "http://play.google.com/store/apps/details?id="
MARKET_SCHEME = "market://details?id="
MARKET_URL = "https://market.android.com/details?id="

PLAY_CATEGORIES = [
    "BOOKS", "BUSINESS", "COMICS", "COMMUNICATION", "EDUCATION",
    "ENTERTAINMENT", "FINANCE", "GAMES", "HEALTH", "LIBRARIES",
    "LIFESTYLE", "MEDIA", "MEDICAL", "MUSIC", "NEWS", "PERSONALIZATION",
    "PHOTOGRAPHY", "PRODUCTIVITY", "SHOPPING", "SOCIAL", "SPORTS",
    "TOOLS", "TRANSPORTATION", "TRAVEL", "WEATHER", "WIDGETS", "UTILITIES",
]

_PLAY_CATEGORIES_LOWER = tuple(name.lower() for name in PLAY_CATEGORIES)

# The paper's three confirmed-secure pre-installed installers.
SECURE_PREINSTALLED_PACKAGES = (
    "com.miui.tsmclient",
    "com.huawei.remoteassistant",
    "com.samsung.android.spay",
)


class GroundTruth(enum.Enum):
    """What the generator planted (the classifier must *recover* it)."""

    NON_INSTALLER = "non-installer"
    VULNERABLE = "vulnerable"            # sdcard staging, no readable setter
    SECURE = "secure"                    # internal staging, world-readable
    UNKNOWN_REFLECTION = "unknown-reflection"
    UNKNOWN_FIELD_MODE = "unknown-field-mode"
    UNKNOWN_MIXED = "unknown-mixed"

    @property
    def is_installer(self) -> bool:
        """True for apps carrying the installation API."""
        return self is not GroundTruth.NON_INSTALLER

    @property
    def is_unknown(self) -> bool:
        """True for the three unresolvable flavors."""
        return self in (
            GroundTruth.UNKNOWN_REFLECTION,
            GroundTruth.UNKNOWN_FIELD_MODE,
            GroundTruth.UNKNOWN_MIXED,
        )


@dataclass
class CorpusApp:
    """One synthetic app: manifest facts plus generated code."""

    package: str
    category: str
    truth: GroundTruth
    declared_permissions: frozenset
    smali_text: str
    redirect_urls: Tuple[str, ...] = ()
    is_preinstalled: bool = False
    vendor: str = ""
    instances: int = 1  # how many factory images carry it (pre-installed)

    def has_permission(self, name: str) -> bool:
        """Manifest check used by the classifier's first pass."""
        return name in self.declared_permissions


@dataclass(frozen=True)
class PlayCorpusSpec:
    """Calibration constants for the Play corpus (paper Section IV)."""

    total: int = 12750
    vulnerable: int = 779
    secure: int = 152
    unknown_reflection: int = 200
    unknown_field_mode: int = 200
    unknown_mixed: int = 162
    write_external_total: int = 8721
    # Table IV redirect-count buckets: (count, apps-with-exactly-that).
    redirect_exact_1: int = 723
    redirect_exact_2: int = 682
    redirect_3_to_4: int = 685
    redirect_5_to_8: int = 247
    redirect_9_plus: int = 8462

    @property
    def installers(self) -> int:
        """Apps containing the installation API (1,493 in the paper)."""
        return (self.vulnerable + self.secure + self.unknown_reflection
                + self.unknown_field_mode + self.unknown_mixed)

    @property
    def redirecting(self) -> int:
        """Apps with >= 1 hardcoded URL/scheme (84.7% in the paper)."""
        return (self.redirect_exact_1 + self.redirect_exact_2
                + self.redirect_3_to_4 + self.redirect_5_to_8
                + self.redirect_9_plus)


@dataclass(frozen=True)
class PreinstalledCorpusSpec:
    """Calibration constants for the pre-installed corpus."""

    unique_apps: int = 1613
    total_instances: int = 12050
    vulnerable: int = 102
    secure: int = 3
    unknown: int = 133
    write_external_instances: int = 5864

    @property
    def installers(self) -> int:
        """Unique pre-installed apps with the installation API (238)."""
        return self.vulnerable + self.secure + self.unknown


# ---------------------------------------------------------------------------
# smali code templates
# ---------------------------------------------------------------------------


def _class_header(package: str, suffix: str) -> str:
    path = package.replace(".", "/")
    return f".class L{path}/{suffix};"


#: The installation API call every installer carries.  A constant
#: tuple: the old helper rebuilt this list per generated app.
_INSTALL_TRIGGER_BLOCK = (
    f'const-string v3, "{INSTALL_MARKER}"',
    "invoke-virtual {v0, v4, v3}, Landroid/content/Intent;->"
    "setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;",
    "invoke-virtual {v0, v4}, Landroid/content/Context;->"
    "startActivity(Landroid/content/Intent;)V",
)


def _install_trigger_block() -> List[str]:
    """The installation API call every installer carries."""
    return list(_INSTALL_TRIGGER_BLOCK)


def _vulnerable_body(package: str) -> List[str]:
    """SD-Card staging, no world-readable call."""
    return [
        f'const-string v1, "https://cdn.{package}.example/update.apk"',
        f'const-string v2, "/sdcard/{package.split(".")[-1]}/update.apk"',
        "invoke-static {v1, v2}, Lcom/helper/Net;->"
        "download(Ljava/lang/String;Ljava/lang/String;)V",
        *_INSTALL_TRIGGER_BLOCK,
    ]


def _secure_body(package: str, variant: int) -> List[str]:
    """Internal staging with a *confirmed* world-readable setter."""
    if variant % 3 == 0:
        setter = [
            'const-string v1, "update.apk"',
            "const/4 v2, 1",  # MODE_WORLD_READABLE
            "invoke-virtual {v0, v1, v2}, Landroid/content/Context;->"
            "openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;",
        ]
    elif variant % 3 == 1:
        setter = [
            "const/4 v2, 1",  # readable = true
            "const/4 v3, 0",  # ownerOnly = false
            "invoke-virtual {v1, v2, v3}, Ljava/io/File;->setReadable(ZZ)Z",
        ]
    else:
        setter = [
            f'const-string v2, "chmod 644 /data/data/{package}/files/update.apk"',
            "invoke-virtual {v1, v2}, Ljava/lang/Runtime;->"
            "exec(Ljava/lang/String;)Ljava/lang/Process;",
        ]
    return [
        f'const-string v5, "/data/data/{package}/files/update.apk"',
        *setter,
        *_INSTALL_TRIGGER_BLOCK,
    ]


def _unknown_reflection_body(package: str, index: int = 0) -> List[str]:
    """Install marker present, but the flow runs through an opaque edge.

    Alternates between the two failure modes the paper hit with
    Flowdroid: reflective class loading (incomplete CFG) and
    ``Handler.handleMessage`` (untrackable callback).
    """
    if index % 2 == 0:
        opaque_edge = [
            f'const-string v1, "com.{package.split(".")[-1]}.DownloadTask"',
            "invoke-static {v1}, Ljava/lang/Class;->"
            "forName(Ljava/lang/String;)Ljava/lang/Class;",
        ]
    else:
        opaque_edge = [
            "invoke-virtual {v0, v2}, Landroid/os/Handler;->"
            "handleMessage(Landroid/os/Message;)V",
        ]
    return [*opaque_edge, *_INSTALL_TRIGGER_BLOCK]


def _unknown_field_mode_body(package: str) -> List[str]:
    """openFileOutput whose mode comes from a field: def-use dead end."""
    return [
        'const-string v1, "update.apk"',
        f"iget v2, v0, L{package.replace('.', '/')}/Config;->fileMode:I",
        "invoke-virtual {v0, v1, v2}, Landroid/content/Context;->"
        "openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;",
        *_INSTALL_TRIGGER_BLOCK,
    ]


def _unknown_mixed_body(package: str) -> List[str]:
    """Uses both sdcard and a confirmed readable setter: ambiguous."""
    return [
        f'const-string v1, "/sdcard/{package.split(".")[-1]}/cache.apk"',
        'const-string v2, "fallback.apk"',
        "const/4 v3, 1",
        "invoke-virtual {v0, v2, v3}, Landroid/content/Context;->"
        "openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;",
        *_INSTALL_TRIGGER_BLOCK,
    ]


def _non_installer_body(package: str, with_sdcard: bool) -> List[str]:
    body = [
        f'const-string v1, "https://api.{package.split(".")[-1]}.example/feed"',
        "invoke-static {v1}, Lcom/helper/Net;->get(Ljava/lang/String;)V",
    ]
    if with_sdcard:
        body.append('const-string v2, "/sdcard/Pictures/cache.jpg"')
    return body


def _redirect_method(url_lines: Sequence[str]) -> List[str]:
    return [
        ".method openStorePage()V",
        *url_lines,
        "invoke-virtual {v0, v4}, Landroid/content/Context;->"
        "startActivity(Landroid/content/Intent;)V",
        ".end method",
    ]


_BODY_BUILDERS = {
    GroundTruth.VULNERABLE: lambda pkg, idx: _vulnerable_body(pkg),
    GroundTruth.SECURE: _secure_body,
    GroundTruth.UNKNOWN_REFLECTION: _unknown_reflection_body,
    GroundTruth.UNKNOWN_FIELD_MODE: lambda pkg, idx: _unknown_field_mode_body(pkg),
    GroundTruth.UNKNOWN_MIXED: lambda pkg, idx: _unknown_mixed_body(pkg),
}


def _render_app_code(package: str, truth: GroundTruth, index: int,
                     redirect_url_lines: Sequence[str],
                     sdcard_noise: bool) -> str:
    lines = [_class_header(package, "MainActivity")]
    lines.append(".method run()V")
    if truth is GroundTruth.NON_INSTALLER:
        lines.extend(_non_installer_body(package, sdcard_noise))
    else:
        lines.extend(_BODY_BUILDERS[truth](package, index))
    lines.append(".end method")
    if redirect_url_lines:
        lines.extend(_redirect_method(redirect_url_lines))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# index-addressable derivation
# ---------------------------------------------------------------------------
#
# The corpus is *streaming and shard-addressable*: app ``index`` is
# derived in O(1) from the seed, the way ``engine/spec.py`` derives
# installs, so a million-app corpus is never materialized as a list.
# Each app's planted trait is its *slot* in a canonical layout
# (vulnerable apps first, then secure, then the unknowns, then
# non-installers); a keyed Feistel permutation maps index -> slot, so
# traits are scattered across the corpus while every category count
# stays exact by construction.  All spec feasibility checks happen in
# the plan constructor — *before any app is built* — so a bad custom
# spec fails cleanly instead of leaving a half-generated corpus.

_M64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """splitmix64 finalizer: a stable, well-mixed 64-bit hash."""
    value &= _M64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _M64
    return value ^ (value >> 31)


class IndexPermutation:
    """A keyed bijection of ``range(size)`` with O(1) memory.

    Four alternating-half Feistel rounds (an unbalanced network: the
    two halves keep their own widths and take turns absorbing the
    splitmix64 round function, which is bijective for any split) over
    the *smallest* power-of-two domain covering ``size``.  The tight
    domain keeps the cycle walk's expected re-entries below one —
    the previous even-bit balanced network could oversize the domain
    almost 4x and walked ~3x per call near those sizes.  Pure integer
    arithmetic — stable across platforms and Python versions, unlike
    ``hash()``.
    """

    def __init__(self, size: int, rng: DeterministicRandom) -> None:
        self.size = size
        bits = max(2, (max(size, 2) - 1).bit_length())
        self._r_bits = bits // 2
        self._l_mask = (1 << (bits - bits // 2)) - 1
        self._r_mask = (1 << (bits // 2)) - 1
        self._keys = tuple(
            rng.fork(f"round-{round_no}").randint(0, _M64)
            for round_no in range(4)
        )

    def __call__(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise CorpusError(f"index {index} outside corpus of {self.size}")
        # Inlined and unrolled: this runs 2x per app (truth + redirect
        # slots), so the per-round function calls of the naive form
        # dominated corpus generation.
        size = self.size
        r_bits = self._r_bits
        l_mask = self._l_mask
        r_mask = self._r_mask
        k0, k1, k2, k3 = self._keys
        value = index
        while True:
            left = value >> r_bits
            right = value & r_mask
            mixed = (right + k0) & _M64
            mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & _M64
            mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & _M64
            left ^= (mixed ^ (mixed >> 31)) & l_mask
            mixed = (left + k1) & _M64
            mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & _M64
            mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & _M64
            right ^= (mixed ^ (mixed >> 31)) & r_mask
            mixed = (right + k2) & _M64
            mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & _M64
            mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & _M64
            left ^= (mixed ^ (mixed >> 31)) & l_mask
            mixed = (left + k3) & _M64
            mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & _M64
            mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & _M64
            right ^= (mixed ^ (mixed >> 31)) & r_mask
            value = (left << r_bits) | right
            if value < size:
                return value

    def _feistel(self, value: int) -> int:
        """One pass of the network (kept for direct testing)."""
        left = value >> self._r_bits
        right = value & self._r_mask
        left ^= _mix64(right + self._keys[0]) & self._l_mask
        right ^= _mix64(left + self._keys[1]) & self._r_mask
        left ^= _mix64(right + self._keys[2]) & self._l_mask
        right ^= _mix64(left + self._keys[3]) & self._r_mask
        return (left << self._r_bits) | right


#: Redirect scheme pool, constant (the old code built a list per URL).
_SCHEMES = (PLAY_URL, MARKET_SCHEME, MARKET_URL)

#: All 1,296 two-character alnum pairs: a 6-char token is three table
#: lookups on the base-1296 digits of a 64-bit draw.
_PAIRS = tuple(a + b for a in _ALNUM for b in _ALNUM)

_TOKEN_SPACE = 36 ** 6          # 6-char alnum tokens
_GOLDEN = 0x9E3779B97F4A7C15    # odd => index * _GOLDEN is injective mod 2^64

#: The two manifest shapes every Play app draws from, prebuilt.
_PERMS_BASE = frozenset({"android.permission.INTERNET"})
_PERMS_WITH_WRITE = frozenset({"android.permission.INTERNET",
                               WRITE_EXTERNAL})

_object_new = object.__new__


#: Decoy redirect URLs are drawn from a finite keyed pool rather than
#: minted per app.  This mirrors reality — redirect chains reuse a
#: bounded population of store/tracker URLs across many apps — and it
#: is what lets a 100k-app sweep go fast: a pooled decoy's
#: ``const-string`` line is byte-identical across every app that draws
#: it, so the smali scanner's line memo absorbs it instead of
#: re-scanning a globally unique URL line per app.  Only the first URL
#: of a chain (the predictable ``<package>.companion`` target that
#: Table IV's single-URL analysis keys on) stays app-specific.
_DECOY_POOL_SIZE = 4096
_DECOY_MASK = _DECOY_POOL_SIZE - 1
_DECOY_STRIDE = 0x68E31DA5      # odd => distinct picks within a chain


@functools.lru_cache(maxsize=8)
def _decoy_pool(key: int) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """``(urls, const-string lines)`` decoy tables for one URL key."""
    urls = []
    lines = []
    for entry in range(_DECOY_POOL_SIZE):
        value = _mix64(key ^ (entry * _GOLDEN))
        token = value % _TOKEN_SPACE
        url = (_SCHEMES[(value >> 33) % 3] + "com.promo."
               + _PAIRS[token // 1679616]
               + _PAIRS[(token // 1296) % 1296]
               + _PAIRS[token % 1296])
        urls.append(url)
        lines.append(f'const-string v{entry & 7}, "{url}"')
    return tuple(urls), tuple(lines)


def _make_redirects(package: str, count: int, key: int,
                    index: int) -> Tuple[Tuple[str, ...], List[str]]:
    """App ``index``'s redirect URLs plus their rendered code lines.

    The original implementation forked a per-app ``random.Random`` (a
    full 624-word Mersenne-Twister seeding, ~8us) and drew every URL
    character through a rejection loop; at 100k+ apps the URL material
    dominated corpus generation.  Now one :func:`_mix64` call seeds the
    app's chain: the first URL is the app's predictable companion
    target, every later position indexes the keyed decoy pool.
    """
    if not count:
        return (), []
    base = _mix64(key ^ (index * _GOLDEN))
    first = _SCHEMES[(base >> 33) % 3] + _predictable_target(package)
    urls = [first]
    lines = [f'const-string v1, "{first}"']
    if count > 1:
        pool_urls, pool_lines = _decoy_pool(key)
        for position in range(1, count):
            pick = (base + position * _DECOY_STRIDE) & _DECOY_MASK
            urls.append(pool_urls[pick])
            lines.append(pool_lines[pick])
    return tuple(urls), lines


def _predictable_target(package: str) -> str:
    """Single-URL apps redirect to one predictable companion app."""
    return f"{package}.companion"


class PlayCorpusPlan:
    """O(1)-memory, index-addressable Play corpus derivation.

    ``app_at(index)`` builds app ``index`` alone; ``iter_apps`` streams
    a half-open ``[start, stop)`` range — the unit a shard works on.
    """

    vendors: Tuple[str, ...] = ()

    def __init__(self, seed: int = 2016,
                 spec: Optional[PlayCorpusSpec] = None) -> None:
        spec = spec or PlayCorpusSpec()
        counts = (spec.total, spec.vulnerable, spec.secure,
                  spec.unknown_reflection, spec.unknown_field_mode,
                  spec.unknown_mixed, spec.write_external_total,
                  spec.redirect_exact_1, spec.redirect_exact_2,
                  spec.redirect_3_to_4, spec.redirect_5_to_8,
                  spec.redirect_9_plus)
        if any(count < 0 for count in counts):
            raise CorpusError("Play corpus spec has a negative count")
        if spec.installers > spec.total:
            raise CorpusError("Play corpus spec does not sum to its total")
        if spec.write_external_total < spec.vulnerable:
            raise CorpusError("write_external_total below vulnerable count")
        if spec.write_external_total > spec.total:
            raise CorpusError("could not place all WRITE_EXTERNAL grants")
        if spec.redirecting > spec.total:
            raise CorpusError("redirect buckets exceed the corpus total")
        self.seed = seed
        self.spec = spec
        self.size = spec.total
        rng = DeterministicRandom(seed).fork("play-corpus")
        self._urls_key = rng.fork("urls").randint(0, _M64)
        self._truth_perm = IndexPermutation(spec.total, rng.fork("truths"))
        self._redirect_perm = IndexPermutation(spec.total,
                                               rng.fork("redirects"))
        # Canonical slot layout: cumulative truth-category boundaries.
        self._truth_edges: List[Tuple[int, GroundTruth]] = []
        edge = 0
        for count, truth in (
            (spec.vulnerable, GroundTruth.VULNERABLE),
            (spec.secure, GroundTruth.SECURE),
            (spec.unknown_reflection, GroundTruth.UNKNOWN_REFLECTION),
            (spec.unknown_field_mode, GroundTruth.UNKNOWN_FIELD_MODE),
            (spec.unknown_mixed, GroundTruth.UNKNOWN_MIXED),
        ):
            edge += count
            self._truth_edges.append((edge, truth))

    def _truth_for_slot(self, slot: int) -> GroundTruth:
        for edge, truth in self._truth_edges:
            if slot < edge:
                return truth
        return GroundTruth.NON_INSTALLER

    def _redirect_count_for_slot(self, slot: int) -> int:
        """Table IV's count distribution, laid out over canonical slots."""
        spec = self.spec
        if slot < spec.redirect_exact_1:
            return 1
        slot -= spec.redirect_exact_1
        if slot < spec.redirect_exact_2:
            return 2
        slot -= spec.redirect_exact_2
        if slot < spec.redirect_3_to_4:
            return 3 + slot % 2
        slot -= spec.redirect_3_to_4
        if slot < spec.redirect_5_to_8:
            return 5 + slot % 4
        slot -= spec.redirect_5_to_8
        if slot < spec.redirect_9_plus:
            return 9 + slot % 16
        return 0

    def app_at(self, index: int) -> CorpusApp:
        """Build app ``index`` from the seed alone (no shared state)."""
        slot = self._truth_perm(index)
        truth = self._truth_for_slot(slot)
        position = index % len(PLAY_CATEGORIES)
        package = f"com.play.{_PLAY_CATEGORIES_LOWER[position]}.app{index:05d}"
        redirect_count = self._redirect_count_for_slot(
            self._redirect_perm(index))
        urls, url_lines = _make_redirects(package, redirect_count,
                                          self._urls_key, index)
        sdcard_noise = truth is GroundTruth.NON_INSTALLER and index % 5 == 0
        app = _object_new(CorpusApp)
        # Bypassing the dataclass __init__ (nine sequential attribute
        # stores) is measurable at corpus-sweep scale.
        app.__dict__ = {
            "package": package,
            "category": PLAY_CATEGORIES[position],
            "truth": truth,
            # WRITE_EXTERNAL by slot: the vulnerable slots (which
            # *must* hold it) plus the next slots up to the
            # calibrated total.
            "declared_permissions": (
                _PERMS_WITH_WRITE
                if slot < self.spec.write_external_total
                else _PERMS_BASE),
            "smali_text": _render_app_code(package, truth, index, url_lines,
                                           sdcard_noise),
            "redirect_urls": urls,
            "is_preinstalled": False,
            "vendor": "",
            "instances": 1,
        }
        return app

    def iter_apps(self, start: int = 0,
                  stop: Optional[int] = None) -> Iterator[CorpusApp]:
        """Stream apps ``[start, stop)`` without materializing a list."""
        stop = self.size if stop is None else min(stop, self.size)
        for index in range(start, stop):
            yield self.app_at(index)


class PreinstalledCorpusPlan:
    """O(1)-memory, index-addressable pre-installed corpus derivation.

    The slot layout packs the bookkeeping the old list-based generator
    fixed up after the fact (``_rebalance_instances``) into exact,
    validated arithmetic: slots ``[0, eight_count)`` are 8-instance
    apps, slots ``[0, write_apps)`` hold WRITE_EXTERNAL (vulnerable
    slots come first, so they always hold it), everything else is a
    7-instance app.  Totals are exact by construction and every
    feasibility check runs before any app is built.
    """

    vendors: Tuple[str, ...] = ("samsung", "xiaomi", "huawei")

    def __init__(self, seed: int = 2016,
                 spec: Optional[PreinstalledCorpusSpec] = None) -> None:
        spec = spec or PreinstalledCorpusSpec()
        counts = (spec.unique_apps, spec.total_instances, spec.vulnerable,
                  spec.secure, spec.unknown, spec.write_external_instances)
        if any(count < 0 for count in counts):
            raise CorpusError("pre-installed corpus spec has a negative count")
        if spec.installers > spec.unique_apps:
            raise CorpusError("installer counts exceed unique_apps")
        eight_count = spec.total_instances - 7 * spec.unique_apps
        if not 0 <= eight_count <= spec.unique_apps:
            raise CorpusError("instance arithmetic does not fit the spec")
        if spec.write_external_instances % 8 != 0:
            raise CorpusError("write_external_instances must divide by 8 here")
        write_apps = spec.write_external_instances // 8
        if write_apps > eight_count or spec.vulnerable > write_apps:
            raise CorpusError("cannot place WRITE_EXTERNAL holders")
        self.seed = seed
        self.spec = spec
        self.size = spec.unique_apps
        self.eight_count = eight_count
        self.write_apps = write_apps
        rng = DeterministicRandom(seed).fork("preinstalled-corpus")
        self._perm = IndexPermutation(spec.unique_apps, rng.fork("truths"))
        reflection = spec.unknown // 2
        self._truth_edges = []
        edge = 0
        for count, truth in (
            (spec.vulnerable, GroundTruth.VULNERABLE),
            (spec.secure, GroundTruth.SECURE),
            (reflection, GroundTruth.UNKNOWN_REFLECTION),
            (spec.unknown - reflection, GroundTruth.UNKNOWN_FIELD_MODE),
        ):
            edge += count
            self._truth_edges.append((edge, truth))

    def _truth_for_slot(self, slot: int) -> GroundTruth:
        for edge, truth in self._truth_edges:
            if slot < edge:
                return truth
        return GroundTruth.NON_INSTALLER

    def app_at(self, index: int) -> CorpusApp:
        """Build app ``index`` from the seed alone (no shared state)."""
        slot = self._perm(index)
        truth = self._truth_for_slot(slot)
        vendor = self.vendors[index % len(self.vendors)]
        if truth is GroundTruth.SECURE:
            ordinal = slot - self.spec.vulnerable
            if ordinal < len(SECURE_PREINSTALLED_PACKAGES):
                package = SECURE_PREINSTALLED_PACKAGES[ordinal]
            else:  # scaled corpora outgrow the paper's three names
                package = f"com.{vendor}.secure.pay{ordinal:04d}"
        else:
            package = f"com.{vendor}.sys.app{index:04d}"
        permissions = {"android.permission.INTERNET"}
        if slot < self.write_apps:
            permissions.add(WRITE_EXTERNAL)
        instances = 8 if slot < self.eight_count else 7
        return CorpusApp(
            package=package,
            category="PREINSTALLED",
            truth=truth,
            declared_permissions=frozenset(permissions),
            smali_text=_render_app_code(package, truth, index, (), False),
            is_preinstalled=True,
            vendor=vendor,
            instances=instances,
        )

    def iter_apps(self, start: int = 0,
                  stop: Optional[int] = None) -> Iterator[CorpusApp]:
        """Stream apps ``[start, stop)`` without materializing a list."""
        stop = self.size if stop is None else min(stop, self.size)
        for index in range(start, stop):
            yield self.app_at(index)


#: Corpus kinds the sharded analysis pipeline can address by name.
CORPUS_KINDS = ("play", "preinstalled")


def corpus_plan(kind: str, seed: int = 2016, spec=None):
    """Factory: a streaming corpus plan for ``kind`` (see CORPUS_KINDS)."""
    if kind == "play":
        return PlayCorpusPlan(seed, spec)
    if kind == "preinstalled":
        return PreinstalledCorpusPlan(seed, spec)
    raise CorpusError(f"unknown corpus kind {kind!r}")


def scaled_play_spec(total: int) -> PlayCorpusSpec:
    """A Play spec scaled to ``total`` apps at the paper's trait rates.

    ``scaled_play_spec(12750)`` is exactly the paper spec; other sizes
    floor-scale every bucket (so sums can never exceed the total).
    """
    base = PlayCorpusSpec()
    if total == base.total:
        return base
    if total < 1:
        raise CorpusError("Play corpus needs at least one app")

    def scale(count: int) -> int:
        return (count * total) // base.total

    return PlayCorpusSpec(
        total=total,
        vulnerable=scale(base.vulnerable),
        secure=scale(base.secure),
        unknown_reflection=scale(base.unknown_reflection),
        unknown_field_mode=scale(base.unknown_field_mode),
        unknown_mixed=scale(base.unknown_mixed),
        write_external_total=scale(base.write_external_total),
        redirect_exact_1=scale(base.redirect_exact_1),
        redirect_exact_2=scale(base.redirect_exact_2),
        redirect_3_to_4=scale(base.redirect_3_to_4),
        redirect_5_to_8=scale(base.redirect_5_to_8),
        redirect_9_plus=scale(base.redirect_9_plus),
    )


def scaled_preinstalled_spec(unique_apps: int) -> PreinstalledCorpusSpec:
    """A pre-installed spec scaled to ``unique_apps`` at paper rates."""
    base = PreinstalledCorpusSpec()
    if unique_apps == base.unique_apps:
        return base
    if unique_apps < 1:
        raise CorpusError("pre-installed corpus needs at least one app")

    def scale(count: int) -> int:
        return (count * unique_apps) // base.unique_apps

    eight_count = scale(base.total_instances - 7 * base.unique_apps)
    vulnerable = scale(base.vulnerable)
    write_apps = min(eight_count,
                     max(vulnerable, scale(base.write_external_instances // 8)))
    return PreinstalledCorpusSpec(
        unique_apps=unique_apps,
        total_instances=7 * unique_apps + eight_count,
        vulnerable=vulnerable,
        secure=scale(base.secure),
        unknown=scale(base.unknown),
        write_external_instances=8 * write_apps,
    )


def generate_play_corpus(seed: int = 2016,
                         spec: Optional[PlayCorpusSpec] = None) -> List[CorpusApp]:
    """Generate the synthetic top-12,750 Google Play corpus.

    Materializes the streaming :class:`PlayCorpusPlan` — callers that
    only need a shard should use the plan's ``iter_apps`` directly.
    """
    return list(PlayCorpusPlan(seed, spec).iter_apps())


def generate_preinstalled_corpus(
        seed: int = 2016,
        spec: Optional[PreinstalledCorpusSpec] = None) -> List[CorpusApp]:
    """Generate the synthetic pre-installed corpus (60 images, deduped).

    Returns the 1,613 *unique* apps; each carries ``instances`` — how
    many of the 60 images ship it — so instance-weighted statistics
    (like the paper's 5,864/12,050 WRITE_EXTERNAL count) can be taken.
    Materializes the streaming :class:`PreinstalledCorpusPlan`.
    """
    return list(PreinstalledCorpusPlan(seed, spec).iter_apps())
