"""Synthetic vendor factory-image fleets (Section IV-A's image crawl).

The paper crawled 1,855 factory images — 1,239 Samsung (849 models),
382 Xiaomi (149 models), 234 Huawei (135 models) — spanning 231
regional codes over 79 countries, and extracted 206,674 md5-distinct
pre-installed apps.  This module generates a fleet with the same shape:

- **package-level platform-key pools** sized to the paper's counts
  (884 / 301 / 216 platform-signed packages for Samsung / Huawei /
  Xiaomi; ~142 / 68 / 84 of them per image),
- **INSTALL_PACKAGES prevalence** near 8.45% / 10.32% / 11.87% of
  system apps per vendor, with the paper's "doubled over three years"
  trend and 25-31 privileged apps on recent flagships (Table VI),
- **named vulnerable installers** placed by carrier (Amazon on
  Verizon/US-Cellular Samsung devices, DTIgnite on 20+ carriers,
  vendor stores on all their devices, SprintZone on Sprint) —
  the joins behind Table V,
- **Hare permissions**: 178 platform apps using permissions whose
  definitions are missing from a controlled subset of images, tuned so
  the cross-image search finds exactly 27,763 unique vulnerable cases
  (23.5 per image over 1,181 searched images),
- an exact md5-distinct record count of **206,674** (enforced by
  aliasing filler records across models until the target is met).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import CorpusError
from repro.sim.rand import DeterministicRandom

INSTALL_PACKAGES = "android.permission.INSTALL_PACKAGES"

# Named installers for the Table V impact join.
AMAZON_PKG = "com.amazon.venezia"
DTIGNITE_PKG = "com.dti.ignite"
XIAOMI_STORE_PKG = "com.xiaomi.market"
HUAWEI_STORE_PKG = "com.huawei.appmarket"
SPRINTZONE_PKG = "com.sprint.zone"

DTIGNITE_CARRIERS = (
    "verizon", "tmobile", "att", "vodafone", "singtel", "telefonica",
    "orange", "telstra", "rogers", "bell", "telus", "ee", "o2",
    "three", "sfr", "bouygues", "kddi", "docomo", "telenor", "telia",
    "mtn",
)

AMAZON_CARRIERS = ("verizon", "uscellular")

SAMSUNG_CARRIERS = (
    "verizon", "tmobile", "sprint", "uscellular", "att", "sktelecom",
    "vodafone", "orange", "ee", "telstra", "singtel", "docomo",
    "unlocked",
)
CN_CARRIERS = ("china-mobile", "china-telecom", "china-unicom", "unlocked")

HARE_APP_COUNT = 178
HARE_TOTAL_CASES = 27763
HARE_SEARCH_IMAGES = 1181
HARE_SAMPLE_IMAGES = 10

TOTAL_DISTINCT_APPS = 206674

_COUNTRIES = [f"country{index:02d}" for index in range(79)]


@dataclass(frozen=True)
class VendorSpec:
    """Per-vendor fleet calibration."""

    vendor: str
    image_count: int
    model_count: int
    apps_per_image: int
    platform_package_pool: int     # distinct platform-signed packages
    platform_per_image: int        # platform-signed apps per image
    # INSTALL_PACKAGES per image by firmware-year quartile (2012->2015);
    # averages to the paper's per-vendor ratio and shows the doubling.
    install_packages_by_year: Tuple[int, int, int, int]
    carriers: Tuple[str, ...]


SAMSUNG_SPEC = VendorSpec(
    vendor="samsung", image_count=1239, model_count=849, apps_per_image=209,
    platform_package_pool=884, platform_per_image=142,
    install_packages_by_year=(11, 15, 18, 23),
    carriers=SAMSUNG_CARRIERS,
)
XIAOMI_SPEC = VendorSpec(
    vendor="xiaomi", image_count=382, model_count=149, apps_per_image=117,
    platform_package_pool=216, platform_per_image=84,
    install_packages_by_year=(8, 11, 15, 18),
    carriers=CN_CARRIERS,
)
HUAWEI_SPEC = VendorSpec(
    vendor="huawei", image_count=234, model_count=135, apps_per_image=144,
    platform_package_pool=301, platform_per_image=68,
    install_packages_by_year=(9, 12, 16, 19),
    carriers=CN_CARRIERS,
)

ALL_SPECS = (SAMSUNG_SPEC, XIAOMI_SPEC, HUAWEI_SPEC)

_ANDROID_BY_YEAR = ("4.0.3", "4.3", "4.4.4", "5.1")


@dataclass(frozen=True)
class AppRecord:
    """One md5-distinct pre-installed app build."""

    record_id: int                 # md5 surrogate: unique per build
    package: str
    vendor: str
    platform_signed: bool
    has_install_packages: bool = False
    uses_permissions: Tuple[str, ...] = ()
    defines_permissions: Tuple[str, ...] = ()


@dataclass
class FactoryImage:
    """One firmware build for one device model."""

    image_id: int
    vendor: str
    model: str
    carrier: str
    region_code: str
    country: str
    android_version: str
    year_index: int                # 0..3 (2012..2015)
    flagship: bool
    apps: List[AppRecord] = field(default_factory=list)

    def defined_permissions(self) -> Set[str]:
        """Every permission some app on this image defines."""
        defined: Set[str] = set()
        for app in self.apps:
            defined.update(app.defines_permissions)
        return defined

    def install_packages_apps(self) -> List[AppRecord]:
        """Apps on this image holding INSTALL_PACKAGES."""
        return [app for app in self.apps if app.has_install_packages]

    def has_package(self, package: str) -> bool:
        """True if ``package`` ships on this image."""
        return any(app.package == package for app in self.apps)


@dataclass
class Fleet:
    """All generated images plus the hare bookkeeping."""

    images: List[FactoryImage]
    hare_permissions: Tuple[str, ...]
    hare_app_packages: Tuple[str, ...]
    sample_image_ids: Tuple[int, ...]
    search_image_ids: Tuple[int, ...]

    def by_vendor(self, vendor: str) -> List[FactoryImage]:
        """Images of one vendor."""
        return [image for image in self.images if image.vendor == vendor]

    def distinct_records(self) -> int:
        """The md5-distinct app count (the paper's 206,674)."""
        seen: Set[int] = set()
        for image in self.images:
            for app in image.apps:
                seen.add(app.record_id)
        return len(seen)

    def distinct_platform_packages(self, vendor: str) -> Set[str]:
        """Package-distinct platform-signed apps of ``vendor``."""
        packages: Set[str] = set()
        for image in self.by_vendor(vendor):
            for app in image.apps:
                if app.platform_signed:
                    packages.add(app.package)
        return packages

    def images_with_package(self, package: str) -> List[FactoryImage]:
        """All images shipping ``package``."""
        return [image for image in self.images if image.has_package(package)]


class _RecordMint:
    """Mints md5-distinct records keyed by (package, model, variant)."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._cache: Dict[Tuple, AppRecord] = {}

    def get(self, key: Tuple, **fields: object) -> AppRecord:
        record = self._cache.get(key)
        if record is None:
            record = AppRecord(record_id=next(self._ids), **fields)
            self._cache[key] = record
        return record

    def minted(self) -> int:
        return len({record.record_id for record in self._cache.values()})


def generate_fleet(seed: int = 2016,
                   specs: Tuple[VendorSpec, ...] = ALL_SPECS) -> Fleet:
    """Generate a three-vendor fleet (``specs`` defaults to paper scale).

    At the default specs every calibration pass runs at paper
    exactness, including the md5-distinct pin to 206,674.  Scaled specs
    (see :func:`scaled_image_specs`) keep every per-model and per-image
    trait and scale the hare search proportionally, but skip the
    distinct-count pin — that figure is a property of the paper's crawl
    size, not of the generator.
    """
    rng = DeterministicRandom(seed).fork("fleet")
    mint = _RecordMint()
    images: List[FactoryImage] = []
    image_ids = itertools.count(0)
    region_codes = _region_codes()

    hare_permissions = tuple(
        f"com.vlingo.midas.perm.HARE_{index:03d}" for index in range(HARE_APP_COUNT)
    )
    hare_app_packages = tuple(
        f"com.samsung.platform.hare{index:03d}" for index in range(HARE_APP_COUNT)
    )

    for spec in specs:
        vendor_images = _generate_vendor(spec, mint, image_ids, region_codes,
                                         rng, hare_permissions)
        _ensure_platform_coverage(vendor_images, spec, mint)
        images.extend(vendor_images)

    sample_ids, search_ids, missing_by_image = _plan_hare(images)
    _apply_hare(images, mint, hare_permissions, hare_app_packages,
                sample_ids, search_ids, missing_by_image)
    if specs == ALL_SPECS:
        _tune_distinct(images, TOTAL_DISTINCT_APPS)
    fleet = Fleet(
        images=images,
        hare_permissions=hare_permissions,
        hare_app_packages=hare_app_packages,
        sample_image_ids=tuple(sample_ids),
        search_image_ids=tuple(search_ids),
    )
    return fleet


def paper_image_total() -> int:
    """The paper's fleet size (1,855 images)."""
    return sum(spec.image_count for spec in ALL_SPECS)


def scaled_image_specs(total: int) -> Tuple[VendorSpec, ...]:
    """Vendor specs scaled to ``total`` images at the paper's mix.

    ``scaled_image_specs(1855)`` is exactly :data:`ALL_SPECS`.  Other
    totals split the image budget by the paper's vendor proportions
    (largest-remainder, so the counts always sum to ``total``) while
    keeping model counts, app pools, and per-image traits fixed — a
    bigger fleet means *more firmware builds per model*, which is what
    a longer crawl of the same vendors would return, and keeps the
    md5-distinct record population bounded by the model pools rather
    than growing with the crawl.
    """
    paper_total = paper_image_total()
    if total == paper_total:
        return ALL_SPECS
    if total < 50:
        # The hare calibration needs a Samsung sample + search pool.
        raise CorpusError(
            f"scaled image fleets need at least 50 images, got {total}")
    shares = [spec.image_count * total / paper_total for spec in ALL_SPECS]
    counts = [int(share) for share in shares]
    leftover = total - sum(counts)
    by_remainder = sorted(range(len(ALL_SPECS)),
                          key=lambda i: shares[i] - counts[i], reverse=True)
    for index in by_remainder[:leftover]:
        counts[index] += 1
    return tuple(replace(spec, image_count=counts[index])
                 for index, spec in enumerate(ALL_SPECS))


class FactoryImagePlan:
    """Index-addressable view of a factory-image fleet.

    Mirrors :class:`~repro.analysis.corpus.PlayCorpusPlan`'s surface —
    ``image_at(i)`` / ``iter_images()`` over a global index space of
    ``total`` images — so the engine shards the images corpus exactly
    like the app corpora.  Unlike per-app derivation, the fleet's
    calibration passes (platform coverage, hare placement, md5
    aliasing) are inherently cross-image, so the plan materializes the
    fleet lazily *once* on first image access: ``total`` and shard
    arithmetic stay O(1) in the parent process, and every shard running
    in one worker shares the same memoized fleet.
    """

    def __init__(self, seed: int = 2016,
                 specs: Tuple[VendorSpec, ...] = ALL_SPECS) -> None:
        self.seed = seed
        self.specs = specs
        self.total = sum(spec.image_count for spec in specs)
        self._fleet: Optional[Fleet] = None

    def fleet(self) -> Fleet:
        """The materialized fleet (generated on first use)."""
        if self._fleet is None:
            self._fleet = generate_fleet(self.seed, self.specs)
        return self._fleet

    def image_at(self, index: int) -> FactoryImage:
        """The image at global ``index`` (0-based, vendor-contiguous)."""
        if not 0 <= index < self.total:
            raise CorpusError(
                f"index {index} outside fleet of {self.total}")
        return self.fleet().images[index]

    def iter_images(self) -> Iterator[FactoryImage]:
        """All images in global-index order."""
        for index in range(self.total):
            yield self.image_at(index)


# ---------------------------------------------------------------------------
# vendor generation
# ---------------------------------------------------------------------------


def _region_codes() -> List[Tuple[str, str]]:
    """231 regional codes over 79 countries."""
    codes: List[Tuple[str, str]] = []
    index = 0
    while len(codes) < 231:
        country = _COUNTRIES[index % len(_COUNTRIES)]
        codes.append((f"R{index:03d}", country))
        index += 1
    return codes


def _generate_vendor(spec: VendorSpec, mint: _RecordMint,
                     image_ids: Iterable[int],
                     region_codes: List[Tuple[str, str]],
                     rng: DeterministicRandom,
                     hare_permissions: Tuple[str, ...]) -> List[FactoryImage]:
    # Samsung's platform-package budget reserves slots for the 178 hare
    # apps and the permission pack, so the fleet-wide package-distinct
    # platform count stays at the paper's 884.
    reserved = HARE_APP_COUNT + 1 if spec.vendor == "samsung" else 0
    platform_packages = [
        f"com.{spec.vendor}.platform.app{index:04d}"
        for index in range(spec.platform_package_pool - reserved)
    ]
    # INSTALL_PACKAGES-requesting packages are a fixed sub-pool of the
    # platform pool (package-level property).
    ip_pool_size = max(spec.install_packages_by_year) + 10
    ip_packages = set(platform_packages[:ip_pool_size])

    images: List[FactoryImage] = []
    images_per_model = _spread(spec.image_count, spec.model_count)
    image_index = 0
    for model_index in range(spec.model_count):
        model = f"{spec.vendor.upper()}-M{model_index:04d}"
        for build_index in range(images_per_model[model_index]):
            image_id = next(image_ids)
            year_index = image_index * 4 // spec.image_count
            carrier = spec.carriers[image_index % len(spec.carriers)]
            flagship = (
                spec.vendor == "samsung"
                and year_index == 3
                and carrier in ("tmobile", "sprint", "uscellular", "verizon",
                                "sktelecom")
                and model_index % 50 == 0
            )
            region, country = region_codes[image_index % len(region_codes)]
            image = FactoryImage(
                image_id=image_id,
                vendor=spec.vendor,
                model=model,
                carrier=carrier,
                region_code=region,
                country=country,
                android_version=_ANDROID_BY_YEAR[year_index],
                year_index=year_index,
                flagship=flagship,
            )
            _populate_image(image, spec, mint, platform_packages, ip_packages,
                            model_index)
            images.append(image)
            image_index += 1
    return images


def _spread(total: int, buckets: int) -> List[int]:
    base = total // buckets
    extra = total - base * buckets
    return [base + (1 if index < extra else 0) for index in range(buckets)]


def _populate_image(image: FactoryImage, spec: VendorSpec, mint: _RecordMint,
                    platform_packages: List[str], ip_packages: Set[str],
                    model_index: int) -> None:
    ip_target = spec.install_packages_by_year[image.year_index]
    if image.flagship:
        ip_target = 25 + image.image_id % 7  # the paper's 25-31 range
    apps: List[AppRecord] = []

    # -- platform slice: ip_target privileged + the rest round-robin ----
    ip_selected = sorted(ip_packages)[:ip_target]
    for package in ip_selected:
        apps.append(
            mint.get(
                (package, image.model, "ip"),
                package=package, vendor=spec.vendor, platform_signed=True,
                has_install_packages=True,
            )
        )
    remaining = spec.platform_per_image - len(ip_selected)
    non_ip = [pkg for pkg in platform_packages if pkg not in ip_packages]
    offset = (model_index * 37) % len(non_ip)
    for step in range(remaining):
        package = non_ip[(offset + step) % len(non_ip)]
        apps.append(
            mint.get(
                (package, image.model, "plat"),
                package=package, vendor=spec.vendor, platform_signed=True,
            )
        )

    # -- carrier installers (the Table V join). These ship their own
    # developer certificates (Amazon's, Digital Turbine's...) — they get
    # INSTALL_PACKAGES by being part of the system image, not by
    # platform signature.
    for package, present in _carrier_installers(image).items():
        if present:
            apps.append(
                mint.get(
                    (package, image.model, "carrier"),
                    package=package, vendor=spec.vendor, platform_signed=False,
                    has_install_packages=True,
                )
            )

    # -- filler: model-unique builds up to apps_per_image -----------------
    filler_needed = spec.apps_per_image - len(apps)
    for index in range(filler_needed):
        package = f"com.{spec.vendor}.{image.model.lower()}.app{index:03d}"
        apps.append(
            mint.get(
                (package, image.model, "fill"),
                package=package, vendor=spec.vendor, platform_signed=False,
            )
        )
    image.apps = apps


def _carrier_installers(image: FactoryImage) -> Dict[str, bool]:
    return {
        AMAZON_PKG: (
            image.vendor == "samsung" and image.carrier in AMAZON_CARRIERS
        ),
        DTIGNITE_PKG: image.carrier in DTIGNITE_CARRIERS,
        SPRINTZONE_PKG: image.carrier == "sprint",
        XIAOMI_STORE_PKG: image.vendor == "xiaomi",
        HUAWEI_STORE_PKG: image.vendor == "huawei",
    }


def _ensure_platform_coverage(images: List[FactoryImage], spec: VendorSpec,
                              mint: _RecordMint) -> None:
    """Place every platform-pool package on at least one image.

    The per-image round-robin slices can leave a handful of pool
    packages unused; the paper counts *distinct packages signed with the
    platform key*, so each missing one is force-shipped on one image.
    """
    reserved = HARE_APP_COUNT + 1 if spec.vendor == "samsung" else 0
    pool = [
        f"com.{spec.vendor}.platform.app{index:04d}"
        for index in range(spec.platform_package_pool - reserved)
    ]
    used = {
        app.package
        for image in images
        for app in image.apps
        if app.platform_signed
    }
    cursor = 0
    for package in pool:
        if package in used:
            continue
        image = images[cursor % len(images)]
        record = mint.get(
            (package, image.model, "plat"),
            package=package, vendor=spec.vendor, platform_signed=True,
        )
        _replace_filler(image, record)
        cursor += 1


# ---------------------------------------------------------------------------
# hare construction
# ---------------------------------------------------------------------------


def _plan_hare(images: List[FactoryImage]) -> Tuple[List[int], List[int],
                                                    Dict[int, Set[int]]]:
    """Choose sample/search images and the per-image missing-definition sets.

    Exact calibration at paper scale: 173 hare permissions are
    undefined on 156 search images each and 5 on 155 each — 27,763
    unique (permission, image) cases, 23.51 average per searched
    image.  Scaled fleets with a shorter Samsung pool search every
    post-sample image and scale the case total at the same per-image
    density.
    """
    samsung = [image for image in images if image.vendor == "samsung"]
    sample_ids = [image.image_id for image in samsung[:HARE_SAMPLE_IMAGES]]
    search_pool = samsung[HARE_SAMPLE_IMAGES:HARE_SAMPLE_IMAGES + HARE_SEARCH_IMAGES]
    if not search_pool or len(samsung) <= HARE_SAMPLE_IMAGES:
        raise CorpusError("not enough Samsung images for the hare search set")
    search_ids = [image.image_id for image in search_pool]

    if len(search_pool) == HARE_SEARCH_IMAGES:
        per_perm_counts = [156] * 173 + [155] * 5
        if sum(per_perm_counts) != HARE_TOTAL_CASES:
            raise CorpusError("hare per-permission counts do not sum to target")
    else:
        scaled_cases = max(
            HARE_APP_COUNT,
            round(HARE_TOTAL_CASES * len(search_pool) / HARE_SEARCH_IMAGES))
        per_perm_counts = _spread(scaled_cases, HARE_APP_COUNT)
    missing_by_image: Dict[int, Set[int]] = {image_id: set() for image_id in search_ids}
    cursor = 0
    for perm_index, count in enumerate(per_perm_counts):
        for _ in range(count):
            image_id = search_ids[cursor % len(search_ids)]
            missing_by_image[image_id].add(perm_index)
            cursor += 7  # co-prime stride spreads permissions over images
            while perm_index in _already(missing_by_image, search_ids, cursor):
                cursor += 1
    return sample_ids, search_ids, missing_by_image


def _already(missing_by_image: Dict[int, Set[int]], search_ids: List[int],
             cursor: int) -> Set[int]:
    return missing_by_image[search_ids[cursor % len(search_ids)]]


def _apply_hare(images: List[FactoryImage], mint: _RecordMint,
                hare_permissions: Tuple[str, ...],
                hare_app_packages: Tuple[str, ...],
                sample_ids: List[int], search_ids: List[int],
                missing_by_image: Dict[int, Set[int]]) -> None:
    by_id = {image.image_id: image for image in images}

    # The 10 sample images carry the 178 hare-using apps (split across
    # them, replacing filler so per-image totals hold).
    per_sample = _spread(len(hare_app_packages), len(sample_ids))
    app_cursor = 0
    for sample_index, image_id in enumerate(sample_ids):
        image = by_id[image_id]
        for _ in range(per_sample[sample_index]):
            package = hare_app_packages[app_cursor]
            permission = hare_permissions[app_cursor]
            record = mint.get(
                (package, image.model, "hare"),
                package=package, vendor=image.vendor, platform_signed=True,
                uses_permissions=(permission,),
            )
            _replace_filler(image, record)
            app_cursor += 1

    # Every Samsung image carries a per-image "permission pack" defining
    # all hare permissions except that image's missing set.  (Different
    # builds defining different permissions is why these records are
    # md5-distinct per image.)
    for image in images:
        if image.vendor != "samsung":
            continue
        missing = missing_by_image.get(image.image_id, set())
        defined = tuple(
            permission
            for index, permission in enumerate(hare_permissions)
            if index not in missing
        )
        record = mint.get(
            ("com.samsung.permissionpack", image.model, image.image_id),
            package="com.samsung.permissionpack", vendor="samsung",
            platform_signed=True, defines_permissions=defined,
        )
        _replace_filler(image, record)


def _replace_filler(image: FactoryImage, record: AppRecord) -> None:
    for index in range(len(image.apps) - 1, -1, -1):
        if not image.apps[index].platform_signed:
            image.apps[index] = record
            return
    image.apps.append(record)


# ---------------------------------------------------------------------------
# distinct-count tuning
# ---------------------------------------------------------------------------


def _tune_distinct(images: List[FactoryImage], target: int) -> None:
    """Alias filler records across models until exactly ``target`` remain.

    Models of one vendor genuinely share identical builds of common
    apps; aliasing reproduces that md5-level sharing and pins the
    fleet-wide distinct count to the paper's figure.
    """
    current = _count_distinct(images)
    if current < target:
        raise CorpusError(
            f"fleet mints too few distinct records ({current} < {target})"
        )
    excess = current - target
    # Group images by model: a filler record is shared by every build of
    # its model, so aliasing must swap it out of all of them at once.
    by_model: Dict[Tuple[str, str], List[FactoryImage]] = {}
    for image in images:
        by_model.setdefault((image.vendor, image.model), []).append(image)
    # Canonical donor filler pool per vendor: the first model's fillers.
    donors: Dict[str, List[AppRecord]] = {}
    donor_models: Dict[str, str] = {}
    for (vendor, model), model_images in by_model.items():
        if vendor in donors:
            continue
        donors[vendor] = [
            app for app in model_images[0].apps
            if not app.platform_signed and not app.has_install_packages
        ]
        donor_models[vendor] = model
    for (vendor, model), model_images in by_model.items():
        if excess == 0:
            break
        if donor_models.get(vendor) == model:
            continue
        donor_pool = donors.get(vendor, [])
        if not donor_pool:
            continue
        victims = [
            app for app in model_images[0].apps
            if not app.platform_signed and not app.has_install_packages
        ]
        for index, victim in enumerate(victims):
            if excess == 0:
                break
            donor = donor_pool[index % len(donor_pool)]
            if donor.record_id == victim.record_id:
                continue
            for image in model_images:
                image.apps = [
                    donor if app.record_id == victim.record_id else app
                    for app in image.apps
                ]
            excess -= 1
    recount = _count_distinct(images)
    if recount != target:
        raise CorpusError(f"distinct tuning failed: {recount} != {target}")


def _count_distinct(images: List[FactoryImage]) -> int:
    seen: Set[int] = set()
    for image in images:
        for app in image.apps:
            seen.add(app.record_id)
    return len(seen)
