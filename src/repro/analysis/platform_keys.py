"""Platform-key usage study (Section IV-B).

Two findings are reproduced:

1. **One platform key per vendor.** Every factory image of a vendor
   carries the same platform certificate; the analysis collects the
   distinct certificates per vendor from the fleet and the per-image /
   package-distinct platform-signed app counts.
2. **Platform-signed apps in appstores.** From signatures of 1.2 million
   apps across 33 stores (400,000 of them Google Play), 61 / 125 / 30
   apps are signed with the Samsung / Huawei / Xiaomi platform key —
   mostly MDM, remote-support, VPN and backup apps, including the
   known-vulnerable TeamViewer.  Any of them hands a GIA attacker a
   platform-signed payload.

The 1.2M-app signature table is held as numpy arrays of signer indexes
(one per store) so the full corpus fits in a few megabytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.android.signing import platform_key
from repro.analysis.factory_images import ALL_SPECS, Fleet
from repro.sim.rand import DeterministicRandom

# Signer-index convention in catalog arrays.
SAMSUNG_KEY_INDEX = 0
HUAWEI_KEY_INDEX = 1
XIAOMI_KEY_INDEX = 2
FIRST_DEVELOPER_INDEX = 3

PLATFORM_SIGNED_IN_STORES = {
    "samsung": 61,
    "huawei": 125,
    "xiaomi": 30,
}

PLATFORM_APP_CATEGORIES = ("MDM", "remote-support", "VPN", "backup")

TOTAL_STORE_APPS = 1_200_000
GOOGLE_PLAY_APPS = 400_000
STORE_COUNT = 33

TEAMVIEWER_PACKAGE = "com.teamviewer.quicksupport.market"


@dataclass(frozen=True)
class PlatformSignedEntry:
    """Metadata for one platform-signed app found in a store."""

    package: str
    store: str
    vendor: str
    category: str


@dataclass
class AppstoreCatalog:
    """One store's signature table."""

    name: str
    signers: np.ndarray                      # uint32 signer indexes
    platform_entries: List[PlatformSignedEntry] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of apps in the catalogue."""
        return int(self.signers.shape[0])

    def count_signed_by(self, key_index: int) -> int:
        """Apps signed with the given signer index."""
        return int(np.count_nonzero(self.signers == key_index))


def generate_appstore_catalogs(seed: int = 2016) -> List[AppstoreCatalog]:
    """Generate the 33-store, 1.2M-app signature corpus."""
    rng = DeterministicRandom(seed).fork("appstores")
    store_names = ["google-play"] + [f"store{index:02d}" for index in range(STORE_COUNT - 1)]
    sizes = _store_sizes()
    vendor_quota = {
        "samsung": PLATFORM_SIGNED_IN_STORES["samsung"],
        "huawei": PLATFORM_SIGNED_IN_STORES["huawei"],
        "xiaomi": PLATFORM_SIGNED_IN_STORES["xiaomi"],
    }
    key_index = {
        "samsung": SAMSUNG_KEY_INDEX,
        "huawei": HUAWEI_KEY_INDEX,
        "xiaomi": XIAOMI_KEY_INDEX,
    }
    catalogs: List[AppstoreCatalog] = []
    placements = _platform_placements(vendor_quota, store_names, rng)
    for store_index, name in enumerate(store_names):
        size = sizes[store_index]
        # Developer keys: deterministic pseudo-random indexes >= 3.
        base = np.arange(size, dtype=np.uint32)
        signers = (base * 2654435761 + store_index * 97) % 500_000 + FIRST_DEVELOPER_INDEX
        signers = signers.astype(np.uint32)
        catalog = AppstoreCatalog(name=name, signers=signers)
        for slot, (vendor, package, category) in enumerate(placements.get(name, [])):
            position = (slot * 9973 + 17) % size
            catalog.signers[position] = key_index[vendor]
            catalog.platform_entries.append(
                PlatformSignedEntry(package=package, store=name, vendor=vendor,
                                    category=category)
            )
        catalogs.append(catalog)
    return catalogs


def _store_sizes() -> List[int]:
    remaining = TOTAL_STORE_APPS - GOOGLE_PLAY_APPS
    others = STORE_COUNT - 1
    base = remaining // others
    sizes = [GOOGLE_PLAY_APPS] + [base] * others
    sizes[-1] += remaining - base * others
    return sizes


def _platform_placements(vendor_quota: Dict[str, int], store_names: List[str],
                         rng: DeterministicRandom) -> Dict[str, List[Tuple[str, str, str]]]:
    placements: Dict[str, List[Tuple[str, str, str]]] = {name: [] for name in store_names}
    for vendor, quota in sorted(vendor_quota.items()):
        for index in range(quota):
            if vendor == "samsung" and index == 0:
                package = TEAMVIEWER_PACKAGE
                category = "remote-support"
            else:
                category = PLATFORM_APP_CATEGORIES[index % len(PLATFORM_APP_CATEGORIES)]
                package = f"com.{vendor}.{category.lower().replace('-', '')}.app{index:03d}"
            vendor_offset = {"samsung": 0, "huawei": 5, "xiaomi": 11}[vendor]
            store = store_names[(index * 7 + vendor_offset) % len(store_names)]
            placements[store].append((vendor, package, category))
    return placements


# ---------------------------------------------------------------------------
# analyses
# ---------------------------------------------------------------------------


@dataclass
class PlatformKeyStudy:
    """Results of the platform-key usage analysis."""

    keys_per_vendor: Dict[str, int]
    avg_platform_signed_per_image: Dict[str, float]
    distinct_platform_packages: Dict[str, int]
    store_signed_counts: Dict[str, int]
    store_signed_entries: List[PlatformSignedEntry]

    def vulnerable_store_apps(self) -> List[PlatformSignedEntry]:
        """Known-vulnerable platform-signed apps in stores (TeamViewer)."""
        return [
            entry for entry in self.store_signed_entries
            if entry.package == TEAMVIEWER_PACKAGE
        ]


def analyze(fleet: Fleet,
            catalogs: Optional[Sequence[AppstoreCatalog]] = None) -> PlatformKeyStudy:
    """Run the full platform-key study."""
    keys_per_vendor: Dict[str, int] = {}
    avg_per_image: Dict[str, float] = {}
    distinct_packages: Dict[str, int] = {}
    for spec in ALL_SPECS:
        images = fleet.by_vendor(spec.vendor)
        # Every image of a vendor is provisioned with that vendor's
        # single platform certificate.
        certificates: Set[str] = {
            platform_key(image.vendor).certificate.fingerprint for image in images
        }
        keys_per_vendor[spec.vendor] = len(certificates)
        avg_per_image[spec.vendor] = (
            sum(sum(1 for app in image.apps if app.platform_signed)
                for image in images) / len(images)
        )
        distinct_packages[spec.vendor] = len(
            fleet.distinct_platform_packages(spec.vendor)
        )
    store_counts = {"samsung": 0, "huawei": 0, "xiaomi": 0}
    entries: List[PlatformSignedEntry] = []
    key_index = {
        "samsung": SAMSUNG_KEY_INDEX,
        "huawei": HUAWEI_KEY_INDEX,
        "xiaomi": XIAOMI_KEY_INDEX,
    }
    for catalog in catalogs or ():
        for vendor, index in key_index.items():
            store_counts[vendor] += catalog.count_signed_by(index)
        entries.extend(catalog.platform_entries)
    return PlatformKeyStudy(
        keys_per_vendor=keys_per_vendor,
        avg_platform_signed_per_image=avg_per_image,
        distinct_platform_packages=distinct_packages,
        store_signed_counts=store_counts,
        store_signed_entries=entries,
    )
