"""Packed storage for the content-addressed analysis cache.

The first cache layout kept one ``key[:2]/<key>.json`` file per app.
That is simple and atomic, but a warm 1M-app re-run pays a filesystem
``open`` per app — two orders of magnitude more syscalls than actual
work — and directory fanout churns the dentry cache.  This module
replaces the storage layer with an append-only *pack* format:

``seg-<digest>.pack``
    A segment: fixed 16-byte header (magic, format version, record
    count) followed by length-prefixed records.  Each record is
    ``u32 payload length + 32-byte sha256(payload) + payload`` where
    the payload is canonical JSON (sorted keys, compact separators).
    Reads re-hash the payload and treat any mismatch as a miss, so a
    torn or corrupted record can never surface as a cache hit.

``seg-<digest>.idx``
    The segment's fanout index: header, a 256-entry cumulative fanout
    table over the first key byte, the sorted raw 32-byte keys, and a
    parallel ``(u64 offset, u32 length)`` table pointing into the
    segment.  A warm run opens O(segments) files — one index per
    segment up front, one lazy handle per segment actually read —
    regardless of how many records they hold.

Writers buffer records in memory and emit a whole segment at
``flush()`` (the pipeline flushes once per shard, and ``put`` rotates
automatically past a record cap).  Segment and index files are staged
to a temp name and ``os.replace``d into place, and segment names are
derived from the content digest — concurrent shards never collide and
re-flushing identical content is idempotent.

Entries written by the legacy per-app layout remain readable:
:meth:`PackStore.get` falls back to ``key[:2]/<key>.json`` and
:meth:`PackStore.iter_payloads` walks both, so a cache populated by an
older checkout warm-runs with zero re-analysis before any segment
exists.  Semantic validation (schema and detector-version checks,
record materialization) stays with the caller — this module moves
*payload dicts* in and out of files.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

SEGMENT_MAGIC = b"RPK1"
INDEX_MAGIC = b"RPX1"
PACK_FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sIQ")       # magic, version, record count
_RECORD_PREFIX = struct.Struct("<I")   # payload length
_INDEX_ENTRY = struct.Struct("<QI")    # payload offset, payload length
_FANOUT = struct.Struct("<256I")

#: ``put`` rotates the open buffer into a segment past this many
#: records, bounding writer memory on giant shards.
DEFAULT_ROTATE_RECORDS = 65536

_KEY_BYTES = 32


def _canonical_payload(payload: dict) -> bytes:
    """The byte form that is hashed, stored, and verified."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class _Segment:
    """One pack segment and its in-memory index tables."""

    def __init__(self, path: str, count: int, fanout: Tuple[int, ...],
                 keys: bytes, entries: bytes) -> None:
        self.path = path
        self.count = count
        self._fanout = fanout
        self._keys = keys
        self._entries = entries
        self._handle = None

    def find(self, raw_key: bytes) -> Optional[Tuple[int, int]]:
        """``(offset, length)`` of the key's payload, or None."""
        bucket = raw_key[0]
        low = self._fanout[bucket - 1] if bucket else 0
        high = self._fanout[bucket]
        keys = self._keys
        while low < high:
            mid = (low + high) // 2
            probe = keys[mid * _KEY_BYTES:(mid + 1) * _KEY_BYTES]
            if probe < raw_key:
                low = mid + 1
            elif probe > raw_key:
                high = mid
            else:
                return _INDEX_ENTRY.unpack_from(
                    self._entries, mid * _INDEX_ENTRY.size)
        return None

    def read_payload(self, offset: int, length: int) -> Optional[dict]:
        """Decode one sha256-verified payload; None on any corruption."""
        try:
            if self._handle is None:
                self._handle = open(self.path, "rb")
            self._handle.seek(offset - _KEY_BYTES)
            blob = self._handle.read(_KEY_BYTES + length)
        except OSError:
            return None
        if len(blob) != _KEY_BYTES + length:
            return None
        digest, payload = blob[:_KEY_BYTES], blob[_KEY_BYTES:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        try:
            decoded = json.loads(payload)
        except json.JSONDecodeError:
            return None
        return decoded if isinstance(decoded, dict) else None

    def iter_payloads(self) -> Iterator[dict]:
        """Records in file order (skipping any that fail verification)."""
        for index in range(self.count):
            entry = _INDEX_ENTRY.unpack_from(
                self._entries, index * _INDEX_ENTRY.size)
            payload = self.read_payload(*entry)
            if payload is not None:
                yield payload

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None


def _build_index(records: List[Tuple[bytes, int, int]]
                 ) -> Tuple[Tuple[int, ...], bytes, bytes]:
    """``(fanout, keys blob, entries blob)`` from (key, offset, len)."""
    records = sorted(records, key=lambda item: item[0])
    counts = [0] * 256
    keys = bytearray()
    entries = bytearray()
    for raw_key, offset, length in records:
        counts[raw_key[0]] += 1
        keys += raw_key
        entries += _INDEX_ENTRY.pack(offset, length)
    fanout = []
    total = 0
    for bucket_count in counts:
        total += bucket_count
        fanout.append(total)
    return tuple(fanout), bytes(keys), bytes(entries)


def _scan_segment(path: str) -> Optional[_Segment]:
    """Open a segment via its ``.idx``, rebuilding the index if needed."""
    index_path = os.path.splitext(path)[0] + ".idx"
    try:
        with open(index_path, "rb") as handle:
            blob = handle.read()
        magic, version, count = _HEADER.unpack_from(blob, 0)
        if magic != INDEX_MAGIC or version != PACK_FORMAT_VERSION:
            raise ValueError("foreign index")
        offset = _HEADER.size
        fanout = _FANOUT.unpack_from(blob, offset)
        offset += _FANOUT.size
        keys = blob[offset:offset + count * _KEY_BYTES]
        offset += count * _KEY_BYTES
        entries = blob[offset:offset + count * _INDEX_ENTRY.size]
        if (len(keys) == count * _KEY_BYTES
                and len(entries) == count * _INDEX_ENTRY.size
                and fanout[255] == count):
            return _Segment(path, count, fanout, keys, entries)
    except (OSError, ValueError, struct.error):
        pass
    return _rebuild_from_segment(path)


def _rebuild_from_segment(path: str) -> Optional[_Segment]:
    """Walk a segment's records directly (missing or corrupt ``.idx``).

    Stops cleanly at the first torn record, indexing the intact
    prefix — mirroring how the legacy layout survived torn JSON files.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        return None
    try:
        magic, version, count = _HEADER.unpack_from(blob, 0)
    except struct.error:
        return None
    if magic != SEGMENT_MAGIC or version != PACK_FORMAT_VERSION:
        return None
    records: List[Tuple[bytes, int, int]] = []
    offset = _HEADER.size
    size = len(blob)
    for _ in range(count):
        if offset + _RECORD_PREFIX.size + _KEY_BYTES > size:
            break
        (length,) = _RECORD_PREFIX.unpack_from(blob, offset)
        payload_at = offset + _RECORD_PREFIX.size + _KEY_BYTES
        if payload_at + length > size:
            break
        digest = blob[offset + _RECORD_PREFIX.size:payload_at]
        payload = blob[payload_at:payload_at + length]
        if hashlib.sha256(payload).digest() == digest:
            try:
                key_hex = json.loads(payload).get("key", "")
                raw_key = bytes.fromhex(key_hex)
            except (json.JSONDecodeError, ValueError, AttributeError):
                raw_key = b""
            if len(raw_key) == _KEY_BYTES:
                records.append((raw_key, payload_at, length))
        offset = payload_at + length
    fanout, keys, entries = _build_index(records)
    return _Segment(path, len(records), fanout, keys, entries)


class PackStore:
    """Pack-aware payload storage under one cache root.

    ``get``/``put`` move payload dicts; ``flush`` rotates the write
    buffer into an immutable segment + index pair.  Legacy per-app
    ``key[:2]/<key>.json`` entries are a read-only fallback.
    """

    def __init__(self, root: str,
                 rotate_records: int = DEFAULT_ROTATE_RECORDS) -> None:
        self.root = root
        self.rotate_records = rotate_records
        os.makedirs(root, exist_ok=True)
        self._segments: List[_Segment] = []
        for name in sorted(os.listdir(root)):
            if name.endswith(".pack"):
                segment = _scan_segment(os.path.join(root, name))
                if segment is not None:
                    self._segments.append(segment)
        self._buffer: Dict[str, dict] = {}

    # -- reads ----------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key`` (buffered, packed, or legacy)."""
        buffered = self._buffer.get(key)
        if buffered is not None:
            return buffered
        try:
            raw_key = bytes.fromhex(key)
        except ValueError:
            raw_key = b""
        if len(raw_key) == _KEY_BYTES:
            for segment in self._segments:
                entry = segment.find(raw_key)
                if entry is not None:
                    payload = segment.read_payload(*entry)
                    if payload is not None:
                        return payload
        return self._legacy_get(key)

    def _legacy_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def _legacy_get(self, key: str) -> Optional[dict]:
        try:
            with open(self._legacy_path(key), "r",
                      encoding="utf-8") as handle:
                decoded = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return decoded if isinstance(decoded, dict) else None

    def iter_payloads(self) -> Iterator[dict]:
        """Every stored payload: segments (name order), legacy, buffer."""
        for segment in self._segments:
            yield from segment.iter_payloads()
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            shards = []
        for shard_dir in shards:
            full = os.path.join(self.root, shard_dir)
            if len(shard_dir) != 2 or not os.path.isdir(full):
                continue
            for name in sorted(os.listdir(full)):
                if not name.endswith(".json"):
                    continue
                key = name[:-len(".json")]
                payload = self._legacy_get(key)
                if payload is not None:
                    yield payload
        yield from self._buffer.values()

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, payload: dict) -> None:
        """Buffer one payload; rotates a full buffer into a segment."""
        self._buffer[key] = payload
        if len(self._buffer) >= self.rotate_records:
            self.flush()

    def flush(self) -> Optional[str]:
        """Write buffered payloads as one segment; return its path."""
        if not self._buffer:
            return None
        body = bytearray()
        records: List[Tuple[bytes, int, int]] = []
        running = hashlib.sha256()
        for key in sorted(self._buffer):
            payload = _canonical_payload(self._buffer[key])
            digest = hashlib.sha256(payload).digest()
            offset = (_HEADER.size + len(body)
                      + _RECORD_PREFIX.size + _KEY_BYTES)
            body += _RECORD_PREFIX.pack(len(payload))
            body += digest
            body += payload
            running.update(digest)
            try:
                raw_key = bytes.fromhex(key)
            except ValueError:
                raw_key = b""
            if len(raw_key) == _KEY_BYTES:
                records.append((raw_key, offset, len(payload)))
        count = len(records)
        stem = os.path.join(self.root, f"seg-{running.hexdigest()[:16]}")
        segment_path = stem + ".pack"
        header = _HEADER.pack(SEGMENT_MAGIC, PACK_FORMAT_VERSION, count)
        fanout, keys, entries = _build_index(records)
        index_blob = (_HEADER.pack(INDEX_MAGIC, PACK_FORMAT_VERSION, count)
                      + _FANOUT.pack(*fanout) + keys + entries)
        self._atomic_write(segment_path, header + bytes(body))
        self._atomic_write(stem + ".idx", index_blob)
        self._segments.append(
            _Segment(segment_path, count, fanout, keys, entries))
        self._buffer.clear()
        return segment_path

    def _atomic_write(self, path: str, blob: bytes) -> None:
        handle = tempfile.NamedTemporaryFile(
            "wb", dir=self.root, prefix=".tmp-", delete=False)
        try:
            with handle:
                handle.write(blob)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def close(self) -> None:
        """Flush pending writes and drop open segment handles."""
        self.flush()
        for segment in self._segments:
            segment.close()
