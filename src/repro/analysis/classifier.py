"""The installer classifier — the paper's "simple yet effective tool".

Flowdroid-style whole-app taint analysis failed on real installers
(Section IV-A), so the paper keys on one robust invariant: **installing
from internal storage requires making the staged APK global-readable**.
The tool therefore

1. finds apps containing the installation API marker string
   (``application/vnd.android.package-archive``),
2. on those, looks for global-readable setter calls —
   ``openFileOutput(..., MODE_WORLD_READABLE)``, ``setReadable()``,
   ``chmod``/``exec``, ``setPosixFilePermissions`` — and *confirms the
   arguments through def-use chains*,
3. classifies:

   - **potentially vulnerable**: installation API + operates on /sdcard
     + holds WRITE_EXTERNAL_STORAGE + never sets the APK
     global-readable,
   - **potentially secure**: installation API + no /sdcard use + a
     confirmed global-readable setter,
   - **unknown**: every other installer.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.corpus import (
    CorpusApp,
    GroundTruth,
    INSTALL_MARKER,
    WRITE_EXTERNAL,
)
from repro.analysis.smali import Instruction, SmaliMethod, SmaliProgram, parse_program
from repro.sim.rand import DeterministicRandom

MODE_WORLD_READABLE = 0x1

_CHMOD_RE = re.compile(r"chmod\s+([0-7]{3,4})\s+\S+")
_POSIX_PERM_RE = re.compile(r"^[rwx-]{9}$")

#: Version fingerprint per evidence detector.  Bump a detector's number
#: whenever its logic (or a constant it keys on) changes; the analysis
#: cache stores the versions each app's verdict actually consulted, so
#: a bump only invalidates apps whose code exercised that detector.
DETECTOR_VERSIONS: Dict[str, int] = {
    "marker": 1,
    "sdcard": 1,
    "openFileOutput": 1,
    "setReadable": 1,
    "chmod": 1,
    "posix": 1,
}


class Category(enum.Enum):
    """Classifier verdicts (the paper's three buckets)."""

    NOT_AN_INSTALLER = "not-an-installer"
    POTENTIALLY_VULNERABLE = "potentially-vulnerable"
    POTENTIALLY_SECURE = "potentially-secure"
    UNKNOWN = "unknown"


@dataclass
class Classification:
    """One app's verdict with the evidence that produced it."""

    package: str
    category: Category
    has_install_api: bool = False
    uses_sdcard: bool = False
    sets_world_readable: bool = False
    unresolved_setter: bool = False
    evidence: List[str] = field(default_factory=list)
    detectors: List[str] = field(default_factory=list)  # consulted, sorted
    instructions: int = 0        # parsed instruction count (cost proxy)
    unparsed_lines: int = 0      # lenient-mode skips, kept as evidence


@dataclass
class CorpusClassification:
    """Aggregate results over a corpus."""

    results: List[Classification] = field(default_factory=list)

    def count(self, category: Category) -> int:
        """Number of apps in ``category``."""
        return sum(1 for result in self.results if result.category is category)

    @property
    def installers(self) -> int:
        """Apps containing installation API calls."""
        return sum(1 for result in self.results if result.has_install_api)

    def by_category(self) -> Dict[Category, int]:
        """Category -> count map."""
        return {category: self.count(category) for category in Category}


class InstallerClassifier:
    """The static-analysis tool."""

    def classify(self, app: CorpusApp,
                 program: Optional[SmaliProgram] = None) -> Classification:
        """Classify one app from its code and manifest.

        Parses leniently: a legal-but-unsupported smali form is recorded
        as evidence instead of aborting the app (and, at fleet scale,
        its whole shard).  Callers that already parsed the app (the
        sharded pipeline runs several passes over one parse) may pass
        the ``program`` in.
        """
        if program is None:
            program = parse_program(app.smali_text, lenient=True)
        result = Classification(package=app.package,
                                category=Category.NOT_AN_INSTALLER)
        result.instructions = program.instruction_count
        result.unparsed_lines = len(program.unparsed)
        for line_no, line in program.unparsed:
            result.evidence.append(f"unparsed line {line_no}: {line!r}")
        result.detectors.append("marker")
        result.has_install_api = program.contains_string(INSTALL_MARKER)
        if not result.has_install_api:
            return result
        result.detectors.append("sdcard")
        result.uses_sdcard = self._uses_sdcard(program)
        result.sets_world_readable, result.unresolved_setter = (
            self._world_readable_analysis(program, result.evidence,
                                          result.detectors)
        )
        result.detectors = sorted(set(result.detectors))
        if (
            result.uses_sdcard
            and not result.sets_world_readable
            and not result.unresolved_setter
            and app.has_permission(WRITE_EXTERNAL)
        ):
            result.category = Category.POTENTIALLY_VULNERABLE
        elif (
            not result.uses_sdcard
            and result.sets_world_readable
            and not result.unresolved_setter
        ):
            result.category = Category.POTENTIALLY_SECURE
        else:
            result.category = Category.UNKNOWN
        return result

    def classify_corpus(self, apps: Iterable[CorpusApp]) -> CorpusClassification:
        """Classify every app; order preserved."""
        outcome = CorpusClassification()
        for app in apps:
            outcome.results.append(self.classify(app))
        return outcome

    def validate_against_truth(self, apps: List[CorpusApp],
                               results: CorpusClassification,
                               sample: int = 20,
                               seed: int = 7) -> Dict[str, float]:
        """The paper's manual-validation step, mechanized.

        Draws a seeded random ``sample`` per verdict bucket (the paper's
        manual validation sampled randomly; slicing the head of the list
        would be order-biased) and checks the planted ground truth,
        returning per-bucket precision — the paper found 1.0 for both
        vulnerable and secure.  Empty buckets are omitted: no sample is
        no evidence, not precision 1.0.
        """
        by_bucket: Dict[Category, List[Tuple[CorpusApp, Classification]]] = {}
        for app, result in zip(apps, results.results):
            by_bucket.setdefault(result.category, []).append((app, result))
        rng = DeterministicRandom(seed)
        precision: Dict[str, float] = {}
        for category, expected_truths in (
            (Category.POTENTIALLY_VULNERABLE, {GroundTruth.VULNERABLE}),
            (Category.POTENTIALLY_SECURE, {GroundTruth.SECURE}),
        ):
            population = by_bucket.get(category, [])
            if not population:
                continue  # nothing to validate -> no precision claim
            bucket_rng = rng.fork(f"validate-{category.value}")
            bucket = bucket_rng.sample(population,
                                       min(sample, len(population)))
            correct = sum(
                1 for app, _result in bucket if app.truth in expected_truths
            )
            precision[category.value] = correct / len(bucket)
        return precision

    # -- evidence extraction --------------------------------------------------------

    def _uses_sdcard(self, program: SmaliProgram) -> bool:
        for value in program.all_strings():
            if value.startswith("/sdcard") or "/sdcard/" in value:
                return True
        for method in program.all_methods():
            for invoke in method.invokes():
                if "getExternalStorageDirectory" in invoke.method_sig:
                    return True
        return False

    def _world_readable_analysis(
            self, program: SmaliProgram, evidence: List[str],
            detectors: Optional[List[str]] = None) -> Tuple[bool, bool]:
        """Returns (confirmed_world_readable, unresolved_setter_present)."""
        confirmed = False
        unresolved = False
        if detectors is None:
            detectors = []
        for method in program.all_methods():
            for invoke in method.invokes():
                name = invoke.invoked_name
                if name == "openFileOutput":
                    detectors.append("openFileOutput")
                    verdict = self._check_open_file_output(method, invoke)
                elif name == "setReadable":
                    detectors.append("setReadable")
                    verdict = self._check_set_readable(method, invoke)
                elif name == "exec":
                    detectors.append("chmod")
                    verdict = self._check_exec_chmod(method, invoke)
                elif name == "setPosixFilePermissions":
                    detectors.append("posix")
                    verdict = self._check_posix_permissions(method, invoke)
                else:
                    continue
                if verdict is None:
                    unresolved = True
                    evidence.append(
                        f"{name} at line {invoke.line_no}: argument unresolved"
                    )
                elif verdict:
                    confirmed = True
                    evidence.append(
                        f"{name} at line {invoke.line_no}: world-readable confirmed"
                    )
        return confirmed, unresolved

    def _check_open_file_output(self, method: SmaliMethod,
                                invoke: Instruction) -> Optional[bool]:
        # registers: {this, name, mode}
        mode = method.resolve_argument(invoke, 2)
        if not isinstance(mode, int):
            return None
        return bool(mode & MODE_WORLD_READABLE)

    def _check_set_readable(self, method: SmaliMethod,
                            invoke: Instruction) -> Optional[bool]:
        # registers: {file, readable, ownerOnly}
        readable = method.resolve_argument(invoke, 1)
        owner_only = method.resolve_argument(invoke, 2)
        if not isinstance(readable, int) or not isinstance(owner_only, int):
            return None
        return bool(readable) and not owner_only

    def _check_exec_chmod(self, method: SmaliMethod,
                          invoke: Instruction) -> Optional[bool]:
        # registers: {runtime, command}
        command = method.resolve_argument(invoke, 1)
        if not isinstance(command, str):
            return None
        match = _CHMOD_RE.search(command)
        if match is None:
            return False  # an exec of something other than chmod
        other_digit = int(match.group(1)[-1], 8)
        return bool(other_digit & 0o4)

    def _check_posix_permissions(self, method: SmaliMethod,
                                 invoke: Instruction) -> Optional[bool]:
        # registers: {path, permString}
        perms = method.resolve_argument(invoke, 1)
        if not isinstance(perms, str) or not _POSIX_PERM_RE.match(perms):
            return None
        return perms[6] == "r"
