"""Hare permission prevalence across factory images (Section IV-B).

Reproduces the paper's two-step measurement:

1. from 10 sample Samsung images, extract the apps that *use*
   permissions they themselves fail to define (178 in the paper),
2. search the permissions those apps use across 1,181 other images,
   counting the unique (permission, image) pairs where **no app on the
   image defines the permission** — each such pair is a vulnerable
   case: a GIA attacker can install the platform-signed hare-creating
   app there and define the permission itself (27,763 cases,
   23.5 per image, in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.factory_images import Fleet


@dataclass(frozen=True)
class HareApp:
    """An app using a permission nothing on its sample image defines."""

    package: str
    permission: str


@dataclass
class HareStudy:
    """Results of the cross-image hare search."""

    hare_apps: List[HareApp] = field(default_factory=list)
    cases_by_image: Dict[int, int] = field(default_factory=dict)

    @property
    def total_cases(self) -> int:
        """Unique (permission, image) vulnerable cases."""
        return sum(self.cases_by_image.values())

    @property
    def average_per_image(self) -> float:
        """Average vulnerable cases per searched image."""
        if not self.cases_by_image:
            return 0.0
        return self.total_cases / len(self.cases_by_image)


def find_hare_apps(fleet: Fleet) -> List[HareApp]:
    """Step 1: hare-using apps on the sample images."""
    by_id = {image.image_id: image for image in fleet.images}
    found: List[HareApp] = []
    seen: Set[Tuple[str, str]] = set()
    for image_id in fleet.sample_image_ids:
        image = by_id[image_id]
        defined = image.defined_permissions()
        for app in image.apps:
            for permission in app.uses_permissions:
                if permission in app.defines_permissions:
                    continue
                key = (app.package, permission)
                if key in seen:
                    continue
                # "these apps can still be secure if the permissions are
                # defined by authorized parties on the same device" —
                # only the *usage* is extracted here; per-image
                # definedness is what step 2 checks.
                seen.add(key)
                found.append(HareApp(package=app.package, permission=permission))
    return found


def search_images(fleet: Fleet) -> HareStudy:
    """Step 2: count vulnerable cases across the search images."""
    study = HareStudy(hare_apps=find_hare_apps(fleet))
    permissions = [hare.permission for hare in study.hare_apps]
    by_id = {image.image_id: image for image in fleet.images}
    for image_id in fleet.search_image_ids:
        image = by_id[image_id]
        defined = image.defined_permissions()
        missing = sum(1 for permission in permissions if permission not in defined)
        study.cases_by_image[image_id] = missing
    return study
