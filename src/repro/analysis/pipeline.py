"""The sharded measurement pipeline: the paper's study on the engine.

Ports the Sections IV–V measurement study onto :mod:`repro.engine` as a
second workload kind.  Where a :class:`~repro.engine.spec.CampaignSpec`
shard installs apps on a simulated device, an :class:`AnalysisSpec`
shard *statically analyzes* a contiguous slice of a streaming corpus:

- ``play`` / ``preinstalled`` shards run the classifier and the
  redirect scan over apps derived by global index from the seed
  (:class:`~repro.analysis.corpus.PlayCorpusPlan` /
  :class:`~repro.analysis.corpus.PreinstalledCorpusPlan` — no
  million-element list is ever materialized),
- ``images`` shards run the hare and platform-key passes per factory
  image over the Section IV-B fleet.

Every shard folds into an :class:`AnalysisStats` — counters that add
and string sets that union, associatively, in shard-index order — so
the merged result is bit-identical for any shard/worker split, the
same determinism contract the install engine carries.  Trace records
use the app's *global index* as the simulated-time axis and are never
shard-tagged, so the exported JSONL is byte-identical across splits
too.

A content-addressed cache (key = sha256 of the smali text) makes
re-runs incremental: each entry records the *detector versions its
verdict consulted* (see
:data:`~repro.analysis.classifier.DETECTOR_VERSIONS`), so bumping one
detector's version re-analyzes only the apps whose code exercised that
detector.
"""

from __future__ import annotations

import functools
import hashlib
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.cache import DEFAULT_ROTATE_RECORDS, PackStore
from repro.analysis.classifier import (
    DETECTOR_VERSIONS,
    InstallerClassifier,
)
from repro.analysis.corpus import (
    WRITE_EXTERNAL,
    CorpusApp,
    PlayCorpusSpec,
    PreinstalledCorpusSpec,
    corpus_plan,
    scaled_play_spec,
    scaled_preinstalled_spec,
)
from repro.analysis.factory_images import (
    ALL_SPECS,
    AMAZON_PKG,
    DTIGNITE_PKG,
    FactoryImagePlan,
    HUAWEI_STORE_PKG,
    SPRINTZONE_PKG,
    XIAOMI_STORE_PKG,
    scaled_image_specs,
)
from repro.analysis.hare_analysis import find_hare_apps
from repro.analysis.redirect_scan import REDIRECT_PREFIXES
from repro.analysis.smali import parse_program
from repro.engine.spec import parse_chaos
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, Snapshot, merge_snapshots
from repro.obs.trace import TraceRecorder

#: Bump on incompatible cache-entry layout changes.
CACHE_SCHEMA = 1
#: Version of the redirect-target extraction (play-corpus pass).
REDIRECT_SCAN_VERSION = 1

#: Workload kinds ``repro analyze`` accepts.
ANALYSIS_CORPORA = ("play", "preinstalled", "images")

#: Table V's named vulnerable installers, paper row order.
_TABLE5_PACKAGES = (AMAZON_PKG, DTIGNITE_PKG, XIAOMI_STORE_PKG,
                    HUAWEI_STORE_PKG, SPRINTZONE_PKG)


# ---------------------------------------------------------------------------
# mergeable per-shard tallies
# ---------------------------------------------------------------------------


@dataclass
class AnalysisStats:
    """Mergeable analysis tallies (the pipeline's ``CampaignStats``).

    ``counters`` add and ``sets`` union under :meth:`merge`, which is
    associative with :func:`AnalysisStats` () as identity — folding
    per-shard stats in shard-index order therefore yields the same
    result for any shard/worker split.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    sets: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def runs(self) -> int:
        """Work units folded in (apps or images) — progress-hook API."""
        return self.counters.get("apps", self.counters.get("images", 0))

    def bump(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def mark(self, name: str, member: str) -> None:
        """Add ``member`` to set ``name``."""
        self.sets.setdefault(name, set()).add(member)

    def count(self, name: str) -> int:
        """Counter value (0 when never bumped)."""
        return self.counters.get(name, 0)

    def cardinality(self, name: str) -> int:
        """Size of set ``name`` (0 when never marked)."""
        return len(self.sets.get(name, ()))

    def merge(self, other: "AnalysisStats") -> "AnalysisStats":
        """Fold ``other`` in (mutating self; returns self for chaining)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, members in other.sets.items():
            self.sets.setdefault(name, set()).update(members)
        return self

    def identity_tuple(self) -> Tuple:
        """Canonical value for equality checks across runs/splits."""
        return (
            tuple(sorted(self.counters.items())),
            tuple((name, tuple(sorted(members)))
                  for name, members in sorted(self.sets.items())),
        )


def merge_analysis_stats(parts: Iterable[AnalysisStats]) -> AnalysisStats:
    """Fold shard stats left-to-right (associative, identity = empty)."""
    merged = AnalysisStats()
    for part in parts:
        merged.merge(part)
    return merged


# ---------------------------------------------------------------------------
# the per-app unit of work and its cache
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AppAnalysis:
    """One app's full analysis record (classifier + redirect scan).

    This is what the content-addressed cache stores and what every
    tally folds from — cold and warm runs produce identical stats and
    traces because both fold the same records.
    """

    package: str
    category: str                      # Category.value
    has_install_api: bool
    uses_sdcard: bool
    sets_world_readable: bool
    unresolved_setter: bool
    redirect_targets: Tuple[str, ...]
    instructions: int
    unparsed_lines: int
    detectors: Tuple[str, ...]         # classifier detectors consulted
    scanned_redirects: bool
    write_external: bool
    instances: int


def analyze_app(app: CorpusApp, classifier: InstallerClassifier,
                scan_redirects: bool = True) -> AppAnalysis:
    """Run every per-app pass over one app, parsing its code once."""
    program = parse_program(app.smali_text, lenient=True)
    result = classifier.classify(app, program=program)
    targets: List[str] = []
    if scan_redirects:
        # One tuple-argument startswith rejects non-redirect strings in
        # a single C call; only matches pay the per-prefix loop.
        for value in program.string_list():
            if value.startswith(REDIRECT_PREFIXES):
                for prefix in REDIRECT_PREFIXES:
                    if value.startswith(prefix):
                        targets.append(value[len(prefix):])
                        break
    record = object.__new__(AppAnalysis)
    # A frozen dataclass __init__ pays one object.__setattr__ per
    # field; the direct __dict__ store is measurable at sweep scale.
    object.__setattr__(record, "__dict__", {
        "package": app.package,
        "category": result.category.value,
        "has_install_api": result.has_install_api,
        "uses_sdcard": result.uses_sdcard,
        "sets_world_readable": result.sets_world_readable,
        "unresolved_setter": result.unresolved_setter,
        "redirect_targets": tuple(targets),
        "instructions": result.instructions,
        "unparsed_lines": result.unparsed_lines,
        "detectors": tuple(result.detectors),
        "scanned_redirects": scan_redirects,
        "write_external": WRITE_EXTERNAL in app.declared_permissions,
        "instances": app.instances,
    })
    return record


class AnalysisCache:
    """Content-addressed per-app analysis cache.

    Keys are the sha256 of the app's smali text; entries carry the
    version of every detector the verdict consulted.  A lookup misses
    when any consulted detector's current version differs — so bumping
    ``DETECTOR_VERSIONS["chmod"]`` re-analyzes exactly the apps whose
    code reached the chmod detector, and nothing else.

    Storage is the :class:`~repro.analysis.cache.PackStore` pack
    format: writes buffer in memory and :meth:`flush` (called once per
    shard) emits one append-only, sha256-verified segment plus its
    fanout index, so a warm run does O(segments) opens instead of one
    per app.  Entries written by the legacy ``key[:2]/<key>.json``
    layout stay readable — a legacy-populated cache warm-runs with
    zero re-analysis before any segment exists.
    """

    def __init__(self, root: str,
                 rotate_records: int = DEFAULT_ROTATE_RECORDS) -> None:
        self.root = root
        self._store = PackStore(root, rotate_records=rotate_records)

    @staticmethod
    def key_for(app: CorpusApp) -> str:
        """sha256 of the smali text — the content address."""
        return hashlib.sha256(app.smali_text.encode("utf-8")).hexdigest()

    def load(self, key: str) -> Optional[AppAnalysis]:
        """The cached record, or None on miss / stale detector versions."""
        payload = self._store.get(key)
        if payload is None:
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            return None
        for name, version in payload.get("versions", {}).items():
            if name == "redirect":
                current: Optional[int] = REDIRECT_SCAN_VERSION
            else:
                current = DETECTOR_VERSIONS.get(name)
            if current != version:
                return None
        record = payload.get("record")
        if not isinstance(record, dict):
            return None
        try:
            return AppAnalysis(
                package=record["package"],
                category=record["category"],
                has_install_api=record["has_install_api"],
                uses_sdcard=record["uses_sdcard"],
                sets_world_readable=record["sets_world_readable"],
                unresolved_setter=record["unresolved_setter"],
                redirect_targets=tuple(record["redirect_targets"]),
                instructions=record["instructions"],
                unparsed_lines=record["unparsed_lines"],
                detectors=tuple(record["detectors"]),
                scanned_redirects=record["scanned_redirects"],
                write_external=record["write_external"],
                instances=record["instances"],
            )
        except (KeyError, TypeError):
            return None

    def store(self, key: str, record: AppAnalysis) -> None:
        """Buffer ``record`` with its consulted detector versions."""
        versions = {name: DETECTOR_VERSIONS[name]
                    for name in record.detectors
                    if name in DETECTOR_VERSIONS}
        if record.scanned_redirects:
            versions["redirect"] = REDIRECT_SCAN_VERSION
        self._store.put(key, {
            "schema": CACHE_SCHEMA,
            "key": key,
            "versions": versions,
            "record": asdict(record),
        })

    def flush(self) -> Optional[str]:
        """Rotate buffered writes into a segment; its path, or None."""
        return self._store.flush()

    def iter_entries(self) -> Iterable[Tuple[str, Dict[str, int], dict]]:
        """``(key, versions, record-dict)`` for every stored entry.

        Walks pack segments, legacy per-app files, and the unflushed
        write buffer — the test/inspection view of the cache.
        """
        for payload in self._store.iter_payloads():
            key = payload.get("key")
            record = payload.get("record")
            if isinstance(key, str) and isinstance(record, dict):
                yield key, payload.get("versions", {}), record

    @property
    def segment_count(self) -> int:
        """Flushed pack segments currently readable under the root."""
        return self._store.segment_count


#: Interned tally keys: fold_analysis runs once per app, and f-string
#: key construction was a visible slice of the warm path.
_CATEGORY_KEYS: Dict[str, str] = {}
_REDIRECT_COUNT_KEYS: Dict[int, str] = {}


def fold_analysis(stats: AnalysisStats, record: AppAnalysis,
                  preinstalled: bool) -> None:
    """Fold one app's record into the shard tallies."""
    counters = stats.counters
    get = counters.get
    counters["apps"] = get("apps", 0) + 1
    key = _CATEGORY_KEYS.get(record.category)
    if key is None:
        key = _CATEGORY_KEYS[record.category] = f"category/{record.category}"
    counters[key] = get(key, 0) + 1
    counters["instructions"] = get("instructions", 0) + record.instructions
    if record.has_install_api:
        counters["installers"] = get("installers", 0) + 1
    if record.write_external:
        counters["write_external"] = get("write_external", 0) + 1
    if record.unparsed_lines:
        counters["unparsed_lines"] = (
            get("unparsed_lines", 0) + record.unparsed_lines)
        counters["apps_with_unparsed"] = get("apps_with_unparsed", 0) + 1
    if preinstalled:
        counters["instances"] = get("instances", 0) + record.instances
        if record.write_external:
            counters["write_external_instances"] = (
                get("write_external_instances", 0) + record.instances)
    if record.scanned_redirects:
        count = len(record.redirect_targets)
        if count:
            counters["redirect/apps_with_any"] = (
                get("redirect/apps_with_any", 0) + 1)
            key = _REDIRECT_COUNT_KEYS.get(count)
            if key is None:
                key = _REDIRECT_COUNT_KEYS[count] = f"redirect_count/{count}"
            counters[key] = get(key, 0) + 1
            if count == 1:
                counters["redirect/single_predictable"] = (
                    get("redirect/single_predictable", 0) + 1)


# ---------------------------------------------------------------------------
# spec / shard / result — the engine's second workload kind
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalysisSpec:
    """A sharded measurement run (the analysis twin of CampaignSpec).

    ``apps=None`` means paper scale (12,750 Play / 1,613 pre-installed
    unique apps / 1,855 factory images); any other value scales the
    corpus spec at the paper's trait rates via
    :func:`~repro.analysis.corpus.scaled_play_spec` and friends — for
    the images corpus, ``apps`` counts *images* and scales the fleet
    through :func:`~repro.analysis.factory_images.scaled_image_specs`.
    """

    corpus: str = "play"
    apps: Optional[int] = None
    seed: int = 2016
    observe: bool = False
    chaos: Optional[str] = None
    cache_dir: Optional[str] = None

    #: Report type the executor assembles for this spec (duck-typed
    #: hook; CampaignSpec leaves it unset and gets FleetReport).
    report_class: ClassVar[type] = None  # set below, after AnalysisReport

    def __post_init__(self) -> None:
        if self.corpus not in ANALYSIS_CORPORA:
            raise ReproError(
                f"unknown analysis corpus {self.corpus!r}; "
                f"expected one of {ANALYSIS_CORPORA}")
        if self.apps is not None and self.apps < 1:
            raise ReproError("analysis needs at least one app")
        if self.corpus == "images" and self.apps is not None:
            scaled_image_specs(self.apps)  # CorpusError on infeasible sizes
        parse_chaos(self.chaos)

    @property
    def installs(self) -> int:
        """Workload size under the fleet progress hooks' name."""
        return self.size

    @property
    def size(self) -> int:
        """Number of per-index work units (apps or images)."""
        if self.corpus == "images":
            return sum(spec.image_count for spec in self.image_specs())
        return self.corpus_spec_size()

    def corpus_spec(self):
        """The (possibly scaled) corpus calibration spec."""
        if self.corpus == "play":
            return (scaled_play_spec(self.apps) if self.apps is not None
                    else PlayCorpusSpec())
        if self.corpus == "preinstalled":
            return (scaled_preinstalled_spec(self.apps)
                    if self.apps is not None else PreinstalledCorpusSpec())
        return None

    def image_specs(self):
        """The (possibly scaled) per-vendor fleet specs."""
        return (scaled_image_specs(self.apps) if self.apps is not None
                else ALL_SPECS)

    def corpus_spec_size(self) -> int:
        spec = self.corpus_spec()
        return spec.total if self.corpus == "play" else spec.unique_apps

    def plan(self):
        """The streaming corpus plan (validates the spec up front)."""
        if self.corpus == "images":
            return _image_plan(self.seed, self.image_specs())
        return corpus_plan(self.corpus, self.seed, self.corpus_spec())

    def shard(self, count: int) -> List["AnalysisShardSpec"]:
        """Partition ``[0, size)`` into ``count`` contiguous shards."""
        if count < 1:
            raise ReproError(f"shard count must be >= 1, got {count}")
        parse_chaos(self.chaos, shard_count=count)
        self.plan()  # fail on an infeasible spec before any work runs
        base, extra = divmod(self.size, count)
        shards, start = [], 0
        for index in range(count):
            stop = start + base + (1 if index < extra else 0)
            shards.append(AnalysisShardSpec(
                campaign=self, index=index, count=count,
                start=start, stop=stop))
            start = stop
        return shards


@functools.lru_cache(maxsize=2)
def _image_plan(seed: int, specs) -> FactoryImagePlan:
    """Per-process plan memo: shards in one worker share the fleet."""
    return FactoryImagePlan(seed, specs)


@functools.lru_cache(maxsize=2)
def _hare_permissions(seed: int, specs) -> Tuple[Tuple[str, str], ...]:
    """(package, permission) hare pairs from the sample images."""
    return tuple((hare.package, hare.permission)
                 for hare in find_hare_apps(_image_plan(seed, specs).fleet()))


@dataclass(frozen=True)
class AnalysisShardSpec:
    """One contiguous slice ``[start, stop)`` of the analysis workload.

    The field is called ``campaign`` so the executor's chaos-injection
    and retry plumbing (which reads ``shard.campaign.chaos``) works on
    analysis shards unchanged.
    """

    campaign: AnalysisSpec
    index: int
    count: int
    start: int
    stop: int

    def execute(self) -> "AnalysisShardResult":
        """Run this shard in the current process (the engine's unit)."""
        started = time.perf_counter()
        spec = self.campaign
        recorder = TraceRecorder() if spec.observe else None
        metrics = MetricsRegistry() if spec.observe else None
        stats = AnalysisStats()
        if spec.corpus == "images":
            self._execute_images(stats, recorder, metrics)
            hits = misses = 0
        else:
            hits, misses = self._execute_apps(stats, recorder, metrics)
        return AnalysisShardResult(
            shard_index=self.index,
            start=self.start,
            stop=self.stop,
            stats=stats,
            wall_seconds=time.perf_counter() - started,
            backend="serial",
            trace=recorder.records() if recorder is not None else None,
            metrics=metrics.snapshot() if metrics is not None else None,
            cache_hits=hits,
            cache_misses=misses,
        )

    # -- per-app passes (classifier + redirect scan) --------------------------

    def _execute_apps(self, stats: AnalysisStats, recorder, metrics
                      ) -> Tuple[int, int]:
        spec = self.campaign
        plan = spec.plan()
        classifier = InstallerClassifier()
        cache = (AnalysisCache(spec.cache_dir)
                 if spec.cache_dir is not None else None)
        preinstalled = spec.corpus == "preinstalled"
        hits = misses = 0
        for index in range(self.start, self.stop):
            app = plan.app_at(index)
            record = None
            key = None
            if cache is not None:
                key = cache.key_for(app)
                record = cache.load(key)
            if record is None:
                record = analyze_app(app, classifier,
                                     scan_redirects=not preinstalled)
                misses += 1
                if cache is not None:
                    cache.store(key, record)
            else:
                hits += 1
            fold_analysis(stats, record, preinstalled)
            if recorder is not None:
                # Simulated time = the app's global index: identical
                # records for any shard split, cold or warm cache.
                recorder.span(
                    "analysis/app",
                    start_ns=index * 1000,
                    end_ns=index * 1000 + record.instructions,
                    package=record.package,
                    category=record.category,
                )
            if metrics is not None:
                metrics.counter("analysis/apps").inc()
                if record.has_install_api:
                    metrics.counter("analysis/installers").inc()
                metrics.histogram(
                    "analysis/instructions_per_app").observe(
                        record.instructions)
        if cache is not None:
            # One segment per shard: the warm re-run opens O(shards)
            # index files instead of one JSON per analyzed app.
            cache.flush()
        return hits, misses

    # -- per-image passes (hare + platform keys, Section IV-B) ----------------

    def _execute_images(self, stats: AnalysisStats, recorder,
                        metrics) -> None:
        spec = self.campaign
        plan = _image_plan(spec.seed, spec.image_specs())
        fleet = plan.fleet()
        hare_pairs = _hare_permissions(spec.seed, spec.image_specs())
        hare_perms = [permission for _pkg, permission in hare_pairs]
        search_ids = set(fleet.search_image_ids)
        sample_ids = set(fleet.sample_image_ids)
        for package, permission in hare_pairs:
            stats.mark("hare/apps", f"{package}|{permission}")
        for index in range(self.start, self.stop):
            image = plan.image_at(index)
            vendor = image.vendor
            stats.bump("images")
            stats.bump(f"vendor/{vendor}/images")
            stats.bump(f"vendor/{vendor}/apps", len(image.apps))
            stats.bump(f"vendor/{vendor}/install_packages",
                       len(image.install_packages_apps()))
            for app in image.apps:
                if app.platform_signed:
                    stats.bump(f"vendor/{vendor}/platform_signed_instances")
                    stats.mark(f"platform/{vendor}", app.package)
            for package in _TABLE5_PACKAGES:
                if image.has_package(package):
                    stats.bump(f"table5/{package}/images")
                    stats.mark(f"table5/{package}/carriers", image.carrier)
                    stats.mark(f"table5/{package}/vendors", image.vendor)
                    stats.mark(f"table5/{package}/models", image.model)
            if image.image_id in search_ids:
                defined = image.defined_permissions()
                missing = sum(1 for permission in hare_perms
                              if permission not in defined)
                stats.bump("hare/cases", missing)
                stats.bump("hare/searched_images")
            if image.image_id in sample_ids:
                stats.bump("hare/sample_images")
            if recorder is not None:
                recorder.span(
                    "analysis/image",
                    start_ns=index * 1000,
                    end_ns=index * 1000 + len(image.apps),
                    image_id=image.image_id,
                    vendor=vendor,
                )
            if metrics is not None:
                metrics.counter("analysis/images").inc()
                metrics.histogram("analysis/apps_per_image").observe(
                    len(image.apps))


@dataclass
class AnalysisShardResult:
    """What one analysis shard produced (mirrors ShardResult's shape).

    ``cache_hits``/``cache_misses`` live beside the deterministic stats,
    not inside them: hit counts depend on what a previous run left in
    the cache directory, while ``stats``/``trace``/``metrics`` must stay
    bit-identical whether the cache was cold or warm.
    """

    shard_index: int
    start: int
    stop: int
    stats: AnalysisStats
    wall_seconds: float
    attempts: int = 1
    backend: str = "serial"
    trace: Optional[List[Dict[str, Any]]] = None
    metrics: Optional[Snapshot] = None
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall-clock side channel (see :mod:`repro.obs.runtime`), filled
    #: by the executor when telemetry/profiling is enabled; never part
    #: of the deterministic stats/trace/metrics.
    telemetry: Optional[Dict[str, Any]] = None
    profile: Optional[bytes] = None


# ---------------------------------------------------------------------------
# merged report + table extraction
# ---------------------------------------------------------------------------


@dataclass
class AnalysisReport:
    """Merged analysis stats plus run-level aggregates."""

    spec: AnalysisSpec
    shards: List[AnalysisShardResult] = field(default_factory=list)
    stats: AnalysisStats = field(default_factory=AnalysisStats)
    wall_seconds: float = 0.0
    workers: int = 1
    backend: str = "serial"
    metrics: Optional[Snapshot] = None
    counters: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock plane: fold of per-shard telemetry payloads, None
    #: when telemetry was off (see :mod:`repro.obs.runtime`).
    telemetry: Optional[Dict[str, Any]] = None

    @classmethod
    def from_shards(cls, spec: AnalysisSpec,
                    shards: List[AnalysisShardResult],
                    wall_seconds: float, workers: int, backend: str,
                    counters: Optional[Dict[str, int]] = None,
                    ) -> "AnalysisReport":
        from repro.obs.runtime import fold_shard_telemetry

        ordered = sorted(shards, key=lambda shard: shard.shard_index)
        snapshots = [shard.metrics for shard in ordered
                     if shard.metrics is not None]
        tallied = dict(counters or {})
        tallied["cache_hits"] = sum(s.cache_hits for s in ordered)
        tallied["cache_misses"] = sum(s.cache_misses for s in ordered)
        telemetry = fold_shard_telemetry(ordered)
        if telemetry is not None:
            telemetry["retries"] = sum(
                max(0, shard.attempts - 1) for shard in ordered)
        return cls(
            spec=spec,
            shards=ordered,
            stats=merge_analysis_stats(shard.stats for shard in ordered),
            wall_seconds=wall_seconds,
            workers=workers,
            backend=backend,
            metrics=merge_snapshots(snapshots) if snapshots else None,
            counters=tallied,
            telemetry=telemetry,
        )

    @property
    def cache_hits(self) -> int:
        """Apps served from the content-addressed cache."""
        return self.counters.get("cache_hits", 0)

    @property
    def cache_misses(self) -> int:
        """Apps actually (re-)analyzed this run."""
        return self.counters.get("cache_misses", 0)

    @property
    def throughput(self) -> float:
        """Apps (or images) per wall-clock second."""
        return self.stats.runs / self.wall_seconds if self.wall_seconds else 0.0

    def trace_records(self) -> List[Dict[str, Any]]:
        """All shard records, shard-index order, *not* shard-tagged.

        Analysis records already carry the global app index as their
        time axis, so concatenating shards in index order reproduces
        the serial record stream exactly — the JSONL export is
        byte-identical for any shard/worker split.
        """
        records: List[Dict[str, Any]] = []
        for shard in self.shards:
            records.extend(shard.trace or ())
        return records

    def render(self) -> str:
        """Deterministic table text (no wall-clock, no cache state)."""
        spec = self.spec
        lines = [f"analysis: corpus={spec.corpus} size={spec.size} "
                 f"seed={spec.seed}"]
        if spec.corpus == "images":
            lines += self._render_images()
        else:
            lines += self._render_corpus()
        return "\n".join(lines)

    def _render_corpus(self) -> List[str]:
        stats = self.stats
        total = stats.count("apps")
        lines = [
            f"  apps analyzed           : {total}",
            f"  installers              : {stats.count('installers')}",
            "    potentially vulnerable: "
            f"{stats.count('category/potentially-vulnerable')}",
            "    potentially secure    : "
            f"{stats.count('category/potentially-secure')}",
            f"    unknown               : {stats.count('category/unknown')}",
            "  not an installer        : "
            f"{stats.count('category/not-an-installer')}",
            f"  WRITE_EXTERNAL apps     : {stats.count('write_external')}",
        ]
        if self.spec.corpus == "preinstalled":
            lines += [
                f"  app instances           : {stats.count('instances')}",
                "  WRITE_EXTERNAL instances: "
                f"{stats.count('write_external_instances')}",
            ]
        else:
            buckets = table4_counts(stats)
            any_count = stats.count("redirect/apps_with_any")
            share = 100.0 * any_count / total if total else 0.0
            lines.append(
                f"  redirecting apps        : {any_count} ({share:.1f}%)")
            for limit in (1, 2, 4, 8):
                count = buckets[limit]
                pct = 100.0 * count / total if total else 0.0
                lines.append(
                    f"    <= {limit} hardcoded target(s): "
                    f"{count} ({pct:.1f}%)")
        if stats.count("apps_with_unparsed"):
            lines.append(
                f"  apps with unparsed lines: "
                f"{stats.count('apps_with_unparsed')} "
                f"({stats.count('unparsed_lines')} line(s))")
        return lines

    def _render_images(self) -> List[str]:
        stats = self.stats
        lines = [
            f"  images analyzed         : {stats.count('images')}",
            f"  hare apps (sample step) : {stats.cardinality('hare/apps')}",
            f"  hare vulnerable cases   : {stats.count('hare/cases')} over "
            f"{stats.count('hare/searched_images')} searched image(s)",
        ]
        searched = stats.count("hare/searched_images")
        if searched:
            lines.append(
                f"  hare cases per image    : "
                f"{stats.count('hare/cases') / searched:.1f}")
        for vendor_spec in ALL_SPECS:
            vendor = vendor_spec.vendor
            images = stats.count(f"vendor/{vendor}/images")
            if not images:
                continue
            lines.append(
                f"  {vendor:<8}: {images} image(s), "
                f"{stats.count(f'vendor/{vendor}/apps') / images:.1f} "
                "apps/image, "
                f"{stats.count(f'vendor/{vendor}/install_packages') / images:.1f}"
                " INSTALL_PACKAGES/image, "
                f"{stats.cardinality(f'platform/{vendor}')} distinct "
                "platform-signed package(s)")
        lines.append("  Table V (vulnerable pre-installed installers):")
        for package in _TABLE5_PACKAGES:
            lines.append(
                f"    {package:<28}: "
                f"{stats.count(f'table5/{package}/images')} image(s), "
                f"{stats.cardinality(f'table5/{package}/carriers')} "
                "carrier(s), "
                f"{stats.cardinality(f'table5/{package}/models')} model(s)")
        return lines


AnalysisSpec.report_class = AnalysisReport


# ---------------------------------------------------------------------------
# table extraction (the measurement layer reads these)
# ---------------------------------------------------------------------------


def table2_counts(stats: AnalysisStats) -> Dict[str, int]:
    """Table II/III shape from merged stats (installer breakdown)."""
    return {
        "total": stats.count("apps"),
        "installers": stats.count("installers"),
        "vulnerable": stats.count("category/potentially-vulnerable"),
        "secure": stats.count("category/potentially-secure"),
        "unknown": stats.count("category/unknown"),
        "write_external": stats.count("write_external"),
    }


def table3_counts(stats: AnalysisStats) -> Dict[str, int]:
    """Table III shape: unique + instance-weighted pre-installed counts."""
    counts = table2_counts(stats)
    counts["instances"] = stats.count("instances")
    counts["write_external_instances"] = stats.count(
        "write_external_instances")
    return counts


def table4_counts(stats: AnalysisStats) -> Dict[int, int]:
    """Table IV columns: apps with 1..limit hardcoded targets."""
    exact = {}
    for name, value in stats.counters.items():
        if name.startswith("redirect_count/"):
            exact[int(name.split("/", 1)[1])] = value
    return {
        limit: sum(value for count, value in exact.items()
                   if 1 <= count <= limit)
        for limit in (1, 2, 4, 8)
    }


def table5_counts(stats: AnalysisStats) -> Dict[str, Dict[str, int]]:
    """Table V shape: per-installer image/carrier/vendor/model impact."""
    return {
        package: {
            "images": stats.count(f"table5/{package}/images"),
            "carriers": stats.cardinality(f"table5/{package}/carriers"),
            "vendors": stats.cardinality(f"table5/{package}/vendors"),
            "models": stats.cardinality(f"table5/{package}/models"),
        }
        for package in _TABLE5_PACKAGES
    }


# ---------------------------------------------------------------------------
# one-call entry point
# ---------------------------------------------------------------------------


def run_analysis(spec: AnalysisSpec, shards: Optional[int] = None,
                 workers: Optional[int] = None, backend: str = "auto",
                 progress=None, telemetry: bool = False,
                 profile_shards: bool = False) -> AnalysisReport:
    """Run a sharded analysis and return the merged report.

    A thin wrapper over :class:`~repro.engine.executor.FleetExecutor`
    — the analysis workload rides the same pool, retry, chaos,
    progress and wall-clock telemetry machinery as install campaigns
    (``telemetry``/``profile_shards`` as in
    :func:`repro.engine.executor.run_fleet`).
    """
    from repro.engine.executor import FleetExecutor
    from repro.engine.progress import NullProgress

    executor = FleetExecutor(workers=workers, backend=backend,
                             progress=progress or NullProgress(),
                             telemetry=telemetry,
                             profile_shards=profile_shards)
    try:
        return executor.run(spec, shards=shards)
    finally:
        executor.close()
