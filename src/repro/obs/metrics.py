"""Counter/gauge/histogram registry with deterministic snapshots.

Metric values derive only from simulated quantities (event counts,
simulated-nanosecond durations, queue depths), never from wall-clock
readings — wall-clock timing is reported *beside* metrics, the way
:mod:`repro.engine.merge` reports shard timing beside merged stats.
Snapshots are plain nested dicts with sorted keys, so two runs of the
same seed produce bit-identical snapshots, and per-shard snapshots
merged in shard order are bit-identical for any worker count.

Merge semantics: counters add, gauges keep the maximum (they track
high-water marks), histogram summaries combine count/sum/min/max and
add bucket counts.

Histograms are **log-bucketed**: every observation lands in the
power-of-two bucket given by :func:`bucket_index`, so a summary stays
a handful of integers regardless of observation count, folds
associatively under :func:`merge_snapshots` (bucket counts just add),
and still supports deterministic percentile estimates
(:func:`summary_percentile`) — p50/p90/p99 from traces and fleet
snapshots alike.  The classic ``count``/``sum``/``min``/``max`` keys
are preserved, so pre-bucket snapshots remain loadable and mergeable.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError

#: Snapshot section names, in render order.
KINDS = ("counters", "gauges", "histograms")

Snapshot = Dict[str, Dict[str, object]]


def bucket_index(value: int) -> int:
    """The log2 bucket an observation falls into.

    Bucket 0 holds every value <= 0 (durations are non-negative, so in
    practice: exact zeros); bucket ``i`` >= 1 holds values in
    ``[2**(i-1), 2**i - 1]``.  Pure integer arithmetic, so the mapping
    is bit-identical everywhere.
    """
    if value <= 0:
        return 0
    return int(value).bit_length()


def bucket_bounds(index: int) -> "tuple":
    """Inclusive ``(lower, upper)`` value bounds of bucket ``index``."""
    if index <= 0:
        return (0, 0)
    return (1 << (index - 1), (1 << index) - 1)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0; raises :class:`ReproError`)."""
        if amount < 0:
            raise ReproError(
                f"Counter.inc of negative amount {amount}; counters are "
                "monotonic — use a gauge or a second counter instead")
        self.value += amount


class Gauge:
    """A high-water mark: ``set`` keeps the largest value seen."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int) -> None:
        """Raise the gauge to ``value`` if it is a new maximum."""
        if value > self.value:
            self.value = value


class Histogram:
    """A log-bucketed histogram with count/sum/min/max sidecar summary."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        """Fold one observation into the summary and its log bucket.

        This is the hottest instrument call in the codebase (one per
        kernel step), so the bucket index is computed inline with
        ``int.bit_length`` — no function call, no allocation — and is
        by construction identical to :func:`bucket_index`.
        """
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = value.bit_length() if value > 0 else 0
        buckets = self.buckets
        buckets[index] = buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Average observation, 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[int]:
        """Deterministic percentile estimate (None when empty)."""
        return summary_percentile(self.summary(), q)

    def summary(self) -> Dict[str, object]:
        """Picklable summary dict (``min``/``max`` are None when empty).

        ``buckets`` maps stringified bucket indices to counts (string
        keys keep the dict JSON-clean); the classic keys are unchanged
        so old snapshot consumers keep working.
        """
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max,
                "buckets": {str(index): self.buckets[index]
                            for index in sorted(self.buckets)}}


def summary_percentile(summary: Dict[str, object],
                       q: float) -> Optional[int]:
    """Estimate the ``q``-th percentile of a histogram summary.

    Nearest-rank over the log buckets: the estimate is the upper bound
    of the bucket holding the rank, clamped to the summary's exact
    ``min``/``max``.  Integer-only arithmetic keeps the estimate
    bit-identical across platforms.  Returns None for an empty summary
    or one recorded before buckets existed.
    """
    count = int(summary.get("count") or 0)
    buckets = summary.get("buckets")
    if count <= 0 or not buckets:
        return None
    rank = max(1, math.ceil(count * q / 100.0))
    seen = 0
    estimate = None
    for index in sorted(buckets, key=int):
        seen += int(buckets[index])
        if seen >= rank:
            estimate = bucket_bounds(int(index))[1]
            break
    if estimate is None:  # rank beyond recorded buckets (q > 100)
        estimate = bucket_bounds(int(max(buckets, key=int)))[1]
    low, high = summary.get("min"), summary.get("max")
    if low is not None:
        estimate = max(estimate, int(low))
    if high is not None:
        estimate = min(estimate, int(high))
    return estimate


def summary_percentiles(summary: Dict[str, object],
                        qs: Sequence[float]) -> Dict[float, Optional[int]]:
    """Percentile estimates for each ``q`` in ``qs`` (see above)."""
    return {q: summary_percentile(summary, q) for q in qs}


class MetricsRegistry:
    """Named metrics, created on first use.

    Names are free-form but the codebase uses ``layer/metric`` paths
    (``kernel/events_dispatched``, ``campaign/hijacks``) so snapshots
    group naturally by subsystem.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    # -- bound instruments --------------------------------------------------
    #
    # Hot paths that observe the same metric thousands of times per run
    # (the kernel's per-step latency, the scenario's per-AIT counters)
    # should not pay a registry dict lookup plus a method bind on every
    # observation.  ``bind_*`` resolves the instrument once and returns
    # its update method; call sites cache the handle at construction
    # time and invoke it directly.  Binding creates the instrument, so
    # only bind metrics that are recorded unconditionally — a bound
    # name appears in snapshots from the moment of binding, exactly as
    # a ``counter(name)`` lookup would have created it.

    def bind_counter(self, name: str) -> Callable[..., None]:
        """Resolve once: the ``inc`` method of counter ``name``."""
        return self.counter(name).inc

    def bind_gauge(self, name: str) -> Callable[[int], None]:
        """Resolve once: the ``set`` method of gauge ``name``."""
        return self.gauge(name).set

    def bind_histogram(self, name: str) -> Callable[[int], None]:
        """Resolve once: the ``observe`` method of histogram ``name``."""
        return self.histogram(name).observe

    def snapshot(self) -> Snapshot:
        """Deterministic, picklable state dump (sorted names)."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].summary()
                           for name in sorted(self._histograms)},
        }


def empty_snapshot() -> Snapshot:
    """The merge identity: a snapshot with no metrics."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Fold snapshots left-to-right (associative, identity = empty).

    Folding per-shard snapshots in shard-index order makes the merged
    snapshot independent of worker count and completion order.
    Histogram bucket counts add; a summary recorded before buckets
    existed folds as if it carried none (the classic keys still merge),
    which keeps the fold associative for any shard grouping.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, int] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, 0), value)
        for name, summary in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                merged = histograms[name] = dict(summary)
                if "buckets" in merged:
                    merged["buckets"] = dict(merged["buckets"])
                continue
            merged["count"] += summary["count"]
            merged["sum"] += summary["sum"]
            merged["min"] = _fold_extreme(merged["min"], summary["min"], min)
            merged["max"] = _fold_extreme(merged["max"], summary["max"], max)
            incoming = summary.get("buckets")
            if incoming:
                folded = dict(merged.get("buckets") or {})
                for index, bucket_count in incoming.items():
                    folded[index] = folded.get(index, 0) + bucket_count
                merged["buckets"] = {index: folded[index]
                                     for index in sorted(folded, key=int)}
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {name: histograms[name] for name in sorted(histograms)},
    }


def _fold_extreme(left, right, pick):
    if left is None:
        return right
    if right is None:
        return left
    return pick(left, right)


def snapshot_names(snapshot: Snapshot) -> List[str]:
    """Every metric name in ``snapshot``, sorted, kind-prefixed."""
    names = []
    for kind in KINDS:
        names.extend(f"{kind}:{name}" for name in sorted(snapshot.get(kind, {})))
    return names
