"""Counter/gauge/histogram registry with deterministic snapshots.

Metric values derive only from simulated quantities (event counts,
simulated-nanosecond durations, queue depths), never from wall-clock
readings — wall-clock timing is reported *beside* metrics, the way
:mod:`repro.engine.merge` reports shard timing beside merged stats.
Snapshots are plain nested dicts with sorted keys, so two runs of the
same seed produce bit-identical snapshots, and per-shard snapshots
merged in shard order are bit-identical for any worker count.

Merge semantics: counters add, gauges keep the maximum (they track
high-water marks), histogram summaries combine count/sum/min/max.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

#: Snapshot section names, in render order.
KINDS = ("counters", "gauges", "histograms")

Snapshot = Dict[str, Dict[str, object]]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        self.value += amount


class Gauge:
    """A high-water mark: ``set`` keeps the largest value seen."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int) -> None:
        """Raise the gauge to ``value`` if it is a new maximum."""
        if value > self.value:
            self.value = value


class Histogram:
    """A summary histogram: count, sum, min and max of observations."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average observation, 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, object]:
        """Picklable summary dict (``min``/``max`` are None when empty)."""
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max}


class MetricsRegistry:
    """Named metrics, created on first use.

    Names are free-form but the codebase uses ``layer/metric`` paths
    (``kernel/events_dispatched``, ``campaign/hijacks``) so snapshots
    group naturally by subsystem.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def snapshot(self) -> Snapshot:
        """Deterministic, picklable state dump (sorted names)."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].summary()
                           for name in sorted(self._histograms)},
        }


def empty_snapshot() -> Snapshot:
    """The merge identity: a snapshot with no metrics."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Fold snapshots left-to-right (associative, identity = empty).

    Folding per-shard snapshots in shard-index order makes the merged
    snapshot independent of worker count and completion order.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, int] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, 0), value)
        for name, summary in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = dict(summary)
                continue
            merged["count"] += summary["count"]
            merged["sum"] += summary["sum"]
            merged["min"] = _fold_extreme(merged["min"], summary["min"], min)
            merged["max"] = _fold_extreme(merged["max"], summary["max"], max)
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {name: histograms[name] for name in sorted(histograms)},
    }


def _fold_extreme(left, right, pick):
    if left is None:
        return right
    if right is None:
        return left
    return pick(left, right)


def snapshot_names(snapshot: Snapshot) -> List[str]:
    """Every metric name in ``snapshot``, sorted, kind-prefixed."""
    names = []
    for kind in KINDS:
        names.extend(f"{kind}:{name}" for name in sorted(snapshot.get(kind, {})))
    return names
