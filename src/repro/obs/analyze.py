"""Trace forensics over canonical JSONL trace records.

Everything in here consumes the plain record dicts that
:class:`~repro.obs.trace.TraceRecorder` emits and
:func:`~repro.obs.export.iter_trace_jsonl` streams back — no live
simulator objects — so the same analyses run on an in-process recorder,
a single-run ``--trace`` file, or a shard-tagged fleet trace.

Four analyses, each with a deterministic text renderer (fixed seed and
shard count in, byte-identical report out — the analysis-side half of
the determinism contract in :mod:`repro.obs`):

- :func:`profile_trace` — per-name and per-layer latency profiles with
  log-bucketed percentile estimates (``repro trace summary``),
- :func:`build_span_trees` / :func:`critical_path` — span-tree
  reconstruction by interval containment and the dominant-child walk
  that names what an AIT run actually spent its simulated time on
  (``repro trace critpath``),
- :func:`window_forensics` — joins ``attack/arm``/``attack/strike``
  events and ``attack/window`` spans against ``install/outcome``
  events to produce the armed→strike window-width distribution split
  by hijack outcome: the Table VII / window-timing story recovered
  from a trace alone (``repro trace windows``),
- :func:`diff_traces` — structural trace diffing (defense-on vs
  defense-off, seed A vs seed B): added/removed records and per-span
  simulated-time deltas (``repro trace diff``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs.metrics import Histogram
from repro.obs.trace import EVENT, SPAN

#: Record names the window forensics join on.
ARM_EVENT = "attack/arm"
STRIKE_EVENT = "attack/strike"
WINDOW_SPAN = "attack/window"
OUTCOME_EVENT = "install/outcome"


def _shard_of(record: Dict[str, Any]) -> int:
    """Shard tag of a record (0 for single-run, untagged traces)."""
    return int(record.get("shard", 0))


def layer_of(name: str) -> str:
    """The subsystem prefix of a record name (``ait/install`` -> ``ait``)."""
    return name.split("/", 1)[0] if "/" in name else name


# ---------------------------------------------------------------------------
# Latency profiles
# ---------------------------------------------------------------------------


@dataclass
class NameProfile:
    """Aggregate of every span (or event) sharing one record name."""

    name: str
    kind: str  # SPAN or EVENT
    count: int = 0
    total_ns: int = 0
    min_ns: Optional[int] = None
    max_ns: Optional[int] = None
    histogram: Histogram = field(default_factory=Histogram)

    def add(self, duration_ns: int) -> None:
        """Fold one span duration into the profile."""
        self.count += 1
        self.total_ns += duration_ns
        if self.min_ns is None or duration_ns < self.min_ns:
            self.min_ns = duration_ns
        if self.max_ns is None or duration_ns > self.max_ns:
            self.max_ns = duration_ns
        self.histogram.observe(duration_ns)

    @property
    def mean_ns(self) -> float:
        """Average span duration, 0.0 when empty."""
        return self.total_ns / self.count if self.count else 0.0

    def percentile_ns(self, q: float) -> Optional[int]:
        """Deterministic log-bucket percentile estimate of duration."""
        return self.histogram.percentile(q)


@dataclass
class TraceProfile:
    """Per-name and per-layer aggregates of one record stream."""

    records: int = 0
    shards: int = 0
    spans: Dict[str, NameProfile] = field(default_factory=dict)
    events: Dict[str, NameProfile] = field(default_factory=dict)
    layers: Dict[str, NameProfile] = field(default_factory=dict)

    @property
    def total_span_ns(self) -> int:
        """Simulated time summed over every span in the trace."""
        return sum(profile.total_ns for profile in self.spans.values())


def profile_trace(records: Iterable[Dict[str, Any]]) -> TraceProfile:
    """Stream records into per-name / per-layer latency profiles.

    Memory is bounded by the number of distinct names, not the number
    of records, so fleet traces stream straight from
    :func:`~repro.obs.export.iter_trace_jsonl`.
    """
    profile = TraceProfile()
    seen_shards = set()
    for record in records:
        profile.records += 1
        seen_shards.add(_shard_of(record))
        name = record.get("name", "?")
        if record.get("type") == SPAN:
            duration = record["end_ns"] - record["start_ns"]
            entry = profile.spans.get(name)
            if entry is None:
                entry = profile.spans[name] = NameProfile(name, SPAN)
            entry.add(duration)
            layer = layer_of(name)
            rollup = profile.layers.get(layer)
            if rollup is None:
                rollup = profile.layers[layer] = NameProfile(layer, SPAN)
            rollup.add(duration)
        else:
            entry = profile.events.get(name)
            if entry is None:
                entry = profile.events[name] = NameProfile(name, EVENT)
            entry.count += 1
    profile.shards = len(seen_shards)
    return profile


def render_profile(profile: TraceProfile) -> str:
    """Deterministic text table of a :class:`TraceProfile`."""
    names = (list(profile.spans) + list(profile.events)
             + list(profile.layers))
    width = max([len(name) for name in names] + [28])
    lines = [
        f"trace: {profile.records} record(s), {profile.shards} shard(s), "
        f"{profile.total_span_ns / 1e6:.2f} ms simulated in spans"
    ]
    for name in sorted(profile.spans):
        entry = profile.spans[name]
        lines.append(
            f"  span  {name:{width}s} x{entry.count:<6d} "
            f"total {entry.total_ns / 1e6:>10.2f} ms  "
            f"mean {entry.mean_ns / 1e6:>8.2f} ms  "
            f"p50~{_ms(entry.percentile_ns(50)):>8s}  "
            f"p95~{_ms(entry.percentile_ns(95)):>8s}  "
            f"p99~{_ms(entry.percentile_ns(99)):>8s}")
    for name in sorted(profile.events):
        lines.append(f"  event {name:{width}s} "
                     f"x{profile.events[name].count}")
    if profile.layers:
        lines.append("by layer (span time):")
        for name in sorted(profile.layers):
            entry = profile.layers[name]
            share = (entry.total_ns / profile.total_span_ns * 100.0
                     if profile.total_span_ns else 0.0)
            lines.append(
                f"  layer {name:{width}s} x{entry.count:<6d} "
                f"total {entry.total_ns / 1e6:>10.2f} ms  "
                f"({share:5.1f}% of span time)")
    return "\n".join(lines)


def _ms(value_ns: Optional[int]) -> str:
    return "-" if value_ns is None else f"{value_ns / 1e6:.2f}"


# ---------------------------------------------------------------------------
# Span trees and the critical path
# ---------------------------------------------------------------------------


@dataclass
class SpanNode:
    """One span plus the spans nested inside its interval."""

    name: str
    start_ns: int
    end_ns: int
    shard: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    order: int = 0  # emission index, the deterministic tiebreak
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        """Width of the span's simulated-time interval."""
        return self.end_ns - self.start_ns

    @property
    def self_ns(self) -> int:
        """Duration not covered by (non-overlapping) direct children."""
        return max(0, self.duration_ns
                   - sum(child.duration_ns for child in self.children))

    def walk(self) -> Iterator[Tuple[int, "SpanNode"]]:
        """Yield ``(depth, node)`` over the subtree, pre-order."""
        stack: List[Tuple[int, SpanNode]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))


def build_span_trees(records: Iterable[Dict[str, Any]]) -> List[SpanNode]:
    """Reconstruct span nesting by interval containment, per shard.

    Spans carry no parent ids, but nesting is recoverable: a span whose
    interval lies inside another's (same shard) is its descendant.
    Sorting by ``(start asc, end desc, emission order)`` and sweeping a
    stack rebuilds the forest deterministically; returns the roots in
    ``(shard, start, emission)`` order.
    """
    by_shard: Dict[int, List[SpanNode]] = {}
    for order, record in enumerate(records):
        if record.get("type") != SPAN:
            continue
        node = SpanNode(
            name=record.get("name", "?"),
            start_ns=record["start_ns"],
            end_ns=record["end_ns"],
            shard=_shard_of(record),
            attrs=dict(record.get("attrs") or {}),
            order=order,
        )
        by_shard.setdefault(node.shard, []).append(node)
    roots: List[SpanNode] = []
    for shard in sorted(by_shard):
        nodes = sorted(by_shard[shard],
                       key=lambda n: (n.start_ns, -n.end_ns, n.order))
        stack: List[SpanNode] = []
        for node in nodes:
            while stack and not (stack[-1].start_ns <= node.start_ns
                                 and node.end_ns <= stack[-1].end_ns):
                stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
    return roots


@dataclass
class PathStep:
    """One hop of a critical path."""

    depth: int
    node: SpanNode
    root_ns: int = 0

    @property
    def share(self) -> float:
        """This hop's duration relative to the path root (0..1)."""
        return self.node.duration_ns / self.root_ns if self.root_ns else 0.0


def critical_path(records: Iterable[Dict[str, Any]],
                  shard: Optional[int] = None) -> List[PathStep]:
    """The dominant-child walk from the longest root span.

    Picks the root span with the largest simulated duration (earliest
    start, then lowest shard, break remaining ties by emission order)
    and repeatedly descends into the longest child — for an AIT run
    this names the step chain that decided end-to-end latency.
    ``shard`` restricts the walk to one shard of a fleet trace.
    """
    roots = build_span_trees(records)
    if shard is not None:
        roots = [root for root in roots if root.shard == shard]
    if not roots:
        return []
    choose = lambda nodes: min(
        nodes, key=lambda n: (-n.duration_ns, n.start_ns, n.shard, n.order))
    node = choose(roots)
    root_ns = node.duration_ns
    path = []
    depth = 0
    while node is not None:
        path.append(PathStep(depth=depth, node=node, root_ns=root_ns))
        node = choose(node.children) if node.children else None
        depth += 1
    return path


def render_critical_path(path: List[PathStep]) -> str:
    """Deterministic text rendering of a critical path."""
    if not path:
        return "critical path: no spans in trace"
    root = path[0].node
    lines = [
        f"critical path: shard {root.shard}, root {root.name!r}, "
        f"{root.duration_ns / 1e6:.2f} ms simulated"
    ]
    for step in path:
        node = step.node
        lines.append(
            f"  {'  ' * step.depth}{node.name:<30s} "
            f"[{node.start_ns / 1e6:>10.2f} .. {node.end_ns / 1e6:>10.2f}] ms  "
            f"{node.duration_ns / 1e6:>9.2f} ms  "
            f"({step.share * 100.0:5.1f}%)  self {node.self_ns / 1e6:.2f} ms")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Race-window forensics
# ---------------------------------------------------------------------------


@dataclass
class WindowStats:
    """Distribution of armed→strike window widths for one outcome."""

    widths_ns: List[int] = field(default_factory=list)
    blocked: int = 0

    def add(self, width_ns: int, was_blocked: bool) -> None:
        self.widths_ns.append(width_ns)
        if was_blocked:
            self.blocked += 1

    @property
    def count(self) -> int:
        return len(self.widths_ns)

    @property
    def mean_ns(self) -> float:
        return (sum(self.widths_ns) / len(self.widths_ns)
                if self.widths_ns else 0.0)

    def percentile_ns(self, q: float) -> Optional[int]:
        """Exact nearest-rank percentile of the recorded widths."""
        if not self.widths_ns:
            return None
        ordered = sorted(self.widths_ns)
        rank = max(1, math.ceil(len(ordered) * q / 100.0))
        return ordered[min(rank, len(ordered)) - 1]


@dataclass
class WindowReport:
    """The armed→strike window distribution split by hijack outcome."""

    hijacked: WindowStats = field(default_factory=WindowStats)
    clean: WindowStats = field(default_factory=WindowStats)
    arms: int = 0
    strikes: int = 0
    outcomes: int = 0
    unresolved: int = 0  # windows never followed by an outcome event

    @property
    def groups(self) -> Dict[str, WindowStats]:
        return {"hijacked": self.hijacked, "clean": self.clean}


def window_forensics(records: Iterable[Dict[str, Any]]) -> WindowReport:
    """Join attack windows against install outcomes, per shard.

    Within a shard, records appear in emission order: each run's
    ``attack/window`` span(s) precede its ``install/outcome`` event, so
    the join is a sweep — buffer windows until the next outcome, then
    attribute them to that outcome's hijacked/clean group.  Streams, so
    fleet traces never materialize.
    """
    report = WindowReport()
    pending: Dict[int, List[Tuple[int, bool]]] = {}
    for record in records:
        name = record.get("name")
        shard = _shard_of(record)
        if name == ARM_EVENT:
            report.arms += 1
        elif name == STRIKE_EVENT:
            report.strikes += 1
        elif name == WINDOW_SPAN and record.get("type") == SPAN:
            attrs = record.get("attrs") or {}
            pending.setdefault(shard, []).append(
                (record["end_ns"] - record["start_ns"],
                 bool(attrs.get("blocked", False))))
        elif name == OUTCOME_EVENT:
            report.outcomes += 1
            attrs = record.get("attrs") or {}
            group = (report.hijacked if attrs.get("hijacked")
                     else report.clean)
            for width, was_blocked in pending.pop(shard, []):
                group.add(width, was_blocked)
    report.unresolved = sum(len(widths) for widths in pending.values())
    return report


def render_windows(report: WindowReport) -> str:
    """Deterministic text table of a :class:`WindowReport`.

    The hijacked-vs-clean split is the trace-level reproduction of the
    paper's Table VII window story: hijacks succeed when the armed→
    strike window is wide enough for the swap to land before the
    install read.
    """
    lines = [
        f"race-window forensics: {report.arms} arm(s), "
        f"{report.strikes} strike(s), {report.outcomes} outcome(s)"
        + (f", {report.unresolved} unresolved window(s)"
           if report.unresolved else "")
    ]
    header = (f"  {'outcome':<10s} {'windows':>8s} {'blocked':>8s} "
              f"{'min ms':>10s} {'p50 ms':>10s} {'p95 ms':>10s} "
              f"{'p99 ms':>10s} {'max ms':>10s} {'mean ms':>10s}")
    lines.append(header)
    for label in ("hijacked", "clean"):
        stats = report.groups[label]
        if not stats.count:
            lines.append(f"  {label:<10s} {0:>8d} {'-':>8s} "
                         + " ".join(f"{'-':>10s}" for _ in range(6)))
            continue
        ordered = sorted(stats.widths_ns)
        lines.append(
            f"  {label:<10s} {stats.count:>8d} {stats.blocked:>8d} "
            f"{ordered[0] / 1e6:>10.2f} "
            f"{stats.percentile_ns(50) / 1e6:>10.2f} "
            f"{stats.percentile_ns(95) / 1e6:>10.2f} "
            f"{stats.percentile_ns(99) / 1e6:>10.2f} "
            f"{ordered[-1] / 1e6:>10.2f} "
            f"{stats.mean_ns / 1e6:>10.2f}")
    if report.hijacked.count and report.clean.count:
        delta = report.hijacked.mean_ns - report.clean.mean_ns
        lines.append(
            f"  mean window delta (hijacked - clean): {delta / 1e6:+.2f} ms")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Trace diffing
# ---------------------------------------------------------------------------


def _diff_key(record: Dict[str, Any]) -> Tuple[int, str, str]:
    return (_shard_of(record), str(record.get("type")),
            str(record.get("name", "?")))


def _times_of(record: Dict[str, Any]) -> Tuple[int, ...]:
    if record.get("type") == SPAN:
        return (record["start_ns"], record["end_ns"])
    return (record["t_ns"],)


@dataclass
class RecordDelta:
    """One record present in both traces but changed."""

    shard: int
    kind: str
    name: str
    occurrence: int  # per-(shard, kind, name) index
    time_deltas: Tuple[int, ...]  # (dstart, dend) for spans, (dt,) events
    duration_delta: int = 0
    attrs_changed: bool = False


@dataclass
class TraceDiff:
    """Structural difference between two record streams."""

    added: List[Dict[str, Any]] = field(default_factory=list)
    removed: List[Dict[str, Any]] = field(default_factory=list)
    changed: List[RecordDelta] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """True when the traces are record-for-record identical."""
        return not (self.added or self.removed or self.changed)


def diff_traces(old: Iterable[Dict[str, Any]],
                new: Iterable[Dict[str, Any]]) -> TraceDiff:
    """Diff two traces structurally (old -> new).

    Records align by ``(shard, type, name)`` sequence position — the
    n-th ``ait/install`` span of shard 2 in one trace matches the n-th
    in the other — which is stable because record emission order is
    deterministic per shard.  Aligned pairs report simulated-time
    deltas (a defense that narrows the TOCTOU window shows up as a
    negative ``attack/window`` duration delta); unmatched records are
    added/removed.  ``diff_traces(t, t)`` is empty for every trace.
    """
    old_seq: Dict[Tuple[int, str, str], List[Dict[str, Any]]] = {}
    for record in old:
        old_seq.setdefault(_diff_key(record), []).append(record)
    new_seq: Dict[Tuple[int, str, str], List[Dict[str, Any]]] = {}
    for record in new:
        new_seq.setdefault(_diff_key(record), []).append(record)
    diff = TraceDiff()
    for key in sorted(set(old_seq) | set(new_seq)):
        olds = old_seq.get(key, [])
        news = new_seq.get(key, [])
        shard, kind, name = key
        for occurrence in range(min(len(olds), len(news))):
            left, right = olds[occurrence], news[occurrence]
            left_times = _times_of(left)
            right_times = _times_of(right)
            deltas = tuple(r - l for l, r in zip(left_times, right_times))
            duration_delta = 0
            if kind == SPAN:
                duration_delta = ((right_times[1] - right_times[0])
                                  - (left_times[1] - left_times[0]))
            attrs_changed = ((left.get("attrs") or {})
                             != (right.get("attrs") or {}))
            if any(deltas) or attrs_changed:
                diff.changed.append(RecordDelta(
                    shard=shard, kind=kind, name=name,
                    occurrence=occurrence, time_deltas=deltas,
                    duration_delta=duration_delta,
                    attrs_changed=attrs_changed))
        diff.removed.extend(olds[len(news):])
        diff.added.extend(news[len(olds):])
    return diff


def render_diff(diff: TraceDiff, max_detail: int = 20) -> str:
    """Deterministic text rendering of a :class:`TraceDiff`.

    At most ``max_detail`` changed records are listed per section; the
    totals always cover everything (no silent truncation).
    """
    if diff.empty:
        return "trace diff: identical"
    lines = [
        f"trace diff: {len(diff.added)} added, {len(diff.removed)} removed, "
        f"{len(diff.changed)} changed"
    ]
    for label, records in (("added", diff.added), ("removed", diff.removed)):
        for record in records[:max_detail]:
            times = "/".join(str(t) for t in _times_of(record))
            lines.append(
                f"  {label:<8s} shard {_shard_of(record)} "
                f"{record.get('type')} {record.get('name', '?')} @ {times}")
        if len(records) > max_detail:
            lines.append(f"  {label:<8s} ... {len(records) - max_detail} more")
    for delta in diff.changed[:max_detail]:
        detail = []
        if delta.kind == SPAN:
            detail.append(f"dstart={delta.time_deltas[0]:+d}ns")
            detail.append(f"dend={delta.time_deltas[1]:+d}ns")
            detail.append(f"dduration={delta.duration_delta:+d}ns")
        else:
            detail.append(f"dt={delta.time_deltas[0]:+d}ns")
        if delta.attrs_changed:
            detail.append("attrs differ")
        lines.append(
            f"  changed  shard {delta.shard} {delta.kind} {delta.name} "
            f"#{delta.occurrence}: " + " ".join(detail))
    if len(diff.changed) > max_detail:
        lines.append(f"  changed  ... {len(diff.changed) - max_detail} more")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Structural validation
# ---------------------------------------------------------------------------


def validate_records(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Structural sanity check of a record stream: the problems found.

    A well-formed trace satisfies, per shard: event timestamps are
    monotone in emission order, span intervals are valid (integer,
    non-negative, end >= start), and same-layer spans nest rather than
    partially overlap.  Returns one message per problem, in record
    order (empty list = well-formed).  Shared by the fuzz well-formed
    oracle and usable standalone on any exported trace.
    """
    problems: List[str] = []
    per_shard_events: Dict[int, int] = {}
    per_shard_spans: Dict[Tuple[int, str], List[Tuple[int, int, str]]] = {}
    for position, record in enumerate(records):
        shard = _shard_of(record)
        kind = record.get("type")
        name = str(record.get("name", ""))
        if kind == EVENT:
            t_ns = record.get("t_ns")
            if not isinstance(t_ns, int) or t_ns < 0:
                problems.append(
                    f"record {position}: event {name!r} has invalid "
                    f"t_ns {t_ns!r}")
                continue
            last = per_shard_events.get(shard)
            if last is not None and t_ns < last:
                problems.append(
                    f"record {position}: event {name!r} at {t_ns} ns goes "
                    f"backwards (shard {shard} was already at {last} ns)")
            per_shard_events[shard] = max(per_shard_events.get(shard, 0), t_ns)
        elif kind == SPAN:
            start = record.get("start_ns")
            end = record.get("end_ns")
            if (not isinstance(start, int) or not isinstance(end, int)
                    or start < 0 or end < start):
                problems.append(
                    f"record {position}: span {name!r} has invalid interval "
                    f"[{start!r}, {end!r}]")
                continue
            per_shard_spans.setdefault((shard, layer_of(name)), []).append(
                (start, end, name))
    for (shard, layer), spans in sorted(per_shard_spans.items()):
        message = _nesting_violation(spans)
        if message is not None:
            problems.append(f"shard {shard} layer {layer!r}: {message}")
    return problems


def _nesting_violation(spans: List[Tuple[int, int, str]]) -> Optional[str]:
    """First partial overlap among ``spans``, or None if they all nest.

    Sorted by (start, -end) so an enclosing span precedes its children;
    a stack walk then catches any span that crosses its enclosing
    span's boundary instead of nesting inside it.
    """
    ordered = sorted(spans, key=lambda s: (s[0], -s[1]))
    stack: List[Tuple[int, int, str]] = []
    for start, end, name in ordered:
        while stack and start >= stack[-1][1]:
            stack.pop()
        if stack and end > stack[-1][1]:
            outer = stack[-1]
            return (f"span {name!r} [{start}, {end}] partially overlaps "
                    f"{outer[2]!r} [{outer[0]}, {outer[1]}]")
        stack.append((start, end, name))
    return None
