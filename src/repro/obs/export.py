"""Exporters: JSONL traces and human-readable text summaries.

The JSONL form is canonical — one record per line, keys sorted,
compact separators — so a deterministic record stream serializes to
byte-identical output.  ``load_trace_jsonl`` round-trips it, which is
what the CI smoke job uses to validate trace files.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ReproError
from repro.obs.metrics import Snapshot
from repro.obs.trace import EVENT, SPAN

#: Keys every trace record must carry, by record type.
REQUIRED_KEYS = {
    SPAN: ("name", "start_ns", "end_ns"),
    EVENT: ("name", "t_ns"),
}


def trace_to_jsonl(records: Iterable[Dict[str, Any]]) -> str:
    """Serialize records to canonical JSONL (byte-stable for a fixed
    record stream)."""
    lines = [json.dumps(record, sort_keys=True, separators=(",", ":"))
             for record in records]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace_jsonl(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """Write records to ``path`` as JSONL; returns the record count."""
    payload = trace_to_jsonl(records)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return payload.count("\n")


def load_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse and validate a JSONL trace file.

    Raises :class:`ReproError` on malformed JSON or records missing
    the required span/event keys — the CI smoke job's check.
    """
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_number}: invalid JSON: {exc}") from exc
            kind = record.get("type")
            required = REQUIRED_KEYS.get(kind)
            if required is None:
                raise ReproError(
                    f"{path}:{line_number}: unknown record type {kind!r}")
            missing = [key for key in required if key not in record]
            if missing:
                raise ReproError(
                    f"{path}:{line_number}: {kind} record missing {missing}")
            records.append(record)
    return records


def render_trace_summary(records: Iterable[Dict[str, Any]]) -> str:
    """Aggregate a record stream into a per-name text table.

    Spans report count and total simulated time; events report count.
    """
    span_count: "OrderedDict[str, int]" = OrderedDict()
    span_ns: Dict[str, int] = {}
    event_count: "OrderedDict[str, int]" = OrderedDict()
    total = 0
    for record in records:
        total += 1
        name = record.get("name", "?")
        if record.get("type") == SPAN:
            span_count[name] = span_count.get(name, 0) + 1
            span_ns[name] = (span_ns.get(name, 0)
                             + record["end_ns"] - record["start_ns"])
        else:
            event_count[name] = event_count.get(name, 0) + 1
    lines = [f"trace: {total} record(s)"]
    for name in sorted(span_count):
        lines.append(
            f"  span  {name:28s} x{span_count[name]:<6d} "
            f"{span_ns[name] / 1e6:.2f} ms simulated")
    for name in sorted(event_count):
        lines.append(f"  event {name:28s} x{event_count[name]}")
    return "\n".join(lines)


def render_metrics(snapshot: Optional[Snapshot],
                   title: str = "metrics") -> str:
    """Human-readable rendering of a metrics snapshot."""
    if snapshot is None:
        snapshot = {}
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    size = len(counters) + len(gauges) + len(histograms)
    lines = [f"{title}: {size} metric(s)"]
    for name in sorted(counters):
        lines.append(f"  counter   {name:28s} {counters[name]}")
    for name in sorted(gauges):
        lines.append(f"  gauge     {name:28s} {gauges[name]}")
    for name in sorted(histograms):
        summary = histograms[name]
        count = summary.get("count", 0)
        mean = (summary.get("sum", 0) / count) if count else 0.0
        lines.append(
            f"  histogram {name:28s} count={count} "
            f"mean={mean:.1f} min={summary.get('min')} "
            f"max={summary.get('max')}")
    return "\n".join(lines)
