"""Exporters: JSONL traces and human-readable text summaries.

The JSONL form is canonical — one record per line, keys sorted,
compact separators — so a deterministic record stream serializes to
byte-identical output.  ``iter_trace_jsonl`` streams it back one
validated record at a time (``load_trace_jsonl`` is the materialized
form), which is what the CI smoke job and the ``repro trace`` analysis
commands use to read fleet-sized traces without holding every record
in memory.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.errors import ReproError
from repro.obs.metrics import Snapshot, summary_percentile
from repro.obs.trace import EVENT, SPAN

#: Keys every trace record must carry, by record type.
REQUIRED_KEYS = {
    SPAN: ("name", "start_ns", "end_ns"),
    EVENT: ("name", "t_ns"),
}

#: Minimum name-column width in the text renderers (keeps short
#: tables visually aligned with historical output).
MIN_NAME_WIDTH = 28


def trace_to_jsonl(records: Iterable[Dict[str, Any]]) -> str:
    """Serialize records to canonical JSONL (byte-stable for a fixed
    record stream)."""
    lines = [json.dumps(record, sort_keys=True, separators=(",", ":"))
             for record in records]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace_jsonl(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """Write records to ``path`` as JSONL; returns the record count."""
    payload = trace_to_jsonl(records)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return payload.count("\n")


def iter_trace_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    """Stream a JSONL trace file one validated record at a time.

    Validation happens as records stream past: malformed JSON, unknown
    record types, missing span/event keys and non-string ``attrs``
    keys all raise :class:`ReproError` with the offending line number.
    Only one line is held in memory, so ``trace summary`` over a
    multi-million-record fleet trace stays flat.
    """
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read trace {path}: {exc}") from exc
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_number}: invalid JSON: {exc}") from exc
            kind = record.get("type")
            required = REQUIRED_KEYS.get(kind)
            if required is None:
                raise ReproError(
                    f"{path}:{line_number}: unknown record type {kind!r}")
            missing = [key for key in required if key not in record]
            if missing:
                raise ReproError(
                    f"{path}:{line_number}: {kind} record missing {missing}")
            attrs = record.get("attrs")
            if attrs is not None:
                if not isinstance(attrs, dict):
                    raise ReproError(
                        f"{path}:{line_number}: attrs must be an object, "
                        f"got {type(attrs).__name__}")
                bad = [key for key in attrs if not isinstance(key, str)]
                if bad:
                    raise ReproError(
                        f"{path}:{line_number}: non-string attrs "
                        f"key(s) {bad}")
            yield record


def load_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse and validate a JSONL trace file into a list.

    Materialized form of :func:`iter_trace_jsonl` — same validation,
    same errors, whole trace in memory.
    """
    return list(iter_trace_jsonl(path))


def _name_width(names: Iterable[str]) -> int:
    """Name-column width: the longest name, floored at 28 columns."""
    longest = max((len(name) for name in names), default=0)
    return max(MIN_NAME_WIDTH, longest)


def render_trace_summary(records: Iterable[Dict[str, Any]]) -> str:
    """Aggregate a record stream into a per-name text table.

    Spans report count and total simulated time; events report count.
    Accepts any record iterable (including :func:`iter_trace_jsonl`)
    and keeps only per-name aggregates in memory.
    """
    span_count: "OrderedDict[str, int]" = OrderedDict()
    span_ns: Dict[str, int] = {}
    event_count: "OrderedDict[str, int]" = OrderedDict()
    total = 0
    for record in records:
        total += 1
        name = record.get("name", "?")
        if record.get("type") == SPAN:
            span_count[name] = span_count.get(name, 0) + 1
            span_ns[name] = (span_ns.get(name, 0)
                             + record["end_ns"] - record["start_ns"])
        else:
            event_count[name] = event_count.get(name, 0) + 1
    width = _name_width(list(span_count) + list(event_count))
    lines = [f"trace: {total} record(s)"]
    for name in sorted(span_count):
        lines.append(
            f"  span  {name:{width}s} x{span_count[name]:<6d} "
            f"{span_ns[name] / 1e6:.2f} ms simulated")
    for name in sorted(event_count):
        lines.append(f"  event {name:{width}s} x{event_count[name]}")
    return "\n".join(lines)


def render_metrics(snapshot: Optional[Snapshot],
                   title: str = "metrics") -> str:
    """Human-readable rendering of a metrics snapshot.

    Histograms with bucket data append deterministic p50/p95/p99
    estimates after the classic count/mean/min/max summary.
    """
    if snapshot is None:
        snapshot = {}
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    size = len(counters) + len(gauges) + len(histograms)
    width = _name_width(list(counters) + list(gauges) + list(histograms))
    lines = [f"{title}: {size} metric(s)"]
    for name in sorted(counters):
        lines.append(f"  counter   {name:{width}s} {counters[name]}")
    for name in sorted(gauges):
        lines.append(f"  gauge     {name:{width}s} {gauges[name]}")
    for name in sorted(histograms):
        summary = histograms[name]
        count = summary.get("count", 0)
        mean = (summary.get("sum", 0) / count) if count else 0.0
        line = (f"  histogram {name:{width}s} count={count} "
                f"mean={mean:.1f} min={summary.get('min')} "
                f"max={summary.get('max')}")
        if count and summary.get("buckets"):
            p50 = summary_percentile(summary, 50)
            p95 = summary_percentile(summary, 95)
            p99 = summary_percentile(summary, 99)
            line += f" p50={p50} p95={p95} p99={p99}"
        lines.append(line)
    return "\n".join(lines)
